//! End-to-end tests of the `audo-prof` command-line tool.

use std::io::Write as _;
use std::process::Command;

fn write_demo(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("demo.asm");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(
        f,
        "    .org 0x80000000
_start:
    movi d0, 0
    li d1, 5000
busy:
    mac d2, d0, d1
    addi d0, d0, 1
    jne d0, d1, busy
    halt"
    )
    .unwrap();
    path
}

#[test]
fn audo_prof_profiles_a_program() {
    let dir = std::env::temp_dir().join("audo_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let asm = write_demo(&dir);
    let csv = dir.join("out.csv");
    let out = Command::new(env!("CARGO_BIN_EXE_audo-prof"))
        .args([
            asm.to_str().unwrap(),
            "--window",
            "1000",
            "--metrics",
            "ipc,stall",
            "--trace",
            "--csv",
            csv.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("IPC (TriCore)"), "{stdout}");
    assert!(stdout.contains("stall fraction"), "{stdout}");
    assert!(stdout.contains("function profile"), "{stdout}");
    assert!(stdout.contains("busy"), "hot function attributed: {stdout}");
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("metric,cycle,value,num,den"));
    assert!(csv_text.lines().count() > 5);
}

#[test]
fn audo_prof_rejects_bad_input() {
    let out = Command::new(env!("CARGO_BIN_EXE_audo-prof"))
        .args(["/nonexistent.asm"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let out = Command::new(env!("CARGO_BIN_EXE_audo-prof"))
        .args(["x.asm", "--metrics", "bogus"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown metric"));

    let out = Command::new(env!("CARGO_BIN_EXE_audo-prof"))
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
