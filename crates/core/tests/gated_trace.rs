//! Trigger-gated (function-scoped) program trace: record only while
//! execution is inside a chosen routine, re-synchronizing correctly after
//! every trace gap.

use audo_common::Addr;
use audo_ed::{EdConfig, EmulationDevice};
use audo_platform::config::SocConfig;
use audo_profiler::reconstruct::{flat_profile, reconstruct_flow};
use audo_profiler::session::{profile, SessionOptions};
use audo_profiler::spec::ProfileSpec;
use audo_workloads::engine::{engine_control, EngineParams};

#[test]
fn gated_trace_records_only_the_chosen_isr() {
    let p = EngineParams {
        rpm: 12_000,
        target_teeth: 20,
        ..EngineParams::default()
    };
    let w = engine_control(&p);
    let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    w.install_ed(&mut ed).unwrap();

    let isr = w.image.symbol("isr_crank").expect("isr_crank").0;
    // Trace on: flow lands at the crank ISR entry. Trace off: flow lands
    // back in the main-loop region (the RFE's return).
    let spec = ProfileSpec::new().with_gated_program_trace(
        Addr(isr),
        Addr(isr + 2),
        Addr(0x8000_0000),
        Addr(0x8000_0800),
    );
    let out = profile(
        &mut ed,
        &spec,
        &SessionOptions {
            max_cycles: w.max_cycles,
            ..SessionOptions::default()
        },
    )
    .unwrap();
    assert!(out.decode_error.is_none(), "{:?}", out.decode_error);

    let rec = reconstruct_flow(&w.image, &out.messages).unwrap();
    assert!(rec.instr_count > 100, "the gated window captured work");
    let prof = flat_profile(&rec);
    let isr_symbols = ["isr_crank", "smooth_row", "smooth_col", "crank_done"];
    let in_isr: u64 = prof
        .iter()
        .filter(|(name, _, _)| isr_symbols.contains(&name.as_str()))
        .map(|(_, n, _)| *n)
        .sum();
    let share = in_isr as f64 / rec.instr_count as f64;
    assert!(
        share > 0.9,
        "≥90% of gated-trace instructions belong to the crank ISR, got {:.1}% ({:?})",
        share * 100.0,
        prof.iter().take(6).collect::<Vec<_>>()
    );
    // The full trace would be far larger: the gate saves real bandwidth.
    let mut ed_full = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    w.install_ed(&mut ed_full).unwrap();
    let out_full = profile(
        &mut ed_full,
        &ProfileSpec::new().with_program_trace(),
        &SessionOptions {
            max_cycles: w.max_cycles,
            ..SessionOptions::default()
        },
    )
    .unwrap();
    assert!(
        out.produced_bytes * 4 < out_full.produced_bytes,
        "gated ({}) should be <25% of full ({})",
        out.produced_bytes,
        out_full.produced_bytes
    );
}

#[test]
fn cascades_and_gated_trace_compose() {
    use audo_profiler::spec::MetricRequest;
    use audo_profiler::Metric;
    // Two independent cascades plus a gated program trace in one spec:
    // cascade arming is level-sensitive, so nothing fights over the
    // trigger state machine.
    let p = EngineParams {
        rpm: 12_000,
        target_teeth: 15,
        ..EngineParams::default()
    };
    let w = engine_control(&p);
    let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    w.install_ed(&mut ed).unwrap();
    let isr = w.image.symbol("isr_crank").unwrap().0;
    let spec = ProfileSpec::new()
        .metric(Metric::Ipc, 500)
        .metric(Metric::InterruptsPerKilocycle, 500)
        .cascade(
            Metric::Ipc,
            0.72,
            vec![MetricRequest {
                metric: Metric::DcacheMissPerInstr,
                window: 100,
            }],
        )
        .cascade(
            Metric::InterruptsPerKilocycle,
            0.2,
            vec![MetricRequest {
                metric: Metric::StallFraction(None),
                window: 100,
            }],
        )
        .with_gated_program_trace(
            Addr(isr),
            Addr(isr + 2),
            Addr(0x8000_0000),
            Addr(0x8000_0800),
        );
    let out = profile(
        &mut ed,
        &spec,
        &SessionOptions {
            max_cycles: w.max_cycles,
            ..SessionOptions::default()
        },
    )
    .unwrap();
    assert!(out.decode_error.is_none());
    // Both cascades delivered samples in their respective regimes, and the
    // gated trace recorded flows too.
    assert!(!out.timeline.series(Metric::Ipc).is_empty());
    let flows = out
        .messages
        .iter()
        .filter(|(_, m)| {
            matches!(
                m,
                audo_mcds::TraceMessage::FlowDirect { .. }
                    | audo_mcds::TraceMessage::FlowTarget { .. }
            )
        })
        .count();
    assert!(flows > 10, "gated trace captured crank-ISR flows ({flows})");
    // The low-interrupt cascade (watching a *below* threshold on a rate
    // that is mostly above it) samples only in quiet windows — presence is
    // workload-dependent; the IPC cascade must fire in the bg-checksum
    // phases.
    assert!(
        !out.timeline.series(Metric::DcacheMissPerInstr).is_empty(),
        "IPC cascade armed at least once"
    );
}
