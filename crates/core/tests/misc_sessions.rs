//! Additional end-to-end session scenarios: co-processor rate measurement
//! and fault surfacing through the full stack.

use audo_common::SimError;
use audo_ed::{EdConfig, EmulationDevice};
use audo_platform::config::SocConfig;
use audo_profiler::metrics::Metric;
use audo_profiler::session::{profile, SessionOptions};
use audo_profiler::spec::ProfileSpec;
use audo_tricore::asm::assemble;
use audo_workloads::engine::{engine_control, EngineParams};

/// §5: "there are also several other parameters for the System Profiling of
/// the PCP, DMA and other resources" — measure the PCP's own IPC and the
/// DMA beat rate alongside the CPU metrics, in one run.
#[test]
fn pcp_and_dma_rates_measured_alongside_cpu() {
    let p = EngineParams {
        rpm: 12_000,
        target_teeth: 20,
        can_period: 1_500,
        can_on_pcp: true,
        ..EngineParams::default()
    };
    let w = engine_control(&p);
    let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    w.install_ed(&mut ed).unwrap();
    let spec = ProfileSpec::new()
        .metric(Metric::Ipc, 2000)
        .metric(Metric::PcpIpc, 2000)
        .metric(Metric::DmaBeatsPerKilocycle, 2000);
    let out = profile(
        &mut ed,
        &spec,
        &SessionOptions {
            max_cycles: w.max_cycles,
            ..SessionOptions::default()
        },
    )
    .unwrap();
    let cpu_ipc = out.timeline.average(Metric::Ipc);
    let pcp_ipc = out.timeline.average(Metric::PcpIpc);
    let dma = out.timeline.average(Metric::DmaBeatsPerKilocycle);
    assert!(cpu_ipc > 0.3, "CPU busy: {cpu_ipc}");
    assert!(pcp_ipc > 0.0, "PCP executed CAN firmware: {pcp_ipc}");
    assert!(pcp_ipc < cpu_ipc, "the PCP is a part-time helper");
    assert!(dma > 0.1, "the ADC chain produced DMA beats: {dma}");
    // Cross-check the PCP numerator against the engine's own counter.
    let (pcp_instrs, _) = out.timeline.totals(Metric::PcpIpc);
    let hw = ed.soc.pcp.retired_total();
    assert!(
        pcp_instrs <= hw && hw - pcp_instrs < 200,
        "measured {pcp_instrs} vs hw {hw}"
    );
}

/// A target program fault (data write into program flash) surfaces as a
/// `ProgramFault` through the whole profiling stack, not as a panic.
#[test]
fn target_faults_surface_cleanly() {
    let image = assemble(
        "
        .org 0x80000000
    _start:
        la a2, 0x80000100   ; program flash, not overlaid
        movi d0, 1
        st.w d0, [a2]       ; illegal: flash is not writable
        halt
    ",
    )
    .unwrap();
    let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    ed.soc.load_image(&image).unwrap();
    let spec = ProfileSpec::new().metric(Metric::Ipc, 100);
    let err = profile(&mut ed, &spec, &SessionOptions::default()).unwrap_err();
    assert!(matches!(err, SimError::ProgramFault { .. }), "{err}");
}

/// Unmapped accesses likewise.
#[test]
fn unmapped_access_faults_cleanly() {
    let image = assemble(
        "
        .org 0x80000000
    _start:
        la a2, 0x12345678
        ld.w d0, [a2]
        halt
    ",
    )
    .unwrap();
    let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    ed.soc.load_image(&image).unwrap();
    let err = profile(
        &mut ed,
        &ProfileSpec::new().metric(Metric::Ipc, 100),
        &SessionOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, SimError::UnmappedAddress { .. }), "{err}");
}

/// CSA exhaustion from runaway recursion is a clean fault too.
#[test]
fn csa_exhaustion_faults_cleanly() {
    let image = assemble(
        "
        .org 0x80000000
    _start:
        call rec
        halt
    rec:
        call rec
        ret
    ",
    )
    .unwrap();
    let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    ed.soc.load_image(&image).unwrap();
    let err = profile(
        &mut ed,
        &ProfileSpec::new().metric(Metric::Ipc, 100),
        &SessionOptions::default(),
    )
    .unwrap_err();
    match err {
        SimError::ProgramFault { ref message } => {
            assert!(message.contains("CSA"), "{message}");
        }
        other => panic!("wrong error: {other}"),
    }
}

/// A "measure everything" session on enlarged MCDS silicon (all catalogue
/// metrics at once), and the same software on the TC1767-class sibling.
#[test]
fn wide_session_and_device_presets() {
    use audo_mcds::McdsResources;
    use audo_profiler::metrics::ALL_BASIC_METRICS;
    let p = EngineParams {
        rpm: 6000,
        target_teeth: 15,
        ..EngineParams::default()
    };
    let w = engine_control(&p);
    let spec = ProfileSpec::new()
        .metrics(ALL_BASIC_METRICS, 2000)
        .with_resources(McdsResources {
            rate_probes: 32,
            counters: 8,
            comparators: 8,
            transitions: 16,
        });
    let run = |cfg: SocConfig| {
        let mut ed = EmulationDevice::new(cfg, EdConfig::default());
        w.install_ed(&mut ed).unwrap();
        profile(
            &mut ed,
            &spec,
            &SessionOptions {
                max_cycles: w.max_cycles,
                ..SessionOptions::default()
            },
        )
        .unwrap()
    };
    let hi = run(SocConfig::tc1797());
    let lo = run(SocConfig::tc1767());
    for m in ALL_BASIC_METRICS {
        assert!(
            !hi.timeline.series(*m).is_empty(),
            "{m:?} sampled on tc1797"
        );
        assert!(
            !lo.timeline.series(*m).is_empty(),
            "{m:?} sampled on tc1767"
        );
    }
    // Same software runs on both devices (compatibility), but the smaller
    // device with no D-cache works harder for the same teeth.
    assert!(hi.halted && lo.halted);
    assert!(
        lo.timeline.average(Metric::Ipc) < hi.timeline.average(Metric::Ipc),
        "the cache-less sibling has lower IPC"
    );
    assert_eq!(
        lo.timeline.average(Metric::DcacheHitRatio),
        0.0,
        "no D-cache on the TC1767-class device"
    );
}
