//! Architecture-option evaluation: the SoC-architect half of the
//! methodology.
//!
//! §6: "it is possible to get a complete application profile for further
//! SoC optimizations. This allows a quantitative comparison of optimization
//! options to choose the ones with the best ratio between performance gain
//! on the one side and development effort and area increase on the other
//! side." This module provides:
//!
//! * [`ArchOption`] — the candidate next-generation changes on the paper's
//!   named levers (the CPU→flash path, caches, arbitration),
//! * [`CostModel`] — relative area/effort cost per option,
//! * an **analytical** gain estimator from measured event statistics
//!   (where the statistics determine the gain exactly), and
//! * a **replay** evaluator that re-runs the unchanged software on the
//!   modified configuration — the software-compatibility evolution of the
//!   F-model,
//! * gain/cost ranking across options and workloads.

use std::fmt;

use audo_common::{ByteSize, EventRecord, PerfEvent, SimError};
use audo_platform::config::{PortArbitration, SocConfig};

/// A candidate architecture/implementation change for the next generation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ArchOption {
    /// Reduce program-flash wait states (faster flash array).
    FlashWaitStates(u64),
    /// Change the number of flash read buffers.
    FlashReadBuffers(usize),
    /// Enable/disable the sequential prefetcher.
    FlashPrefetch(bool),
    /// Change the flash code/data port arbitration.
    FlashArbitration(PortArbitration),
    /// Resize the instruction cache.
    IcacheSize(ByteSize),
    /// Resize the data cache.
    DcacheSize(ByteSize),
    /// Change the SRAM access latency (faster LMU).
    SramLatency(u64),
}

impl ArchOption {
    /// Applies the option to a configuration.
    pub fn apply(&self, cfg: &mut SocConfig) {
        match *self {
            ArchOption::FlashWaitStates(ws) => cfg.flash.wait_states = ws,
            ArchOption::FlashReadBuffers(n) => cfg.flash.read_buffers = n.max(1),
            ArchOption::FlashPrefetch(on) => cfg.flash.prefetch = on,
            ArchOption::FlashArbitration(a) => cfg.flash.arbitration = a,
            ArchOption::IcacheSize(s) => cfg.icache.size = s,
            ArchOption::DcacheSize(s) => cfg.dcache.size = s,
            ArchOption::SramLatency(l) => cfg.sram_latency = l,
        }
    }

    /// Short label for tables.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            ArchOption::FlashWaitStates(ws) => format!("flash ws={ws}"),
            ArchOption::FlashReadBuffers(n) => format!("flash buffers={n}"),
            ArchOption::FlashPrefetch(on) => {
                format!("prefetch {}", if on { "on" } else { "off" })
            }
            ArchOption::FlashArbitration(a) => format!("arbitration {a:?}"),
            ArchOption::IcacheSize(s) => format!("I-cache {s}"),
            ArchOption::DcacheSize(s) => format!("D-cache {s}"),
            ArchOption::SramLatency(l) => format!("SRAM latency={l}"),
        }
    }
}

impl fmt::Display for ArchOption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Relative cost (area/effort in kilo-gate-equivalents) of each option.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cost per KiB of added cache RAM.
    pub kge_per_cache_kib: f64,
    /// Cost per added flash line buffer.
    pub kge_per_flash_buffer: f64,
    /// Cost per removed flash wait state (faster array / sensing).
    pub kge_per_wait_state_removed: f64,
    /// Cost of adding the prefetch engine.
    pub kge_prefetch: f64,
    /// Cost of an arbitration change (design/verification effort).
    pub kge_arbitration: f64,
    /// Cost per removed SRAM latency cycle.
    pub kge_per_sram_cycle_removed: f64,
    /// Floor so no option divides by zero.
    pub min_cost: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            kge_per_cache_kib: 9.0,
            kge_per_flash_buffer: 4.0,
            kge_per_wait_state_removed: 35.0,
            kge_prefetch: 6.0,
            kge_arbitration: 2.0,
            kge_per_sram_cycle_removed: 25.0,
            min_cost: 1.0,
        }
    }
}

impl CostModel {
    /// Cost of applying `opt` relative to `baseline` (never below
    /// `min_cost`; reductions cost effort too, never negative).
    #[must_use]
    pub fn cost(&self, baseline: &SocConfig, opt: &ArchOption) -> f64 {
        let raw = match *opt {
            ArchOption::FlashWaitStates(ws) => {
                let removed = baseline.flash.wait_states.saturating_sub(ws) as f64;
                removed * self.kge_per_wait_state_removed
            }
            ArchOption::FlashReadBuffers(n) => {
                (n as f64 - baseline.flash.read_buffers as f64).abs() * self.kge_per_flash_buffer
            }
            ArchOption::FlashPrefetch(on) => {
                if on == baseline.flash.prefetch {
                    0.0
                } else {
                    self.kge_prefetch
                }
            }
            ArchOption::FlashArbitration(a) => {
                if a == baseline.flash.arbitration {
                    0.0
                } else {
                    self.kge_arbitration
                }
            }
            ArchOption::IcacheSize(s) => {
                let delta_kib = (s.bytes() as f64 - baseline.icache.size.bytes() as f64) / 1024.0;
                delta_kib.max(0.0) * self.kge_per_cache_kib
            }
            ArchOption::DcacheSize(s) => {
                let delta_kib = (s.bytes() as f64 - baseline.dcache.size.bytes() as f64) / 1024.0;
                delta_kib.max(0.0) * self.kge_per_cache_kib
            }
            ArchOption::SramLatency(l) => {
                baseline.sram_latency.saturating_sub(l) as f64 * self.kge_per_sram_cycle_removed
            }
        };
        raw.max(self.min_cost)
    }
}

/// Aggregate event statistics of one measured run — the "statistical data"
/// the analytical methodology consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeasuredProfile {
    /// Total cycles.
    pub cycles: u64,
    /// TriCore instructions retired.
    pub instrs: u64,
    /// Flash buffer misses (both ports).
    pub flash_buffer_misses: u64,
    /// Flash port-arbitration conflict wait cycles.
    pub flash_conflict_waits: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// D-cache misses.
    pub dcache_misses: u64,
    /// Crossbar contention wait cycles.
    pub bus_wait_cycles: u64,
    /// Interrupts taken.
    pub irq_taken: u64,
}

impl MeasuredProfile {
    /// Builds the statistics from a ground-truth event stream (or from an
    /// MCDS capture with unlimited resolution).
    #[must_use]
    pub fn from_events(cycles: u64, events: &[EventRecord]) -> MeasuredProfile {
        let mut p = MeasuredProfile {
            cycles,
            ..MeasuredProfile::default()
        };
        for e in events {
            match e.event {
                PerfEvent::InstrRetired { count } if e.source == audo_common::SourceId::TRICORE => {
                    p.instrs += u64::from(count);
                }
                PerfEvent::FlashBufferMiss { .. } => p.flash_buffer_misses += 1,
                PerfEvent::FlashPortConflict { waited, .. } => {
                    p.flash_conflict_waits += u64::from(waited);
                }
                PerfEvent::CacheMiss {
                    cache: audo_common::events::CacheId::Instruction,
                } => {
                    p.icache_misses += 1;
                }
                PerfEvent::CacheMiss {
                    cache: audo_common::events::CacheId::Data,
                } => {
                    p.dcache_misses += 1;
                }
                PerfEvent::BusContention { waited, .. } => {
                    p.bus_wait_cycles += u64::from(waited);
                }
                PerfEvent::IrqTaken { .. } => p.irq_taken += 1,
                _ => {}
            }
        }
        p
    }
}

/// Analytically estimated cycle gain of an option from measured statistics.
///
/// Only options whose effect is a pure latency change on already-counted
/// events can be estimated without re-running (wait states, arbitration);
/// structural options (buffer count, cache size, prefetch) change *which*
/// events occur and return `None` — they must be replayed. This split is
/// the honest boundary of the paper's analytical methodology.
#[must_use]
pub fn analytical_gain(
    profile: &MeasuredProfile,
    baseline: &SocConfig,
    opt: &ArchOption,
) -> Option<f64> {
    if profile.cycles == 0 {
        return None;
    }
    let saved: f64 = match *opt {
        ArchOption::FlashWaitStates(ws) => {
            let delta = baseline.flash.wait_states as f64 - ws as f64;
            delta * profile.flash_buffer_misses as f64
        }
        ArchOption::FlashArbitration(_) => {
            // Upper bound: all conflict wait cycles removed.
            profile.flash_conflict_waits as f64
        }
        // Structural options (buffers, caches, prefetch, SRAM latency)
        // change which events occur; no sound closed-form estimate exists
        // from aggregate counts alone — replay instead.
        _ => return None,
    };
    Some(saved / profile.cycles as f64)
}

/// One evaluated option.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The option.
    pub option: ArchOption,
    /// Cycles with the option applied.
    pub cycles: u64,
    /// `baseline_cycles / cycles`.
    pub speedup: f64,
    /// Fractional gain `1 - cycles/baseline`.
    pub gain: f64,
    /// Analytical gain estimate, where the statistics allow one.
    pub analytical_gain: Option<f64>,
    /// Cost in kGE-equivalents.
    pub cost: f64,
    /// Percent gain per kGE — the paper's ranking figure of merit.
    pub gain_per_cost: f64,
}

/// A ranked option study for one workload.
#[derive(Debug, Clone, Default)]
pub struct OptionStudy {
    /// Baseline cycle count.
    pub baseline_cycles: u64,
    /// Evaluations, ranked by `gain_per_cost` descending.
    pub evaluations: Vec<Evaluation>,
}

impl OptionStudy {
    /// Renders a ranking table.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>8} {:>9} {:>10} {:>8} {:>11}",
            "option", "cycles", "speedup", "gain%", "est.gain%", "cost", "gain%/cost"
        );
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>8} {:>9}",
            "baseline", self.baseline_cycles, "1.000", "-"
        );
        for e in &self.evaluations {
            let est = e
                .analytical_gain
                .map_or("     -".to_string(), |g| format!("{:6.2}", g * 100.0));
            let _ = writeln!(
                out,
                "{:<24} {:>12} {:>8.3} {:>8.2}% {:>10} {:>8.1} {:>11.3}",
                e.option.label(),
                e.cycles,
                e.speedup,
                e.gain * 100.0,
                est,
                e.cost,
                e.gain_per_cost
            );
        }
        out
    }
}

/// Evaluates options by replaying the unchanged workload on modified
/// configurations, ranks by gain/cost.
///
/// `runner` executes the workload on a configuration and returns the cycle
/// count (typically: build a SoC, load the same image, run to halt). The
/// per-option replays are independent, so each runs on its own worker
/// thread ([`crate::par`]); results are collected in option order, which
/// keeps the study — and anything rendered from it — deterministic.
///
/// # Errors
///
/// Propagates runner failures (the first failing option in option order).
pub fn evaluate_options<F>(
    baseline: &SocConfig,
    options: &[ArchOption],
    cost_model: &CostModel,
    profile: Option<&MeasuredProfile>,
    runner: F,
) -> Result<OptionStudy, SimError>
where
    F: Fn(&SocConfig) -> Result<u64, SimError> + Sync,
{
    let baseline_cycles = runner(baseline)?;
    let replays = crate::par::par_map(options, |opt| {
        let mut cfg = baseline.clone();
        opt.apply(&mut cfg);
        runner(&cfg)
    });
    let mut evaluations = Vec::new();
    for (opt, replay) in options.iter().zip(replays) {
        let cycles = replay?;
        let speedup = baseline_cycles as f64 / cycles.max(1) as f64;
        let gain = 1.0 - cycles as f64 / baseline_cycles.max(1) as f64;
        let cost = cost_model.cost(baseline, opt);
        let analytical = profile.and_then(|p| analytical_gain(p, baseline, opt));
        evaluations.push(Evaluation {
            option: *opt,
            cycles,
            speedup,
            gain,
            analytical_gain: analytical,
            cost,
            gain_per_cost: gain * 100.0 / cost,
        });
    }
    evaluations.sort_by(|a, b| {
        b.gain_per_cost
            .partial_cmp(&a.gain_per_cost)
            .expect("finite ranking values")
    });
    Ok(OptionStudy {
        baseline_cycles,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_apply_to_config() {
        let mut cfg = SocConfig::default();
        ArchOption::FlashWaitStates(2).apply(&mut cfg);
        ArchOption::FlashReadBuffers(4).apply(&mut cfg);
        ArchOption::IcacheSize(ByteSize::kib(32)).apply(&mut cfg);
        assert_eq!(cfg.flash.wait_states, 2);
        assert_eq!(cfg.flash.read_buffers, 4);
        assert_eq!(cfg.icache.size, ByteSize::kib(32));
    }

    #[test]
    fn cost_model_orders_sanely() {
        let cm = CostModel::default();
        let base = SocConfig::default();
        let arb = cm.cost(
            &base,
            &ArchOption::FlashArbitration(PortArbitration::RoundRobin),
        );
        let buf = cm.cost(&base, &ArchOption::FlashReadBuffers(4));
        let cache = cm.cost(&base, &ArchOption::IcacheSize(ByteSize::kib(32)));
        let ws = cm.cost(&base, &ArchOption::FlashWaitStates(3));
        assert!(arb < buf, "arbitration tweak cheaper than buffers");
        assert!(buf < ws, "buffers cheaper than a faster flash array");
        assert!(ws < cache, "doubling a 16 KiB cache is the big-ticket item");
        assert!(cm.cost(&base, &ArchOption::FlashPrefetch(true)) >= cm.min_cost);
    }

    #[test]
    fn analytical_gain_for_wait_states() {
        let p = MeasuredProfile {
            cycles: 100_000,
            flash_buffer_misses: 5_000,
            ..MeasuredProfile::default()
        };
        let base = SocConfig::default(); // ws = 5
        let g = analytical_gain(&p, &base, &ArchOption::FlashWaitStates(3)).unwrap();
        // 2 cycles x 5000 misses / 100k cycles = 10 %.
        assert!((g - 0.10).abs() < 1e-9);
        assert!(analytical_gain(&p, &base, &ArchOption::FlashReadBuffers(4)).is_none());
    }

    #[test]
    fn evaluate_ranks_by_gain_per_cost() {
        let base = SocConfig::default();
        let options = [
            ArchOption::FlashWaitStates(3),
            ArchOption::FlashArbitration(PortArbitration::RoundRobin),
        ];
        // Synthetic runner: wait-state reduction saves 20 %, arbitration 2 %.
        let study = evaluate_options(&base, &options, &CostModel::default(), None, |cfg| {
            Ok(match (cfg.flash.wait_states, cfg.flash.arbitration) {
                (3, _) => 80_000,
                (_, PortArbitration::RoundRobin) => 98_000,
                _ => 100_000,
            })
        })
        .unwrap();
        assert_eq!(study.baseline_cycles, 100_000);
        // Arbitration: 2 % / 2 kGE = 1.0; wait states: 20 % / 70 kGE ≈ 0.29.
        assert!(matches!(
            study.evaluations[0].option,
            ArchOption::FlashArbitration(_)
        ));
        assert!(study.evaluations[0].gain_per_cost > study.evaluations[1].gain_per_cost);
        let r = study.render();
        assert!(r.contains("baseline"));
        assert!(r.contains("flash ws=3"));
    }

    #[test]
    fn measured_profile_from_events() {
        use audo_common::{Cycle, EventRecord, SourceId};
        let events = vec![
            EventRecord {
                cycle: Cycle(0),
                source: SourceId::TRICORE,
                event: PerfEvent::InstrRetired { count: 3 },
            },
            EventRecord {
                cycle: Cycle(1),
                source: SourceId::PMU,
                event: PerfEvent::FlashBufferMiss {
                    port: audo_common::events::FlashPort::Code,
                },
            },
            EventRecord {
                cycle: Cycle(2),
                source: SourceId::BUS,
                event: PerfEvent::BusContention {
                    master: SourceId::DMA,
                    waited: 3,
                },
            },
        ];
        let p = MeasuredProfile::from_events(10, &events);
        assert_eq!(p.instrs, 3);
        assert_eq!(p.flash_buffer_misses, 1);
        assert_eq!(p.bus_wait_cycles, 3);
        assert_eq!(p.cycles, 10);
    }
}

/// One option's aggregate standing across several workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossEvaluation {
    /// The option.
    pub option: ArchOption,
    /// Geometric-mean speedup across workloads.
    pub geomean_speedup: f64,
    /// The worst per-workload gain (negative = a regression somewhere).
    pub worst_gain: f64,
    /// Name of the workload with the worst gain.
    pub worst_workload: String,
    /// Cost (from the study that evaluated it).
    pub cost: f64,
    /// Geomean gain% per cost — the cross-workload ranking figure.
    pub gain_per_cost: f64,
    /// §4's veto: `true` when no workload regresses beyond `tolerance`.
    pub safe: bool,
}

/// Aggregates per-workload studies into one ranking, enforcing the paper's
/// §4 rule: "improve on identified or expected bottlenecks **without
/// negative side effects for other possible use cases**". Options that
/// regress any workload by more than `regression_tolerance` (fractional,
/// e.g. `0.002` = 0.2 %) are marked unsafe and ranked after all safe ones.
///
/// # Panics
///
/// Panics if the studies evaluated different option sets.
#[must_use]
pub fn cross_workload_ranking(
    studies: &[(String, OptionStudy)],
    regression_tolerance: f64,
) -> Vec<CrossEvaluation> {
    let Some((_, first)) = studies.first() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for e in &first.evaluations {
        let mut log_sum = 0.0;
        let mut worst = (f64::INFINITY, String::new());
        for (name, study) in studies {
            let ev = study
                .evaluations
                .iter()
                .find(|x| x.option == e.option)
                .expect("all studies must evaluate the same options");
            log_sum += ev.speedup.max(1e-9).ln();
            if ev.gain < worst.0 {
                worst = (ev.gain, name.clone());
            }
        }
        let geomean = (log_sum / studies.len() as f64).exp();
        let gain = geomean - 1.0;
        let safe = worst.0 >= -regression_tolerance;
        out.push(CrossEvaluation {
            option: e.option,
            geomean_speedup: geomean,
            worst_gain: worst.0,
            worst_workload: worst.1,
            cost: e.cost,
            gain_per_cost: gain * 100.0 / e.cost,
            safe,
        });
    }
    out.sort_by(|a, b| {
        b.safe.cmp(&a.safe).then(
            b.gain_per_cost
                .partial_cmp(&a.gain_per_cost)
                .expect("finite"),
        )
    });
    out
}

/// Renders a cross-workload ranking table.
#[must_use]
pub fn render_cross_ranking(rows: &[CrossEvaluation]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>9} {:>10} {:>20} {:>8} {:>11} {:>6}",
        "option", "geomean", "worst", "worst on", "cost", "gain%/cost", "safe"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<24} {:>8.3}x {:>9.2}% {:>20} {:>8.1} {:>11.3} {:>6}",
            r.option.label(),
            r.geomean_speedup,
            r.worst_gain * 100.0,
            r.worst_workload,
            r.cost,
            r.gain_per_cost,
            if r.safe { "yes" } else { "NO" }
        );
    }
    out
}

#[cfg(test)]
mod cross_tests {
    use super::*;

    fn study(gains: &[(ArchOption, f64)]) -> OptionStudy {
        let baseline = 100_000u64;
        OptionStudy {
            baseline_cycles: baseline,
            evaluations: gains
                .iter()
                .map(|&(option, gain)| {
                    let cycles = ((1.0 - gain) * baseline as f64) as u64;
                    Evaluation {
                        option,
                        cycles,
                        speedup: baseline as f64 / cycles as f64,
                        gain,
                        analytical_gain: None,
                        cost: 10.0,
                        gain_per_cost: gain * 100.0 / 10.0,
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn regressing_options_are_flagged_and_demoted() {
        let a = ArchOption::FlashWaitStates(3);
        let b = ArchOption::FlashPrefetch(false);
        let studies = vec![
            ("w1".to_string(), study(&[(a, 0.10), (b, 0.30)])),
            ("w2".to_string(), study(&[(a, 0.05), (b, -0.05)])),
        ];
        let rows = cross_workload_ranking(&studies, 0.002);
        // b has the better geomean but regresses w2: a must rank first.
        assert_eq!(rows[0].option, a);
        assert!(rows[0].safe);
        assert_eq!(rows[1].option, b);
        assert!(!rows[1].safe);
        assert_eq!(rows[1].worst_workload, "w2");
        let r = render_cross_ranking(&rows);
        assert!(r.contains("NO"), "{r}");
    }

    #[test]
    fn geomean_is_balanced_across_workloads() {
        let a = ArchOption::FlashWaitStates(4);
        let studies = vec![
            ("w1".to_string(), study(&[(a, 0.50)])),
            ("w2".to_string(), study(&[(a, 0.00)])),
        ];
        let rows = cross_workload_ranking(&studies, 0.01);
        // speedups 2.0 and 1.0 -> geomean sqrt(2) ≈ 1.414.
        assert!((rows[0].geomean_speedup - 2.0f64.sqrt()).abs() < 1e-9);
    }
}
