//! **Enhanced System Profiling** and the architecture-optimization
//! methodology — the primary contribution of Mayer & Hellwig, *"System
//! Performance Optimization Methodology for Infineon's 32-Bit Automotive
//! Microcontroller Architecture"* (DATE 2008), reimplemented against the
//! simulated AUDO-class platform of this workspace.
//!
//! The flow mirrors the paper end to end:
//!
//! 1. **Specify** ([`spec`]) — which [`metrics::Metric`]s to measure, at
//!    which resolution, optionally cascaded (fine-grained probes armed only
//!    while a coarse rate is bad).
//! 2. **Compile** — the spec is allocated onto the finite counter/
//!    comparator resources of the MCDS; over-subscription fails, exactly
//!    like on silicon.
//! 3. **Run** ([`session`]) — the unchanged application executes on the
//!    Emulation Device; rates are computed on chip, buffered in EMEM, and
//!    drained through the bandwidth-limited DAP link.
//! 4. **Analyze** ([`timeline`], [`analysis`], [`reconstruct`]) — parallel
//!    rate timelines, hot-spot detection with cause classification, and
//!    full program-flow reconstruction with function-level attribution.
//! 5. **Optimize** ([`options`], [`generation`]) — candidate
//!    next-generation architecture changes are evaluated analytically from
//!    the measured statistics and by replaying the same software, ranked by
//!    gain/cost per workload and across workloads (with the §4 "no negative
//!    side effects" veto), and assembled into the next-generation
//!    configuration by the F-model planner ([`bandwidth`] covers the
//!    tool-link scalability argument).
//!
//! # Example
//!
//! ```
//! use audo_ed::{EdConfig, EmulationDevice};
//! use audo_platform::config::SocConfig;
//! use audo_profiler::metrics::Metric;
//! use audo_profiler::session::{profile, SessionOptions};
//! use audo_profiler::spec::ProfileSpec;
//! use audo_tricore::asm::assemble;
//!
//! let image = assemble("
//!     .org 0x80000000
//! _start:
//!     movi d0, 0
//!     li d1, 1000
//! head:
//!     addi d0, d0, 1
//!     jne d0, d1, head
//!     halt
//! ")?;
//! let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
//! ed.soc.load_image(&image)?;
//!
//! let spec = ProfileSpec::new()
//!     .metric(Metric::Ipc, 500)
//!     .metric(Metric::IcacheHitRatio, 500);
//! let outcome = profile(&mut ed, &spec, &SessionOptions::default())?;
//! assert!(outcome.timeline.average(Metric::Ipc) > 0.0);
//! # Ok::<(), audo_common::SimError>(())
//! ```

pub mod analysis;
pub mod bandwidth;
pub mod generation;
pub mod metrics;
pub mod options;
pub mod par;
pub mod reconstruct;
pub mod session;
pub mod spec;
pub mod timeline;

pub use analysis::{
    compare_timelines, find_hot_spots, render_comparison, render_report, Cause, HotSpot,
    MetricDelta,
};
pub use generation::{plan_next_generation, GenerationPlan, GenerationPlanOptions};
pub use metrics::Metric;
pub use options::{
    cross_workload_ranking, evaluate_options, render_cross_ranking, ArchOption, CostModel,
    CrossEvaluation, MeasuredProfile, OptionStudy,
};
pub use reconstruct::{flat_profile, reconstruct_flow, FlowReconstruction};
pub use session::{profile, DrainPolicy, SessionOptions, SessionOutcome};
pub use spec::{MetricRequest, ProbeMap, ProfileSpec};
pub use timeline::{Sample, Timeline};
