//! The F-model generation step as one reusable workflow (Fig. 1 of the
//! paper): measure the current generation on representative workloads,
//! rank candidate architecture options by gain/cost with the §4 regression
//! veto, pick the affordable winners, and produce the next-generation
//! configuration — software untouched.

use audo_common::SimError;
use audo_platform::config::SocConfig;

use crate::options::{
    cross_workload_ranking, evaluate_options, render_cross_ranking, ArchOption, CostModel,
    CrossEvaluation, OptionStudy,
};

/// Tuning knobs of a generation study.
#[derive(Debug, Clone)]
pub struct GenerationPlanOptions {
    /// Area/effort budget for the sum of selected options (kGE).
    pub budget: f64,
    /// Maximum number of options to adopt.
    pub max_options: usize,
    /// Per-workload regression tolerance for the §4 veto.
    pub regression_tolerance: f64,
    /// Minimum geometric-mean gain for an option to be worth adopting.
    pub min_gain: f64,
}

impl Default for GenerationPlanOptions {
    fn default() -> GenerationPlanOptions {
        GenerationPlanOptions {
            budget: 100.0,
            max_options: 3,
            regression_tolerance: 0.002,
            min_gain: 0.002,
        }
    }
}

/// The outcome of one generation step.
#[derive(Debug, Clone)]
pub struct GenerationPlan {
    /// The next-generation configuration (baseline + adopted options).
    pub next_config: SocConfig,
    /// Options adopted, in adoption order.
    pub adopted: Vec<ArchOption>,
    /// Total cost of the adopted options.
    pub total_cost: f64,
    /// The full cross-workload ranking the decision was based on.
    pub ranking: Vec<CrossEvaluation>,
    /// Per-workload studies (label, study).
    pub studies: Vec<(String, OptionStudy)>,
    /// Measured speedup of the adopted combination, per workload.
    pub combined_speedups: Vec<(String, f64)>,
}

impl GenerationPlan {
    /// Renders the decision as a report.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "cross-workload ranking:");
        for l in render_cross_ranking(&self.ranking).lines() {
            let _ = writeln!(out, "  {l}");
        }
        let _ = writeln!(
            out,
            "adopted ({} kGE total): {}",
            self.total_cost,
            if self.adopted.is_empty() {
                "nothing met the bar".to_string()
            } else {
                self.adopted
                    .iter()
                    .map(ArchOption::label)
                    .collect::<Vec<_>>()
                    .join(" + ")
            }
        );
        let _ = writeln!(out, "next-generation speedups (same software):");
        for (name, s) in &self.combined_speedups {
            let _ = writeln!(out, "  {name:<26} {s:.3}x");
        }
        out
    }
}

/// Runs the complete generation step: evaluate `options` on every workload
/// with `runner`, rank, adopt the safe winners within budget, and validate
/// the combined next-generation configuration on all workloads.
///
/// `runner(config, workload_index)` executes workload `i` on `config` and
/// returns the cycle count. The (option × workload) replay grid is run in
/// parallel — workloads fan out here and each study fans its option
/// replays out in [`evaluate_options`] — with results collected in input
/// order, so the plan is identical to a sequential run.
///
/// # Errors
///
/// Propagates runner failures.
pub fn plan_next_generation<F>(
    baseline: &SocConfig,
    workload_names: &[String],
    options: &[ArchOption],
    cost_model: &CostModel,
    plan: &GenerationPlanOptions,
    runner: F,
) -> Result<GenerationPlan, SimError>
where
    F: Fn(&SocConfig, usize) -> Result<u64, SimError> + Sync,
{
    // Per-workload option studies.
    let studies = crate::par::par_map_indexed(workload_names.len(), |i| {
        evaluate_options(baseline, options, cost_model, None, |cfg| runner(cfg, i))
            .map(|study| (workload_names[i].clone(), study))
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    let ranking = cross_workload_ranking(&studies, plan.regression_tolerance);

    // Greedy adoption: safe options by gain/cost, within budget and count.
    let mut next_config = baseline.clone();
    let mut adopted = Vec::new();
    let mut total_cost = 0.0;
    for row in &ranking {
        if !row.safe || row.geomean_speedup - 1.0 < plan.min_gain {
            continue;
        }
        if adopted.len() >= plan.max_options || total_cost + row.cost > plan.budget {
            continue;
        }
        row.option.apply(&mut next_config);
        adopted.push(row.option);
        total_cost += row.cost;
    }

    // Validate the combination (options can interact); one replay per
    // workload, again fanned out and collected in order.
    let combined_speedups = crate::par::par_map_indexed(workload_names.len(), |i| {
        let before = studies[i].1.baseline_cycles;
        runner(&next_config, i).map(|after| {
            (
                workload_names[i].clone(),
                before as f64 / after.max(1) as f64,
            )
        })
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    Ok(GenerationPlan {
        next_config,
        adopted,
        total_cost,
        ranking,
        studies,
        combined_speedups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use audo_common::ByteSize;
    use audo_platform::config::PortArbitration;

    /// Synthetic runner: wait states help w0 a lot and w1 a little,
    /// bigger D-cache helps w0 only, RoundRobin hurts w1.
    fn fake_runner(cfg: &SocConfig, workload: usize) -> Result<u64, SimError> {
        let mut cycles = 100_000f64;
        if cfg.flash.wait_states < 5 {
            cycles *= if workload == 0 { 0.85 } else { 0.97 };
        }
        if cfg.dcache.size > ByteSize::kib(4) {
            cycles *= if workload == 0 { 0.92 } else { 1.0 };
        }
        if cfg.flash.arbitration == PortArbitration::RoundRobin {
            cycles *= if workload == 1 { 1.04 } else { 0.99 };
        }
        Ok(cycles as u64)
    }

    #[test]
    fn plans_adopt_safe_options_within_budget() {
        let baseline = SocConfig::default();
        let options = [
            ArchOption::FlashWaitStates(3),
            ArchOption::DcacheSize(ByteSize::kib(8)),
            ArchOption::FlashArbitration(PortArbitration::RoundRobin),
        ];
        let names = vec!["engine".to_string(), "chassis".to_string()];
        let plan = plan_next_generation(
            &baseline,
            &names,
            &options,
            &CostModel::default(),
            &GenerationPlanOptions {
                budget: 120.0,
                ..GenerationPlanOptions::default()
            },
            fake_runner,
        )
        .unwrap();
        // RoundRobin regresses `chassis` -> vetoed despite its low cost.
        assert!(!plan
            .adopted
            .iter()
            .any(|o| matches!(o, ArchOption::FlashArbitration(_))));
        assert!(plan.adopted.contains(&ArchOption::FlashWaitStates(3)));
        assert!(plan
            .adopted
            .contains(&ArchOption::DcacheSize(ByteSize::kib(8))));
        assert!(plan.total_cost <= 120.0);
        // Both adopted: combined speedup on engine = 1/(0.85*0.92).
        let engine = plan
            .combined_speedups
            .iter()
            .find(|(n, _)| n == "engine")
            .unwrap();
        assert!((engine.1 - 1.0 / (0.85 * 0.92)).abs() < 1e-6);
        let chassis = plan
            .combined_speedups
            .iter()
            .find(|(n, _)| n == "chassis")
            .unwrap();
        assert!(chassis.1 >= 1.0, "no regression on any workload");
        let r = plan.render();
        assert!(r.contains("adopted"));
        assert!(r.contains("flash ws=3"));
    }

    #[test]
    fn budget_limits_adoption() {
        let baseline = SocConfig::default();
        let options = [
            ArchOption::FlashWaitStates(3),           // 70 kGE
            ArchOption::DcacheSize(ByteSize::kib(8)), // 36 kGE
        ];
        let names = vec!["engine".to_string()];
        let tight = GenerationPlanOptions {
            budget: 40.0,
            ..GenerationPlanOptions::default()
        };
        let plan = plan_next_generation(
            &baseline,
            &names,
            &options,
            &CostModel::default(),
            &tight,
            fake_runner,
        )
        .unwrap();
        assert_eq!(
            plan.adopted.len(),
            1,
            "only one option fits 40 kGE: {:?}",
            plan.adopted
        );
        assert!(plan.total_cost <= 40.0);
    }

    #[test]
    fn nothing_adopted_when_nothing_helps() {
        let baseline = SocConfig::default();
        let options = [ArchOption::FlashReadBuffers(4)];
        let names = vec!["w".to_string()];
        let plan = plan_next_generation(
            &baseline,
            &names,
            &options,
            &CostModel::default(),
            &GenerationPlanOptions::default(),
            |_, _| Ok(100_000),
        )
        .unwrap();
        assert!(plan.adopted.is_empty());
        assert!(plan.render().contains("nothing met the bar"));
    }
}
