//! Profile specifications: what to measure, at which resolution, with which
//! cascade — compiled onto finite MCDS resources.
//!
//! This is the "configurable resolution and number of measured parameters"
//! knob of §5: "first the system situation where analysis has to be done
//! (e.g. poor IPC rate …) and then go on with a more detailed measurement
//! (more parameters, higher resolution)".

use audo_common::SourceId;
use audo_common::{Addr, SimError};
use audo_mcds::mcds::DataQualifier;
use audo_mcds::trigger::{Action, Comparator, Cond, TraceUnit, Transition};
use audo_mcds::{Mcds, McdsBuilder, McdsResources};

use crate::metrics::Metric;

/// The probe-group id of the first cascade (further cascades use
/// consecutive ids).
pub const CASCADE_GROUP: u8 = 1;

/// One requested measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricRequest {
    /// The metric.
    pub metric: Metric,
    /// Basis window (cycles for IPC-class, instructions for rate-class).
    pub window: u32,
}

/// Cascaded second-stage measurement, armed while a watched coarse metric
/// is below a threshold.
#[derive(Debug, Clone)]
pub struct Cascade {
    /// Fine-grained requests (usually higher resolution / more metrics).
    pub fine: Vec<MetricRequest>,
    /// Which coarse metric arms the cascade.
    pub watch: Metric,
    /// Arm while the watched metric's last window is strictly below this.
    pub below: f64,
}

/// Mapping from metrics back to the probe indices that implement them.
#[derive(Debug, Clone, Default)]
pub struct ProbeMap {
    entries: Vec<(Metric, Vec<u8>, bool)>,
}

impl ProbeMap {
    /// Iterates `(metric, probe indices, is_cascaded)`.
    pub fn iter(&self) -> impl Iterator<Item = (Metric, &[u8], bool)> + '_ {
        self.entries.iter().map(|(m, p, c)| (*m, p.as_slice(), *c))
    }

    /// Probe indices of a metric (first match).
    #[must_use]
    pub fn probes_of(&self, metric: Metric) -> Option<&[u8]> {
        self.entries
            .iter()
            .find(|(m, _, _)| *m == metric)
            .map(|(_, p, _)| p.as_slice())
    }

    /// Number of mapped metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is mapped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A complete profiling specification.
#[derive(Debug, Clone, Default)]
pub struct ProfileSpec {
    metrics: Vec<MetricRequest>,
    cascades: Vec<Cascade>,
    program_trace: bool,
    gated_trace: Option<(Addr, Addr, Addr, Addr)>,
    sync_every: Option<u32>,
    timestamp_shift: u8,
    data_trace: Option<DataQualifier>,
    bus_trace: Option<Option<SourceId>>,
    pcp_trace: bool,
    resources: Option<McdsResources>,
}

impl ProfileSpec {
    /// Starts an empty specification.
    #[must_use]
    pub fn new() -> ProfileSpec {
        ProfileSpec::default()
    }

    /// Adds a metric at the given basis window.
    #[must_use]
    pub fn metric(mut self, metric: Metric, window: u32) -> ProfileSpec {
        self.metrics.push(MetricRequest { metric, window });
        self
    }

    /// Adds several metrics at one window.
    #[must_use]
    pub fn metrics(mut self, metrics: &[Metric], window: u32) -> ProfileSpec {
        for &metric in metrics {
            self.metrics.push(MetricRequest { metric, window });
        }
        self
    }

    /// Installs a cascade: `fine` requests armed while `watch < below`.
    ///
    /// `watch` must also be requested as a coarse metric. Several cascades
    /// may be installed (each watches its own metric); they arm and disarm
    /// independently.
    #[must_use]
    pub fn cascade(mut self, watch: Metric, below: f64, fine: Vec<MetricRequest>) -> ProfileSpec {
        self.cascades.push(Cascade { fine, watch, below });
        self
    }

    /// Enables program-flow trace.
    #[must_use]
    pub fn with_program_trace(mut self) -> ProfileSpec {
        self.program_trace = true;
        self
    }

    /// Enables *trigger-gated* program-flow trace: recording starts when a
    /// change-of-flow lands in `[on_lo, on_hi]` and stops when one lands in
    /// `[off_lo, off_hi]` — "trigger close to the point of interest" (§3).
    ///
    /// Composes with cascades: rate-probe arming is level-sensitive and
    /// does not use the trigger state machine.
    #[must_use]
    pub fn with_gated_program_trace(
        mut self,
        on_lo: Addr,
        on_hi: Addr,
        off_lo: Addr,
        off_hi: Addr,
    ) -> ProfileSpec {
        self.gated_trace = Some((on_lo, on_hi, off_lo, off_hi));
        self
    }

    /// Sets the program-trace sync interval.
    #[must_use]
    pub fn with_sync_every(mut self, n: u32) -> ProfileSpec {
        self.sync_every = Some(n);
        self
    }

    /// Scalable time-stamping (§3): record timestamps in `2^shift`-cycle
    /// units, trading intra-quantum time resolution for trace bandwidth.
    #[must_use]
    pub fn with_timestamp_shift(mut self, shift: u8) -> ProfileSpec {
        self.timestamp_shift = shift.min(20);
        self
    }

    /// The configured timestamp shift (needed to decode the stream).
    #[must_use]
    pub fn timestamp_shift(&self) -> u8 {
        self.timestamp_shift
    }

    /// Enables qualified data trace.
    #[must_use]
    pub fn with_data_trace(mut self, q: DataQualifier) -> ProfileSpec {
        self.data_trace = Some(q);
        self
    }

    /// Enables bus trace (optionally filtered to one master).
    #[must_use]
    pub fn with_bus_trace(mut self, master: Option<SourceId>) -> ProfileSpec {
        self.bus_trace = Some(master);
        self
    }

    /// Enables PCP channel trace.
    #[must_use]
    pub fn with_pcp_trace(mut self) -> ProfileSpec {
        self.pcp_trace = true;
        self
    }

    /// Overrides the assumed MCDS silicon resources.
    #[must_use]
    pub fn with_resources(mut self, r: McdsResources) -> ProfileSpec {
        self.resources = Some(r);
        self
    }

    /// The requested coarse metrics.
    #[must_use]
    pub fn requests(&self) -> &[MetricRequest] {
        &self.metrics
    }

    /// Compiles the specification into a programmed MCDS and the probe map.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ResourceExhausted`] if the request needs more
    /// probes/transitions than the silicon provides, or
    /// [`SimError::InvalidConfig`] for inconsistent cascades.
    pub fn compile(&self) -> Result<(Mcds, ProbeMap), SimError> {
        let mut builder: McdsBuilder = Mcds::builder();
        if let Some(r) = self.resources {
            builder = builder.resources(r);
        }
        let mut map = ProbeMap::default();
        let mut next_probe: u8 = 0;

        let mut coarse_probe_of: Vec<Option<u8>> = vec![None; self.cascades.len()];
        for req in &self.metrics {
            let probes = req.metric.probes(req.window, None);
            let mut ids = Vec::new();
            for p in probes {
                builder = builder.probe(p);
                ids.push(next_probe);
                next_probe += 1;
            }
            for (ci, c) in self.cascades.iter().enumerate() {
                if c.watch == req.metric {
                    coarse_probe_of[ci] = Some(ids[0]);
                }
            }
            map.entries.push((req.metric, ids, false));
        }

        for (ci, cascade) in self.cascades.iter().enumerate() {
            let Some(watch_idx) = coarse_probe_of[ci] else {
                return Err(SimError::InvalidConfig {
                    message: format!(
                        "cascade watches {:?} which is not a requested coarse metric",
                        cascade.watch
                    ),
                });
            };
            let group = CASCADE_GROUP + ci as u8;
            for req in &cascade.fine {
                let probes = req.metric.probes(req.window, Some(group));
                let mut ids = Vec::new();
                for p in probes {
                    builder = builder.probe(p);
                    ids.push(next_probe);
                    next_probe += 1;
                }
                map.entries.push((req.metric, ids, true));
            }
            // Threshold as a rational with millesimal precision. The scale
            // of the watched metric must be undone: probes report raw
            // num/den.
            let thresh = cascade.below / cascade.watch.scale();
            let num = (thresh * 1000.0).round().max(0.0) as u64;
            builder = builder.arm_group_when(
                Cond::RateBelow {
                    probe: watch_idx,
                    num,
                    den: 1000,
                },
                group,
            );
        }

        if self.program_trace {
            builder = builder.program_trace();
        }
        if let Some((on_lo, on_hi, off_lo, off_hi)) = self.gated_trace {
            builder = builder
                .comparator(Comparator::FlowTarget {
                    lo: on_lo,
                    hi: on_hi,
                    source: Some(SourceId::TRICORE),
                })
                .comparator(Comparator::FlowTarget {
                    lo: off_lo,
                    hi: off_hi,
                    source: Some(SourceId::TRICORE),
                })
                .transition(Transition {
                    from: 0,
                    cond: Cond::Comp(0),
                    to: 1,
                    actions: vec![Action::TraceOn(TraceUnit::ProgramTricore)],
                })
                .transition(Transition {
                    from: 1,
                    cond: Cond::Comp(1),
                    to: 0,
                    actions: vec![Action::TraceOff(TraceUnit::ProgramTricore)],
                });
        }
        if let Some(n) = self.sync_every {
            builder = builder.sync_every(n);
        }
        if self.timestamp_shift > 0 {
            builder = builder.timestamp_shift(self.timestamp_shift);
        }
        if let Some(q) = self.data_trace {
            builder = builder.data_trace(q);
        }
        if let Some(master) = self.bus_trace {
            builder = builder.bus_trace(master);
        }
        if self.pcp_trace {
            builder = builder.pcp_trace();
        }
        Ok((builder.build()?, map))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ALL_BASIC_METRICS;

    #[test]
    fn compile_counts_probes_correctly() {
        let spec = ProfileSpec::new()
            .metric(Metric::Ipc, 1000)
            .metric(Metric::IcacheHitRatio, 500);
        let (_, map) = spec.compile().unwrap();
        assert_eq!(map.probes_of(Metric::Ipc), Some(&[0u8][..]));
        assert_eq!(map.probes_of(Metric::IcacheHitRatio), Some(&[1u8, 2][..]));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn everything_spec_exceeds_default_silicon() {
        // All basic metrics need more than 8 probes (ratios cost two) —
        // the allocator must refuse, mirroring the real resource trade-off.
        let spec = ProfileSpec::new().metrics(ALL_BASIC_METRICS, 1000);
        let err = spec.compile().unwrap_err();
        assert!(matches!(
            err,
            SimError::ResourceExhausted {
                resource: "rate probes",
                ..
            }
        ));
        // With bigger silicon it compiles.
        let big = ProfileSpec::new()
            .metrics(ALL_BASIC_METRICS, 1000)
            .with_resources(McdsResources {
                rate_probes: 32,
                counters: 8,
                comparators: 8,
                transitions: 16,
            });
        assert!(big.compile().is_ok());
    }

    #[test]
    fn cascade_requires_watched_metric() {
        let spec = ProfileSpec::new()
            .metric(Metric::IcacheHitRatio, 100)
            .cascade(
                Metric::Ipc,
                0.8,
                vec![MetricRequest {
                    metric: Metric::DcacheMissPerInstr,
                    window: 50,
                }],
            );
        let err = spec.compile().unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }

    #[test]
    fn cascade_compiles_with_group_and_transitions() {
        let spec = ProfileSpec::new().metric(Metric::Ipc, 1000).cascade(
            Metric::Ipc,
            0.8,
            vec![MetricRequest {
                metric: Metric::IcacheMissPerInstr,
                window: 100,
            }],
        );
        let (mcds, map) = spec.compile().unwrap();
        assert_eq!(map.len(), 2);
        let cascaded: Vec<bool> = map.iter().map(|(_, _, c)| c).collect();
        assert_eq!(cascaded, vec![false, true]);
        assert_eq!(mcds.trigger_state(), 0);
    }
}
