//! Timelines: decoded rate samples arranged per metric over the time axis.
//!
//! "Dynamically, because it is essential to see all parameters values over
//! the time line to identify the interesting spaces of time where the
//! system performance is not optimal" (§5). A [`Timeline`] is that view:
//! every metric's samples in parallel, on one clock.

use std::collections::BTreeMap;

use audo_common::Cycle;
use audo_mcds::TraceMessage;

use crate::metrics::{Combine, Metric};
use crate::spec::ProbeMap;

/// One sampled window of a metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Cycle at which the window completed.
    pub cycle: Cycle,
    /// Combined metric value.
    pub value: f64,
    /// Raw numerator (for ratios: the favourable count).
    pub num: u64,
    /// Raw denominator (for ratios: the unfavourable count).
    pub den: u64,
}

/// All sampled series of one profiling session.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    series: BTreeMap<String, (Metric, Vec<Sample>)>,
}

impl Timeline {
    /// Builds the timeline from decoded trace messages and the probe map.
    #[must_use]
    pub fn from_messages(messages: &[(Cycle, TraceMessage)], map: &ProbeMap) -> Timeline {
        // Gather each probe's windows in arrival order.
        let mut per_probe: BTreeMap<u8, Vec<(Cycle, u64, u64)>> = BTreeMap::new();
        for (cycle, msg) in messages {
            if let TraceMessage::Counter { probe, num, den } = msg {
                per_probe
                    .entry(*probe)
                    .or_default()
                    .push((*cycle, *num, *den));
            }
        }
        let empty: Vec<(Cycle, u64, u64)> = Vec::new();
        let mut series = BTreeMap::new();
        for (metric, probes, _casc) in map.iter() {
            let samples: Vec<Sample> = match metric.combine() {
                Combine::Rate => {
                    let w = per_probe.get(&probes[0]).unwrap_or(&empty);
                    w.iter()
                        .map(|&(cycle, num, den)| Sample {
                            cycle,
                            value: metric.value(num, den),
                            num,
                            den,
                        })
                        .collect()
                }
                Combine::RatioOfTwo => {
                    let a = per_probe.get(&probes[0]).unwrap_or(&empty);
                    let b = per_probe.get(&probes[1]).unwrap_or(&empty);
                    a.iter()
                        .zip(b.iter())
                        .map(|(&(ca, na, _), &(cb, nb, _))| Sample {
                            cycle: ca.max(cb),
                            value: metric.value(na, nb),
                            num: na,
                            den: nb,
                        })
                        .collect()
                }
            };
            series.insert(metric.name(), (metric, samples));
        }
        Timeline { series }
    }

    /// The metrics present.
    #[must_use]
    pub fn metrics(&self) -> Vec<Metric> {
        self.series.values().map(|(m, _)| *m).collect()
    }

    /// The sample series of a metric (empty if absent).
    #[must_use]
    pub fn series(&self, metric: Metric) -> &[Sample] {
        self.series
            .get(&metric.name())
            .map_or(&[], |(_, s)| s.as_slice())
    }

    /// Total `(num, den)` sums over all windows of a metric.
    #[must_use]
    pub fn totals(&self, metric: Metric) -> (u64, u64) {
        self.series(metric)
            .iter()
            .fold((0, 0), |(n, d), s| (n + s.num, d + s.den))
    }

    /// Window-weighted average value of a metric.
    #[must_use]
    pub fn average(&self, metric: Metric) -> f64 {
        let (n, d) = self.totals(metric);
        metric.value(n, d)
    }

    /// The sample with the lowest value.
    #[must_use]
    pub fn min_sample(&self, metric: Metric) -> Option<Sample> {
        self.series(metric)
            .iter()
            .copied()
            .min_by(|a, b| a.value.partial_cmp(&b.value).expect("finite values"))
    }

    /// The sample with the highest value.
    #[must_use]
    pub fn max_sample(&self, metric: Metric) -> Option<Sample> {
        self.series(metric)
            .iter()
            .copied()
            .max_by(|a, b| a.value.partial_cmp(&b.value).expect("finite values"))
    }

    /// Samples of `metric` inside `[from, to]`.
    #[must_use]
    pub fn window(&self, metric: Metric, from: Cycle, to: Cycle) -> Vec<Sample> {
        self.series(metric)
            .iter()
            .filter(|s| s.cycle >= from && s.cycle <= to)
            .copied()
            .collect()
    }

    /// Renders a metric as a fixed-width ASCII sparkline (for terminal
    /// reports), scaled between the series min and max.
    #[must_use]
    pub fn sparkline(&self, metric: Metric, width: usize) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let s = self.series(metric);
        if s.is_empty() || width == 0 {
            return String::new();
        }
        let lo = s.iter().map(|x| x.value).fold(f64::INFINITY, f64::min);
        let hi = s.iter().map(|x| x.value).fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-12);
        let mut out = String::with_capacity(width * 3);
        for i in 0..width {
            // Average the samples belonging to this column.
            let a = i * s.len() / width;
            let b = (((i + 1) * s.len()) / width).max(a + 1).min(s.len());
            let avg = s[a..b].iter().map(|x| x.value).sum::<f64>() / (b - a) as f64;
            let level = (((avg - lo) / span) * 7.0).round() as usize;
            out.push(GLYPHS[level.min(7)]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProfileSpec;

    fn demo_timeline() -> Timeline {
        let spec = ProfileSpec::new()
            .metric(Metric::Ipc, 10)
            .metric(Metric::IcacheHitRatio, 100);
        let (_, map) = spec.compile().unwrap();
        // Probe 0 = IPC, probes 1/2 = icache hits/misses.
        let msgs = vec![
            (
                Cycle(10),
                TraceMessage::Counter {
                    probe: 0,
                    num: 20,
                    den: 10,
                },
            ),
            (
                Cycle(20),
                TraceMessage::Counter {
                    probe: 0,
                    num: 10,
                    den: 10,
                },
            ),
            (
                Cycle(30),
                TraceMessage::Counter {
                    probe: 0,
                    num: 5,
                    den: 10,
                },
            ),
            (
                Cycle(25),
                TraceMessage::Counter {
                    probe: 1,
                    num: 96,
                    den: 100,
                },
            ),
            (
                Cycle(25),
                TraceMessage::Counter {
                    probe: 2,
                    num: 4,
                    den: 100,
                },
            ),
        ];
        Timeline::from_messages(&msgs, &map)
    }

    #[test]
    fn rate_series_values() {
        let t = demo_timeline();
        let s = t.series(Metric::Ipc);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].value, 2.0);
        assert_eq!(s[2].value, 0.5);
        assert_eq!(t.average(Metric::Ipc), 35.0 / 30.0);
        assert_eq!(t.min_sample(Metric::Ipc).unwrap().cycle, Cycle(30));
        assert_eq!(t.max_sample(Metric::Ipc).unwrap().value, 2.0);
    }

    #[test]
    fn ratio_series_pairs_probes() {
        let t = demo_timeline();
        let s = t.series(Metric::IcacheHitRatio);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].value, 0.96);
        assert_eq!(s[0].cycle, Cycle(25));
    }

    #[test]
    fn window_filters_by_cycle() {
        let t = demo_timeline();
        let w = t.window(Metric::Ipc, Cycle(15), Cycle(25));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].value, 1.0);
    }

    #[test]
    fn sparkline_has_requested_width() {
        let t = demo_timeline();
        let sl = t.sparkline(Metric::Ipc, 8);
        assert_eq!(sl.chars().count(), 8);
        assert!(
            t.sparkline(Metric::DcacheHitRatio, 8).is_empty(),
            "absent metric"
        );
    }

    #[test]
    fn absent_metric_is_empty() {
        let t = demo_timeline();
        assert!(t.series(Metric::DmaBeatsPerKilocycle).is_empty());
        assert_eq!(t.totals(Metric::DmaBeatsPerKilocycle), (0, 0));
    }
}

impl Timeline {
    /// Exports all series as CSV (`metric,cycle,value,num,den`), suitable
    /// for external plotting tools.
    #[must_use]
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("metric,cycle,value,num,den\n");
        for (name, (_, samples)) in &self.series {
            for s in samples {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{}",
                    name, s.cycle.0, s.value, s.num, s.den
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;
    use crate::metrics::Metric;
    use crate::spec::ProfileSpec;
    use audo_mcds::TraceMessage;

    #[test]
    fn csv_contains_every_sample() {
        let spec = ProfileSpec::new().metric(Metric::Ipc, 10);
        let (_, map) = spec.compile().unwrap();
        let msgs = vec![
            (
                Cycle(10),
                TraceMessage::Counter {
                    probe: 0,
                    num: 20,
                    den: 10,
                },
            ),
            (
                Cycle(20),
                TraceMessage::Counter {
                    probe: 0,
                    num: 5,
                    den: 10,
                },
            ),
        ];
        let t = Timeline::from_messages(&msgs, &map);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "metric,cycle,value,num,den");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("IPC (TriCore),10,2,20,10"));
        assert!(lines[2].contains("IPC (TriCore),20,0.5,5,10"));
    }
}
