//! `audo-prof` — command-line profiler for TC-R assembly programs.
//!
//! The tool a downstream user drives: assemble a program, run it on the
//! simulated Emulation Device, and print rate timelines, hot spots and the
//! function-level profile.
//!
//! ```text
//! audo-prof <program.asm> [--window N] [--max-cycles N] [--trace]
//!           [--metrics ipc,icache,dcache,flashdata,irq,stall,bus]
//!           [--ipc-below X] [--csv out.csv]
//! ```
//!
//! Example:
//!
//! ```text
//! cargo run -p audo-profiler --bin audo-prof -- prog.asm --trace --metrics ipc,dcache
//! ```

use std::process::ExitCode;

use audo_ed::{EdConfig, EmulationDevice};
use audo_platform::config::SocConfig;
use audo_profiler::metrics::Metric;
use audo_profiler::reconstruct::{flat_profile, reconstruct_flow};
use audo_profiler::render_report;
use audo_profiler::session::{profile, SessionOptions};
use audo_profiler::spec::ProfileSpec;
use audo_tricore::asm::assemble;

struct Args {
    program: String,
    window: u32,
    max_cycles: u64,
    trace: bool,
    metrics: Vec<Metric>,
    ipc_below: f64,
    csv: Option<String>,
}

const USAGE: &str = "usage: audo-prof <program.asm> [--window N] [--max-cycles N] [--trace]
          [--metrics ipc,pcp,icache,dcache,flashdata,flashcode,irq,stall,bus,dma]
          [--ipc-below X] [--csv FILE]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        program: String::new(),
        window: 1000,
        max_cycles: 10_000_000,
        trace: false,
        metrics: vec![Metric::Ipc, Metric::IcacheHitRatio, Metric::DcacheHitRatio],
        ipc_below: 0.5,
        csv: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--window" => {
                args.window = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--window needs a number")?;
            }
            "--max-cycles" => {
                args.max_cycles = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--max-cycles needs a number")?;
            }
            "--trace" => args.trace = true,
            "--metrics" => {
                let list = it.next().ok_or("--metrics needs a list")?;
                args.metrics = list
                    .split(',')
                    .map(|m| m.trim().parse::<Metric>())
                    .collect::<Result<_, _>>()?;
            }
            "--ipc-below" => {
                args.ipc_below = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--ipc-below needs a number")?;
            }
            "--csv" => args.csv = Some(it.next().ok_or("--csv needs a file name")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if args.program.is_empty() && !other.starts_with('-') => {
                args.program = other.to_string();
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if args.program.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    let src = std::fs::read_to_string(&args.program)
        .map_err(|e| format!("cannot read {}: {e}", args.program))?;
    let image = assemble(&src).map_err(|e| format!("assembly failed: {e}"))?;
    println!(
        "assembled {}: {} bytes, entry {}",
        args.program,
        image.size(),
        image.entry()
    );

    let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    ed.soc.load_image(&image).map_err(|e| e.to_string())?;

    let mut spec = ProfileSpec::new();
    for &m in &args.metrics {
        spec = spec.metric(m, args.window);
    }
    if args.trace {
        spec = spec.with_program_trace().with_sync_every(16);
    }
    let out = profile(
        &mut ed,
        &spec,
        &SessionOptions {
            max_cycles: args.max_cycles,
            ..SessionOptions::default()
        },
    )
    .map_err(|e| e.to_string())?;

    println!(
        "{} cycles ({}), {} trace bytes ({:.2} B/kcycle), IPC {:.3} overall\n",
        out.cycles,
        if out.halted { "halted" } else { "cycle limit" },
        out.produced_bytes,
        out.bytes_per_kilocycle(),
        ed.soc.tricore.retired_total() as f64 / out.cycles.max(1) as f64,
    );
    print!("{}", render_report(&out.timeline, args.ipc_below));

    if args.trace {
        let rec = reconstruct_flow(&image, &out.messages).map_err(|e| e.to_string())?;
        println!(
            "\nfunction profile ({} instructions reconstructed):",
            rec.instr_count
        );
        println!("{:<24} {:>12} {:>8}", "symbol", "instrs", "share");
        for (name, instrs, share) in flat_profile(&rec).into_iter().take(12) {
            println!("{name:<24} {instrs:>12} {share:>7.2}%");
        }
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, out.timeline.to_csv())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("\ntimeline written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
