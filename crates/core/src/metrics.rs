//! User-facing performance metrics and their mapping onto MCDS rate probes.
//!
//! §5 of the paper lists the "essential parameters for CPU system
//! performance of an engine control system": data/instruction cache
//! hit/miss rates, CPU data/instruction access rates to
//! flash/SRAM/scratchpad SRAMs, hit rates on flash read/pre-fetch buffers,
//! CPU IPC rate, interrupt rate. [`Metric`] is that catalogue; each metric
//! compiles into one or two [`RateProbe`]s plus a host-side combiner.

use audo_common::events::{FlashPort, MemRegion, StallReason};
use audo_common::{AccessKind, SourceId};
use audo_mcds::select::{EventClass, EventSelector};
use audo_mcds::{Basis, RateProbe};

/// A measurable system-performance metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Metric {
    /// TriCore instructions per cycle.
    Ipc,
    /// PCP instructions per cycle.
    PcpIpc,
    /// I-cache hit ratio (hits / lookups).
    IcacheHitRatio,
    /// D-cache hit ratio (hits / lookups).
    DcacheHitRatio,
    /// I-cache misses per executed instruction.
    IcacheMissPerInstr,
    /// D-cache misses per executed instruction.
    DcacheMissPerInstr,
    /// Flash read/prefetch-buffer hit ratio (`None` = both ports).
    FlashBufferHitRatio(Option<FlashPort>),
    /// CPU data accesses to program flash per executed instruction.
    FlashDataAccessPerInstr,
    /// Code fetches reaching the flash per executed instruction.
    FlashCodeFetchPerInstr,
    /// CPU data accesses to a memory region per executed instruction.
    RegionAccessPerInstr(MemRegion),
    /// Data *writes* to a region per executed instruction.
    RegionWritePerInstr(MemRegion),
    /// Interrupts taken per 1000 cycles.
    InterruptsPerKilocycle,
    /// Service requests raised per 1000 cycles.
    IrqRaisedPerKilocycle,
    /// Stall fraction (stall cycles / cycles), optionally by reason.
    StallFraction(Option<StallReason>),
    /// Crossbar contention events per 1000 cycles.
    BusContentionPerKilocycle,
    /// DMA beats per 1000 cycles.
    DmaBeatsPerKilocycle,
}

/// All catalogue metrics (useful for "measure everything" sessions).
pub const ALL_BASIC_METRICS: &[Metric] = &[
    Metric::Ipc,
    Metric::IcacheHitRatio,
    Metric::DcacheHitRatio,
    Metric::FlashBufferHitRatio(None),
    Metric::FlashDataAccessPerInstr,
    Metric::FlashCodeFetchPerInstr,
    Metric::RegionAccessPerInstr(MemRegion::Sram),
    Metric::RegionAccessPerInstr(MemRegion::Dspr),
    Metric::InterruptsPerKilocycle,
    Metric::StallFraction(None),
    Metric::BusContentionPerKilocycle,
];

impl std::str::FromStr for Metric {
    type Err = String;

    /// Parses the CLI names used by `audo-prof` (`ipc`, `icache`, `dcache`,
    /// `flashdata`, `flashcode`, `irq`, `stall`, `bus`, `dma`, `pcp`).
    fn from_str(name: &str) -> Result<Metric, String> {
        Ok(match name {
            "ipc" => Metric::Ipc,
            "pcp" => Metric::PcpIpc,
            "icache" => Metric::IcacheHitRatio,
            "dcache" => Metric::DcacheHitRatio,
            "flashdata" => Metric::FlashDataAccessPerInstr,
            "flashcode" => Metric::FlashCodeFetchPerInstr,
            "irq" => Metric::InterruptsPerKilocycle,
            "stall" => Metric::StallFraction(None),
            "bus" => Metric::BusContentionPerKilocycle,
            "dma" => Metric::DmaBeatsPerKilocycle,
            other => return Err(format!("unknown metric `{other}`")),
        })
    }
}

/// How a metric's sampled windows combine into a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combine {
    /// `num / den` of a single probe (rates, IPC).
    Rate,
    /// `a / (a + b)` over two probes (hit ratios: hits and misses).
    RatioOfTwo,
}

impl Metric {
    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Metric::Ipc => "IPC (TriCore)".to_string(),
            Metric::PcpIpc => "IPC (PCP)".to_string(),
            Metric::IcacheHitRatio => "I-cache hit ratio".to_string(),
            Metric::DcacheHitRatio => "D-cache hit ratio".to_string(),
            Metric::IcacheMissPerInstr => "I-cache misses/instr".to_string(),
            Metric::DcacheMissPerInstr => "D-cache misses/instr".to_string(),
            Metric::FlashBufferHitRatio(None) => "flash buffer hit ratio".to_string(),
            Metric::FlashBufferHitRatio(Some(p)) => format!("flash buffer hit ratio ({p})"),
            Metric::FlashDataAccessPerInstr => "flash data accesses/instr".to_string(),
            Metric::FlashCodeFetchPerInstr => "flash code fetches/instr".to_string(),
            Metric::RegionAccessPerInstr(r) => format!("{r} accesses/instr"),
            Metric::RegionWritePerInstr(r) => format!("{r} writes/instr"),
            Metric::InterruptsPerKilocycle => "interrupts/1k cycles".to_string(),
            Metric::IrqRaisedPerKilocycle => "service requests/1k cycles".to_string(),
            Metric::StallFraction(None) => "stall fraction".to_string(),
            Metric::StallFraction(Some(r)) => format!("stall fraction ({r})"),
            Metric::BusContentionPerKilocycle => "bus contentions/1k cycles".to_string(),
            Metric::DmaBeatsPerKilocycle => "DMA beats/1k cycles".to_string(),
        }
    }

    /// How the probes of this metric combine.
    #[must_use]
    pub fn combine(&self) -> Combine {
        match self {
            Metric::IcacheHitRatio | Metric::DcacheHitRatio | Metric::FlashBufferHitRatio(_) => {
                Combine::RatioOfTwo
            }
            _ => Combine::Rate,
        }
    }

    /// Value scale applied after combining (e.g. ×1000 for per-kilocycle
    /// metrics, so displayed numbers are natural).
    #[must_use]
    pub fn scale(&self) -> f64 {
        match self {
            Metric::InterruptsPerKilocycle
            | Metric::IrqRaisedPerKilocycle
            | Metric::BusContentionPerKilocycle
            | Metric::DmaBeatsPerKilocycle => 1000.0,
            _ => 1.0,
        }
    }

    /// Whether this metric defaults to a cycle basis (IPC-class) or an
    /// instruction basis (event-rate class), per §5.
    #[must_use]
    pub fn default_basis_is_cycles(&self) -> bool {
        matches!(
            self,
            Metric::Ipc
                | Metric::PcpIpc
                | Metric::InterruptsPerKilocycle
                | Metric::IrqRaisedPerKilocycle
                | Metric::StallFraction(_)
                | Metric::BusContentionPerKilocycle
                | Metric::DmaBeatsPerKilocycle
        )
    }

    /// The numerator selectors (1 for rates, 2 for hit ratios:
    /// `[favourable, unfavourable]`).
    #[must_use]
    pub fn selectors(&self) -> Vec<EventSelector> {
        use EventClass as C;
        let one = |c: EventClass| vec![EventSelector::of(c)];
        match *self {
            Metric::Ipc => {
                vec![EventSelector::of(C::InstrRetired).from(SourceId::TRICORE)]
            }
            Metric::PcpIpc => vec![EventSelector::of(C::InstrRetired).from(SourceId::PCP)],
            Metric::IcacheHitRatio => {
                vec![
                    EventSelector::of(C::IcacheHit),
                    EventSelector::of(C::IcacheMiss),
                ]
            }
            Metric::DcacheHitRatio => {
                vec![
                    EventSelector::of(C::DcacheHit),
                    EventSelector::of(C::DcacheMiss),
                ]
            }
            Metric::IcacheMissPerInstr => one(C::IcacheMiss),
            Metric::DcacheMissPerInstr => one(C::DcacheMiss),
            Metric::FlashBufferHitRatio(port) => vec![
                EventSelector::of(C::FlashBufferHit(port)),
                EventSelector::of(C::FlashBufferMiss(port)),
            ],
            Metric::FlashDataAccessPerInstr => vec![EventSelector::of(C::DataAccess {
                region: MemRegion::PFlash,
                kind: None,
            })
            .from(SourceId::TRICORE)],
            Metric::FlashCodeFetchPerInstr => one(C::FlashCodeFetch),
            Metric::RegionAccessPerInstr(region) => {
                vec![EventSelector::of(C::DataAccess { region, kind: None }).from(SourceId::TRICORE)]
            }
            Metric::RegionWritePerInstr(region) => {
                vec![EventSelector::of(C::DataAccess {
                    region,
                    kind: Some(AccessKind::Write),
                })
                .from(SourceId::TRICORE)]
            }
            Metric::InterruptsPerKilocycle => one(C::IrqTaken),
            Metric::IrqRaisedPerKilocycle => one(C::IrqRaised),
            Metric::StallFraction(reason) => {
                vec![EventSelector::of(C::Stall(reason)).from(SourceId::TRICORE)]
            }
            Metric::BusContentionPerKilocycle => one(C::BusContention),
            Metric::DmaBeatsPerKilocycle => one(C::DmaBeat),
        }
    }

    /// Compiles this metric into rate probes at the given resolution.
    ///
    /// `window` is the basis window length; `group` assigns the probes to a
    /// cascade group.
    #[must_use]
    pub fn probes(&self, window: u32, group: Option<u8>) -> Vec<RateProbe> {
        let basis = if self.default_basis_is_cycles() {
            Basis::Cycles(window)
        } else {
            Basis::Instructions {
                source: SourceId::TRICORE,
                n: window,
            }
        };
        self.selectors()
            .into_iter()
            .map(|event| RateProbe {
                event,
                basis,
                group,
            })
            .collect()
    }

    /// Combines window sums into the metric value.
    ///
    /// For [`Combine::Rate`], pass the probe's `(num, den)`; for
    /// [`Combine::RatioOfTwo`], pass `(favourable, unfavourable)` counts.
    #[must_use]
    pub fn value(&self, a: u64, b: u64) -> f64 {
        match self.combine() {
            Combine::Rate => {
                if b == 0 {
                    0.0
                } else {
                    self.scale() * a as f64 / b as f64
                }
            }
            Combine::RatioOfTwo => {
                if a + b == 0 {
                    0.0
                } else {
                    self.scale() * a as f64 / (a + b) as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_counts_match_combiner() {
        for m in ALL_BASIC_METRICS {
            let probes = m.probes(1000, None);
            match m.combine() {
                Combine::Rate => assert_eq!(probes.len(), 1, "{m:?}"),
                Combine::RatioOfTwo => assert_eq!(probes.len(), 2, "{m:?}"),
            }
        }
    }

    #[test]
    fn ipc_uses_cycle_basis_cache_rates_use_instruction_basis() {
        let ipc = Metric::Ipc.probes(500, None);
        assert_eq!(ipc[0].basis, Basis::Cycles(500));
        let dc = Metric::DcacheMissPerInstr.probes(100, None);
        assert_eq!(
            dc[0].basis,
            Basis::Instructions {
                source: SourceId::TRICORE,
                n: 100
            }
        );
    }

    #[test]
    fn hit_ratio_math_matches_paper_example() {
        // "4 instruction cache misses during the last 100 executed
        // instructions respond to an instruction cache hit rate of 96%."
        let hits = 96;
        let misses = 4;
        assert_eq!(Metric::IcacheHitRatio.value(hits, misses), 0.96);
        // And the per-instruction miss rate view: 4 / 100 = 0.04.
        assert_eq!(Metric::IcacheMissPerInstr.value(4, 100), 0.04);
        // "6 CPU data reads from the flash within the last 100 executed
        // instructions are identical to an CPU data flash access rate of 6%."
        assert_eq!(Metric::FlashDataAccessPerInstr.value(6, 100), 0.06);
    }

    #[test]
    fn kilocycle_metrics_scale() {
        assert_eq!(Metric::InterruptsPerKilocycle.value(5, 10_000), 0.5);
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<String> = ALL_BASIC_METRICS.iter().map(Metric::name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn from_str_covers_the_cli_names() {
        for name in [
            "ipc",
            "pcp",
            "icache",
            "dcache",
            "flashdata",
            "flashcode",
            "irq",
            "stall",
            "bus",
            "dma",
        ] {
            assert!(name.parse::<Metric>().is_ok(), "{name}");
        }
        assert!("bogus".parse::<Metric>().is_err());
        assert_eq!("ipc".parse::<Metric>(), Ok(Metric::Ipc));
    }

    #[test]
    fn group_assignment_propagates() {
        let probes = Metric::IcacheHitRatio.probes(100, Some(3));
        assert!(probes.iter().all(|p| p.group == Some(3)));
    }
}
