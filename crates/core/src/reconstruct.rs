//! Host-side program-flow reconstruction from compressed trace messages.
//!
//! The MCDS only reports control-flow *discontinuities*; the host owns the
//! program image and re-derives the full retired-PC sequence by walking the
//! code: between two flow messages every conditional branch encountered was
//! not taken (otherwise a message would exist), and an `icnt` field says
//! exactly how many instructions to walk. This is what makes "accurate
//! tracing … for the developer's viewing" (§3) possible at less than a
//! byte per instruction.

use std::collections::BTreeMap;

use audo_common::events::FlowKind;
use audo_common::{Addr, Cycle, SimError, SourceId};
use audo_mcds::TraceMessage;
use audo_obs::FoldedStacks;
use audo_tricore::encode::decode;
use audo_tricore::isa::{AReg, Instr};
use audo_tricore::Image;

/// Frame name used when a PC falls outside every image symbol.
const UNKNOWN_FRAME: &str = "<unknown>";

/// The reconstructed execution of one core.
#[derive(Debug, Clone, Default)]
pub struct FlowReconstruction {
    /// The full retired-PC sequence (in retirement order) from the first
    /// synchronisation point onward.
    pub pcs: Vec<u32>,
    /// Instructions attributed per symbol (function-level flat profile).
    pub per_symbol: BTreeMap<String, u64>,
    /// Instructions attributed per reconstructed call stack — the exact
    /// (not sampled) flamegraph of the traced run, in folded-stack form.
    pub folded: FoldedStacks,
    /// Total instructions reconstructed.
    pub instr_count: u64,
    /// Flow messages consumed.
    pub flow_messages: u64,
}

/// Call-stack tracking state for the flamegraph attribution during the
/// flow walk.
///
/// The walker sees every retired instruction, so the stack can be rebuilt
/// from call/return instructions alone: calls push the caller's frame,
/// returns pop it, and an asynchronous exception pushes the interrupted
/// frame (the handler's symbol becomes the new leaf). The leaf frame is
/// always re-derived from the image symbol containing the current PC, which
/// also makes tail jumps between functions attribute correctly.
#[derive(Default)]
struct StackTracker {
    /// Caller frames, outermost first (the leaf is implicit).
    callers: Vec<String>,
    /// The current leaf frame, once known.
    leaf: Option<String>,
    /// Samples attributed to the current `callers + leaf` stack but not
    /// yet flushed into the folded map.
    pending: u64,
}

impl StackTracker {
    fn flush(&mut self, folded: &mut FoldedStacks) {
        if self.pending > 0 {
            if let Some(leaf) = &self.leaf {
                let mut line = self.callers.join(";");
                if !line.is_empty() {
                    line.push(';');
                }
                line.push_str(leaf);
                folded.add_folded(&line, self.pending);
            }
            self.pending = 0;
        }
    }

    /// Attributes one instruction at `sym` to the current stack.
    fn retire(&mut self, sym: &str, folded: &mut FoldedStacks) {
        if self.leaf.as_deref() != Some(sym) {
            self.flush(folded);
            self.leaf = Some(sym.to_string());
        }
        self.pending += 1;
    }

    /// A call retired: the current leaf becomes a caller frame.
    fn call(&mut self, folded: &mut FoldedStacks) {
        self.flush(folded);
        if let Some(leaf) = self.leaf.take() {
            self.callers.push(leaf);
        }
    }

    /// A return (or exception return) retired: drop back to the caller.
    fn ret(&mut self, folded: &mut FoldedStacks) {
        self.flush(folded);
        self.callers.pop();
        self.leaf = None;
    }
}

fn err(message: impl Into<String>) -> SimError {
    SimError::DecodeTrace {
        offset: 0,
        message: message.into(),
    }
}

fn static_target(instr: &Instr, pc: u32) -> Option<u32> {
    let t = |off: i32| pc.wrapping_add((off as u32) << 1);
    Some(match *instr {
        Instr::J { off } | Instr::Jl { off } | Instr::Call { off } => t(off),
        Instr::JCond { off, .. }
        | Instr::Jz { off, .. }
        | Instr::Jnz { off, .. }
        | Instr::Loop { off, .. } => t(i32::from(off)),
        _ => return None,
    })
}

/// Reconstructs the TriCore's retired-PC stream from decoded messages.
///
/// Messages before the first synchronising [`TraceMessage::FlowTarget`] are
/// skipped (the decoder does not yet know where execution is), mirroring
/// how a real trace tool locks on.
///
/// # Errors
///
/// Returns [`SimError::DecodeTrace`] if the message stream is inconsistent
/// with the image (e.g. a claimed straight-line run crosses an
/// unconditional branch).
pub fn reconstruct_flow(
    image: &Image,
    messages: &[(Cycle, TraceMessage)],
) -> Result<FlowReconstruction, SimError> {
    let mut rec = FlowReconstruction::default();
    let mut pos: Option<u32> = None;
    let mut stack = StackTracker::default();

    for (_, msg) in messages {
        let (icnt, explicit_target, kind) = match *msg {
            TraceMessage::FlowDirect { source, icnt } if source == SourceId::TRICORE => {
                (icnt, None, None)
            }
            TraceMessage::FlowTarget {
                source,
                icnt,
                target,
                kind,
                ..
            } if source == SourceId::TRICORE => (icnt, Some(target.0), Some(kind)),
            _ => continue,
        };
        rec.flow_messages += 1;

        // A lock-on sync (icnt = 0 with a target) re-anchors the walk after
        // a trace gap: jump without walking. An asynchronous exception can
        // legitimately carry icnt = 0 (interrupt taken right at a message
        // boundary) — it walks nothing but still nests the handler under
        // the interrupted frame.
        if icnt == 0 {
            if let Some(t) = explicit_target {
                if pos.is_some() && matches!(kind, Some(FlowKind::Exception)) {
                    stack.call(&mut rec.folded);
                }
                pos = Some(t);
                continue;
            }
        }
        let Some(mut pc) = pos else {
            // Lock on at the first message that carries an absolute target.
            if let Some(t) = explicit_target {
                pos = Some(t);
            }
            continue;
        };

        // Walk `icnt` instructions from `pc`.
        let async_flow = matches!(kind, Some(FlowKind::Exception));
        for i in 0..icnt {
            let bytes = image
                .bytes_at(Addr(pc), 4)
                .or_else(|| image.bytes_at(Addr(pc), 2))
                .ok_or_else(|| err(format!("trace walked outside the image at {:#x}", pc)))?;
            let (instr, len) = decode(&bytes, Addr(pc))?;
            rec.pcs.push(pc);
            rec.instr_count += 1;
            let sym = image.symbol_containing(Addr(pc));
            if let Some(sym) = sym {
                *rec.per_symbol.entry(sym.to_string()).or_insert(0) += 1;
            }
            stack.retire(sym.unwrap_or(UNKNOWN_FRAME), &mut rec.folded);
            match instr {
                Instr::Call { .. } | Instr::CallI { .. } | Instr::Jl { .. } => {
                    stack.call(&mut rec.folded);
                }
                Instr::Ret | Instr::Rfe => stack.ret(&mut rec.folded),
                // `ji a11` is the return idiom paired with `jl` leaf calls.
                Instr::Ji { aa: AReg(11) } => stack.ret(&mut rec.folded),
                _ => {}
            }
            let last = i + 1 == icnt;
            if last && !async_flow {
                // The flow instruction itself: compute where it went.
                let target = match explicit_target {
                    Some(t) => t,
                    None => static_target(&instr, pc).ok_or_else(|| {
                        err(format!(
                            "direct flow message but instruction at {:#x} has no static target",
                            pc
                        ))
                    })?,
                };
                pc = target;
            } else {
                // Mid-walk: conditionals fall through; unconditional
                // transfers would have produced their own message.
                if instr.is_control_flow() && !instr.is_conditional() {
                    return Err(err(format!(
                        "straight-line walk crossed unconditional control flow at {:#x}",
                        pc
                    )));
                }
                pc = pc.wrapping_add(u32::from(len));
            }
        }
        if async_flow {
            // Asynchronous redirect (interrupt): execution resumes at the
            // vector regardless of the walked position. The interrupted
            // frame stays on the stack; the handler nests under it.
            stack.call(&mut rec.folded);
            pc = explicit_target.expect("exception flows always carry targets");
        }
        pos = Some(pc);
    }
    stack.flush(&mut rec.folded);
    Ok(rec)
}

/// Sorted (descending) function-level flat profile from a reconstruction.
#[must_use]
pub fn flat_profile(rec: &FlowReconstruction) -> Vec<(String, u64, f64)> {
    let total = rec.instr_count.max(1) as f64;
    let mut v: Vec<(String, u64, f64)> = rec
        .per_symbol
        .iter()
        .map(|(s, &n)| (s.clone(), n, 100.0 * n as f64 / total))
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::session::{profile, SessionOptions};
    use crate::spec::ProfileSpec;
    use audo_ed::{EdConfig, EmulationDevice};
    use audo_platform::config::SocConfig;
    use audo_tricore::asm::assemble;

    /// Runs a program with full program trace and an event oracle; returns
    /// (image, messages, ground-truth retire count).
    fn traced_run(src: &str) -> (Image, Vec<(Cycle, TraceMessage)>, u64) {
        let image = assemble(src).expect("assembles");
        let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
        ed.soc.load_image(&image).expect("loads");
        let spec = ProfileSpec::new().with_program_trace().with_sync_every(8);
        let out = profile(&mut ed, &spec, &SessionOptions::default()).expect("profiles");
        assert!(out.decode_error.is_none());
        let retired = ed.soc.tricore.retired_total();
        (image, out.messages, retired)
    }

    #[test]
    fn reconstruction_counts_match_hardware() {
        let (image, messages, retired) = traced_run(
            "
            .org 0x80000000
        _start:
            la sp, 0xD0004000
            movi d0, 0
            li d1, 50
        head:
            call work
            addi d0, d0, 1
            jne d0, d1, head
            halt
        work:
            addi d2, d2, 3
            addi d2, d2, -1
            ret
        ",
        );
        let rec = reconstruct_flow(&image, &messages).unwrap();
        // The reconstruction misses only the pre-sync prologue and the tail
        // after the last flow message.
        assert!(rec.instr_count > 0);
        assert!(
            rec.instr_count <= retired,
            "cannot reconstruct more than retired ({} vs {retired})",
            rec.instr_count
        );
        assert!(
            retired - rec.instr_count < 30,
            "reconstruction covers almost everything ({} of {retired})",
            rec.instr_count
        );
        // Function attribution finds the callee.
        let profile = flat_profile(&rec);
        let work = profile
            .iter()
            .find(|(s, _, _)| s == "work")
            .expect("work attributed");
        assert!(
            work.1 >= 100,
            "50 calls x 3 instructions in `work`: {}",
            work.1
        );
    }

    #[test]
    fn folded_stacks_nest_callee_under_caller() {
        let (image, messages, _) = traced_run(
            "
            .org 0x80000000
        _start:
            la sp, 0xD0004000
            movi d0, 0
            li d1, 50
        head:
            call work
            addi d0, d0, 1
            jne d0, d1, head
            halt
        work:
            addi d2, d2, 3
            addi d2, d2, -1
            ret
        ",
        );
        let rec = reconstruct_flow(&image, &messages).unwrap();
        // The callee is attributed under its caller (the `head` loop body
        // is the innermost symbol containing the call site), never as a
        // root.
        assert!(
            rec.folded.count("head;work") >= 100,
            "50 calls x 3 instructions nested under head: {}",
            rec.folded.render()
        );
        // The only rooted `work` samples are the initial lock-on (the
        // decoder cannot know the caller before the first sync point).
        assert!(
            rec.folded.count("work") <= 3,
            "work rooted beyond the lock-on artifact: {}",
            rec.folded.render()
        );
        // Every reconstructed instruction lands in exactly one stack.
        assert_eq!(rec.folded.total(), rec.instr_count);
        // Determinism: rebuilding from the same messages is identical.
        let again = reconstruct_flow(&image, &messages).unwrap();
        assert_eq!(rec.folded.render(), again.folded.render());
    }

    #[test]
    fn folded_stacks_nest_isr_under_interrupted_function() {
        let (image, messages, _) = traced_run(
            "
            .org 0x80000000
        _start:
            li d0, 0x80002000
            mtcr biv, d0
            la a2, 0xF0000000
            li d1, 2000
            st.w d1, [a2+0x08]
            st.w d1, [a2+0x10]
            movi d2, 1
            st.w d2, [a2+0x18]
            la a3, 0xF0006000
            li d3, 0x104
            st.w d3, [a3]
            enable
            movi d5, 0
        spin:
            addi d5, d5, 1
            li d6, 30000
            jne d5, d6, spin
            halt
            .org 0x80002000 + 4*32
        isr:
            addi d7, d7, 1
            rfe
        ",
        );
        let rec = reconstruct_flow(&image, &messages).unwrap();
        // The handler nests under the code it interrupted.
        let nested: u64 = rec
            .folded
            .iter()
            .filter(|(stack, _)| stack.ends_with(";isr"))
            .map(|(_, n)| n)
            .sum();
        assert!(
            nested >= 4,
            "isr nested under spin/_start: {}",
            rec.folded.render()
        );
        // At most the lock-on artifact appears rooted.
        assert!(
            rec.folded.count("isr") <= 2,
            "isr rooted beyond the lock-on artifact: {}",
            rec.folded.render()
        );
    }

    #[test]
    fn reconstructed_pcs_are_consistent_with_the_loop() {
        let (image, messages, _) = traced_run(
            "
            .org 0x80000000
        _start:
            movi d0, 0
            li d1, 10
        head:
            addi d0, d0, 1
            jne d0, d1, head
            halt
        ",
        );
        let rec = reconstruct_flow(&image, &messages).unwrap();
        let head = image.symbol("head").unwrap().0;
        let visits = rec.pcs.iter().filter(|&&pc| pc == head).count();
        assert!(visits >= 8, "loop head visited ~10 times, saw {visits}");
    }

    #[test]
    fn interrupt_flows_reconstruct_across_the_handler() {
        let (image, messages, retired) = traced_run(
            "
            .org 0x80000000
        _start:
            li d0, 0x80002000
            mtcr biv, d0
            la a2, 0xF0000000
            li d1, 2000
            st.w d1, [a2+0x08]  ; STM cmp0
            st.w d1, [a2+0x10]  ; reload
            movi d2, 1
            st.w d2, [a2+0x18]
            la a3, 0xF0006000
            li d3, 0x104        ; SRN0: prio 4, enabled, CPU
            st.w d3, [a3]
            enable
            movi d5, 0
        spin:
            addi d5, d5, 1
            li d6, 30000
            jne d5, d6, spin
            halt
            .org 0x80002000 + 4*32
        isr:
            addi d7, d7, 1
            rfe
        ",
        );
        let rec = reconstruct_flow(&image, &messages).unwrap();
        let isr_instrs = rec.per_symbol.get("isr").copied().unwrap_or(0);
        assert!(
            isr_instrs >= 4,
            "handler must appear in the reconstruction ({isr_instrs})"
        );
        assert!(retired - rec.instr_count < 40);
    }
}
