//! Deterministic fork/join helper for the replay-heavy evaluators.
//!
//! The option/workload replays in [`crate::options`] and
//! [`crate::generation`] are embarrassingly parallel: every replay builds
//! its own `Soc` from a cloned configuration and shares nothing mutable.
//! This helper fans an indexed job list out over `std::thread::scope`
//! workers and collects results **by index**, so the output — and
//! therefore every report rendered from it — is identical regardless of
//! how the OS schedules the workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound on worker threads: the machine's available parallelism.
#[must_use]
pub fn max_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `count` jobs (`run(0)..run(count-1)`) on up to [`max_workers`]
/// scoped threads and returns the results in index order.
///
/// Falls back to a plain sequential loop when `count < 2` or only one
/// worker is available, so single-job callers pay no threading cost.
pub fn par_map_indexed<T, F>(count: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = max_workers().min(count);
    if workers <= 1 {
        return (0..count).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let out = run(i);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed and stored")
        })
        .collect()
}

/// Maps `run` over `items` in parallel, preserving order.
pub fn par_map<T, U, F>(items: &[T], run: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), |i| run(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = par_map_indexed(64, |i| {
            // Stagger finish times so out-of-order completion is likely.
            std::thread::sleep(std::time::Duration::from_micros(((i * 7) % 13) as u64));
            i * 10
        });
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i + 5), vec![5]);
    }

    #[test]
    fn par_map_preserves_order_over_slice() {
        let items: Vec<u64> = (0..40).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn errors_surface_per_index() {
        let out = par_map_indexed(10, |i| if i % 3 == 0 { Err(i) } else { Ok(i) });
        assert_eq!(out[0], Err(0));
        assert_eq!(out[1], Ok(1));
        assert_eq!(out[9], Err(9));
    }
}
