//! Tool-interface bandwidth accounting: on-chip rate messages vs. external
//! counter sampling.
//!
//! The closing argument of §5: "Instead of sampling by the external tool at
//! least two long counters (executed instructions, measured event, etc.)
//! only a single trace message with the counted events is stored. This is
//! especially important as the bandwidth of the tool interface does not
//! scale with the CPU frequency." These helpers quantify both sides;
//! experiment E5 sweeps them over CPU frequency.

use audo_common::Freq;
use audo_dap::DapConfig;

/// Approximate wire size of one counter message (header + ts delta +
/// probe + num + den varints).
pub const COUNTER_MESSAGE_BYTES: f64 = 6.0;

/// Bandwidth (bytes/s) of the on-chip approach: every probe emits one
/// counter message per completed window.
///
/// `window_cycles` is the resolution in CPU cycles; the message rate scales
/// with CPU frequency but each message is tiny and the window is usually
/// thousands of cycles.
#[must_use]
pub fn onchip_rate_bandwidth(probes: u32, window_cycles: u32, cpu_clock: Freq) -> f64 {
    let windows_per_sec = cpu_clock.0 as f64 / f64::from(window_cycles.max(1));
    windows_per_sec * f64::from(probes) * COUNTER_MESSAGE_BYTES
}

/// Bandwidth (bytes/s) the external-sampling alternative needs for the same
/// resolution: the tool must poll `2 × probes` long counters (event counter
/// plus basis counter, as the paper describes) once per window over the
/// register-access protocol.
#[must_use]
pub fn external_sampling_bandwidth(
    probes: u32,
    window_cycles: u32,
    cpu_clock: Freq,
    dap: &DapConfig,
) -> f64 {
    let windows_per_sec = cpu_clock.0 as f64 / f64::from(window_cycles.max(1));
    let regs_per_window = 2.0 * f64::from(probes);
    windows_per_sec * regs_per_window * f64::from(dap.reg_read_cost)
}

/// One row of the frequency sweep in experiment E5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthRow {
    /// CPU clock.
    pub cpu_clock: Freq,
    /// On-chip rate-message bandwidth demand (bytes/s).
    pub onchip: f64,
    /// External-sampling bandwidth demand (bytes/s).
    pub sampling: f64,
    /// DAP link capacity (bytes/s) — constant across the sweep.
    pub capacity: f64,
    /// `sampling / onchip` reduction factor.
    pub reduction: f64,
}

/// Computes the bandwidth comparison for one CPU frequency.
#[must_use]
pub fn compare(probes: u32, window_cycles: u32, cpu_clock: Freq, dap: &DapConfig) -> BandwidthRow {
    let onchip = onchip_rate_bandwidth(probes, window_cycles, cpu_clock);
    let sampling = external_sampling_bandwidth(probes, window_cycles, cpu_clock, dap);
    BandwidthRow {
        cpu_clock,
        onchip,
        sampling,
        capacity: dap.bytes_per_second(),
        reduction: sampling / onchip.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn onchip_beats_sampling_by_the_packet_ratio() {
        let dap = DapConfig::default(); // reg read = 10 bytes
        let row = compare(4, 1000, Freq::mhz(150), &dap);
        // sampling: 2×4 regs × 10 B; on-chip: 4 × 6 B → factor 80/24 ≈ 3.3.
        assert!((row.reduction - 80.0 / 24.0).abs() < 1e-9);
        assert!(row.onchip < row.sampling);
    }

    #[test]
    fn both_demands_scale_with_frequency_capacity_does_not() {
        let dap = DapConfig::default();
        let slow = compare(4, 1000, Freq::mhz(80), &dap);
        let fast = compare(4, 1000, Freq::mhz(300), &dap);
        assert!(fast.onchip > slow.onchip);
        assert!(fast.sampling > slow.sampling);
        assert_eq!(fast.capacity, slow.capacity, "the link does not scale");
        // At 300 MHz with 1k-cycle windows, sampling already blows the link:
        // 300k windows/s × 80 B = 24 MB/s > 10 MB/s.
        assert!(fast.sampling > fast.capacity);
        assert!(fast.onchip < fast.capacity, "on-chip stays sustainable");
    }

    #[test]
    fn window_length_trades_resolution_for_bandwidth() {
        let coarse = onchip_rate_bandwidth(8, 10_000, Freq::mhz(150));
        let fine = onchip_rate_bandwidth(8, 100, Freq::mhz(150));
        assert!((fine / coarse - 100.0).abs() < 1e-9);
    }
}
