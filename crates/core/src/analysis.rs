//! Timeline analysis: hot-spot detection and cause classification.
//!
//! §5: "only when having all these data available in parallel it is
//! possible to analyze for example the reason for a temporary poor System
//! IPC rate in detail (high cache miss rate? Which cache? Which data or
//! code structure? High Interrupt load?)". [`find_hot_spots`] is that
//! analysis: it locates low-IPC windows and names the dominant elevated
//! rate inside them.

use std::fmt;

use audo_common::Cycle;

use crate::metrics::Metric;
use crate::timeline::Timeline;

/// Root causes the classifier can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// Elevated instruction-cache miss rate.
    IcacheMisses,
    /// Elevated data-cache miss rate.
    DcacheMisses,
    /// Elevated CPU data traffic to program flash.
    FlashDataAccesses,
    /// Elevated code-fetch traffic to the flash array.
    FlashCodeFetches,
    /// Elevated crossbar contention.
    BusContention,
    /// Elevated interrupt load.
    InterruptLoad,
    /// Elevated DMA traffic.
    DmaTraffic,
    /// No candidate metric stood out.
    Unknown,
}

impl fmt::Display for Cause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cause::IcacheMisses => "I-cache misses",
            Cause::DcacheMisses => "D-cache misses",
            Cause::FlashDataAccesses => "flash data accesses",
            Cause::FlashCodeFetches => "flash code fetches",
            Cause::BusContention => "bus contention",
            Cause::InterruptLoad => "interrupt load",
            Cause::DmaTraffic => "DMA traffic",
            Cause::Unknown => "unclassified",
        };
        f.write_str(s)
    }
}

/// A detected low-performance region.
#[derive(Debug, Clone, PartialEq)]
pub struct HotSpot {
    /// First sample cycle of the region.
    pub from: Cycle,
    /// Last sample cycle of the region.
    pub to: Cycle,
    /// Average IPC inside the region.
    pub avg_ipc: f64,
    /// Dominant elevated rate.
    pub cause: Cause,
    /// How much the dominant rate exceeded its whole-run average (1.0 = no
    /// elevation).
    pub elevation: f64,
}

/// Candidate metrics and the causes they indicate, in evaluation order.
const CANDIDATES: &[(Metric, Cause, bool)] = &[
    // (metric, cause, invert) — invert for "good when high" metrics.
    (Metric::IcacheMissPerInstr, Cause::IcacheMisses, false),
    (Metric::DcacheMissPerInstr, Cause::DcacheMisses, false),
    (Metric::IcacheHitRatio, Cause::IcacheMisses, true),
    (Metric::DcacheHitRatio, Cause::DcacheMisses, true),
    (
        Metric::FlashDataAccessPerInstr,
        Cause::FlashDataAccesses,
        false,
    ),
    (
        Metric::FlashCodeFetchPerInstr,
        Cause::FlashCodeFetches,
        false,
    ),
    (
        Metric::BusContentionPerKilocycle,
        Cause::BusContention,
        false,
    ),
    (Metric::InterruptsPerKilocycle, Cause::InterruptLoad, false),
    (Metric::DmaBeatsPerKilocycle, Cause::DmaTraffic, false),
];

/// Finds contiguous regions where IPC sampled below `ipc_below` and
/// classifies each region's dominant cause from the parallel series.
///
/// Requires [`Metric::Ipc`] in the timeline; other candidate metrics are
/// used when present.
#[must_use]
pub fn find_hot_spots(timeline: &Timeline, ipc_below: f64) -> Vec<HotSpot> {
    let ipc = timeline.series(Metric::Ipc);
    let mut spots = Vec::new();
    let mut i = 0;
    while i < ipc.len() {
        if ipc[i].value >= ipc_below {
            i += 1;
            continue;
        }
        let start = i;
        while i < ipc.len() && ipc[i].value < ipc_below {
            i += 1;
        }
        let region = &ipc[start..i];
        let from = region[0].cycle;
        let to = region[region.len() - 1].cycle;
        let avg_ipc = region.iter().map(|s| s.value).sum::<f64>() / region.len() as f64;
        let (cause, elevation) = classify(timeline, from, to);
        spots.push(HotSpot {
            from,
            to,
            avg_ipc,
            cause,
            elevation,
        });
    }
    spots
}

fn classify(timeline: &Timeline, from: Cycle, to: Cycle) -> (Cause, f64) {
    let mut best = (Cause::Unknown, 1.0f64);
    for &(metric, cause, invert) in CANDIDATES {
        let series = timeline.series(metric);
        if series.is_empty() {
            continue;
        }
        let global = timeline.average(metric);
        let local_samples = timeline.window(metric, from, to);
        if local_samples.is_empty() {
            continue;
        }
        let local = local_samples.iter().map(|s| s.value).sum::<f64>() / local_samples.len() as f64;
        let elevation = if invert {
            // For hit ratios, "worse" means lower: compare miss fractions.
            let local_bad = (1.0 - local).max(1e-9);
            let global_bad = (1.0 - global).max(1e-9);
            local_bad / global_bad
        } else {
            let g = global.max(1e-9);
            local / g
        };
        if elevation > best.1 {
            best = (cause, elevation);
        }
    }
    if best.1 < 1.2 {
        (Cause::Unknown, best.1)
    } else {
        best
    }
}

/// Renders a compact terminal report: averages, sparklines, hot spots.
#[must_use]
pub fn render_report(timeline: &Timeline, ipc_below: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:<34} {:>10}  timeline", "metric", "average");
    for metric in timeline.metrics() {
        let avg = timeline.average(metric);
        let spark = timeline.sparkline(metric, 40);
        let _ = writeln!(out, "{:<34} {:>10.4}  {}", metric.name(), avg, spark);
    }
    let spots = find_hot_spots(timeline, ipc_below);
    if spots.is_empty() {
        let _ = writeln!(out, "no IPC windows below {ipc_below}");
    } else {
        let _ = writeln!(out, "hot spots (IPC < {ipc_below}):");
        for s in &spots {
            let _ = writeln!(
                out,
                "  {}..{}  avg IPC {:.2}  cause: {} ({:.1}x elevated)",
                s.from, s.to, s.avg_ipc, s.cause, s.elevation
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProfileSpec;
    use audo_mcds::TraceMessage;

    /// Builds a timeline with a low-IPC region (windows 5..8) where the
    /// flash-data-access rate is elevated.
    fn synthetic() -> Timeline {
        let spec = ProfileSpec::new()
            .metric(Metric::Ipc, 100)
            .metric(Metric::FlashDataAccessPerInstr, 100)
            .metric(Metric::IcacheMissPerInstr, 100);
        let (_, map) = spec.compile().unwrap();
        let mut msgs = Vec::new();
        for w in 0..12u64 {
            let cycle = Cycle((w + 1) * 100);
            let bad = (5..8).contains(&w);
            let ipc_num = if bad { 30 } else { 180 };
            msgs.push((
                cycle,
                TraceMessage::Counter {
                    probe: 0,
                    num: ipc_num,
                    den: 100,
                },
            ));
            // Flash data accesses per 100 instructions.
            let flash = if bad { 20 } else { 1 };
            msgs.push((
                cycle,
                TraceMessage::Counter {
                    probe: 1,
                    num: flash,
                    den: 100,
                },
            ));
            // I-cache misses stay flat.
            msgs.push((
                cycle,
                TraceMessage::Counter {
                    probe: 2,
                    num: 2,
                    den: 100,
                },
            ));
        }
        Timeline::from_messages(&msgs, &map)
    }

    #[test]
    fn hot_spot_found_and_classified() {
        let t = synthetic();
        let spots = find_hot_spots(&t, 1.0);
        assert_eq!(spots.len(), 1);
        let s = &spots[0];
        assert_eq!(s.from, Cycle(600));
        assert_eq!(s.to, Cycle(800));
        assert!(s.avg_ipc < 0.5);
        assert_eq!(
            s.cause,
            Cause::FlashDataAccesses,
            "flash traffic dominates: {s:?}"
        );
        assert!(s.elevation > 3.0);
    }

    #[test]
    fn no_spots_when_threshold_low() {
        let t = synthetic();
        assert!(find_hot_spots(&t, 0.1).is_empty());
    }

    #[test]
    fn flat_metrics_classify_as_unknown() {
        let spec = ProfileSpec::new()
            .metric(Metric::Ipc, 100)
            .metric(Metric::IcacheMissPerInstr, 100);
        let (_, map) = spec.compile().unwrap();
        let mut msgs = Vec::new();
        for w in 0..6u64 {
            let cycle = Cycle((w + 1) * 100);
            let ipc = if w == 3 { 30 } else { 180 };
            msgs.push((
                cycle,
                TraceMessage::Counter {
                    probe: 0,
                    num: ipc,
                    den: 100,
                },
            ));
            msgs.push((
                cycle,
                TraceMessage::Counter {
                    probe: 1,
                    num: 2,
                    den: 100,
                },
            ));
        }
        let t = Timeline::from_messages(&msgs, &map);
        let spots = find_hot_spots(&t, 1.0);
        assert_eq!(spots.len(), 1);
        assert_eq!(spots[0].cause, Cause::Unknown);
    }

    #[test]
    fn report_renders_all_metrics() {
        let t = synthetic();
        let r = render_report(&t, 1.0);
        assert!(r.contains("IPC (TriCore)"));
        assert!(r.contains("hot spots"));
        assert!(r.contains("flash data accesses"));
    }
}

/// Per-metric change between two profiling runs of (typically) the same
/// software on different configurations or software revisions.
///
/// §5: "Additionally system profiling allows measuring the result of the
/// improvement quantitatively."
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// The metric.
    pub metric: Metric,
    /// Average in the baseline run.
    pub before: f64,
    /// Average in the comparison run.
    pub after: f64,
    /// `after - before`.
    pub delta: f64,
    /// Relative change (`delta / before`), `None` when the baseline is 0.
    pub relative: Option<f64>,
}

/// Compares two timelines metric by metric (metrics present in both).
#[must_use]
pub fn compare_timelines(before: &Timeline, after: &Timeline) -> Vec<MetricDelta> {
    let mut out = Vec::new();
    for metric in before.metrics() {
        if after.series(metric).is_empty() {
            continue;
        }
        let b = before.average(metric);
        let a = after.average(metric);
        out.push(MetricDelta {
            metric,
            before: b,
            after: a,
            delta: a - b,
            relative: if b.abs() > 1e-12 {
                Some((a - b) / b)
            } else {
                None
            },
        });
    }
    out
}

/// Renders a comparison as a table.
#[must_use]
pub fn render_comparison(deltas: &[MetricDelta]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>10} {:>10} {:>10} {:>8}",
        "metric", "before", "after", "delta", "rel"
    );
    for d in deltas {
        let rel = d
            .relative
            .map_or("    -".to_string(), |r| format!("{:+.1}%", r * 100.0));
        let _ = writeln!(
            out,
            "{:<34} {:>10.4} {:>10.4} {:>+10.4} {:>8}",
            d.metric.name(),
            d.before,
            d.after,
            d.delta,
            rel
        );
    }
    out
}

#[cfg(test)]
mod compare_tests {
    use super::*;
    use crate::spec::ProfileSpec;
    use audo_mcds::TraceMessage;

    fn tl(ipc_num: u64) -> Timeline {
        let spec = ProfileSpec::new().metric(Metric::Ipc, 100);
        let (_, map) = spec.compile().unwrap();
        let msgs = vec![(
            Cycle(100),
            TraceMessage::Counter {
                probe: 0,
                num: ipc_num,
                den: 100,
            },
        )];
        Timeline::from_messages(&msgs, &map)
    }

    #[test]
    fn deltas_and_rendering() {
        let before = tl(50);
        let after = tl(75);
        let deltas = compare_timelines(&before, &after);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].before, 0.5);
        assert_eq!(deltas[0].after, 0.75);
        assert!((deltas[0].relative.unwrap() - 0.5).abs() < 1e-12);
        let r = render_comparison(&deltas);
        assert!(r.contains("+50.0%"), "{r}");
    }

    #[test]
    fn metrics_missing_on_either_side_are_skipped() {
        let before = tl(50);
        let after = Timeline::default();
        assert!(compare_timelines(&before, &after).is_empty());
    }
}
