//! Profiling sessions: program the Emulation Device, run the target,
//! download the trace, decode the timeline.
//!
//! A session ties the whole tool stack together the way the paper's Fig. 4
//! wires the silicon: the SoC runs *unchanged*; the MCDS computes rates and
//! qualifies traces on chip; the EMEM buffers messages; the DAP link drains
//! them with its fixed, CPU-frequency-independent bandwidth. The
//! [`DrainPolicy`] selects between offline capture (fill EMEM, download
//! after the run) and concurrent drain through a modeled [`DapLink`].

use audo_common::{Cycle, SimError};
use audo_dap::session::{ArbitrationPolicy, DapSession, DapSessionStats, HostTool, SessionConfig};
use audo_dap::{DapConfig, DapLink, FaultConfig, FaultStats};
use audo_ed::EmulationDevice;
use audo_mcds::msg::decode_stream_lossy_shifted_sized;
use audo_mcds::TraceMessage;

use crate::spec::{ProbeMap, ProfileSpec};
use crate::timeline::Timeline;

/// Options of the framed tool-link session (the robust protocol path of
/// [`DrainPolicy::Session`]).
#[derive(Debug, Clone)]
pub struct ToolLinkOptions {
    /// Link bandwidth model.
    pub dap: DapConfig,
    /// Session protocol knobs (timeouts, retry, chunk sizes).
    pub session: SessionConfig,
    /// Deterministic link-fault injection.
    pub faults: FaultConfig,
    /// Who wins when trace drain and calibration writes contend.
    pub policy: ArbitrationPolicy,
    /// Extra link cycles granted after the run to finish draining.
    pub finish_budget_cycles: u64,
}

impl Default for ToolLinkOptions {
    fn default() -> ToolLinkOptions {
        ToolLinkOptions {
            dap: DapConfig::default(),
            session: SessionConfig::default(),
            faults: FaultConfig::lossless(),
            policy: ArbitrationPolicy::default(),
            finish_budget_cycles: 4_000_000,
        }
    }
}

/// What the framed tool link observed during a session — the graceful
/// degradation report surfaced instead of a panic on a bad link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToolLinkReport {
    /// Session transaction statistics (retries, timeouts, truncation …).
    pub stats: DapSessionStats,
    /// What the fault injector actually did to the wire.
    pub faults: FaultStats,
    /// The trace stream was fully recovered (otherwise `stats` flags the
    /// truncation and the downloaded bytes are an exact prefix).
    pub complete: bool,
}

/// How trace bytes leave the chip.
#[derive(Debug, Clone)]
pub enum DrainPolicy {
    /// Idealised host: the trace is downloaded as fast as it is produced
    /// (no bandwidth limit, no overflow). Use this to study the target,
    /// not the tool link.
    Offline,
    /// Drain concurrently through a DAP link budget while the target runs;
    /// EMEM overflow (and the resulting trace loss) is faithfully modeled.
    /// The protocol itself is idealised (no frames, no loss).
    Dap(DapConfig),
    /// Drain through the full framed session protocol
    /// ([`audo_dap::DapSession`]): CRC-protected frames, timeouts, retries
    /// and (optionally) injected link faults, with trace readout arbitrated
    /// against calibration writes. The tool's view is reported in
    /// [`SessionOutcome::tool`].
    Session(ToolLinkOptions),
}

/// Session run options.
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Stop after this many cycles even without `HALT`.
    pub max_cycles: u64,
    /// Trace download policy.
    pub drain: DrainPolicy,
    /// Treat the cycle limit as a normal end of measurement rather than an
    /// error (profiling sessions usually observe a fixed time window).
    pub run_to_halt: bool,
    /// Record the session into an observability registry
    /// ([`SessionOutcome::obs`]): a cycle-stamped span tree of the session
    /// phases plus counter samples from every layer (SoC, EEC, tool link).
    /// Off by default; when off the outcome's registry stays empty and the
    /// run does no extra work.
    pub observe: bool,
}

impl Default for SessionOptions {
    fn default() -> SessionOptions {
        SessionOptions {
            max_cycles: 2_000_000,
            drain: DrainPolicy::Offline,
            run_to_halt: false,
            observe: false,
        }
    }
}

/// Everything a profiling session produced.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The decoded metric timelines.
    pub timeline: Timeline,
    /// All decoded trace messages (flows, data, counters, …).
    pub messages: Vec<(Cycle, TraceMessage)>,
    /// Cycles executed.
    pub cycles: u64,
    /// Trace bytes the MCDS produced.
    pub produced_bytes: u64,
    /// Trace bytes downloaded to the host.
    pub downloaded_bytes: u64,
    /// Trace bytes lost to EMEM overflow.
    pub lost_bytes: u64,
    /// First decode error, if the (damaged) stream did not fully decode.
    pub decode_error: Option<SimError>,
    /// Metric → probe mapping used.
    pub probe_map: ProbeMap,
    /// The target executed `HALT`.
    pub halted: bool,
    /// Tool-link session report (only for [`DrainPolicy::Session`]).
    pub tool: Option<ToolLinkReport>,
    /// Observability registry (populated only with
    /// [`SessionOptions::observe`]; disabled and empty otherwise).
    pub obs: audo_obs::Registry,
}

impl SessionOutcome {
    /// Average bytes of tool bandwidth per 1000 cycles the session needed.
    #[must_use]
    pub fn bytes_per_kilocycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.produced_bytes as f64 * 1000.0 / self.cycles as f64
        }
    }
}

/// Programs the ED with `spec`, runs the target and returns the decoded
/// session outcome.
///
/// # Errors
///
/// Propagates compile errors (resource exhaustion) and target faults.
/// Hitting `max_cycles` is an error only when `run_to_halt` is set.
pub fn profile(
    ed: &mut EmulationDevice,
    spec: &ProfileSpec,
    opts: &SessionOptions,
) -> Result<SessionOutcome, SimError> {
    let (mcds, probe_map) = spec.compile()?;
    ed.program_mcds(mcds);

    enum Drainer {
        Offline,
        Dap(DapLink),
        Session(Box<HostTool>, u64),
    }
    let mut drainer = match &opts.drain {
        DrainPolicy::Offline => Drainer::Offline,
        DrainPolicy::Dap(cfg) => Drainer::Dap(DapLink::new(cfg.clone())),
        DrainPolicy::Session(tl) => Drainer::Session(
            Box::new(HostTool::new(
                DapSession::new(tl.dap.clone(), tl.session.clone(), tl.faults.clone()),
                tl.policy,
            )),
            tl.finish_budget_cycles,
        ),
    };
    let mut host_buf: Vec<u8> = Vec::new();
    let mut produced: u64 = 0;
    let mut halted = false;
    let start = ed.now();
    let mut obs = if opts.observe {
        audo_obs::Registry::new()
    } else {
        audo_obs::Registry::disabled()
    };
    obs.begin_span("session", start.0);
    obs.begin_span("target.run", start.0);

    while ed.now().saturating_sub(start) < opts.max_cycles {
        let step = ed.step()?;
        produced += u64::from(step.trace_bytes);
        match &mut drainer {
            Drainer::Offline => {
                let level = ed.trace.level();
                if level > 0 {
                    host_buf.extend_from_slice(&ed.drain_trace(level as u32)?);
                }
            }
            Drainer::Dap(link) => {
                link.advance_cycles(1);
                let level = ed.trace.level();
                let budget = link.available() as u64;
                let want = level.min(budget);
                if want > 0 {
                    let got = ed.drain_trace(want as u32)?;
                    link.take(got.len());
                    host_buf.extend_from_slice(&got);
                }
            }
            Drainer::Session(tool, _) => tool.pump(ed),
        }
        if step.halted {
            halted = true;
            break;
        }
    }
    if !halted && opts.run_to_halt {
        return Err(SimError::LimitExceeded {
            what: "cycles",
            limit: opts.max_cycles,
        });
    }
    let run_end = ed.now().0;
    obs.end_span(run_end);
    // Post-run download of whatever is still buffered.
    let tool_report = match drainer {
        Drainer::Session(mut tool, finish_budget) => {
            // The finish drain advances only the link clock; its span is
            // placed after the target run, with the link cycles it spent.
            let link_before = tool.session.link().now().0;
            obs.begin_span("drain.finish", run_end);
            let complete = tool.finish_drain(ed, finish_budget);
            let link_spent = tool.session.link().now().0.saturating_sub(link_before);
            obs.end_span(run_end + link_spent);
            host_buf.extend_from_slice(&tool.take_collected());
            tool.session.export_obs(&mut obs);
            Some(ToolLinkReport {
                stats: *tool.session.stats(),
                faults: tool.session.fault_stats(),
                complete,
            })
        }
        _ => {
            let rest = ed.trace.level();
            obs.begin_span("drain.finish", run_end);
            host_buf.extend_from_slice(&ed.drain_trace(rest as u32)?);
            obs.end_span(run_end);
            None
        }
    };

    let lost = ed.trace.lost();
    // Overflow (ring overwrite / linear drop) can cut the stream
    // mid-message; decode leniently and surface the first error.
    let mut msg_sizes = Vec::new();
    let (messages, decode_error) =
        decode_stream_lossy_shifted_sized(&host_buf, spec.timestamp_shift(), &mut msg_sizes);
    let timeline = Timeline::from_messages(&messages, &probe_map);
    ed.export_obs(&mut obs);
    let mut size_hist = audo_obs::Histogram::default();
    for s in &msg_sizes {
        size_hist.record(*s as u64);
    }
    obs.observe_histogram("mcds.message_bytes", &size_hist);
    obs.sample("session.trace_bytes_produced", produced);
    obs.sample("session.trace_bytes_downloaded", host_buf.len() as u64);
    obs.sample("session.trace_bytes_lost", lost);
    obs.sample("session.messages_decoded", messages.len() as u64);
    let end = obs.stamped();
    obs.end_span(end);
    Ok(SessionOutcome {
        timeline,
        messages,
        cycles: ed.now() - start,
        produced_bytes: produced,
        downloaded_bytes: host_buf.len() as u64,
        lost_bytes: lost,
        decode_error,
        probe_map,
        halted,
        tool: tool_report,
        obs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metric;
    use audo_ed::EdConfig;
    use audo_platform::config::SocConfig;
    use audo_tricore::asm::assemble;

    fn ed_with(src: &str) -> EmulationDevice {
        let image = assemble(src).expect("assembles");
        let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
        ed.soc.load_image(&image).expect("loads");
        ed
    }

    /// Two phases: a tight loop (decent IPC), then a pointer chase through
    /// *uncached* flash data spread over 8 lines — more lines than the
    /// flash read buffers hold, so every access pays wait states.
    const PHASED: &str = "
        .equ UNCACHED, 0x20000000
        .org 0x80000000
    _start:
        movi d0, 0
        li d1, 3000
    p1:
        addi d0, d0, 1
        jne d0, d1, p1
        la a2, chain0 + UNCACHED
        movi d3, 0
        li d4, 400
    p2:
        ld.a a2, [a2]
        addi d3, d3, 1
        jne d3, d4, p2
        halt
        .align 64
    chain0: .word chain1 + UNCACHED
        .space 60
    chain1: .word chain2 + UNCACHED
        .space 60
    chain2: .word chain3 + UNCACHED
        .space 60
    chain3: .word chain4 + UNCACHED
        .space 60
    chain4: .word chain5 + UNCACHED
        .space 60
    chain5: .word chain6 + UNCACHED
        .space 60
    chain6: .word chain7 + UNCACHED
        .space 60
    chain7: .word chain0 + UNCACHED
    ";

    #[test]
    fn parallel_metrics_in_one_run() {
        let mut ed = ed_with(PHASED);
        let spec = ProfileSpec::new()
            .metric(Metric::Ipc, 500)
            .metric(Metric::IcacheHitRatio, 500)
            .metric(Metric::FlashDataAccessPerInstr, 500);
        let out = profile(&mut ed, &spec, &SessionOptions::default()).unwrap();
        assert!(out.halted);
        assert!(out.decode_error.is_none());
        assert_eq!(out.lost_bytes, 0);
        assert!(!out.timeline.series(Metric::Ipc).is_empty());
        assert!(!out.timeline.series(Metric::IcacheHitRatio).is_empty());
        // Phase 2 chases pointers through flash: its flash-data-access rate
        // must exceed phase 1's (which has none).
        let flash = out.timeline.series(Metric::FlashDataAccessPerInstr);
        let first = flash.first().unwrap().value;
        let last = flash.last().unwrap().value;
        assert!(
            last > first,
            "flash access rate must rise in phase 2 ({first} -> {last})"
        );
        // IPC must drop from phase 1 to phase 2.
        let ipc = out.timeline.series(Metric::Ipc);
        let early = ipc[1].value;
        let late = ipc[ipc.len() - 2].value;
        assert!(
            late < early,
            "IPC must degrade in the pointer chase ({early} -> {late})"
        );
    }

    #[test]
    fn dap_drain_keeps_up_with_rate_messages() {
        let mut ed = ed_with(PHASED);
        let spec = ProfileSpec::new().metric(Metric::Ipc, 1000);
        let out = profile(
            &mut ed,
            &spec,
            &SessionOptions {
                drain: DrainPolicy::Dap(DapConfig::default()),
                ..SessionOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            out.lost_bytes, 0,
            "coarse rate messages fit easily in DAP bandwidth"
        );
        assert_eq!(out.downloaded_bytes, out.produced_bytes);
        assert!(out.bytes_per_kilocycle() < 20.0);
    }

    #[test]
    fn cascade_increases_detail_only_in_bad_phases() {
        let mut ed = ed_with(PHASED);
        let spec = ProfileSpec::new().metric(Metric::Ipc, 200).cascade(
            Metric::Ipc,
            0.5,
            vec![crate::spec::MetricRequest {
                metric: Metric::FlashDataAccessPerInstr,
                window: 50,
            }],
        );
        let out = profile(&mut ed, &spec, &SessionOptions::default()).unwrap();
        let fine = out.timeline.series(Metric::FlashDataAccessPerInstr);
        assert!(!fine.is_empty(), "cascade must arm in the bad phase");
        // All fine samples must fall in the second (low-IPC) half of the run.
        let midpoint = out.cycles / 2;
        assert!(
            fine.iter().all(|s| s.cycle.0 > midpoint),
            "fine samples only during the pointer chase"
        );
    }

    #[test]
    fn session_drain_lossless_matches_offline_and_reports() {
        let run = |drain: DrainPolicy| {
            let mut ed = ed_with(PHASED);
            let spec = ProfileSpec::new().metric(Metric::Ipc, 500);
            profile(
                &mut ed,
                &spec,
                &SessionOptions {
                    drain,
                    ..SessionOptions::default()
                },
            )
            .unwrap()
        };
        let offline = run(DrainPolicy::Offline);
        let session = run(DrainPolicy::Session(ToolLinkOptions::default()));
        let report = session.tool.expect("session policy reports");
        assert!(report.complete);
        assert!(!report.stats.trace_truncated);
        assert_eq!(report.stats.retries, 0, "lossless link never retries");
        assert_eq!(session.downloaded_bytes, offline.downloaded_bytes);
        assert_eq!(
            session.timeline.series(Metric::Ipc).len(),
            offline.timeline.series(Metric::Ipc).len()
        );
        assert!(offline.tool.is_none());
    }

    #[test]
    fn session_drain_survives_a_noisy_link() {
        let mut ed = ed_with(PHASED);
        let spec = ProfileSpec::new().metric(Metric::Ipc, 500);
        let out = profile(
            &mut ed,
            &spec,
            &SessionOptions {
                drain: DrainPolicy::Session(ToolLinkOptions {
                    faults: FaultConfig::uniform(1e-3, 7),
                    ..ToolLinkOptions::default()
                }),
                ..SessionOptions::default()
            },
        )
        .unwrap();
        let report = out.tool.expect("report present");
        // Whatever the noise did, the outcome is explicit: either the
        // stream is complete, or the truncation is flagged — never silent.
        assert_eq!(report.complete, !report.stats.trace_truncated);
        assert!(out.halted);
    }

    #[test]
    fn observe_records_spans_and_counters_deterministically() {
        let run = || {
            let mut ed = ed_with(PHASED);
            let spec = ProfileSpec::new().metric(Metric::Ipc, 500);
            profile(
                &mut ed,
                &spec,
                &SessionOptions {
                    observe: true,
                    ..SessionOptions::default()
                },
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert!(a.obs.counter("soc.cycles") > 0);
        assert!(
            a.obs.counter("iss.instructions_retired") == 0,
            "no ISS in a SoC session"
        );
        assert!(a.obs.counter("soc.tricore.instructions_retired") > 0);
        assert_eq!(a.obs.counter("session.trace_bytes_lost"), 0);
        let names: Vec<&str> = a.obs.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["session", "target.run", "drain.finish"]);
        // Byte-identical exports across identical runs.
        assert_eq!(
            audo_obs::chrome::trace_json(&a.obs, "audo", &[]),
            audo_obs::chrome::trace_json(&b.obs, "audo", &[]),
        );
        assert_eq!(
            audo_obs::metrics_text::render(&a.obs, "audo_"),
            audo_obs::metrics_text::render(&b.obs, "audo_"),
        );
        // Off by default: the registry stays disabled and empty.
        let mut ed = ed_with(PHASED);
        let spec = ProfileSpec::new().metric(Metric::Ipc, 500);
        let quiet = profile(&mut ed, &spec, &SessionOptions::default()).unwrap();
        assert!(!quiet.obs.is_enabled());
        assert!(quiet.obs.is_empty());
    }

    #[test]
    fn cycle_limited_session_is_not_an_error() {
        let mut ed = ed_with(".org 0x80000000\nspin: j spin\n");
        let spec = ProfileSpec::new().metric(Metric::Ipc, 100);
        let out = profile(
            &mut ed,
            &spec,
            &SessionOptions {
                max_cycles: 5_000,
                ..SessionOptions::default()
            },
        )
        .unwrap();
        assert!(!out.halted);
        assert_eq!(out.cycles, 5_000);
        assert!(!out.timeline.series(Metric::Ipc).is_empty());
    }
}

#[cfg(test)]
mod timestamp_shift_tests {
    use super::*;
    use crate::metrics::Metric;
    use audo_ed::EdConfig;
    use audo_platform::config::SocConfig;
    use audo_tricore::asm::assemble;

    #[test]
    fn timestamp_shift_reduces_trace_volume_end_to_end() {
        let run = |shift: u8| {
            let image = assemble(
                ".org 0x80000000\n_start: movi d0, 0\n li d1, 20000\nh: addi d0, d0, 1\n jne d0, d1, h\n halt\n",
            )
            .unwrap();
            let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
            ed.soc.load_image(&image).unwrap();
            let spec = ProfileSpec::new()
                .metric(Metric::Ipc, 500)
                .with_timestamp_shift(shift);
            profile(&mut ed, &spec, &SessionOptions::default()).unwrap()
        };
        let fine = run(0);
        let coarse = run(8);
        assert!(fine.decode_error.is_none() && coarse.decode_error.is_none());
        assert_eq!(
            fine.timeline.series(Metric::Ipc).len(),
            coarse.timeline.series(Metric::Ipc).len(),
            "same samples either way"
        );
        assert!(
            coarse.produced_bytes < fine.produced_bytes,
            "coarse stamps must shrink the stream ({} vs {})",
            coarse.produced_bytes,
            fine.produced_bytes
        );
        // Values are unaffected — only the time axis is quantized.
        let fa = fine.timeline.average(Metric::Ipc);
        let ca = coarse.timeline.average(Metric::Ipc);
        assert!((fa - ca).abs() < 1e-12);
    }
}
