//! The trace controller: moves MCDS message bytes into the EMEM trace
//! region and hands them to the tool on download.
//!
//! The emulation memory is shared between trace and calibration overlay
//! (paper §3: "the Emulation Memory, which is shared between calibration
//! overlay and trace"), so the trace region length is a configuration
//! trade-off that experiment E10 explores.

/// How the trace region behaves when full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Overwrite the oldest undownloaded bytes (continuous profiling with
    /// concurrent DAP drain).
    Ring,
    /// Stop recording when full (classic "fill then download" capture).
    Linear,
}

/// Byte-stream controller over a fixed-capacity region.
///
/// Uses absolute read/write offsets; the physical EMEM index is
/// `offset % capacity`.
#[derive(Debug, Clone)]
pub struct TraceController {
    capacity: u64,
    mode: TraceMode,
    wr: u64,
    rd: u64,
    lost: u64,
}

/// Where to physically place bytes, produced by [`TraceController::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Offset inside the trace region.
    pub region_offset: u32,
    /// How many bytes to place there (the rest wraps to offset 0).
    pub len: u32,
}

impl TraceController {
    /// Creates a controller over `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: u32, mode: TraceMode) -> TraceController {
        assert!(capacity > 0, "trace region must be non-empty");
        TraceController {
            capacity: u64::from(capacity),
            mode,
            wr: 0,
            rd: 0,
            lost: 0,
        }
    }

    /// Bytes currently stored and not yet downloaded.
    #[must_use]
    pub fn level(&self) -> u64 {
        self.wr - self.rd
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes lost to overflow so far.
    #[must_use]
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Total bytes ever accepted.
    #[must_use]
    pub fn total_written(&self) -> u64 {
        self.wr
    }

    /// Accepts `len` incoming bytes; returns the placements (up to two, for
    /// wrap-around) for the bytes that fit. In `Linear` mode excess bytes
    /// are dropped; in `Ring` mode the oldest stored bytes are sacrificed.
    pub fn push(&mut self, len: u32) -> Vec<Placement> {
        let mut len = u64::from(len);
        match self.mode {
            TraceMode::Linear => {
                let free = self.capacity - self.level();
                if len > free {
                    self.lost += len - free;
                    len = free;
                }
            }
            TraceMode::Ring => {
                if len >= self.capacity {
                    // Pathological: a single push larger than the region —
                    // the excess AND everything currently stored is lost.
                    self.lost += len - self.capacity;
                    self.lost += self.level();
                    self.rd = self.wr;
                    len = self.capacity;
                }
                let overflow = (self.level() + len).saturating_sub(self.capacity);
                if overflow > 0 {
                    self.rd += overflow;
                    self.lost += overflow;
                }
            }
        }
        if len == 0 {
            return Vec::new();
        }
        let start = (self.wr % self.capacity) as u32;
        self.wr += len;
        let first = (self.capacity - u64::from(start)).min(len) as u32;
        let mut out = vec![Placement {
            region_offset: start,
            len: first,
        }];
        if u64::from(first) < len {
            out.push(Placement {
                region_offset: 0,
                len: (len - u64::from(first)) as u32,
            });
        }
        out
    }

    /// Marks up to `max` stored bytes as downloaded; returns the placements
    /// the host must read (in order).
    pub fn pop(&mut self, max: u32) -> Vec<Placement> {
        let len = u64::from(max).min(self.level());
        if len == 0 {
            return Vec::new();
        }
        let start = (self.rd % self.capacity) as u32;
        self.rd += len;
        let first = (self.capacity - u64::from(start)).min(len) as u32;
        let mut out = vec![Placement {
            region_offset: start,
            len: first,
        }];
        if u64::from(first) < len {
            out.push(Placement {
                region_offset: 0,
                len: (len - u64::from(first)) as u32,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_mode_drops_when_full() {
        let mut tc = TraceController::new(10, TraceMode::Linear);
        assert_eq!(
            tc.push(6),
            vec![Placement {
                region_offset: 0,
                len: 6
            }]
        );
        assert_eq!(
            tc.push(6),
            vec![Placement {
                region_offset: 6,
                len: 4
            }]
        );
        assert_eq!(tc.lost(), 2);
        assert_eq!(tc.level(), 10);
        assert!(tc.push(1).is_empty());
        assert_eq!(tc.lost(), 3);
    }

    #[test]
    fn ring_mode_sacrifices_oldest() {
        let mut tc = TraceController::new(10, TraceMode::Ring);
        tc.push(8);
        let p = tc.push(4);
        // Wraps: 2 bytes at offset 8, 2 bytes at offset 0.
        assert_eq!(
            p,
            vec![
                Placement {
                    region_offset: 8,
                    len: 2
                },
                Placement {
                    region_offset: 0,
                    len: 2
                }
            ]
        );
        assert_eq!(tc.lost(), 2, "2 oldest bytes overwritten");
        assert_eq!(tc.level(), 10);
    }

    #[test]
    fn pop_follows_write_order() {
        let mut tc = TraceController::new(10, TraceMode::Ring);
        tc.push(6);
        let p = tc.pop(4);
        assert_eq!(
            p,
            vec![Placement {
                region_offset: 0,
                len: 4
            }]
        );
        assert_eq!(tc.level(), 2);
        tc.push(7); // wr=13, level 9
        let p = tc.pop(100);
        assert_eq!(p.len(), 2, "wrapped read");
        assert_eq!(
            p[0],
            Placement {
                region_offset: 4,
                len: 6
            }
        );
        assert_eq!(
            p[1],
            Placement {
                region_offset: 0,
                len: 3
            }
        );
        assert_eq!(tc.level(), 0);
    }

    #[test]
    fn drain_keeps_up_with_slow_producer() {
        let mut tc = TraceController::new(64, TraceMode::Ring);
        for _ in 0..1000 {
            tc.push(3);
            tc.pop(4);
        }
        assert_eq!(tc.lost(), 0, "consumer faster than producer never loses");
    }

    #[test]
    fn oversized_single_push() {
        let mut tc = TraceController::new(8, TraceMode::Ring);
        let p = tc.push(20);
        assert_eq!(p[0].len + p.get(1).map_or(0, |x| x.len), 8);
        assert_eq!(tc.lost(), 12);
    }
}
