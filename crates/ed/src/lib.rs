//! The **Emulation Device**: the unchanged product chip plus the Emulation
//! Extension Chip (EEC) — MCDS and emulation memory — exactly the structure
//! of Fig. 4 in Mayer & Hellwig (DATE 2008).
//!
//! An [`EmulationDevice`] wraps an [`audo_platform::Soc`] and attaches:
//!
//! * a programmed [`audo_mcds::Mcds`] fed from the SoC's per-cycle
//!   observation stream (non-intrusive by construction: the SoC's behaviour
//!   is identical with and without the EEC),
//! * the **EMEM** emulation memory, partitioned between a trace region
//!   (managed by [`trace_ctrl::TraceController`]) and the calibration
//!   overlay pages,
//! * the Cerberus/Back Bone Bus tool-access path: [`EmulationDevice::tool_read`]
//!   and [`EmulationDevice::tool_write`] give the host functional access to
//!   target memory and EMEM; bandwidth budgeting lives in `audo-dap`.
//!
//! ```
//! use audo_ed::{EdConfig, EmulationDevice};
//! use audo_platform::config::SocConfig;
//! use audo_tricore::asm::assemble;
//!
//! let image = assemble(".org 0x80000000\n_start: movi d0, 1\n halt\n")?;
//! let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
//! ed.soc.load_image(&image)?;
//! while !ed.step()?.halted {}
//! assert_eq!(ed.soc.tricore.arch().d[0], 1);
//! # Ok::<(), audo_common::SimError>(())
//! ```

pub mod tool_port;
pub mod trace_ctrl;

use audo_common::{Addr, Cycle, EventRecord, SimError};
use audo_mcds::Mcds;
use audo_platform::config::{SocConfig, EMEM_BASE};
use audo_platform::fabric::OvcEntry;
use audo_platform::soc::{CycleObservation, Soc};

pub use tool_port::CerberusPort;
pub use trace_ctrl::{Placement, TraceController, TraceMode};

/// Emulation Extension Chip configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdConfig {
    /// Bytes of EMEM dedicated to trace (the rest is calibration overlay).
    pub trace_bytes: u32,
    /// Trace-region full behaviour.
    pub trace_mode: TraceMode,
}

impl Default for EdConfig {
    /// Half of a 512 KiB EMEM for trace, ring mode.
    fn default() -> EdConfig {
        EdConfig {
            trace_bytes: 256 * 1024,
            trace_mode: TraceMode::Ring,
        }
    }
}

/// Result of stepping the Emulation Device one cycle.
#[derive(Debug, Clone)]
pub struct EdStep {
    /// The product chip's observation for this cycle (also what the MCDS
    /// saw) — available to testbenches as ground truth.
    pub obs: CycleObservation,
    /// Trace bytes the MCDS produced this cycle.
    pub trace_bytes: u32,
    /// The CPU has halted.
    pub halted: bool,
}

/// The Emulation Device: product chip + EEC.
#[derive(Debug)]
pub struct EmulationDevice {
    /// The unchanged product chip.
    pub soc: Soc,
    /// The MCDS instance (absent = observation discarded, like a production
    /// device).
    pub mcds: Option<Mcds>,
    /// Trace-region bookkeeping.
    pub trace: TraceController,
    /// Cerberus tool-port state (trace replay window for the framed
    /// DAP session protocol — see [`tool_port`]).
    pub tool_port: CerberusPort,
    cfg: EdConfig,
    scratch: Vec<u8>,
}

impl EmulationDevice {
    /// Builds an ED around a fresh SoC.
    ///
    /// # Panics
    ///
    /// Panics if the trace region exceeds the configured EMEM size.
    #[must_use]
    pub fn new(soc_cfg: SocConfig, cfg: EdConfig) -> EmulationDevice {
        assert!(
            u64::from(cfg.trace_bytes) <= soc_cfg.emem_size.bytes(),
            "trace region larger than EMEM"
        );
        EmulationDevice {
            soc: Soc::new(soc_cfg),
            mcds: None,
            trace: TraceController::new(cfg.trace_bytes.max(1), cfg.trace_mode),
            tool_port: CerberusPort::default(),
            cfg,
            scratch: Vec::new(),
        }
    }

    /// Installs a programmed MCDS (the tool writes the EEC configuration).
    pub fn program_mcds(&mut self, mcds: Mcds) {
        self.mcds = Some(mcds);
    }

    /// Samples the Emulation Device's counters into an observability
    /// registry: the product chip's counters ([`Soc::export_obs`]) plus the
    /// EEC-side trace-region bookkeeping (fill level, ring overwrites,
    /// total bytes produced, EMEM fill ratio).
    pub fn export_obs(&self, reg: &mut audo_obs::Registry) {
        self.soc.export_obs(reg);
        reg.sample("ed.trace.level_bytes", self.trace.level());
        reg.sample("ed.trace.capacity_bytes", self.trace.capacity());
        reg.sample("ed.trace.lost_bytes", self.trace.lost());
        reg.sample("ed.trace.total_written_bytes", self.trace.total_written());
        if self.trace.capacity() > 0 {
            reg.gauge(
                "ed.trace.fill_ratio",
                self.trace.level() as f64 / self.trace.capacity() as f64,
            );
        }
    }

    /// Byte offset inside EMEM where the calibration region starts.
    #[must_use]
    pub fn calibration_offset(&self) -> u32 {
        self.cfg.trace_bytes
    }

    /// Size of the calibration region in bytes.
    #[must_use]
    pub fn calibration_bytes(&self) -> u32 {
        (self.soc.fabric.cfg.emem_size.bytes() as u32).saturating_sub(self.cfg.trace_bytes)
    }

    /// Maps a flash page onto a calibration EMEM page and seeds it with the
    /// flash contents (so tuning starts from the programmed values).
    ///
    /// `slot` selects the OVC entry and the calibration page.
    ///
    /// # Errors
    ///
    /// Fails if the page would not fit the calibration region.
    pub fn map_calibration_page(&mut self, slot: usize, flash_page: u32) -> Result<(), SimError> {
        let page = self.soc.fabric.cfg.overlay_page;
        let cal_base = self.calibration_offset();
        let emem_off = cal_base + slot as u32 * page;
        if emem_off + page > self.soc.fabric.cfg.emem_size.bytes() as u32 {
            return Err(SimError::InvalidConfig {
                message: format!("calibration slot {slot} exceeds EMEM"),
            });
        }
        // Seed the overlay page with the underlying flash bytes.
        let flash_addr = Addr(audo_platform::config::PFLASH_BASE.0 + flash_page * page);
        let bytes = self.soc.fabric.peek_bytes(flash_addr, page as usize)?;
        for (i, b) in bytes.iter().enumerate() {
            self.soc
                .fabric
                .poke(EMEM_BASE.offset(emem_off + i as u32), 1, u32::from(*b))?;
        }
        self.soc.fabric.overlay.set_entry(
            slot,
            OvcEntry {
                enabled: true,
                flash_page,
                emem_page: emem_off / page,
            },
        );
        Ok(())
    }

    /// Advances the device one cycle: SoC, then MCDS observation, then the
    /// trace controller.
    ///
    /// # Errors
    ///
    /// Propagates SoC faults.
    pub fn step(&mut self) -> Result<EdStep, SimError> {
        let obs = self.soc.step()?;
        self.scratch.clear();
        if let Some(mcds) = &mut self.mcds {
            mcds.observe(obs.cycle, &obs.events, &obs.bus, &mut self.scratch);
        }
        let produced = self.scratch.len() as u32;
        if produced > 0 {
            let mut consumed = 0usize;
            for p in self.trace.push(produced) {
                for i in 0..p.len {
                    let b = self.scratch[consumed + i as usize];
                    self.soc
                        .fabric
                        .poke(EMEM_BASE.offset(p.region_offset + i), 1, u32::from(b))?;
                }
                consumed += p.len as usize;
            }
        }
        Ok(EdStep {
            halted: obs.halted,
            trace_bytes: produced,
            obs,
        })
    }

    /// Downloads up to `max` trace bytes (host side, via Cerberus). The
    /// caller is responsible for charging the DAP budget.
    ///
    /// # Errors
    ///
    /// Propagates EMEM access faults (impossible with a well-formed config).
    pub fn drain_trace(&mut self, max: u32) -> Result<Vec<u8>, SimError> {
        let mut out = Vec::new();
        for p in self.trace.pop(max) {
            for i in 0..p.len {
                out.push(
                    self.soc
                        .fabric
                        .peek(EMEM_BASE.offset(p.region_offset + i), 1)? as u8,
                );
            }
        }
        Ok(out)
    }

    /// Functional tool read of target memory over the Back Bone Bus.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    pub fn tool_read(&mut self, addr: Addr, len: usize) -> Result<Vec<u8>, SimError> {
        self.soc.fabric.peek_bytes(addr, len)
    }

    /// Functional tool write of target memory over the Back Bone Bus
    /// (calibration tuning writes go through here).
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    pub fn tool_write(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), SimError> {
        for (i, b) in bytes.iter().enumerate() {
            self.soc
                .fabric
                .poke(addr.offset(i as u32), 1, u32::from(*b))?;
        }
        Ok(())
    }

    /// Runs until `HALT` or `max_cycles`, invoking `on_step` per cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LimitExceeded`] at the cycle limit.
    pub fn run<F: FnMut(&EdStep)>(
        &mut self,
        max_cycles: u64,
        mut on_step: F,
    ) -> Result<u64, SimError> {
        let start = self.soc.now();
        loop {
            if self.soc.now().saturating_sub(start) >= max_cycles {
                return Err(SimError::LimitExceeded {
                    what: "cycles",
                    limit: max_cycles,
                });
            }
            let step = self.step()?;
            let halted = step.halted;
            on_step(&step);
            if halted {
                return Ok(self.soc.now() - start);
            }
        }
    }

    /// Runs to halt, collecting ground-truth events and draining the trace
    /// with unlimited bandwidth. Returns `(cycles, trace bytes, events)` —
    /// the standard harness for methodology-validation tests.
    ///
    /// # Errors
    ///
    /// See [`EmulationDevice::run`].
    pub fn run_collect(
        &mut self,
        max_cycles: u64,
    ) -> Result<(u64, Vec<u8>, Vec<EventRecord>), SimError> {
        let mut events = Vec::new();
        let cycles = self.run(max_cycles, |step| {
            events.extend_from_slice(&step.obs.events);
        })?;
        let level = self.trace.level() as u32;
        let trace = self.drain_trace(level)?;
        Ok((cycles, trace, events))
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.soc.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audo_common::{PerfEvent, SourceId};
    use audo_mcds::select::{EventClass, EventSelector};
    use audo_mcds::{decode_stream, Basis, RateProbe, TraceMessage};
    use audo_tricore::asm::assemble;

    fn loaded_ed(src: &str, ed_cfg: EdConfig) -> EmulationDevice {
        let image = assemble(src).expect("assembles");
        let mut ed = EmulationDevice::new(SocConfig::default(), ed_cfg);
        ed.soc.load_image(&image).expect("loads");
        ed
    }

    const COUNT_LOOP: &str = "
        .org 0x80000000
    _start:
        movi d0, 0
        li d1, 2000
    head:
        addi d0, d0, 1
        jne d0, d1, head
        halt
    ";

    #[test]
    fn measured_ipc_matches_ground_truth_exactly() {
        let mut ed = loaded_ed(COUNT_LOOP, EdConfig::default());
        let mcds = Mcds::builder()
            .probe(RateProbe {
                event: EventSelector::of(EventClass::InstrRetired).from(SourceId::TRICORE),
                basis: Basis::Cycles(100),
                group: None,
            })
            .build()
            .unwrap();
        ed.program_mcds(mcds);
        let (_cycles, trace, events) = ed.run_collect(1_000_000).unwrap();
        let msgs = decode_stream(&trace).unwrap();
        let measured: u64 = msgs
            .iter()
            .filter_map(|(_, m)| match m {
                TraceMessage::Counter { num, .. } => Some(*num),
                _ => None,
            })
            .sum();
        let truth: u64 = events
            .iter()
            .filter(|e| e.source == SourceId::TRICORE)
            .filter_map(|e| match e.event {
                PerfEvent::InstrRetired { count } => Some(u64::from(count)),
                _ => None,
            })
            .sum();
        // The measured windows cover all completed 100-cycle windows; the
        // final partial window is not reported.
        let tail_allowance = 300; // < 100 cycles x max 3 IPC
        assert!(
            measured <= truth && truth - measured < tail_allowance,
            "measured {measured} vs truth {truth}"
        );
        assert!(measured > 0);
    }

    #[test]
    fn trace_lands_in_emem_and_survives_roundtrip() {
        let mut ed = loaded_ed(
            COUNT_LOOP,
            EdConfig {
                trace_bytes: 64 * 1024,
                trace_mode: TraceMode::Linear,
            },
        );
        ed.program_mcds(Mcds::builder().program_trace().build().unwrap());
        let mut total = 0u32;
        ed.run(1_000_000, |s| total += s.trace_bytes).unwrap();
        assert!(total > 0, "program trace produced bytes");
        assert_eq!(ed.trace.lost(), 0, "region large enough for the whole run");
        let stored = ed.trace.level();
        let bytes = ed.drain_trace(stored as u32).unwrap();
        let msgs = decode_stream(&bytes).unwrap();
        assert!(
            msgs.iter()
                .any(|(_, m)| matches!(m, TraceMessage::FlowDirect { .. })),
            "flow messages decoded from EMEM"
        );
    }

    #[test]
    fn linear_mode_loses_bytes_when_region_tiny() {
        let mut ed = loaded_ed(
            COUNT_LOOP,
            EdConfig {
                trace_bytes: 64,
                trace_mode: TraceMode::Linear,
            },
        );
        ed.program_mcds(Mcds::builder().program_trace().build().unwrap());
        ed.run(1_000_000, |_| {}).unwrap();
        assert!(ed.trace.lost() > 0, "64-byte region must overflow");
        assert_eq!(ed.trace.level(), 64);
    }

    #[test]
    fn calibration_page_seeds_and_redirects() {
        let src = "
            .org 0x80000000
        _start:
            la a2, table
            ld.w d0, [a2]
            halt
            .align 32
            .org 0x80004000     ; on its own 8 KiB page (page 2)
        table:
            .word 1111
        ";
        let mut ed = loaded_ed(src, EdConfig::default());
        // Map flash page 2 (0x80004000 / 0x2000) to a calibration slot.
        ed.map_calibration_page(0, 2).unwrap();
        // The seeded value reads back through the flash address.
        let v = ed.tool_read(Addr(0x8000_4000), 4).unwrap();
        assert_eq!(u32::from_le_bytes([v[0], v[1], v[2], v[3]]), 1111);
        // The tool tunes the parameter in EMEM while the target runs.
        let cal = EMEM_BASE.offset(ed.calibration_offset());
        ed.tool_write(cal, &2222u32.to_le_bytes()).unwrap();
        ed.run(1_000_000, |_| {}).unwrap();
        assert_eq!(
            ed.soc.tricore.arch().d[0],
            2222,
            "CPU reads the tuned value"
        );
    }

    #[test]
    fn production_device_without_mcds_produces_no_trace() {
        let mut ed = loaded_ed(COUNT_LOOP, EdConfig::default());
        let mut total = 0u32;
        ed.run(1_000_000, |s| total += s.trace_bytes).unwrap();
        assert_eq!(total, 0);
    }

    #[test]
    fn observation_is_nonintrusive() {
        // Same program with and without MCDS: identical cycle counts and
        // architectural results.
        let mut plain = loaded_ed(COUNT_LOOP, EdConfig::default());
        let t_plain = plain.run(10_000_000, |_| {}).unwrap();
        let mut traced = loaded_ed(COUNT_LOOP, EdConfig::default());
        traced.program_mcds(
            Mcds::builder()
                .program_trace()
                .probe(RateProbe {
                    event: EventSelector::of(EventClass::InstrRetired),
                    basis: Basis::Cycles(50),
                    group: None,
                })
                .build()
                .unwrap(),
        );
        let t_traced = traced.run(10_000_000, |_| {}).unwrap();
        assert_eq!(t_plain, t_traced, "MCDS must not perturb timing");
        assert_eq!(plain.soc.tricore.arch().d, traced.soc.tricore.arch().d);
    }
}
