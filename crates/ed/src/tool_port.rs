//! The Cerberus tool port: the Emulation Device's side of the framed DAP
//! protocol.
//!
//! [`CerberusPort`] adds the state a *robust* tool link needs on the
//! device: an in-flight replay buffer for trace readout. Bytes popped from
//! the [`crate::TraceController`] are held until the host's cumulative
//! acknowledge covers them, so a `TraceRead` transaction whose response
//! was corrupted or dropped can simply be retried — the device hands out
//! the very same bytes again. That idempotence is what lets
//! `audo_dap::DapSession` guarantee the drained stream is byte-identical
//! to a lossless drain (or an exact, explicitly-flagged prefix of it).

use audo_common::{Addr, SimError};
use audo_dap::session::{DapEndpoint, TraceChunk};

use crate::EmulationDevice;

/// Device-side tool-port state: the trace replay window.
#[derive(Debug, Default)]
pub struct CerberusPort {
    /// Absolute stream offset of `inflight[0]` (cumulative bytes since
    /// reset, counting acknowledged ones).
    base: u64,
    /// Popped-but-unacknowledged trace bytes, replayed on retry.
    inflight: Vec<u8>,
}

impl CerberusPort {
    /// Bytes currently held for possible replay.
    #[must_use]
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Absolute stream offset of the oldest unacknowledged byte.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }
}

impl DapEndpoint for EmulationDevice {
    fn reg_read(&mut self, addr: u32) -> Result<u32, SimError> {
        let b = self.soc.fabric.peek_bytes(Addr(addr), 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn reg_write(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        self.tool_write(Addr(addr), &value.to_le_bytes())
    }

    fn block_read(&mut self, addr: u32, len: usize) -> Result<Vec<u8>, SimError> {
        self.tool_read(Addr(addr), len)
    }

    fn block_write(&mut self, addr: u32, bytes: &[u8]) -> Result<(), SimError> {
        self.tool_write(Addr(addr), bytes)
    }

    fn trace_read(&mut self, ack: u64, max: usize) -> Result<TraceChunk, SimError> {
        // 1. Retire everything the host has acknowledged.
        let acked = usize::try_from(ack.saturating_sub(self.tool_port.base))
            .unwrap_or(usize::MAX)
            .min(self.tool_port.inflight.len());
        self.tool_port.inflight.drain(..acked);
        self.tool_port.base += acked as u64;
        // 2. Top the replay window up from the trace controller.
        let need = max.saturating_sub(self.tool_port.inflight.len());
        if need > 0 {
            // reason: min() clamps to u32::MAX before the cast.
            #[allow(clippy::cast_possible_truncation)]
            let fresh = self.drain_trace(need.min(u32::MAX as usize) as u32)?;
            self.tool_port.inflight.extend_from_slice(&fresh);
        }
        // 3. Hand out the window front — the same bytes for the same `ack`,
        //    however often it is asked.
        let give = max.min(self.tool_port.inflight.len());
        Ok(TraceChunk {
            base: self.tool_port.base,
            bytes: self.tool_port.inflight[..give].to_vec(),
            remaining: (self.tool_port.inflight.len() - give) as u64 + self.trace.level(),
            device_lost: self.trace.lost(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdConfig, EmulationDevice, TraceMode};
    use audo_mcds::Mcds;
    use audo_platform::config::SocConfig;
    use audo_tricore::asm::assemble;

    fn traced_ed() -> EmulationDevice {
        let image = assemble(
            "
            .org 0x80000000
        _start:
            movi d0, 0
            li d1, 500
        head:
            addi d0, d0, 1
            jne d0, d1, head
            halt
        ",
        )
        .expect("assembles");
        let mut ed = EmulationDevice::new(
            SocConfig::default(),
            EdConfig {
                trace_bytes: 64 * 1024,
                trace_mode: TraceMode::Linear,
            },
        );
        ed.soc.load_image(&image).expect("loads");
        ed.program_mcds(Mcds::builder().program_trace().build().unwrap());
        ed
    }

    #[test]
    fn trace_read_is_idempotent_until_acked() {
        let mut ed = traced_ed();
        ed.run(1_000_000, |_| {}).unwrap();
        let first = ed.trace_read(0, 32).unwrap();
        assert_eq!(first.base, 0);
        assert_eq!(first.bytes.len(), 32);
        // Same ack → byte-identical replay (a lost response is retried).
        let replay = ed.trace_read(0, 32).unwrap();
        assert_eq!(first, replay);
        // Acknowledge: the window advances and never returns old bytes.
        let next = ed.trace_read(32, 32).unwrap();
        assert_eq!(next.base, 32);
        assert_ne!(next.bytes, first.bytes);
    }

    #[test]
    fn acked_drain_equals_direct_drain() {
        let mut direct = traced_ed();
        direct.run(1_000_000, |_| {}).unwrap();
        let level = direct.trace.level();
        // reason: a 1M-cycle test run fills far less than 4 GiB of trace.
        #[allow(clippy::cast_possible_truncation)]
        let want = direct.drain_trace(level as u32).unwrap();
        let mut via_port = traced_ed();
        via_port.run(1_000_000, |_| {}).unwrap();
        let mut got = Vec::new();
        let mut ack = 0u64;
        loop {
            let chunk = via_port.trace_read(ack, 48).unwrap();
            if chunk.bytes.is_empty() && chunk.remaining == 0 {
                break;
            }
            ack += chunk.bytes.len() as u64;
            got.extend_from_slice(&chunk.bytes);
        }
        assert_eq!(got, want, "port drain must equal the direct tool path");
    }

    #[test]
    fn remaining_counts_window_and_controller() {
        let mut ed = traced_ed();
        ed.run(1_000_000, |_| {}).unwrap();
        let total = ed.trace.level();
        let chunk = ed.trace_read(0, 16).unwrap();
        assert_eq!(chunk.bytes.len() as u64 + chunk.remaining, total);
        assert_eq!(chunk.device_lost, 0);
    }
}
