//! Deterministic replays of the inputs named by the committed proptest
//! regression seed for `prop_trace_ctrl.rs` (`ops = [Push(1), Push(92)],
//! capacity = 1, ring = true`), pinned as plain unit tests so the exact
//! scenario keeps running even if the property strategies evolve.
//!
//! The surrounding sweeps cover the same failure surface the shrink points
//! at: ring-mode pushes far larger than a tiny capacity, at capacities 1–4.

use audo_ed::{Placement, TraceController, TraceMode};

fn placed(placements: &[Placement]) -> u64 {
    placements.iter().map(|p| u64::from(p.len)).sum()
}

fn assert_placements_in_region(placements: &[Placement], capacity: u32) {
    assert!(placements.len() <= 2, "at most one wrap per operation");
    for p in placements {
        assert!(p.len > 0, "no empty placements");
        assert!(
            u64::from(p.region_offset) + u64::from(p.len) <= u64::from(capacity),
            "placement [{}..+{}] escapes region of {capacity}",
            p.region_offset,
            p.len
        );
    }
    if placements.len() == 2 {
        assert_eq!(placements[1].region_offset, 0, "wrap lands at offset 0");
    }
}

/// The committed regression input, step by step.
#[test]
fn seed_push1_push92_capacity1_ring() {
    let mut tc = TraceController::new(1, TraceMode::Ring);

    // Push(1): fits exactly; stored at offset 0, nothing lost.
    let p1 = tc.push(1);
    assert_placements_in_region(&p1, 1);
    assert_eq!(placed(&p1), 1);
    assert_eq!((tc.level(), tc.lost()), (1, 0));

    // Push(92) into a full 1-byte ring: at most `capacity` bytes can land;
    // the displaced byte and the excess are accounted as lost, and the
    // level may never exceed capacity.
    let p2 = tc.push(92);
    assert_placements_in_region(&p2, 1);
    assert!(placed(&p2) <= 1, "cannot place more than capacity");
    assert!(tc.level() <= tc.capacity());

    // The byte-accounting invariant the property asserts:
    // pushed = popped + stored + lost.
    let pushed = 1 + 92;
    assert_eq!(pushed, tc.level() + tc.lost(), "pushed = stored + lost");

    // Whatever is stored must still be poppable and balance afterwards.
    let got = placed(&tc.pop(92));
    assert_eq!(got, tc.capacity().min(1));
    assert_eq!(pushed, got + tc.level() + tc.lost());
}

/// Ring-mode sweep at capacities 1–4: every push size from well below to
/// far above capacity, with the full accounting invariant checked after
/// each operation.
#[test]
fn ring_mode_oversized_pushes_capacities_1_to_4() {
    for capacity in 1u32..=4 {
        for push in [0u32, 1, 2, 3, 4, 5, 92, 200] {
            let mut tc = TraceController::new(capacity, TraceMode::Ring);
            let mut pushed = 0u64;
            let mut popped = 0u64;
            // Two pushes (the seed shape), interleaved level checks, then
            // drain completely.
            for n in [1, push] {
                let pl = tc.push(n);
                assert_placements_in_region(&pl, capacity);
                assert!(placed(&pl) <= u64::from(n));
                pushed += u64::from(n);
                assert!(
                    tc.level() <= tc.capacity(),
                    "cap={capacity} push={n}: level {} > capacity",
                    tc.level()
                );
            }
            loop {
                let got = placed(&tc.pop(3));
                if got == 0 {
                    break;
                }
                popped += got;
            }
            assert_eq!(
                pushed,
                popped + tc.level() + tc.lost(),
                "cap={capacity} push={push}: accounting out of balance"
            );
            assert_eq!(tc.level(), 0, "fully drained");
        }
    }
}

/// A single push larger than capacity must clamp to the region, report the
/// overflow as lost, and leave the controller usable.
#[test]
fn single_push_larger_than_capacity() {
    for capacity in 1u32..=4 {
        for mode in [TraceMode::Ring, TraceMode::Linear] {
            let mut tc = TraceController::new(capacity, mode);
            let pl = tc.push(capacity + 93);
            assert_placements_in_region(&pl, capacity);
            assert!(tc.level() <= tc.capacity());
            assert_eq!(
                u64::from(capacity + 93),
                tc.level() + tc.lost(),
                "cap={capacity} mode={mode:?}"
            );
            // Still usable afterwards: pop everything, push again.
            let drained = placed(&tc.pop(capacity + 93));
            assert_eq!(drained, tc.capacity().min(u64::from(capacity)));
            let pl2 = tc.push(1);
            assert_placements_in_region(&pl2, capacity);
            assert_eq!(placed(&pl2), 1);
        }
    }
}

/// Ring mode at capacity 1 is the degenerate case the seed targets: every
/// wrap lands on the same byte. Hammer it with a long mixed sequence.
#[test]
fn capacity_one_ring_long_sequence() {
    let mut tc = TraceController::new(1, TraceMode::Ring);
    let mut pushed = 0u64;
    let mut popped = 0u64;
    for i in 0u32..200 {
        if i % 3 == 2 {
            popped += placed(&tc.pop(1 + i % 4));
        } else {
            let n = i % 7;
            let pl = tc.push(n);
            assert_placements_in_region(&pl, 1);
            pushed += u64::from(n);
        }
        assert!(tc.level() <= 1);
        assert_eq!(pushed, popped + tc.level() + tc.lost());
    }
}
