//! Property tests for the trace controller's accounting invariants.

use audo_ed::{TraceController, TraceMode};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop(u32),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..200).prop_map(Op::Push),
            (0u32..200).prop_map(Op::Pop)
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 300, ..ProptestConfig::default() })]

    /// In both modes: level never exceeds capacity, and every accepted byte
    /// is either still stored, already popped, or counted as lost.
    #[test]
    fn byte_accounting_balances(
        ops in arb_ops(),
        capacity in 1u32..256,
        ring in any::<bool>(),
    ) {
        let mode = if ring { TraceMode::Ring } else { TraceMode::Linear };
        let mut tc = TraceController::new(capacity, mode);
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for op in &ops {
            match *op {
                Op::Push(n) => {
                    let placed: u64 =
                        tc.push(n).iter().map(|p| u64::from(p.len)).sum();
                    prop_assert!(placed <= u64::from(n));
                    pushed += u64::from(n);
                }
                Op::Pop(n) => {
                    let got: u64 = tc.pop(n).iter().map(|p| u64::from(p.len)).sum();
                    prop_assert!(got <= u64::from(n));
                    popped += got;
                }
            }
            prop_assert!(tc.level() <= tc.capacity(), "level within capacity");
        }
        prop_assert_eq!(
            pushed,
            popped + tc.level() + tc.lost(),
            "pushed = popped + stored + lost"
        );
    }

    /// Placements returned by push/pop always lie inside the region and
    /// cover exactly the reported byte counts.
    #[test]
    fn placements_stay_in_region(ops in arb_ops(), capacity in 1u32..128) {
        let mut tc = TraceController::new(capacity, TraceMode::Ring);
        for op in &ops {
            let placements = match *op {
                Op::Push(n) => tc.push(n),
                Op::Pop(n) => tc.pop(n),
            };
            prop_assert!(placements.len() <= 2, "at most one wrap");
            for p in &placements {
                prop_assert!(p.len > 0, "no empty placements");
                prop_assert!(
                    u64::from(p.region_offset) + u64::from(p.len) <= u64::from(capacity),
                    "placement inside the region"
                );
            }
            if placements.len() == 2 {
                prop_assert_eq!(placements[1].region_offset, 0, "wrap lands at offset 0");
            }
        }
    }

    /// Linear mode never overwrites: without pops, the first `capacity`
    /// bytes pushed are exactly the stored ones.
    #[test]
    fn linear_mode_is_prefix_preserving(pushes in proptest::collection::vec(1u32..64, 1..50)) {
        let capacity = 100u32;
        let mut tc = TraceController::new(capacity, TraceMode::Linear);
        let mut accepted = 0u64;
        for &n in &pushes {
            let placed: u64 = tc.push(n).iter().map(|p| u64::from(p.len)).sum();
            accepted += placed;
        }
        let total: u64 = pushes.iter().map(|&n| u64::from(n)).sum();
        prop_assert_eq!(accepted, total.min(u64::from(capacity)));
        prop_assert_eq!(tc.level(), accepted);
        prop_assert_eq!(tc.lost(), total - accepted);
    }
}
