//! Program images produced by the assembler and consumed by loaders,
//! disassemblers and the host-side trace reconstruction.

use std::collections::BTreeMap;

use audo_common::{Addr, SimError};

use crate::arch::ArchMem;

/// A contiguous run of bytes at a fixed address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Load address of the first byte.
    pub base: Addr,
    /// Section contents.
    pub bytes: Vec<u8>,
}

/// An assembled program: sections, the symbol table, and the entry point.
///
/// # Examples
///
/// ```
/// use audo_tricore::asm::assemble;
///
/// let image = assemble(
///     "
///     .org 0x80000000
/// _start:
///     movi d0, 42
///     halt
///     ",
/// )?;
/// assert_eq!(image.entry().0, 0x8000_0000);
/// assert_eq!(image.symbol("_start"), Some(audo_common::Addr(0x8000_0000)));
/// # Ok::<(), audo_common::SimError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Image {
    sections: Vec<Section>,
    symbols: BTreeMap<String, u32>,
    entry: u32,
}

impl Image {
    /// Creates an image from raw parts. The entry point is the `_start`
    /// symbol if present, otherwise the base of the first section.
    #[must_use]
    pub fn from_parts(sections: Vec<Section>, symbols: BTreeMap<String, u32>) -> Image {
        let entry = symbols
            .get("_start")
            .copied()
            .or_else(|| sections.first().map(|s| s.base.0))
            .unwrap_or(0);
        Image {
            sections,
            symbols,
            entry,
        }
    }

    /// The program entry point.
    #[must_use]
    pub fn entry(&self) -> Addr {
        Addr(self.entry)
    }

    /// All sections in definition order.
    #[must_use]
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Looks up a symbol's address.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<Addr> {
        self.symbols.get(name).copied().map(Addr)
    }

    /// The full symbol table, sorted by name.
    #[must_use]
    pub fn symbols(&self) -> &BTreeMap<String, u32> {
        &self.symbols
    }

    /// Returns `(address, name)` pairs of all symbols, sorted by address —
    /// the function table used by the profiler for hot-spot attribution.
    #[must_use]
    pub fn symbols_by_addr(&self) -> Vec<(Addr, &str)> {
        let mut v: Vec<(Addr, &str)> = self
            .symbols
            .iter()
            .map(|(n, &a)| (Addr(a), n.as_str()))
            .collect();
        v.sort_by_key(|&(a, _)| a);
        v
    }

    /// Returns the name of the innermost symbol at or before `addr`, if any.
    #[must_use]
    pub fn symbol_containing(&self, addr: Addr) -> Option<&str> {
        self.symbols
            .iter()
            .filter(|&(_, &a)| a <= addr.0)
            .max_by_key(|&(_, &a)| a)
            .map(|(n, _)| n.as_str())
    }

    /// Total size of all sections in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.sections.iter().map(|s| s.bytes.len()).sum()
    }

    /// Reads the byte at `addr` from the image, if covered by a section.
    #[must_use]
    pub fn byte_at(&self, addr: Addr) -> Option<u8> {
        for s in &self.sections {
            if addr.in_range(s.base, s.bytes.len() as u32) {
                return Some(s.bytes[(addr.0 - s.base.0) as usize]);
            }
        }
        None
    }

    /// Reads up to `len` consecutive bytes starting at `addr`.
    #[must_use]
    pub fn bytes_at(&self, addr: Addr, len: usize) -> Option<Vec<u8>> {
        (0..len)
            .map(|i| self.byte_at(addr.offset(i as u32)))
            .collect()
    }

    /// Writes every section into a functional memory.
    ///
    /// # Errors
    ///
    /// Fails if a section lies outside mapped memory.
    pub fn load_into<M: ArchMem>(&self, mem: &mut M) -> Result<(), SimError> {
        for s in &self.sections {
            for (i, &b) in s.bytes.iter().enumerate() {
                mem.write(s.base.offset(i as u32), 1, u32::from(b))?;
            }
        }
        Ok(())
    }

    /// Writes only the sections overlapping `[base, base + len)` into a
    /// functional memory — the calibration-overlay swap primitive.
    ///
    /// The paper's EMEM story patches alternative calibration data (and
    /// occasionally code) over flash while the application keeps running.
    /// This loads just the overlay window from `self`, leaving everything
    /// outside it untouched. Writes go through the normal store path, so
    /// the target region's generation counter is bumped and any predecoded
    /// ISS blocks covering the window are invalidated on next entry.
    ///
    /// Returns the number of bytes written.
    ///
    /// # Errors
    ///
    /// Fails if an overlapping byte lies outside mapped memory.
    pub fn overlay_into<M: ArchMem>(
        &self,
        mem: &mut M,
        base: Addr,
        len: u32,
    ) -> Result<usize, SimError> {
        let window_end = u64::from(base.0) + u64::from(len);
        let mut written = 0usize;
        for s in &self.sections {
            for (i, &b) in s.bytes.iter().enumerate() {
                let addr = s.base.offset(i as u32);
                if u64::from(addr.0) >= u64::from(base.0) && u64::from(addr.0) < window_end {
                    mem.write(addr, 1, u32::from(b))?;
                    written += 1;
                }
            }
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_image() -> Image {
        let mut syms = BTreeMap::new();
        syms.insert("_start".to_string(), 0x8000_0010);
        syms.insert("table".to_string(), 0x8000_0100);
        syms.insert("func_b".to_string(), 0x8000_0040);
        Image::from_parts(
            vec![
                Section {
                    base: Addr(0x8000_0000),
                    bytes: vec![1, 2, 3, 4],
                },
                Section {
                    base: Addr(0x8000_0100),
                    bytes: vec![9, 9],
                },
            ],
            syms,
        )
    }

    #[test]
    fn entry_prefers_start_symbol() {
        let img = demo_image();
        assert_eq!(img.entry(), Addr(0x8000_0010));
        let img2 = Image::from_parts(
            vec![Section {
                base: Addr(0x4000),
                bytes: vec![0],
            }],
            BTreeMap::new(),
        );
        assert_eq!(img2.entry(), Addr(0x4000));
    }

    #[test]
    fn byte_lookup_across_sections() {
        let img = demo_image();
        assert_eq!(img.byte_at(Addr(0x8000_0003)), Some(4));
        assert_eq!(img.byte_at(Addr(0x8000_0004)), None);
        assert_eq!(img.byte_at(Addr(0x8000_0101)), Some(9));
        assert_eq!(img.bytes_at(Addr(0x8000_0000), 4), Some(vec![1, 2, 3, 4]));
        assert_eq!(
            img.bytes_at(Addr(0x8000_0002), 4),
            None,
            "crosses section end"
        );
    }

    #[test]
    fn symbol_containment() {
        let img = demo_image();
        assert_eq!(img.symbol_containing(Addr(0x8000_0015)), Some("_start"));
        assert_eq!(img.symbol_containing(Addr(0x8000_0050)), Some("func_b"));
        assert_eq!(img.symbol_containing(Addr(0x8000_0000)), None);
        let by_addr = img.symbols_by_addr();
        assert_eq!(by_addr[0].1, "_start");
        assert_eq!(by_addr[2].1, "table");
    }

    #[test]
    fn overlay_into_touches_only_the_window() {
        use crate::mem::FlatMem;
        let img = demo_image();
        let mut mem = FlatMem::new();
        mem.add_region(Addr(0x8000_0000), 0x200);
        // Only the second section (two bytes at 0x8000_0100) overlaps.
        let n = img.overlay_into(&mut mem, Addr(0x8000_0100), 0x10).unwrap();
        assert_eq!(n, 2);
        assert_eq!(mem.read_byte(Addr(0x8000_0100)).unwrap(), 9);
        // First section untouched: still zero-initialised.
        assert_eq!(mem.read_byte(Addr(0x8000_0000)).unwrap(), 0);
        // The overlay bumped the region's write generation.
        assert_eq!(mem.generation(Addr(0x8000_0000)), Some(2));
    }

    #[test]
    fn load_into_flat_memory() {
        use crate::mem::FlatMem;
        let img = demo_image();
        let mut mem = FlatMem::new();
        mem.add_region(Addr(0x8000_0000), 0x200);
        img.load_into(&mut mem).unwrap();
        assert_eq!(mem.read_byte(Addr(0x8000_0001)).unwrap(), 2);
        assert_eq!(mem.read_byte(Addr(0x8000_0100)).unwrap(), 9);
        assert_eq!(img.size(), 6);
    }
}
