//! Disassembler: formats decoded instructions back into assembler syntax.
//!
//! Used by trace viewers and the host-side program-flow reconstruction to
//! present readable listings; `disassemble` round-trips with the assembler
//! dialect of [`crate::asm`].

use audo_common::Addr;

use crate::image::Image;
use crate::isa::{BranchCond, Instr, MemWidth};

/// Formats one instruction at `pc` (needed to print absolute branch targets).
#[must_use]
pub fn format_instr(instr: &Instr, pc: Addr) -> String {
    use Instr::*;
    let bt = |off: i32| -> String { format!("{:#x}", pc.0.wrapping_add((off as u32) << 1)) };
    match *instr {
        Nop => "nop".to_string(),
        Halt => "halt".to_string(),
        Wait => "wait".to_string(),
        Ret => "ret".to_string(),
        Rfe => "rfe".to_string(),
        Enable => "enable".to_string(),
        Disable => "disable".to_string(),
        Debug { code } => format!("debug {code}"),
        Syscall { num } => format!("syscall {num}"),
        MovD { rd, rs } => format!("mov {rd}, {rs}"),
        MovAA { ad, a_src } => format!("mov.aa {ad}, {a_src}"),
        MovDtoA { ad, rs } => format!("mov.a {ad}, {rs}"),
        MovAtoD { rd, a_src } => format!("mov.d {rd}, {a_src}"),
        MovI { rd, imm } => format!("movi {rd}, {imm}"),
        MovH { rd, imm } => format!("movh {rd}, {imm:#x}"),
        MovU { rd, imm } => format!("movu {rd}, {imm:#x}"),
        MovHA { ad, imm } => format!("movh.a {ad}, {imm:#x}"),
        AddIA { ad, imm } => format!("addia {ad}, {imm}"),
        OrIL { rd, imm } => format!("oril {rd}, {imm:#x}"),
        Lea { ad, ab, off } => format!("lea {ad}, {ab}, {off}"),
        Add { rd, ra, rb } => format!("add {rd}, {ra}, {rb}"),
        Sub { rd, ra, rb } => format!("sub {rd}, {ra}, {rb}"),
        And { rd, ra, rb } => format!("and {rd}, {ra}, {rb}"),
        Or { rd, ra, rb } => format!("or {rd}, {ra}, {rb}"),
        Xor { rd, ra, rb } => format!("xor {rd}, {ra}, {rb}"),
        Min { rd, ra, rb } => format!("min {rd}, {ra}, {rb}"),
        Max { rd, ra, rb } => format!("max {rd}, {ra}, {rb}"),
        Mul { rd, ra, rb } => format!("mul {rd}, {ra}, {rb}"),
        Mac { rd, ra, rb } => format!("mac {rd}, {ra}, {rb}"),
        Div { rd, ra, rb } => format!("div {rd}, {ra}, {rb}"),
        Rem { rd, ra, rb } => format!("rem {rd}, {ra}, {rb}"),
        Sh { rd, ra, rb } => format!("sh {rd}, {ra}, {rb}"),
        Sha { rd, ra, rb } => format!("sha {rd}, {ra}, {rb}"),
        ShI { rd, ra, amount } => format!("shi {rd}, {ra}, {amount}"),
        AddI { rd, ra, imm } => format!("addi {rd}, {ra}, {imm}"),
        AndI { rd, ra, imm } => format!("andi {rd}, {ra}, {imm:#x}"),
        OrI { rd, ra, imm } => format!("ori {rd}, {ra}, {imm:#x}"),
        XorI { rd, ra, imm } => format!("xori {rd}, {ra}, {imm:#x}"),
        Clz { rd, ra } => format!("clz {rd}, {ra}"),
        SextB { rd, ra } => format!("sext.b {rd}, {ra}"),
        SextH { rd, ra } => format!("sext.h {rd}, {ra}"),
        ZextB { rd, ra } => format!("zext.b {rd}, {ra}"),
        ZextH { rd, ra } => format!("zext.h {rd}, {ra}"),
        Extr { rd, ra, pos, width } => format!("extr {rd}, {ra}, {pos}, {width}"),
        Insert { rd, rs, pos, width } => format!("insert {rd}, {rs}, {pos}, {width}"),
        Lt { rd, ra, rb } => format!("lt {rd}, {ra}, {rb}"),
        LtU { rd, ra, rb } => format!("ltu {rd}, {ra}, {rb}"),
        EqR { rd, ra, rb } => format!("eq {rd}, {ra}, {rb}"),
        NeR { rd, ra, rb } => format!("ne {rd}, {ra}, {rb}"),
        Sel { rd, cond, rs } => format!("sel {rd}, {cond}, {rs}"),
        Ld {
            rd,
            ab,
            off,
            width,
            sign,
        } => {
            let suffix = match (width, sign) {
                (MemWidth::Word, _) => "w",
                (MemWidth::Half, true) => "h",
                (MemWidth::Half, false) => "hu",
                (MemWidth::Byte, true) => "b",
                (MemWidth::Byte, false) => "bu",
            };
            format!("ld.{suffix} {rd}, [{ab}{}]", fmt_off(off))
        }
        St { rs, ab, off, width } => {
            let suffix = match width {
                MemWidth::Word => "w",
                MemWidth::Half => "h",
                MemWidth::Byte => "b",
            };
            format!("st.{suffix} {rs}, [{ab}{}]", fmt_off(off))
        }
        LdWPostInc { rd, ab, inc } => format!("ld.w {rd}, [{ab}+]{inc}"),
        StWPostInc { rs, ab, inc } => format!("st.w {rs}, [{ab}+]{inc}"),
        LdA { ad, ab, off } => format!("ld.a {ad}, [{ab}{}]", fmt_off(off)),
        StA { a_src, ab, off } => format!("st.a {a_src}, [{ab}{}]", fmt_off(off)),
        J { off } => format!("j {}", bt(off)),
        Jl { off } => format!("jl {}", bt(off)),
        Call { off } => format!("call {}", bt(off)),
        Ji { aa } => format!("ji {aa}"),
        CallI { aa } => format!("calli {aa}"),
        JCond { cond, ra, rb, off } => {
            let m = match cond {
                BranchCond::Eq => "jeq",
                BranchCond::Ne => "jne",
                BranchCond::Lt => "jlt",
                BranchCond::Ge => "jge",
                BranchCond::LtU => "jltu",
                BranchCond::GeU => "jgeu",
            };
            format!("{m} {ra}, {rb}, {}", bt(i32::from(off)))
        }
        Jz { ra, off } => format!("jz {ra}, {}", bt(i32::from(off))),
        Jnz { ra, off } => format!("jnz {ra}, {}", bt(i32::from(off))),
        Loop { aa, off } => format!("loop {aa}, {}", bt(i32::from(off))),
        Mfcr { rd, csfr } => format!("mfcr {rd}, {csfr}"),
        Mtcr { csfr, rs } => format!("mtcr {csfr}, {rs}"),
    }
}

fn fmt_off(off: i16) -> String {
    if off == 0 {
        String::new()
    } else if off > 0 {
        format!("+{off}")
    } else {
        format!("{off}")
    }
}

/// One line of a disassembly listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListingLine {
    /// Instruction address.
    pub addr: Addr,
    /// Decoded instruction (`None` for undecodable bytes).
    pub instr: Option<Instr>,
    /// Formatted text.
    pub text: String,
}

/// Disassembles `len` bytes of an image starting at `start`.
///
/// Undecodable words are listed as `.word`/`.half` data and skipped, so a
/// listing can run through embedded data tables without stopping.
#[must_use]
pub fn disassemble_range(image: &Image, start: Addr, len: u32) -> Vec<ListingLine> {
    let mut out = Vec::new();
    let mut pc = start;
    let end = start.0.saturating_add(len);
    while pc.0 < end {
        let Some(bytes) = image.bytes_at(pc, 4).or_else(|| image.bytes_at(pc, 2)) else {
            break;
        };
        match crate::encode::decode(&bytes, pc) {
            Ok((instr, ilen)) => {
                out.push(ListingLine {
                    addr: pc,
                    instr: Some(instr),
                    text: format_instr(&instr, pc),
                });
                pc = pc.offset(u32::from(ilen));
            }
            Err(_) => {
                let text = if bytes.len() >= 4 {
                    format!(
                        ".word {:#010x}",
                        u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
                    )
                } else {
                    format!(".half {:#06x}", u16::from_le_bytes([bytes[0], bytes[1]]))
                };
                out.push(ListingLine {
                    addr: pc,
                    instr: None,
                    text,
                });
                pc = pc.offset(if bytes.len() >= 4 { 4 } else { 2 });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn formats_match_assembler_dialect() {
        let src = "
            .org 0x1000
            movi d0, -5
            add d1, d2, d3
            ld.w d1, [a2+8]
            st.b d3, [a4-1]
            jz d0, 0x1000
            loop a3, 0x1000
            call 0x1000
        ";
        let img = assemble(src).unwrap();
        let listing = disassemble_range(&img, Addr(0x1000), img.size() as u32);
        let texts: Vec<&str> = listing.iter().map(|l| l.text.as_str()).collect();
        assert_eq!(texts[0], "movi d0, -5");
        assert_eq!(texts[1], "add d1, d2, d3");
        assert_eq!(texts[2], "ld.w d1, [a2+8]");
        assert_eq!(texts[3], "st.b d3, [a4-1]");
        assert!(texts[4].starts_with("jz d0, 0x1000"));
        assert!(texts[5].starts_with("loop a3, 0x1000"));
        assert!(texts[6].starts_with("call 0x1000"));
    }

    #[test]
    fn reassembling_disassembly_is_stable() {
        // Disassemble a program, reassemble the text, and compare bytes.
        let src = "
            .org 0x1000
            movh d1, 0x8000
            oril d1, 0x1234
            addi d2, d1, -7
            sel d0, d1, d2
            extr d3, d1, 4, 8
            halt
        ";
        let img1 = assemble(src).unwrap();
        let listing = disassemble_range(&img1, Addr(0x1000), img1.size() as u32);
        let mut src2 = String::from(".org 0x1000\n");
        for l in &listing {
            src2.push_str(&l.text);
            src2.push('\n');
        }
        let img2 = assemble(&src2).unwrap();
        assert_eq!(img1.sections()[0].bytes, img2.sections()[0].bytes);
    }

    #[test]
    fn data_words_are_listed_not_fatal() {
        let img = assemble(".org 0x1000\n .word 0xFFFFFFFF\n nop\n").unwrap();
        let listing = disassemble_range(&img, Addr(0x1000), 6);
        assert!(listing[0].instr.is_none());
        assert!(listing[0].text.starts_with(".word"));
        assert_eq!(listing[1].text, "nop");
    }
}
