//! Architectural state of a TC-R core: register banks, core special-function
//! registers, and the memory-resident context-save architecture (CSA).
//!
//! Like the real TriCore, `CALL`, `RET`, interrupt entry and `RFE` spill and
//! refill an *upper context* of 16 words through a linked list of context
//! save areas in data memory. This matters for the profiling methodology:
//! call- and interrupt-heavy code produces real, observable memory traffic.

use audo_common::{Addr, SimError};

use crate::isa::Csfr;

/// Bit position of `ICR.IE` in the packed ICR value.
pub const ICR_IE_BIT: u32 = 8;

/// Size of one context save area in bytes (16 words).
pub const CSA_BYTES: u32 = 64;

/// Byte-level functional memory access, as needed by instruction semantics.
///
/// The cycle-accurate pipeline implements this on top of its timed bus ports;
/// the functional golden-model ISS implements it on flat memory. Both share
/// the exact same [`execute`](crate::exec::execute) semantics.
pub trait ArchMem {
    /// Reads `size` bytes (1, 2 or 4) at `addr`, zero-extended into a `u32`.
    ///
    /// # Errors
    ///
    /// Returns an error for unmapped or misaligned accesses.
    fn read(&mut self, addr: Addr, size: u8) -> Result<u32, SimError>;

    /// Writes the low `size` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns an error for unmapped or misaligned accesses.
    fn write(&mut self, addr: Addr, size: u8, value: u32) -> Result<(), SimError>;
}

/// The complete architectural register state of one TC-R core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    /// Data registers `D0..D15`.
    pub d: [u32; 16],
    /// Address registers `A0..A15` (`A10` = SP, `A11` = RA).
    pub a: [u32; 16],
    /// Program counter.
    pub pc: u32,
    /// Program status word (user flags; saved/restored with the context).
    pub psw: u32,
    /// Interrupt enable (`ICR.IE`).
    pub icr_ie: bool,
    /// Current CPU priority number (`ICR.CCPN`); interrupts with a strictly
    /// higher priority preempt.
    pub icr_ccpn: u8,
    /// Interrupt vector table base.
    pub biv: u32,
    /// Trap vector table base.
    pub btv: u32,
    /// Free CSA list head (0 = exhausted).
    pub fcx: u32,
    /// Previous-context pointer (0 = none).
    pub pcx: u32,
    /// Core identification value.
    pub core_id: u32,
    /// System configuration register (uninterpreted scratch).
    pub syscon: u32,
    /// Live CSA frames currently in use (saves minus restores).
    pub csa_depth: u32,
    /// High-water mark of [`ArchState::csa_depth`] since reset — the
    /// measured counterpart of the analyzer's static CSA-depth bound.
    pub csa_depth_peak: u32,
}

impl ArchState {
    /// Creates reset state: all registers zero, PC at `reset_pc`,
    /// interrupts disabled.
    #[must_use]
    pub fn new(reset_pc: u32) -> ArchState {
        ArchState {
            d: [0; 16],
            a: [0; 16],
            pc: reset_pc,
            psw: 0,
            icr_ie: false,
            icr_ccpn: 0,
            biv: 0,
            btv: 0,
            fcx: 0,
            pcx: 0,
            core_id: 0,
            syscon: 0,
            csa_depth: 0,
            csa_depth_peak: 0,
        }
    }

    /// Reads a CSFR by number (as `MFCR` does). Unknown numbers read zero.
    #[must_use]
    pub fn read_csfr(&self, num: u16) -> u32 {
        match Csfr::from_u16(num) {
            Some(Csfr::Psw) => self.psw,
            Some(Csfr::Icr) => u32::from(self.icr_ccpn) | (u32::from(self.icr_ie) << ICR_IE_BIT),
            Some(Csfr::Biv) => self.biv,
            Some(Csfr::Btv) => self.btv,
            Some(Csfr::Fcx) => self.fcx,
            Some(Csfr::Pcx) => self.pcx,
            Some(Csfr::CoreId) => self.core_id,
            Some(Csfr::Syscon) => self.syscon,
            None => 0,
        }
    }

    /// Writes a CSFR by number (as `MTCR` does). Unknown numbers are ignored.
    pub fn write_csfr(&mut self, num: u16, value: u32) {
        match Csfr::from_u16(num) {
            Some(Csfr::Psw) => self.psw = value,
            Some(Csfr::Icr) => {
                self.icr_ccpn = (value & 0xFF) as u8;
                self.icr_ie = value & (1 << ICR_IE_BIT) != 0;
            }
            Some(Csfr::Biv) => self.biv = value,
            Some(Csfr::Btv) => self.btv = value,
            Some(Csfr::Fcx) => self.fcx = value,
            Some(Csfr::Pcx) => self.pcx = value,
            Some(Csfr::CoreId) => self.core_id = value,
            Some(Csfr::Syscon) => self.syscon = value,
            None => {}
        }
    }

    /// Packed ICR value (`CCPN` in bits 7..0, `IE` in bit 8).
    #[must_use]
    pub fn icr(&self) -> u32 {
        self.read_csfr(Csfr::Icr as u16)
    }
}

/// Builds a free CSA list of `count` areas starting at `base` and returns
/// the list head for `FCX`.
///
/// Each area is [`CSA_BYTES`] long; word 0 of each free area links to the
/// next, and the last links to 0.
///
/// # Errors
///
/// Propagates memory errors (e.g. `base` not mapped).
///
/// # Panics
///
/// Panics if `base` is not 8-byte aligned or `count` is zero.
pub fn init_csa_list<M: ArchMem>(mem: &mut M, base: Addr, count: u32) -> Result<u32, SimError> {
    assert!(count > 0, "CSA list needs at least one area");
    assert!(base.is_aligned(8), "CSA base must be 8-byte aligned");
    for i in 0..count {
        let this = base.offset(i * CSA_BYTES);
        let next = if i + 1 < count {
            base.offset((i + 1) * CSA_BYTES).0
        } else {
            0
        };
        mem.write(this, 4, next)?;
    }
    Ok(base.0)
}

/// Spills the upper context to a fresh CSA (the `CALL`/interrupt-entry path).
///
/// Saved layout (word offsets): 0 = old `PCX` link, 1 = `PSW`, 2 = `ICR`,
/// 3..=8 = `A10..A15`, 9..=15 = `D8..D14`.
///
/// # Errors
///
/// Returns [`SimError::ProgramFault`] when the free list is exhausted
/// (`FCX == 0`), or a memory error from the spill itself.
pub fn save_upper_context<M: ArchMem>(st: &mut ArchState, mem: &mut M) -> Result<(), SimError> {
    let frame = st.fcx;
    if frame == 0 {
        return Err(SimError::ProgramFault {
            message: "free CSA list exhausted (FCX=0)".into(),
        });
    }
    let base = Addr(frame);
    let next_free = mem.read(base, 4)?;
    mem.write(base, 4, st.pcx)?;
    mem.write(base.offset(4), 4, st.psw)?;
    mem.write(base.offset(8), 4, st.icr())?;
    for (i, reg) in (10..16).enumerate() {
        mem.write(base.offset(12 + 4 * i as u32), 4, st.a[reg])?;
    }
    for (i, reg) in (8..15).enumerate() {
        mem.write(base.offset(36 + 4 * i as u32), 4, st.d[reg])?;
    }
    st.fcx = next_free;
    st.pcx = frame;
    st.csa_depth += 1;
    st.csa_depth_peak = st.csa_depth_peak.max(st.csa_depth);
    Ok(())
}

/// Restores the upper context from the newest CSA (the `RET`/`RFE` path).
///
/// When `restore_icr` is set (RFE), the saved interrupt state is restored
/// too; `RET` leaves ICR untouched.
///
/// # Errors
///
/// Returns [`SimError::ProgramFault`] on context-list underflow (`PCX == 0`),
/// or a memory error from the refill.
pub fn restore_upper_context<M: ArchMem>(
    st: &mut ArchState,
    mem: &mut M,
    restore_icr: bool,
) -> Result<(), SimError> {
    let frame = st.pcx;
    if frame == 0 {
        return Err(SimError::ProgramFault {
            message: "context list underflow (PCX=0)".into(),
        });
    }
    let base = Addr(frame);
    let older = mem.read(base, 4)?;
    st.psw = mem.read(base.offset(4), 4)?;
    if restore_icr {
        let icr = mem.read(base.offset(8), 4)?;
        st.icr_ccpn = (icr & 0xFF) as u8;
        st.icr_ie = icr & (1 << ICR_IE_BIT) != 0;
    }
    for (i, reg) in (10..16).enumerate() {
        st.a[reg] = mem.read(base.offset(12 + 4 * i as u32), 4)?;
    }
    for (i, reg) in (8..15).enumerate() {
        st.d[reg] = mem.read(base.offset(36 + 4 * i as u32), 4)?;
    }
    // Return the frame to the free list.
    mem.write(base, 4, st.fcx)?;
    st.fcx = frame;
    st.pcx = older;
    st.csa_depth = st.csa_depth.saturating_sub(1);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::FlatMem;

    fn mem_with_ram() -> FlatMem {
        let mut m = FlatMem::new();
        m.add_region(Addr(0xD000_0000), 64 * 1024);
        m
    }

    #[test]
    fn csfr_icr_packing() {
        let mut st = ArchState::new(0);
        st.write_csfr(Csfr::Icr as u16, 0x105);
        assert!(st.icr_ie);
        assert_eq!(st.icr_ccpn, 5);
        assert_eq!(st.icr(), 0x105);
        st.write_csfr(Csfr::Icr as u16, 0x07);
        assert!(!st.icr_ie);
        assert_eq!(st.icr_ccpn, 7);
    }

    #[test]
    fn unknown_csfr_reads_zero_and_ignores_writes() {
        let mut st = ArchState::new(0);
        st.write_csfr(0x7FF, 0xDEAD_BEEF);
        assert_eq!(st.read_csfr(0x7FF), 0);
    }

    #[test]
    fn csa_list_links_correctly() {
        let mut mem = mem_with_ram();
        let head = init_csa_list(&mut mem, Addr(0xD000_1000), 3).unwrap();
        assert_eq!(head, 0xD000_1000);
        assert_eq!(mem.read(Addr(0xD000_1000), 4).unwrap(), 0xD000_1040);
        assert_eq!(mem.read(Addr(0xD000_1040), 4).unwrap(), 0xD000_1080);
        assert_eq!(mem.read(Addr(0xD000_1080), 4).unwrap(), 0);
    }

    #[test]
    fn save_restore_roundtrip() {
        let mut mem = mem_with_ram();
        let mut st = ArchState::new(0x8000_0000);
        st.fcx = init_csa_list(&mut mem, Addr(0xD000_2000), 4).unwrap();
        st.a[10] = 0x1111;
        st.a[11] = 0x2222;
        st.a[15] = 0x3333;
        st.d[8] = 0x4444;
        st.d[14] = 0x5555;
        st.psw = 0xAB;
        st.icr_ie = true;
        st.icr_ccpn = 3;

        save_upper_context(&mut st, &mut mem).unwrap();
        // Callee clobbers everything in the upper context.
        st.a[10] = 0;
        st.a[11] = 0;
        st.a[15] = 0;
        st.d[8] = 0;
        st.d[14] = 0;
        st.psw = 0;
        st.icr_ccpn = 7;
        st.icr_ie = false;

        restore_upper_context(&mut st, &mut mem, true).unwrap();
        assert_eq!(st.a[10], 0x1111);
        assert_eq!(st.a[11], 0x2222);
        assert_eq!(st.a[15], 0x3333);
        assert_eq!(st.d[8], 0x4444);
        assert_eq!(st.d[14], 0x5555);
        assert_eq!(st.psw, 0xAB);
        assert!(st.icr_ie);
        assert_eq!(st.icr_ccpn, 3);
    }

    #[test]
    fn ret_does_not_restore_icr() {
        let mut mem = mem_with_ram();
        let mut st = ArchState::new(0);
        st.fcx = init_csa_list(&mut mem, Addr(0xD000_2000), 2).unwrap();
        st.icr_ccpn = 1;
        save_upper_context(&mut st, &mut mem).unwrap();
        st.icr_ccpn = 9;
        restore_upper_context(&mut st, &mut mem, false).unwrap();
        assert_eq!(st.icr_ccpn, 9);
    }

    #[test]
    fn nested_save_restore_is_a_stack() {
        let mut mem = mem_with_ram();
        let mut st = ArchState::new(0);
        st.fcx = init_csa_list(&mut mem, Addr(0xD000_2000), 4).unwrap();
        st.a[11] = 100;
        save_upper_context(&mut st, &mut mem).unwrap();
        st.a[11] = 200;
        save_upper_context(&mut st, &mut mem).unwrap();
        st.a[11] = 0;
        restore_upper_context(&mut st, &mut mem, false).unwrap();
        assert_eq!(st.a[11], 200);
        restore_upper_context(&mut st, &mut mem, false).unwrap();
        assert_eq!(st.a[11], 100);
        assert_eq!(st.pcx, 0);
    }

    #[test]
    fn fcx_exhaustion_faults() {
        let mut mem = mem_with_ram();
        let mut st = ArchState::new(0);
        st.fcx = init_csa_list(&mut mem, Addr(0xD000_2000), 1).unwrap();
        save_upper_context(&mut st, &mut mem).unwrap();
        let err = save_upper_context(&mut st, &mut mem).unwrap_err();
        assert!(matches!(err, SimError::ProgramFault { .. }));
    }

    #[test]
    fn pcx_underflow_faults() {
        let mut mem = mem_with_ram();
        let mut st = ArchState::new(0);
        let err = restore_upper_context(&mut st, &mut mem, false).unwrap_err();
        assert!(matches!(err, SimError::ProgramFault { .. }));
    }
}
