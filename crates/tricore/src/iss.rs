//! Functional instruction-set simulator (the golden model).
//!
//! Executes a program on [`FlatMem`] with no timing at all, one instruction
//! per step, using the exact semantics of [`crate::exec::execute`]. The
//! cycle-accurate pipeline must produce the same architectural results; the
//! integration suite compares the two on random and hand-written programs.

use audo_common::{Addr, SimError};

use crate::arch::{init_csa_list, ArchState};
use crate::encode::decode;
use crate::exec::{execute, Outcome};
use crate::image::Image;
use crate::mem::FlatMem;

/// Result of running a program to completion on the golden model.
#[derive(Debug, Clone)]
pub struct IssRun {
    /// Final architectural state.
    pub state: ArchState,
    /// Final memory contents.
    pub mem: FlatMem,
    /// Number of instructions retired.
    pub instr_count: u64,
    /// Debug marker codes in emission order.
    pub debug_markers: Vec<u8>,
}

/// The functional golden-model simulator.
///
/// # Examples
///
/// ```
/// use audo_common::Addr;
/// use audo_tricore::asm::assemble;
/// use audo_tricore::iss::Iss;
///
/// let image = assemble("
///     .org 0x1000
///     movi d0, 6
///     movi d1, 7
///     mul  d2, d0, d1
///     halt
/// ")?;
/// let mut iss = Iss::new();
/// iss.map_region(Addr(0x1000), 0x1000);
/// iss.load(&image)?;
/// let run = iss.run(10_000)?;
/// assert_eq!(run.state.d[2], 42);
/// # Ok::<(), audo_common::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Iss {
    state: ArchState,
    mem: FlatMem,
    instr_count: u64,
    debug_markers: Vec<u8>,
    halted: bool,
}

impl Default for Iss {
    fn default() -> Iss {
        Iss::new()
    }
}

impl Iss {
    /// Creates an ISS with empty memory and reset state.
    #[must_use]
    pub fn new() -> Iss {
        Iss {
            state: ArchState::new(0),
            mem: FlatMem::new(),
            instr_count: 0,
            debug_markers: Vec::new(),
            halted: false,
        }
    }

    /// Maps a RAM/ROM region.
    pub fn map_region(&mut self, base: Addr, len: u32) {
        self.mem.add_region(base, len);
    }

    /// Loads an image and points the PC at its entry.
    ///
    /// # Errors
    ///
    /// Fails if a section lies outside mapped memory.
    pub fn load(&mut self, image: &Image) -> Result<(), SimError> {
        image.load_into(&mut self.mem)?;
        self.state.pc = image.entry().0;
        Ok(())
    }

    /// Initialises the CSA free list (needed before `CALL`/interrupts).
    ///
    /// # Errors
    ///
    /// Fails if the CSA region is not mapped.
    pub fn init_csa(&mut self, base: Addr, count: u32) -> Result<(), SimError> {
        self.state.fcx = init_csa_list(&mut self.mem, base, count)?;
        Ok(())
    }

    /// Direct access to the architectural state.
    #[must_use]
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Mutable access to the architectural state (for test setup).
    pub fn state_mut(&mut self) -> &mut ArchState {
        &mut self.state
    }

    /// Direct access to memory.
    #[must_use]
    pub fn mem(&self) -> &FlatMem {
        &self.mem
    }

    /// Mutable access to memory (for test setup).
    pub fn mem_mut(&mut self) -> &mut FlatMem {
        &mut self.mem
    }

    /// Whether a `HALT` has been executed.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Executes a single instruction.
    ///
    /// # Errors
    ///
    /// Propagates decode and memory faults.
    pub fn step(&mut self) -> Result<Outcome, SimError> {
        let pc = self.state.pc;
        let bytes = self
            .mem
            .read_bytes(Addr(pc), 4)
            .or_else(|_| self.mem.read_bytes(Addr(pc), 2))?;
        let (instr, ilen) = decode(&bytes, Addr(pc))?;
        let out = execute(&mut self.state, &mut self.mem, &instr, pc, ilen)?;
        self.instr_count += 1;
        if let Some(code) = out.debug {
            self.debug_markers.push(code);
        }
        if out.halt {
            self.halted = true;
        }
        Ok(out)
    }

    /// Runs until `HALT` or until `max_instrs` instructions have retired.
    ///
    /// `WAIT` also stops the run: the functional model has no interrupt
    /// sources, so waiting would never end.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LimitExceeded`] if the limit is hit, or any
    /// decode/memory fault.
    pub fn run(mut self, max_instrs: u64) -> Result<IssRun, SimError> {
        while !self.halted {
            if self.instr_count >= max_instrs {
                return Err(SimError::LimitExceeded {
                    what: "instructions retired",
                    limit: max_instrs,
                });
            }
            let out = self.step()?;
            if out.wait {
                break;
            }
        }
        Ok(IssRun {
            state: self.state,
            mem: self.mem,
            instr_count: self.instr_count,
            debug_markers: self.debug_markers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_asm(src: &str) -> IssRun {
        let image = assemble(src).expect("assembles");
        let mut iss = Iss::new();
        iss.map_region(Addr(0x0000_1000), 0x4000);
        iss.map_region(Addr(0xD000_0000), 0x1_0000);
        iss.init_csa(Addr(0xD000_8000), 32).unwrap();
        iss.load(&image).expect("loads");
        iss.run(1_000_000).expect("runs")
    }

    #[test]
    fn fibonacci_loop() {
        let run = run_asm(
            "
            .org 0x1000
            movi d0, 0      ; fib(0)
            movi d1, 1      ; fib(1)
            movi d2, 10     ; iterations
        head:
            add  d3, d0, d1
            mov  d0, d1
            mov  d1, d3
            addi d2, d2, -1
            jnz  d2, head
            halt
        ",
        );
        assert_eq!(run.state.d[0], 55);
        assert_eq!(run.state.d[1], 89);
    }

    #[test]
    fn function_call_with_stack_data() {
        let run = run_asm(
            "
            .org 0x1000
        _start:
            la   sp, 0xD0004000
            movi d4, 21
            call double
            halt
        double:
            add  d4, d4, d4
            ret
        ",
        );
        assert_eq!(run.state.d[4], 42);
    }

    #[test]
    fn table_sum_with_hardware_loop() {
        let run = run_asm(
            "
            .org 0x1000
        _start:
            la   a2, table
            movi d0, 0
            movi d1, 4
            mov.a a3, d1
        head:
            ld.w d2, [a2+]4
            add  d0, d0, d2
            loop a3, head
            halt
        table:
            .word 10, 20, 30, 40
        ",
        );
        assert_eq!(run.state.d[0], 100);
    }

    #[test]
    fn debug_markers_collected_in_order() {
        let run = run_asm(".org 0x1000\n debug 1\n debug 2\n debug 200\n halt\n");
        assert_eq!(run.debug_markers, vec![1, 2, 200]);
    }

    #[test]
    fn limit_guard_catches_runaway() {
        let image = assemble(".org 0x1000\nspin: j spin\n").unwrap();
        let mut iss = Iss::new();
        iss.map_region(Addr(0x1000), 0x100);
        iss.load(&image).unwrap();
        let e = iss.run(100).unwrap_err();
        assert!(matches!(e, SimError::LimitExceeded { .. }));
    }

    #[test]
    fn wait_ends_the_functional_run() {
        let run = run_asm(".org 0x1000\n movi d0, 1\n wait\n movi d0, 2\n halt\n");
        assert_eq!(run.state.d[0], 1);
    }

    #[test]
    fn store_then_load_through_memory() {
        let run = run_asm(
            "
            .org 0x1000
            la   a2, 0xD0000100
            li   d0, 0xCAFEBABE
            st.w d0, [a2]
            ld.hu d1, [a2+2]
            halt
        ",
        );
        assert_eq!(run.state.d[1], 0xCAFE);
    }
}
