//! Functional instruction-set simulator (the golden model).
//!
//! Executes a program on [`FlatMem`] with no timing at all, one instruction
//! per step, using the exact semantics of [`crate::exec::execute`]. The
//! cycle-accurate pipeline must produce the same architectural results; the
//! integration suite compares the two on random and hand-written programs.
//!
//! # The basic-block fast path
//!
//! By default every step re-fetches and re-decodes the instruction at the
//! PC. With [`Iss::set_fast_path`] enabled, the ISS instead predecodes
//! straight-line runs into basic blocks ([`crate::decode_cache`]) and
//! dispatches whole blocks from the cache, skipping fetch and decode for
//! every repeat execution. The fast path is **observationally identical**
//! to slow stepping: architectural results, retired-instruction counts,
//! debug markers, error behaviour and the emitted [`EventRecord`] stream
//! are the same bit for bit — both paths funnel every retirement through
//! one bookkeeping routine, and cached blocks are invalidated whenever
//! the memory region they were decoded from is written (self-modifying
//! code, calibration-overlay swaps).
//!
//! # Event observation
//!
//! With [`Iss::set_observation`] enabled the ISS emits a per-retirement
//! [`EventRecord`] stream (`InstrRetired`, `FlowChange`, `BranchNotTaken`,
//! `DebugMarker`, timestamped by retired-instruction index) suitable for
//! feeding `audo-mcds` the same way the cycle-accurate pipeline does.
//! Equivalence tests compare the stream fast-path-on vs. -off, both raw
//! and after MCDS trace encoding.

use audo_common::{Addr, Cycle, EventRecord, EventSink, PerfEvent, SimError, SourceId};

use crate::arch::{init_csa_list, ArchState};
use crate::decode_cache::{CacheStats, CachedInstr, DecodeCache};
use crate::encode::decode;
use crate::exec::{execute, Outcome};
use crate::image::Image;
use crate::isa::{Instr, InstrClass};
use crate::mem::FlatMem;
use crate::opcodes::{opcode_index_sized, OPCODE_SPACE};

/// Why a resumable run ([`Iss::run_resumable`]) returned without error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStop {
    /// A `HALT` retired; the program is finished.
    Halted,
    /// A `WAIT` retired. The PC already points past it, so the host can
    /// patch memory (e.g. swap a calibration overlay) and resume.
    Waited,
}

/// Result of running a program to completion on the golden model.
#[derive(Debug, Clone)]
pub struct IssRun {
    /// Final architectural state.
    pub state: ArchState,
    /// Final memory contents.
    pub mem: FlatMem,
    /// Number of instructions retired.
    pub instr_count: u64,
    /// Debug marker codes in emission order.
    pub debug_markers: Vec<u8>,
    /// Per-retirement event stream (empty unless [`Iss::set_observation`]
    /// was enabled before the run).
    pub events: Vec<EventRecord>,
    /// Per-opcode-slot retired counts (`None` unless
    /// [`Iss::set_opcode_observation`] was enabled before the run).
    pub opcode_counts: Option<Box<[u64; OPCODE_SPACE]>>,
    /// Per-block execution profile (`None` unless
    /// [`Iss::set_profile_observation`] was enabled before the run).
    pub block_profile: Option<Box<audo_obs::profile::BlockProfile>>,
}

/// The functional golden-model simulator.
///
/// # Examples
///
/// ```
/// use audo_common::Addr;
/// use audo_tricore::asm::assemble;
/// use audo_tricore::iss::Iss;
///
/// let image = assemble("
///     .org 0x1000
///     movi d0, 6
///     movi d1, 7
///     mul  d2, d0, d1
///     halt
/// ")?;
/// let mut iss = Iss::new();
/// iss.map_region(Addr(0x1000), 0x1000);
/// iss.load(&image)?;
/// let run = iss.run(10_000)?;
/// assert_eq!(run.state.d[2], 42);
/// # Ok::<(), audo_common::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Iss {
    state: ArchState,
    mem: FlatMem,
    instr_count: u64,
    debug_markers: Vec<u8>,
    halted: bool,
    cache: Option<DecodeCache>,
    block_buf: Vec<CachedInstr>,
    events: EventSink,
    mix: Option<Box<[u64; InstrClass::COUNT]>>,
    opcodes: Option<Box<[u64; OPCODE_SPACE]>>,
    profile: Option<Box<audo_obs::profile::BlockProfile>>,
}

impl Default for Iss {
    fn default() -> Iss {
        Iss::new()
    }
}

impl Iss {
    /// Creates an ISS with empty memory and reset state.
    #[must_use]
    pub fn new() -> Iss {
        Iss {
            state: ArchState::new(0),
            mem: FlatMem::new(),
            instr_count: 0,
            debug_markers: Vec::new(),
            halted: false,
            cache: None,
            block_buf: Vec::new(),
            events: EventSink::disabled(),
            mix: None,
            opcodes: None,
            profile: None,
        }
    }

    /// Maps a RAM/ROM region.
    pub fn map_region(&mut self, base: Addr, len: u32) {
        self.mem.add_region(base, len);
    }

    /// Loads an image and points the PC at its entry.
    ///
    /// # Errors
    ///
    /// Fails if a section lies outside mapped memory.
    pub fn load(&mut self, image: &Image) -> Result<(), SimError> {
        image.load_into(&mut self.mem)?;
        self.state.pc = image.entry().0;
        Ok(())
    }

    /// Initialises the CSA free list (needed before `CALL`/interrupts).
    ///
    /// # Errors
    ///
    /// Fails if the CSA region is not mapped.
    pub fn init_csa(&mut self, base: Addr, count: u32) -> Result<(), SimError> {
        self.state.fcx = init_csa_list(&mut self.mem, base, count)?;
        Ok(())
    }

    /// Enables or disables the predecoded basic-block fast path.
    ///
    /// Off by default. Turning it off drops all cached blocks; turning it
    /// on starts with an empty cache. Either way the observable behaviour
    /// of [`Iss::run`] is unchanged — only its speed.
    pub fn set_fast_path(&mut self, enabled: bool) {
        if enabled {
            if self.cache.is_none() {
                self.cache = Some(DecodeCache::new());
            }
        } else {
            self.cache = None;
        }
    }

    /// Whether the basic-block fast path is enabled.
    #[must_use]
    pub fn fast_path_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Decode-cache hit/miss/invalidation counters, if the fast path is on.
    #[must_use]
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(DecodeCache::stats)
    }

    /// Enables or disables per-retirement event emission.
    ///
    /// Off by default (runs allocate nothing for events). When on, each
    /// retired instruction emits `InstrRetired { count: 1 }` — preceded by
    /// `FlowChange`/`BranchNotTaken`/`DebugMarker` records where
    /// applicable — with the retired-instruction index as the timestamp
    /// and [`SourceId::TRICORE`] as the source.
    pub fn set_observation(&mut self, enabled: bool) {
        self.events.set_enabled(enabled);
    }

    /// Enables or disables retired-instruction mix counting.
    ///
    /// Off by default: when off, the only cost is one untaken branch per
    /// retirement (same pattern as event observation). When on, every
    /// retired instruction bumps a per-[`InstrClass`] counter. Enabling
    /// resets the counters; disabling drops them.
    pub fn set_mix_observation(&mut self, enabled: bool) {
        self.mix = if enabled {
            Some(Box::new([0; InstrClass::COUNT]))
        } else {
            None
        };
    }

    /// Retired-instruction counts per [`InstrClass`] (counter-index order
    /// of [`InstrClass::ALL`]), if mix counting is on.
    #[must_use]
    pub fn mix_counts(&self) -> Option<&[u64; InstrClass::COUNT]> {
        self.mix.as_deref()
    }

    /// Enables or disables per-opcode-format coverage counting.
    ///
    /// Off by default (same cost profile as [`Iss::set_mix_observation`]).
    /// When on, every retired instruction bumps the counter of the opcode
    /// slot it was fetched from ([`crate::opcodes::opcode_index_sized`],
    /// so assembler-widened encodings attribute to the 32-bit slot that
    /// actually sat in memory). This is the coverage feedback the
    /// differential fuzzer chases. Enabling resets the counters;
    /// disabling drops them.
    pub fn set_opcode_observation(&mut self, enabled: bool) {
        self.opcodes = if enabled {
            Some(Box::new([0; OPCODE_SPACE]))
        } else {
            None
        };
    }

    /// Retired-instruction counts per opcode slot (indexed by the
    /// [`crate::opcodes`] space), if opcode coverage counting is on.
    #[must_use]
    pub fn opcode_counts(&self) -> Option<&[u64; OPCODE_SPACE]> {
        self.opcodes.as_deref()
    }

    /// Enables or disables block-level execution profiling.
    ///
    /// Off by default (same cost profile as [`Iss::set_mix_observation`]:
    /// one untaken branch per retirement). When on, every predecoded block
    /// dispatched by the fast path counts one execution under its
    /// `(region, offset, generation)` key and every instruction retired
    /// from it counts toward the block; the functional tier records no
    /// cycles (it has no clock). Only fast-path dispatches are profiled —
    /// enable the fast path ([`Iss::set_fast_path`]) to profile. Enabling
    /// resets the profile; disabling drops it.
    pub fn set_profile_observation(&mut self, enabled: bool) {
        self.profile = if enabled {
            Some(Box::new(audo_obs::profile::BlockProfile::new()))
        } else {
            None
        };
    }

    /// The block-execution profile recorded so far, if profiling is on.
    #[must_use]
    pub fn block_profile(&self) -> Option<&audo_obs::profile::BlockProfile> {
        self.profile.as_deref()
    }

    /// Samples this ISS's counters into an observability registry.
    ///
    /// Records the retired-instruction total, decode-cache statistics
    /// (when the fast path is on) and the per-class instruction mix (when
    /// mix counting is on), all under the `iss.` prefix. Safe to call at
    /// any point; values are absolute snapshots.
    pub fn export_obs(&self, reg: &mut audo_obs::Registry) {
        reg.sample("iss.instructions_retired", self.instr_count);
        if let Some(stats) = self.cache_stats() {
            reg.sample("iss.decode_cache.hits", stats.hits);
            reg.sample("iss.decode_cache.misses", stats.misses);
            reg.sample("iss.decode_cache.invalidations", stats.invalidations);
        }
        if let Some(mix) = self.mix_counts() {
            for class in InstrClass::ALL {
                reg.sample(&format!("iss.mix.{}", class.label()), mix[class.index()]);
            }
        }
        if let Some(counts) = self.opcode_counts() {
            for &(idx, name) in crate::opcodes::ASSIGNED {
                reg.sample(&format!("iss.opcode.{name}"), counts[usize::from(idx)]);
            }
        }
        if let Some(profile) = self.block_profile() {
            let total = profile.total();
            reg.sample("iss.profile.blocks", profile.blocks.len() as u64);
            reg.sample("iss.profile.executions", total.executions);
            reg.sample("iss.profile.instructions", total.instructions);
        }
    }

    #[inline]
    fn note_mix(&mut self, instr: &Instr) {
        if let Some(mix) = self.mix.as_deref_mut() {
            mix[instr.class().index()] += 1;
        }
    }

    #[inline]
    fn note_opcode(&mut self, instr: &Instr, len: u8) {
        if let Some(counts) = self.opcodes.as_deref_mut() {
            counts[usize::from(opcode_index_sized(instr, len))] += 1;
        }
    }

    /// Direct access to the architectural state.
    #[must_use]
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Mutable access to the architectural state (for test setup).
    pub fn state_mut(&mut self) -> &mut ArchState {
        &mut self.state
    }

    /// Direct access to memory.
    #[must_use]
    pub fn mem(&self) -> &FlatMem {
        &self.mem
    }

    /// Mutable access to memory (for test setup and overlay swaps).
    ///
    /// Writes through this handle bump the region's generation counter
    /// like any other store, so cached decode blocks are invalidated
    /// automatically.
    pub fn mem_mut(&mut self) -> &mut FlatMem {
        &mut self.mem
    }

    /// Whether a `HALT` has been executed.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn instr_count(&self) -> u64 {
        self.instr_count
    }

    /// Debug marker codes retired so far, in emission order.
    #[must_use]
    pub fn debug_markers(&self) -> &[u8] {
        &self.debug_markers
    }

    /// Per-retirement bookkeeping shared by the slow and fast paths.
    ///
    /// Keeping this in one place is what makes the fast path
    /// observationally identical by construction.
    fn note_retired(&mut self, pc: u32, out: &Outcome) {
        let at = Cycle(self.instr_count);
        self.instr_count += 1;
        if let Some(code) = out.debug {
            self.debug_markers.push(code);
        }
        if out.halt {
            self.halted = true;
        }
        if self.events.is_enabled() {
            if let Some(flow) = out.flow {
                self.events.emit(
                    at,
                    SourceId::TRICORE,
                    PerfEvent::FlowChange {
                        kind: flow.kind,
                        from: Addr(pc),
                        to: flow.target,
                    },
                );
            }
            if out.branch_taken == Some(false) {
                self.events.emit(
                    at,
                    SourceId::TRICORE,
                    PerfEvent::BranchNotTaken { at: Addr(pc) },
                );
            }
            if let Some(code) = out.debug {
                self.events
                    .emit(at, SourceId::TRICORE, PerfEvent::DebugMarker { code });
            }
            self.events
                .emit(at, SourceId::TRICORE, PerfEvent::InstrRetired { count: 1 });
        }
    }

    /// Executes a single instruction (always via fetch+decode).
    ///
    /// # Errors
    ///
    /// Propagates decode and memory faults.
    pub fn step(&mut self) -> Result<Outcome, SimError> {
        let pc = self.state.pc;
        let bytes = self
            .mem
            .read_bytes(Addr(pc), 4)
            .or_else(|_| self.mem.read_bytes(Addr(pc), 2))?;
        let (instr, ilen) = decode(&bytes, Addr(pc))?;
        let out = execute(&mut self.state, &mut self.mem, &instr, pc, ilen)?;
        self.note_mix(&instr);
        self.note_opcode(&instr, ilen);
        self.note_retired(pc, &out);
        Ok(out)
    }

    /// Executes one predecoded basic block (or a single slow step when no
    /// block can be formed at the PC). Returns `true` if a `WAIT` retired.
    fn step_block(&mut self, max_instrs: u64) -> Result<bool, SimError> {
        let pc = self.state.pc;
        let (region, generation) = {
            let cache = self.cache.as_mut().expect("fast path enabled");
            match cache.get_or_fill(pc, &self.mem) {
                Some(block) => {
                    self.block_buf.clear();
                    self.block_buf.extend_from_slice(&block.instrs);
                    (block.region, block.generation)
                }
                // Unmapped/undecodable PC: the slow step surfaces the
                // fault with exactly the non-cached semantics.
                None => return self.step().map(|out| out.wait),
            }
        };
        let block_key = self.profile.as_deref_mut().map(|profile| {
            let key = audo_obs::profile::BlockKey {
                region: region.0,
                offset: pc.wrapping_sub(region.0),
                generation,
            };
            profile.record_entry(key);
            key
        });
        for i in 0..self.block_buf.len() {
            if self.instr_count >= max_instrs {
                return Err(SimError::LimitExceeded {
                    what: "instructions retired",
                    limit: max_instrs,
                });
            }
            let ci = self.block_buf[i];
            debug_assert_eq!(self.state.pc, ci.pc, "block dispatch out of sync");
            let out = execute(&mut self.state, &mut self.mem, &ci.instr, ci.pc, ci.len)?;
            self.note_mix(&ci.instr);
            self.note_opcode(&ci.instr, ci.len);
            self.note_retired(ci.pc, &out);
            if let Some(profile) = self.profile.as_deref_mut() {
                let end = ci.pc.wrapping_add(u32::from(ci.len)).wrapping_sub(pc);
                profile.record_instr(block_key, end);
            }
            if self.halted {
                return Ok(false);
            }
            if out.wait {
                return Ok(true);
            }
            // A plain store may have rewritten instructions later in this
            // very block; if the code region's generation moved, bail to a
            // fresh lookup at the (already updated) architectural PC.
            if ci.may_store && self.mem.generation(region) != Some(generation) {
                return Ok(false);
            }
        }
        Ok(false)
    }

    /// Runs until `HALT`, `WAIT`, or until `max_instrs` **total**
    /// instructions have retired, then returns control to the caller with
    /// the ISS intact.
    ///
    /// This is the resumable sibling of [`Iss::run`]: on
    /// [`RunStop::Waited`] the caller may inspect state, patch memory
    /// through [`Iss::mem_mut`] (a calibration-overlay swap, say — cached
    /// decode blocks invalidate automatically), and call this again to
    /// continue. `max_instrs` counts from reset, not from this call.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LimitExceeded`] if the limit is hit, or any
    /// decode/memory fault.
    pub fn run_resumable(&mut self, max_instrs: u64) -> Result<RunStop, SimError> {
        while !self.halted {
            if self.instr_count >= max_instrs {
                return Err(SimError::LimitExceeded {
                    what: "instructions retired",
                    limit: max_instrs,
                });
            }
            let wait = if self.cache.is_some() {
                self.step_block(max_instrs)?
            } else {
                self.step()?.wait
            };
            if wait {
                return Ok(RunStop::Waited);
            }
        }
        Ok(RunStop::Halted)
    }

    /// Events collected so far (only meaningful with observation on).
    #[must_use]
    pub fn events(&self) -> &[EventRecord] {
        self.events.records()
    }

    /// Runs until `HALT` or until `max_instrs` instructions have retired.
    ///
    /// `WAIT` also stops the run: the functional model has no interrupt
    /// sources, so waiting would never end.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LimitExceeded`] if the limit is hit, or any
    /// decode/memory fault.
    pub fn run(mut self, max_instrs: u64) -> Result<IssRun, SimError> {
        self.run_resumable(max_instrs)?;
        Ok(IssRun {
            state: self.state,
            mem: self.mem,
            instr_count: self.instr_count,
            debug_markers: self.debug_markers,
            events: self.events.drain(),
            opcode_counts: self.opcodes,
            block_profile: self.profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_asm(src: &str) -> IssRun {
        run_asm_configured(src, false, false)
    }

    fn run_asm_configured(src: &str, fast: bool, observe: bool) -> IssRun {
        let image = assemble(src).expect("assembles");
        let mut iss = Iss::new();
        iss.map_region(Addr(0x0000_1000), 0x4000);
        iss.map_region(Addr(0xD000_0000), 0x1_0000);
        iss.init_csa(Addr(0xD000_8000), 32).unwrap();
        iss.load(&image).expect("loads");
        iss.set_fast_path(fast);
        iss.set_observation(observe);
        iss.run(1_000_000).expect("runs")
    }

    #[test]
    fn fibonacci_loop() {
        let run = run_asm(
            "
            .org 0x1000
            movi d0, 0      ; fib(0)
            movi d1, 1      ; fib(1)
            movi d2, 10     ; iterations
        head:
            add  d3, d0, d1
            mov  d0, d1
            mov  d1, d3
            addi d2, d2, -1
            jnz  d2, head
            halt
        ",
        );
        assert_eq!(run.state.d[0], 55);
        assert_eq!(run.state.d[1], 89);
    }

    #[test]
    fn function_call_with_stack_data() {
        let run = run_asm(
            "
            .org 0x1000
        _start:
            la   sp, 0xD0004000
            movi d4, 21
            call double
            halt
        double:
            add  d4, d4, d4
            ret
        ",
        );
        assert_eq!(run.state.d[4], 42);
    }

    #[test]
    fn table_sum_with_hardware_loop() {
        let run = run_asm(
            "
            .org 0x1000
        _start:
            la   a2, table
            movi d0, 0
            movi d1, 4
            mov.a a3, d1
        head:
            ld.w d2, [a2+]4
            add  d0, d0, d2
            loop a3, head
            halt
        table:
            .word 10, 20, 30, 40
        ",
        );
        assert_eq!(run.state.d[0], 100);
    }

    #[test]
    fn debug_markers_collected_in_order() {
        let run = run_asm(".org 0x1000\n debug 1\n debug 2\n debug 200\n halt\n");
        assert_eq!(run.debug_markers, vec![1, 2, 200]);
    }

    #[test]
    fn limit_guard_catches_runaway() {
        let image = assemble(".org 0x1000\nspin: j spin\n").unwrap();
        let mut iss = Iss::new();
        iss.map_region(Addr(0x1000), 0x100);
        iss.load(&image).unwrap();
        let e = iss.run(100).unwrap_err();
        assert!(matches!(e, SimError::LimitExceeded { .. }));
    }

    #[test]
    fn wait_ends_the_functional_run() {
        let run = run_asm(".org 0x1000\n movi d0, 1\n wait\n movi d0, 2\n halt\n");
        assert_eq!(run.state.d[0], 1);
    }

    #[test]
    fn store_then_load_through_memory() {
        let run = run_asm(
            "
            .org 0x1000
            la   a2, 0xD0000100
            li   d0, 0xCAFEBABE
            st.w d0, [a2]
            ld.hu d1, [a2+2]
            halt
        ",
        );
        assert_eq!(run.state.d[1], 0xCAFE);
    }

    // ------------------------------------------------------------------
    // Fast path
    // ------------------------------------------------------------------

    /// Programs exercising loops, calls, stores, debug markers and WAIT.
    const EQUIVALENCE_PROGRAMS: &[&str] = &[
        "
            .org 0x1000
            movi d0, 0
            movi d1, 1
            movi d2, 10
        head:
            add  d3, d0, d1
            mov  d0, d1
            mov  d1, d3
            addi d2, d2, -1
            jnz  d2, head
            debug 9
            halt
        ",
        "
            .org 0x1000
        _start:
            la   sp, 0xD0004000
            movi d4, 21
            call double
            halt
        double:
            add  d4, d4, d4
            ret
        ",
        "
            .org 0x1000
            la   a2, 0xD0000100
            li   d0, 0xCAFEBABE
            st.w d0, [a2]
            ld.hu d1, [a2+2]
            debug 3
            wait
            halt
        ",
    ];

    #[test]
    fn fast_path_matches_slow_path_bit_for_bit() {
        for src in EQUIVALENCE_PROGRAMS {
            let slow = run_asm_configured(src, false, true);
            let fast = run_asm_configured(src, true, true);
            assert_eq!(slow.state, fast.state, "arch state\n{src}");
            assert_eq!(slow.instr_count, fast.instr_count, "instr count\n{src}");
            assert_eq!(slow.debug_markers, fast.debug_markers, "markers\n{src}");
            assert_eq!(slow.events, fast.events, "event stream\n{src}");
        }
    }

    #[test]
    fn fast_path_limit_error_matches_slow_path() {
        let image = assemble(".org 0x1000\nspin: j spin\n").unwrap();
        for fast in [false, true] {
            let mut iss = Iss::new();
            iss.map_region(Addr(0x1000), 0x100);
            iss.load(&image).unwrap();
            iss.set_fast_path(fast);
            let e = iss.run(100).unwrap_err();
            assert!(matches!(e, SimError::LimitExceeded { limit: 100, .. }));
        }
    }

    #[test]
    fn fast_path_reports_cache_hits_on_hot_loops() {
        let image = assemble(
            "
            .org 0x1000
            movi d2, 100
        head:
            addi d2, d2, -1
            jnz  d2, head
            halt
        ",
        )
        .unwrap();
        let mut iss = Iss::new();
        iss.map_region(Addr(0x1000), 0x1000);
        iss.load(&image).unwrap();
        iss.set_fast_path(true);
        assert!(iss.fast_path_enabled());
        let stats = {
            let mut iss = iss;
            // Run manually so we can inspect stats before `run` consumes it.
            loop {
                if iss.is_halted() {
                    break;
                }
                iss.step_block(1_000_000).unwrap();
            }
            iss.cache_stats().unwrap()
        };
        assert!(stats.hits >= 90, "hot loop should hit: {stats:?}");
        assert_eq!(stats.invalidations, 0);
    }

    #[test]
    fn observation_emits_retired_stream() {
        let run = run_asm_configured(".org 0x1000\n movi d0, 1\n debug 5\n halt\n", false, true);
        // movi retires one record; debug retires marker + retired; halt
        // retires one more: four records in total.
        assert_eq!(run.events.len(), 4);
        assert_eq!(run.events[0].event, PerfEvent::InstrRetired { count: 1 });
        assert_eq!(run.events[1].event, PerfEvent::DebugMarker { code: 5 });
        assert_eq!(run.events[0].cycle, Cycle(0));
        assert_eq!(run.events.last().unwrap().cycle, Cycle(2));
    }
}
