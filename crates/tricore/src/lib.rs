//! Cycle-level simulator of **TC-R**, a TriCore-class tri-issue 32-bit
//! automotive CPU: instruction set, assembler, disassembler, functional
//! golden model, and a cycle-accurate pipeline.
//!
//! This crate is the main-core substrate for the reproduction of Mayer &
//! Hellwig, *"System Performance Optimization Methodology for Infineon's
//! 32-Bit Automotive Microcontroller Architecture"* (DATE 2008). The
//! profiling methodology of that paper observes architectural event streams
//! (instructions retired per cycle, cache and flash events, stalls); this
//! core produces those streams from real machine code.
//!
//! # Layout
//!
//! | module | contents |
//! |---|---|
//! | [`isa`] | the instruction set and register model |
//! | [`encode`] | binary encode/decode (mixed 16/32-bit formats) |
//! | [`opcodes`] | assigned-opcode tables, coverage indices, per-slot samples |
//! | [`asm`] | two-pass text assembler |
//! | [`disasm`] | disassembler / listing generator |
//! | [`image`] | assembled program images and symbol tables |
//! | [`arch`] | architectural state and the context-save architecture |
//! | [`exec`] | instruction semantics shared by all execution models |
//! | [`iss`] | functional golden-model simulator |
//! | [`decode_cache`] | predecoded basic blocks for the ISS fast path |
//! | [`bus`] | the timed memory interface a core drives |
//! | [`pipeline`] | the cycle-level tri-issue pipeline |
//! | [`mem`] | flat functional memory for tests and the ISS |
//!
//! # Example
//!
//! ```
//! use audo_common::{Addr, Cycle, EventSink, SourceId};
//! use audo_tricore::asm::assemble;
//! use audo_tricore::bus::TestBus;
//! use audo_tricore::pipeline::{Core, CoreConfig};
//!
//! let image = assemble("
//!     .org 0x1000
//!     movi d0, 6
//!     movi d1, 7
//!     mul  d2, d0, d1
//!     halt
//! ")?;
//! let mut bus = TestBus::new();
//! bus.mem.add_region(Addr(0x1000), 0x1000);
//! image.load_into(&mut bus.mem)?;
//!
//! let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
//! let mut sink = EventSink::new();
//! let mut cycle = 0;
//! while !core.is_halted() {
//!     core.step(Cycle(cycle), &mut bus, None, &mut sink)?;
//!     cycle += 1;
//! }
//! assert_eq!(core.arch().d[2], 42);
//! # Ok::<(), audo_common::SimError>(())
//! ```

pub mod arch;
pub mod asm;
pub mod bus;
pub mod decode_cache;
pub mod disasm;
pub mod encode;
pub mod exec;
pub mod image;
pub mod isa;
pub mod iss;
pub mod mem;
pub mod opcodes;
pub mod pipeline;

pub use arch::{ArchMem, ArchState};
pub use bus::{CoreBus, FetchSlot, ReadSlot};
pub use image::Image;
pub use isa::Instr;
pub use pipeline::{Core, CoreConfig, PipelineStats, StepOutput};
