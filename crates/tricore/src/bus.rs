//! The timed memory interface a TC-R core drives.
//!
//! The platform crate implements [`CoreBus`] on top of caches, scratchpads,
//! the crossbar and the flash; the pipeline only sees *when* data arrives.
//! [`TestBus`] provides a flat memory with fixed latencies for pipeline
//! unit tests.

use audo_common::{Addr, Cycle, SimError};

use crate::arch::ArchMem;
use crate::mem::FlatMem;

/// Width of one instruction-fetch granule in bytes.
pub const FETCH_BYTES: u32 = 8;

/// Result of an instruction fetch: one aligned granule and its arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchSlot {
    /// The fetched bytes (aligned to [`FETCH_BYTES`]).
    pub bytes: [u8; FETCH_BYTES as usize],
    /// Cycle at which the bytes are available to decode.
    pub ready_at: Cycle,
}

/// Result of a data read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadSlot {
    /// The zero-extended value.
    pub value: u32,
    /// Cycle at which the value is available.
    pub ready_at: Cycle,
}

/// A timed bus as seen from one core.
///
/// All methods take `now`, the current CPU cycle; implementations return
/// completion times at or after `now`. A blocking in-order core issues at
/// most one data access per cycle and one fetch at a time.
pub trait CoreBus {
    /// Fetches the [`FETCH_BYTES`]-aligned granule containing `addr`.
    ///
    /// # Errors
    ///
    /// Returns an error for unmapped addresses.
    fn fetch(&mut self, now: Cycle, addr: Addr) -> Result<FetchSlot, SimError>;

    /// Reads `size` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns an error for unmapped or misaligned accesses.
    fn read(&mut self, now: Cycle, addr: Addr, size: u8) -> Result<ReadSlot, SimError>;

    /// Writes the low `size` bytes of `value` at `addr`; returns the cycle
    /// at which the store was *accepted* (store buffer admission, not
    /// necessarily global visibility).
    ///
    /// # Errors
    ///
    /// Returns an error for unmapped or misaligned accesses.
    fn write(&mut self, now: Cycle, addr: Addr, size: u8, value: u32) -> Result<Cycle, SimError>;

    /// Identity of the code-memory region containing `addr`, for predecode
    /// caching: `(canonical region base, write generation)`. The generation
    /// must bump on every store into the region (see
    /// [`crate::mem::FlatMem::generation`]), so a cached decode is valid
    /// exactly while the pair compares equal.
    ///
    /// The default returns `None`, which disables predecode caching on the
    /// bus — always safe, merely slower.
    fn code_region(&self, addr: Addr) -> Option<(u32, u64)> {
        let _ = addr;
        None
    }
}

/// Flat-memory [`CoreBus`] with constant latencies, for tests.
///
/// # Examples
///
/// ```
/// use audo_common::{Addr, Cycle};
/// use audo_tricore::bus::{CoreBus, TestBus};
///
/// let mut bus = TestBus::new();
/// bus.mem.add_region(Addr(0x1000), 0x100);
/// bus.write(Cycle(0), Addr(0x1000), 4, 7)?;
/// assert_eq!(bus.read(Cycle(1), Addr(0x1000), 4)?.value, 7);
/// # Ok::<(), audo_common::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TestBus {
    /// Backing memory (public for test setup).
    pub mem: FlatMem,
    /// Cycles from request to fetch data availability.
    pub fetch_latency: u64,
    /// Cycles from request to read data availability.
    pub read_latency: u64,
    /// Cycles until a store is accepted.
    pub write_latency: u64,
}

impl Default for TestBus {
    fn default() -> TestBus {
        TestBus::new()
    }
}

impl TestBus {
    /// Creates a bus with 1-cycle fetch latency and 0-cycle data latency
    /// (scratchpad-like).
    #[must_use]
    pub fn new() -> TestBus {
        TestBus {
            mem: FlatMem::new(),
            fetch_latency: 1,
            read_latency: 0,
            write_latency: 0,
        }
    }
}

impl CoreBus for TestBus {
    fn fetch(&mut self, now: Cycle, addr: Addr) -> Result<FetchSlot, SimError> {
        let base = addr.align_down(FETCH_BYTES);
        let mut bytes = [0u8; FETCH_BYTES as usize];
        self.mem.read_into(base, &mut bytes)?;
        Ok(FetchSlot {
            bytes,
            ready_at: now + self.fetch_latency,
        })
    }

    fn read(&mut self, now: Cycle, addr: Addr, size: u8) -> Result<ReadSlot, SimError> {
        let value = self.mem.read(addr, size)?;
        Ok(ReadSlot {
            value,
            ready_at: now + self.read_latency,
        })
    }

    fn write(&mut self, now: Cycle, addr: Addr, size: u8, value: u32) -> Result<Cycle, SimError> {
        self.mem.write(addr, size, value)?;
        Ok(now + self.write_latency)
    }

    fn code_region(&self, addr: Addr) -> Option<(u32, u64)> {
        self.mem.region_stamp(addr)
    }
}

/// Adapts a [`CoreBus`] to the untimed [`ArchMem`] interface, recording the
/// worst-case completion times of everything the wrapped instruction did.
///
/// The pipeline executes an instruction functionally through this adapter,
/// then turns the recorded times into stall cycles.
#[derive(Debug)]
pub struct TimedMem<'a, B: CoreBus> {
    bus: &'a mut B,
    now: Cycle,
    /// Latest read-data arrival among all reads performed.
    pub reads_ready: Cycle,
    /// Latest store-acceptance time among all writes performed.
    pub writes_accepted: Cycle,
    /// Number of reads performed.
    pub read_count: u32,
    /// Number of writes performed.
    pub write_count: u32,
}

impl<'a, B: CoreBus> TimedMem<'a, B> {
    /// Wraps `bus` at the current cycle.
    pub fn new(bus: &'a mut B, now: Cycle) -> TimedMem<'a, B> {
        TimedMem {
            bus,
            now,
            reads_ready: now,
            writes_accepted: now,
            read_count: 0,
            write_count: 0,
        }
    }
}

impl<B: CoreBus> ArchMem for TimedMem<'_, B> {
    fn read(&mut self, addr: Addr, size: u8) -> Result<u32, SimError> {
        let slot = self.bus.read(self.now, addr, size)?;
        self.reads_ready = self.reads_ready.max(slot.ready_at);
        self.read_count += 1;
        Ok(slot.value)
    }

    fn write(&mut self, addr: Addr, size: u8, value: u32) -> Result<(), SimError> {
        let t = self.bus.write(self.now, addr, size, value)?;
        self.writes_accepted = self.writes_accepted.max(t);
        self.write_count += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_aligns_down() {
        let mut bus = TestBus::new();
        bus.mem.add_region(Addr(0x100), 32);
        bus.mem.load(Addr(0x100), &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let slot = bus.fetch(Cycle(5), Addr(0x106)).unwrap();
        assert_eq!(slot.bytes, [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(slot.ready_at, Cycle(6));
    }

    #[test]
    fn timed_mem_records_worst_case() {
        let mut bus = TestBus {
            read_latency: 3,
            write_latency: 5,
            ..TestBus::new()
        };
        bus.mem.add_region(Addr(0), 64);
        let mut tm = TimedMem::new(&mut bus, Cycle(10));
        use crate::arch::ArchMem;
        tm.write(Addr(0), 4, 1).unwrap();
        tm.read(Addr(0), 4).unwrap();
        tm.read(Addr(4), 4).unwrap();
        assert_eq!(tm.reads_ready, Cycle(13));
        assert_eq!(tm.writes_accepted, Cycle(15));
        assert_eq!(tm.read_count, 2);
        assert_eq!(tm.write_count, 1);
    }
}
