//! Opcode-format tables: the decoder's assigned opcode space as data.
//!
//! TC-R's mixed 16/32-bit formats share one 7-bit opcode field (bits 7..1
//! of the first halfword, with bit 0 selecting the format). The assigned
//! indices are disjoint — 16-bit forms occupy `0..=13`, 32-bit forms
//! `16..=88` — so a single index space of [`OPCODE_SPACE`] slots covers
//! every encoding the decoder knows, and everything outside [`ASSIGNED`]
//! is rejected by [`crate::encode::decode`].
//!
//! This module is the single source of truth the workload corpus and the
//! differential fuzzer build on:
//!
//! - [`opcode_index`] maps an executed instruction back to the table slot
//!   its canonical encoding occupies ([`opcode_index_sized`] honours
//!   widened `encode_sized` forms), which is what the ISS opcode-coverage
//!   counters record;
//! - [`sample_instr`] yields one representative instruction per slot, so
//!   tests can prove *every* encodable form is assemblable and coverage
//!   chasing can inject exactly the encodings a fuzz session has not yet
//!   executed.

use crate::encode::{encode, encode_sized};
use crate::isa::{AReg, BranchCond, DReg, Instr, MemWidth};

/// Size of the shared 7-bit opcode index space (both formats).
pub const OPCODE_SPACE: usize = 128;

/// Assigned opcode indices with a stable mnemonic label.
///
/// 16-bit (short) forms carry a `.s` suffix to keep them distinct from
/// the 32-bit spelling of the same operation. `ld.w.pi`/`st.w.pi` are the
/// post-increment forms. Index 68 (`ret` in the 32-bit format) decodes
/// but is never emitted by the canonical encoder — `ret` always
/// compresses to the short form — so it is the one assigned slot without
/// a [`sample_instr`].
pub const ASSIGNED: &[(u8, &str)] = &[
    (0, "nop.s"),
    (1, "mov.s"),
    (2, "add.s"),
    (3, "sub.s"),
    (4, "and.s"),
    (5, "or.s"),
    (6, "mov.aa.s"),
    (7, "mov.a.s"),
    (8, "mov.d.s"),
    (9, "ld.w.s"),
    (10, "st.w.s"),
    (11, "addi.s"),
    (12, "ret.s"),
    (13, "debug.s"),
    (16, "movi"),
    (17, "movh"),
    (18, "movu"),
    (19, "movh.a"),
    (20, "lea"),
    (21, "add"),
    (22, "sub"),
    (23, "and"),
    (24, "or"),
    (25, "xor"),
    (26, "min"),
    (27, "max"),
    (28, "mul"),
    (29, "mac"),
    (30, "div"),
    (31, "rem"),
    (32, "sh"),
    (33, "sha"),
    (34, "shi"),
    (35, "addi"),
    (36, "andi"),
    (37, "ori"),
    (38, "xori"),
    (39, "clz"),
    (40, "sext.b"),
    (41, "sext.h"),
    (42, "zext.b"),
    (43, "zext.h"),
    (44, "extr"),
    (45, "insert"),
    (46, "lt"),
    (47, "ltu"),
    (48, "eq"),
    (49, "ne"),
    (50, "sel"),
    (51, "ld.w"),
    (52, "ld.h"),
    (53, "ld.hu"),
    (54, "ld.b"),
    (55, "ld.bu"),
    (56, "st.w"),
    (57, "st.h"),
    (58, "st.b"),
    (59, "ld.a"),
    (60, "st.a"),
    (61, "ld.w.pi"),
    (62, "st.w.pi"),
    (63, "j"),
    (64, "jl"),
    (65, "call"),
    (66, "ji"),
    (67, "calli"),
    (68, "ret"),
    (69, "jeq"),
    (70, "jne"),
    (71, "jlt"),
    (72, "jge"),
    (73, "jltu"),
    (74, "jgeu"),
    (75, "jz"),
    (76, "jnz"),
    (77, "loop"),
    (78, "rfe"),
    (79, "syscall"),
    (80, "enable"),
    (81, "disable"),
    (82, "mfcr"),
    (83, "mtcr"),
    (84, "debug"),
    (85, "wait"),
    (86, "halt"),
    (87, "addia"),
    (88, "oril"),
];

/// The opcode index of an instruction's canonical encoding.
///
/// Both formats keep the opcode in bits 7..1 of the first halfword, so
/// this is format-independent.
#[must_use]
pub fn opcode_index(instr: &Instr) -> u8 {
    let e = encode(instr);
    (u16::from_le_bytes([e.bytes[0], e.bytes[1]]) >> 1) as u8 & 0x7F
}

/// The opcode index of an instruction as encoded at a specific length.
///
/// The assembler reserves sizes syntactically and widens compressible
/// instructions with [`encode_sized`] when an expression turns out to fit
/// the short form; an executed instruction's coverage must attribute to
/// the format that was actually fetched, so pass the fetched length here.
#[must_use]
pub fn opcode_index_sized(instr: &Instr, len: u8) -> u8 {
    let e = encode(instr);
    let e = if e.len == len {
        e
    } else {
        encode_sized(instr, len)
    };
    (u16::from_le_bytes([e.bytes[0], e.bytes[1]]) >> 1) as u8 & 0x7F
}

/// The stable label of an assigned opcode index, if any.
#[must_use]
pub fn opcode_name(index: u8) -> Option<&'static str> {
    ASSIGNED
        .iter()
        .find(|(i, _)| *i == index)
        .map(|(_, name)| *name)
}

/// The opcode index labelled `name`, if any (inverse of [`opcode_name`]).
#[must_use]
pub fn opcode_by_name(name: &str) -> Option<u8> {
    ASSIGNED.iter().find(|(_, n)| *n == name).map(|(i, _)| *i)
}

/// One representative instruction whose canonical encoding occupies the
/// given opcode slot.
///
/// Returns `None` for unassigned slots and for index 68 (the 32-bit `ret`
/// alias the canonical encoder never emits). Every `Some` sample is
/// pinned by this module's tests to encode to exactly its slot and to
/// round-trip through the decoder.
#[must_use]
#[allow(clippy::too_many_lines)] // reason: one arm per assigned opcode, a table in code form
pub fn sample_instr(index: u8) -> Option<Instr> {
    use Instr::*;
    let d = DReg;
    let a = AReg;
    let i = match index {
        0 => Nop,
        1 => MovD { rd: d(1), rs: d(2) },
        2 => Add {
            rd: d(1),
            ra: d(1),
            rb: d(2),
        },
        3 => Sub {
            rd: d(1),
            ra: d(1),
            rb: d(2),
        },
        4 => And {
            rd: d(1),
            ra: d(1),
            rb: d(2),
        },
        5 => Or {
            rd: d(1),
            ra: d(1),
            rb: d(2),
        },
        6 => MovAA {
            ad: a(4),
            a_src: a(5),
        },
        7 => MovDtoA { ad: a(4), rs: d(1) },
        8 => MovAtoD {
            rd: d(1),
            a_src: a(4),
        },
        9 => Ld {
            rd: d(1),
            ab: a(4),
            off: 0,
            width: MemWidth::Word,
            sign: false,
        },
        10 => St {
            rs: d(1),
            ab: a(4),
            off: 0,
            width: MemWidth::Word,
        },
        11 => AddI {
            rd: d(1),
            ra: d(1),
            imm: 3,
        },
        12 => Ret,
        13 => Debug { code: 1 },
        16 => MovI { rd: d(1), imm: -77 },
        17 => MovH {
            rd: d(1),
            imm: 0xD000,
        },
        18 => MovU {
            rd: d(1),
            imm: 0xFFFF,
        },
        19 => MovHA {
            ad: a(4),
            imm: 0xD000,
        },
        20 => Lea {
            ad: a(4),
            ab: a(5),
            off: 8,
        },
        21 => Add {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        22 => Sub {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        23 => And {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        24 => Or {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        25 => Xor {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        26 => Min {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        27 => Max {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        28 => Mul {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        29 => Mac {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        30 => Div {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        31 => Rem {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        32 => Sh {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        33 => Sha {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        34 => ShI {
            rd: d(1),
            ra: d(2),
            amount: -5,
        },
        35 => AddI {
            rd: d(1),
            ra: d(2),
            imm: 100,
        },
        36 => AndI {
            rd: d(1),
            ra: d(2),
            imm: 0xFF,
        },
        37 => OrI {
            rd: d(1),
            ra: d(2),
            imm: 0xFF,
        },
        38 => XorI {
            rd: d(1),
            ra: d(2),
            imm: 0xFF,
        },
        39 => Clz { rd: d(1), ra: d(2) },
        40 => SextB { rd: d(1), ra: d(2) },
        41 => SextH { rd: d(1), ra: d(2) },
        42 => ZextB { rd: d(1), ra: d(2) },
        43 => ZextH { rd: d(1), ra: d(2) },
        44 => Extr {
            rd: d(1),
            ra: d(2),
            pos: 4,
            width: 8,
        },
        45 => Insert {
            rd: d(1),
            rs: d(2),
            pos: 4,
            width: 8,
        },
        46 => Lt {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        47 => LtU {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        48 => EqR {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        49 => NeR {
            rd: d(1),
            ra: d(2),
            rb: d(3),
        },
        50 => Sel {
            rd: d(1),
            cond: d(2),
            rs: d(3),
        },
        51 => Ld {
            rd: d(1),
            ab: a(4),
            off: 8,
            width: MemWidth::Word,
            sign: false,
        },
        52 => Ld {
            rd: d(1),
            ab: a(4),
            off: 8,
            width: MemWidth::Half,
            sign: true,
        },
        53 => Ld {
            rd: d(1),
            ab: a(4),
            off: 8,
            width: MemWidth::Half,
            sign: false,
        },
        54 => Ld {
            rd: d(1),
            ab: a(4),
            off: 8,
            width: MemWidth::Byte,
            sign: true,
        },
        55 => Ld {
            rd: d(1),
            ab: a(4),
            off: 8,
            width: MemWidth::Byte,
            sign: false,
        },
        56 => St {
            rs: d(1),
            ab: a(4),
            off: 8,
            width: MemWidth::Word,
        },
        57 => St {
            rs: d(1),
            ab: a(4),
            off: 8,
            width: MemWidth::Half,
        },
        58 => St {
            rs: d(1),
            ab: a(4),
            off: 8,
            width: MemWidth::Byte,
        },
        59 => LdA {
            ad: a(4),
            ab: a(5),
            off: 8,
        },
        60 => StA {
            a_src: a(4),
            ab: a(5),
            off: 8,
        },
        61 => LdWPostInc {
            rd: d(1),
            ab: a(4),
            inc: 4,
        },
        62 => StWPostInc {
            rs: d(1),
            ab: a(4),
            inc: 4,
        },
        63 => J { off: 2 },
        64 => Jl { off: 2 },
        65 => Call { off: 2 },
        66 => Ji { aa: a(4) },
        67 => CallI { aa: a(4) },
        69 => JCond {
            cond: BranchCond::Eq,
            ra: d(1),
            rb: d(2),
            off: 2,
        },
        70 => JCond {
            cond: BranchCond::Ne,
            ra: d(1),
            rb: d(2),
            off: 2,
        },
        71 => JCond {
            cond: BranchCond::Lt,
            ra: d(1),
            rb: d(2),
            off: 2,
        },
        72 => JCond {
            cond: BranchCond::Ge,
            ra: d(1),
            rb: d(2),
            off: 2,
        },
        73 => JCond {
            cond: BranchCond::LtU,
            ra: d(1),
            rb: d(2),
            off: 2,
        },
        74 => JCond {
            cond: BranchCond::GeU,
            ra: d(1),
            rb: d(2),
            off: 2,
        },
        75 => Jz { ra: d(1), off: 2 },
        76 => Jnz { ra: d(1), off: 2 },
        77 => Loop { aa: a(5), off: -2 },
        78 => Rfe,
        79 => Syscall { num: 7 },
        80 => Enable,
        81 => Disable,
        82 => Mfcr { rd: d(1), csfr: 0 },
        83 => Mtcr { csfr: 7, rs: d(1) },
        84 => Debug { code: 200 },
        85 => Wait,
        86 => Halt,
        87 => AddIA { ad: a(4), imm: -8 },
        88 => OrIL {
            rd: d(1),
            imm: 0xBEEF,
        },
        _ => return None,
    };
    Some(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode;
    use audo_common::Addr;

    #[test]
    fn assigned_table_is_sorted_and_unique() {
        for pair in ASSIGNED.windows(2) {
            assert!(pair[0].0 < pair[1].0, "table out of order at {pair:?}");
        }
        assert_eq!(ASSIGNED.len(), 87);
    }

    #[test]
    fn every_sample_encodes_to_its_slot_and_round_trips() {
        for &(idx, name) in ASSIGNED {
            let Some(sample) = sample_instr(idx) else {
                assert_eq!(idx, 68, "only the 32-bit ret alias may lack a sample");
                continue;
            };
            assert_eq!(
                opcode_index(&sample),
                idx,
                "sample for `{name}` encodes to the wrong slot"
            );
            let e = encode(&sample);
            let (back, len) = decode(e.as_bytes(), Addr(0)).expect("sample decodes");
            assert_eq!(back, sample, "`{name}` sample round-trip");
            assert_eq!(len, e.len);
        }
    }

    #[test]
    fn unassigned_slots_are_rejected_in_both_formats() {
        let assigned: Vec<u8> = ASSIGNED.iter().map(|&(i, _)| i).collect();
        for idx in 0..OPCODE_SPACE as u8 {
            if assigned.contains(&idx) {
                continue;
            }
            let h: u16 = u16::from(idx) << 1;
            assert!(
                decode(&h.to_le_bytes(), Addr(0)).is_err(),
                "16-bit op {idx} should be rejected"
            );
            let w: u32 = 1 | (u32::from(idx) << 1);
            assert!(
                decode(&w.to_le_bytes(), Addr(0)).is_err(),
                "32-bit op {idx} should be rejected"
            );
        }
    }

    #[test]
    fn sized_index_attributes_widened_forms_to_the_wide_slot() {
        let short = Instr::Add {
            rd: DReg(1),
            ra: DReg(1),
            rb: DReg(2),
        };
        assert_eq!(opcode_index(&short), 2);
        assert_eq!(opcode_index_sized(&short, 2), 2);
        assert_eq!(opcode_index_sized(&short, 4), 21);
        let wide = Instr::Mul {
            rd: DReg(1),
            ra: DReg(2),
            rb: DReg(3),
        };
        assert_eq!(opcode_index_sized(&wide, 4), 28);
    }

    #[test]
    fn names_and_indices_are_inverse() {
        for &(idx, name) in ASSIGNED {
            assert_eq!(opcode_name(idx), Some(name));
            assert_eq!(opcode_by_name(name), Some(idx));
        }
        assert_eq!(opcode_name(14), None);
        assert_eq!(opcode_by_name("bogus"), None);
    }
}
