//! Binary encoding and decoding of TC-R instructions.
//!
//! TC-R uses mixed-length encodings like the real TriCore: bit 0 of the
//! first halfword selects between a 16-bit and a 32-bit format.
//!
//! **16-bit format** (bit 0 = 0):
//!
//! ```text
//! 15    12 11     8 7      1 0
//! [  r2   ][  r1   ][ op7   ][0]
//! ```
//!
//! **32-bit format** (bit 0 = 1):
//!
//! ```text
//! 31        20 19   16 15   12 11    8 7     1 0
//! [   imm12   ][  r3  ][  r2  ][  r1  ][ op7  ][1]
//! ```
//!
//! with two alternative layouts selected by the opcode: `imm16` in bits
//! 31..16 (`I16` format, `r2`/`r3` unused) and `off24` in bits 31..8
//! (`J` format, halfword-scaled signed jump displacement).
//!
//! The encoder always emits the *shortest canonical* encoding, and the only
//! instructions with two encodings (e.g. `ADD` with `rd == ra`) compress
//! based on register operands and literal immediates — never on label
//! distances — so instruction sizes are known in the assembler's first pass.

use audo_common::{Addr, SimError};

use crate::isa::{AReg, BranchCond, DReg, Instr, MemWidth};

// 16-bit opcodes.
const OP16_NOP: u8 = 0;
const OP16_MOV: u8 = 1;
const OP16_ADD: u8 = 2;
const OP16_SUB: u8 = 3;
const OP16_AND: u8 = 4;
const OP16_OR: u8 = 5;
const OP16_MOVAA: u8 = 6;
const OP16_MOVD2A: u8 = 7;
const OP16_MOVA2D: u8 = 8;
const OP16_LDW: u8 = 9;
const OP16_STW: u8 = 10;
const OP16_ADDI: u8 = 11;
const OP16_RET: u8 = 12;
const OP16_DEBUG: u8 = 13;

// 32-bit opcodes.
const OP_MOVI: u8 = 16;
const OP_MOVH: u8 = 17;
const OP_MOVU: u8 = 18;
const OP_MOVHA: u8 = 19;
const OP_LEA: u8 = 20;
const OP_ADD: u8 = 21;
const OP_SUB: u8 = 22;
const OP_AND: u8 = 23;
const OP_OR: u8 = 24;
const OP_XOR: u8 = 25;
const OP_MIN: u8 = 26;
const OP_MAX: u8 = 27;
const OP_MUL: u8 = 28;
const OP_MAC: u8 = 29;
const OP_DIV: u8 = 30;
const OP_REM: u8 = 31;
const OP_SH: u8 = 32;
const OP_SHA: u8 = 33;
const OP_SHI: u8 = 34;
const OP_ADDI: u8 = 35;
const OP_ANDI: u8 = 36;
const OP_ORI: u8 = 37;
const OP_XORI: u8 = 38;
const OP_CLZ: u8 = 39;
const OP_SEXTB: u8 = 40;
const OP_SEXTH: u8 = 41;
const OP_ZEXTB: u8 = 42;
const OP_ZEXTH: u8 = 43;
const OP_EXTR: u8 = 44;
const OP_INSERT: u8 = 45;
const OP_LT: u8 = 46;
const OP_LTU: u8 = 47;
const OP_EQ: u8 = 48;
const OP_NE: u8 = 49;
const OP_SEL: u8 = 50;
const OP_LDW: u8 = 51;
const OP_LDH: u8 = 52;
const OP_LDHU: u8 = 53;
const OP_LDB: u8 = 54;
const OP_LDBU: u8 = 55;
const OP_STW: u8 = 56;
const OP_STH: u8 = 57;
const OP_STB: u8 = 58;
const OP_LDA: u8 = 59;
const OP_STA: u8 = 60;
const OP_LDWPI: u8 = 61;
const OP_STWPI: u8 = 62;
const OP_J: u8 = 63;
const OP_JL: u8 = 64;
const OP_CALL: u8 = 65;
const OP_JI: u8 = 66;
const OP_CALLI: u8 = 67;
const OP_RET: u8 = 68;
const OP_JEQ: u8 = 69;
const OP_JNE: u8 = 70;
const OP_JLT: u8 = 71;
const OP_JGE: u8 = 72;
const OP_JLTU: u8 = 73;
const OP_JGEU: u8 = 74;
const OP_JZ: u8 = 75;
const OP_JNZ: u8 = 76;
const OP_LOOP: u8 = 77;
const OP_RFE: u8 = 78;
const OP_SYSCALL: u8 = 79;
const OP_ENABLE: u8 = 80;
const OP_DISABLE: u8 = 81;
const OP_MFCR: u8 = 82;
const OP_MTCR: u8 = 83;
const OP_DEBUG: u8 = 84;
const OP_WAIT: u8 = 85;
const OP_HALT: u8 = 86;
const OP_ADDIA: u8 = 87;
const OP_ORIL: u8 = 88;

/// An encoded instruction: up to four bytes plus its length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Encoded {
    /// Little-endian instruction bytes; only the first `len` are meaningful.
    pub bytes: [u8; 4],
    /// Encoded length: 2 or 4.
    pub len: u8,
}

impl Encoded {
    /// The meaningful byte slice.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }
}

fn enc16(op: u8, r1: u8, r2: u8) -> Encoded {
    debug_assert!(op < 16 && r1 < 16 && r2 < 16);
    let h = (u16::from(op) << 1) | (u16::from(r1) << 8) | (u16::from(r2) << 12);
    Encoded {
        bytes: [(h & 0xFF) as u8, (h >> 8) as u8, 0, 0],
        len: 2,
    }
}

fn enc32(op: u8, r1: u8, r2: u8, r3: u8, imm12: u16) -> Encoded {
    debug_assert!((16..128).contains(&op) && r1 < 16 && r2 < 16 && r3 < 16 && imm12 < 4096);
    let w = 1u32
        | (u32::from(op) << 1)
        | (u32::from(r1) << 8)
        | (u32::from(r2) << 12)
        | (u32::from(r3) << 16)
        | (u32::from(imm12) << 20);
    Encoded {
        bytes: w.to_le_bytes(),
        len: 4,
    }
}

fn enc32_i16(op: u8, r1: u8, imm16: u16) -> Encoded {
    let w = 1u32 | (u32::from(op) << 1) | (u32::from(r1) << 8) | (u32::from(imm16) << 16);
    Encoded {
        bytes: w.to_le_bytes(),
        len: 4,
    }
}

fn enc32_j(op: u8, off24: i32) -> Encoded {
    debug_assert!((-(1 << 23)..(1 << 23)).contains(&off24));
    let w = 1u32 | (u32::from(op) << 1) | (((off24 as u32) & 0x00FF_FFFF) << 8);
    Encoded {
        bytes: w.to_le_bytes(),
        len: 4,
    }
}

fn simm12(v: i16) -> u16 {
    debug_assert!((-2048..2048).contains(&v), "imm12 out of range: {v}");
    (v as u16) & 0x0FFF
}

fn sext12(v: u16) -> i16 {
    ((v << 4) as i16) >> 4
}

fn sext24(v: u32) -> i32 {
    ((v << 8) as i32) >> 8
}

/// Returns the encoded length (2 or 4) of an instruction without encoding it.
///
/// Lengths never depend on branch offsets, so the assembler can lay out code
/// in its first pass with placeholder offsets.
#[must_use]
pub fn encoded_len(instr: &Instr) -> u8 {
    encode(instr).len
}

/// Encodes an instruction into its canonical (shortest) binary form.
///
/// # Panics
///
/// Panics in debug builds if an immediate or offset is out of range for its
/// field. The assembler validates ranges before calling this.
#[must_use]
pub fn encode(instr: &Instr) -> Encoded {
    use Instr::*;
    match *instr {
        Nop => enc16(OP16_NOP, 0, 0),
        MovD { rd, rs } => enc16(OP16_MOV, rd.0, rs.0),
        Add { rd, ra, rb } if rd == ra => enc16(OP16_ADD, rd.0, rb.0),
        Sub { rd, ra, rb } if rd == ra => enc16(OP16_SUB, rd.0, rb.0),
        And { rd, ra, rb } if rd == ra => enc16(OP16_AND, rd.0, rb.0),
        Or { rd, ra, rb } if rd == ra => enc16(OP16_OR, rd.0, rb.0),
        MovAA { ad, a_src } => enc16(OP16_MOVAA, ad.0, a_src.0),
        MovDtoA { ad, rs } => enc16(OP16_MOVD2A, ad.0, rs.0),
        MovAtoD { rd, a_src } => enc16(OP16_MOVA2D, rd.0, a_src.0),
        Ld {
            rd,
            ab,
            off: 0,
            width: MemWidth::Word,
            sign: _,
        } => enc16(OP16_LDW, rd.0, ab.0),
        St {
            rs,
            ab,
            off: 0,
            width: MemWidth::Word,
        } => enc16(OP16_STW, rs.0, ab.0),
        AddI { rd, ra, imm } if rd == ra && (-8..8).contains(&imm) => {
            enc16(OP16_ADDI, rd.0, (imm as u8) & 0xF)
        }
        Ret => enc16(OP16_RET, 0, 0),
        Debug { code } if code < 16 => enc16(OP16_DEBUG, code, 0),

        MovI { rd, imm } => enc32_i16(OP_MOVI, rd.0, imm as u16),
        MovH { rd, imm } => enc32_i16(OP_MOVH, rd.0, imm),
        MovU { rd, imm } => enc32_i16(OP_MOVU, rd.0, imm),
        MovHA { ad, imm } => enc32_i16(OP_MOVHA, ad.0, imm),
        AddIA { ad, imm } => enc32_i16(OP_ADDIA, ad.0, imm as u16),
        OrIL { rd, imm } => enc32_i16(OP_ORIL, rd.0, imm),
        Lea { ad, ab, off } => enc32(OP_LEA, ad.0, ab.0, 0, simm12(off)),
        Add { rd, ra, rb } => enc32(OP_ADD, rd.0, ra.0, rb.0, 0),
        Sub { rd, ra, rb } => enc32(OP_SUB, rd.0, ra.0, rb.0, 0),
        And { rd, ra, rb } => enc32(OP_AND, rd.0, ra.0, rb.0, 0),
        Or { rd, ra, rb } => enc32(OP_OR, rd.0, ra.0, rb.0, 0),
        Xor { rd, ra, rb } => enc32(OP_XOR, rd.0, ra.0, rb.0, 0),
        Min { rd, ra, rb } => enc32(OP_MIN, rd.0, ra.0, rb.0, 0),
        Max { rd, ra, rb } => enc32(OP_MAX, rd.0, ra.0, rb.0, 0),
        Mul { rd, ra, rb } => enc32(OP_MUL, rd.0, ra.0, rb.0, 0),
        Mac { rd, ra, rb } => enc32(OP_MAC, rd.0, ra.0, rb.0, 0),
        Div { rd, ra, rb } => enc32(OP_DIV, rd.0, ra.0, rb.0, 0),
        Rem { rd, ra, rb } => enc32(OP_REM, rd.0, ra.0, rb.0, 0),
        Sh { rd, ra, rb } => enc32(OP_SH, rd.0, ra.0, rb.0, 0),
        Sha { rd, ra, rb } => enc32(OP_SHA, rd.0, ra.0, rb.0, 0),
        ShI { rd, ra, amount } => enc32(OP_SHI, rd.0, ra.0, 0, simm12(i16::from(amount))),
        AddI { rd, ra, imm } => enc32(OP_ADDI, rd.0, ra.0, 0, simm12(imm)),
        AndI { rd, ra, imm } => enc32(OP_ANDI, rd.0, ra.0, 0, imm & 0xFFF),
        OrI { rd, ra, imm } => enc32(OP_ORI, rd.0, ra.0, 0, imm & 0xFFF),
        XorI { rd, ra, imm } => enc32(OP_XORI, rd.0, ra.0, 0, imm & 0xFFF),
        Clz { rd, ra } => enc32(OP_CLZ, rd.0, ra.0, 0, 0),
        SextB { rd, ra } => enc32(OP_SEXTB, rd.0, ra.0, 0, 0),
        SextH { rd, ra } => enc32(OP_SEXTH, rd.0, ra.0, 0, 0),
        ZextB { rd, ra } => enc32(OP_ZEXTB, rd.0, ra.0, 0, 0),
        ZextH { rd, ra } => enc32(OP_ZEXTH, rd.0, ra.0, 0, 0),
        Extr { rd, ra, pos, width } => enc32(
            OP_EXTR,
            rd.0,
            ra.0,
            0,
            u16::from(pos) | (u16::from(width - 1) << 5),
        ),
        Insert { rd, rs, pos, width } => enc32(
            OP_INSERT,
            rd.0,
            rs.0,
            0,
            u16::from(pos) | (u16::from(width - 1) << 5),
        ),
        Lt { rd, ra, rb } => enc32(OP_LT, rd.0, ra.0, rb.0, 0),
        LtU { rd, ra, rb } => enc32(OP_LTU, rd.0, ra.0, rb.0, 0),
        EqR { rd, ra, rb } => enc32(OP_EQ, rd.0, ra.0, rb.0, 0),
        NeR { rd, ra, rb } => enc32(OP_NE, rd.0, ra.0, rb.0, 0),
        Sel { rd, cond, rs } => enc32(OP_SEL, rd.0, cond.0, rs.0, 0),
        Ld {
            rd,
            ab,
            off,
            width,
            sign,
        } => {
            let op = match (width, sign) {
                (MemWidth::Word, _) => OP_LDW,
                (MemWidth::Half, true) => OP_LDH,
                (MemWidth::Half, false) => OP_LDHU,
                (MemWidth::Byte, true) => OP_LDB,
                (MemWidth::Byte, false) => OP_LDBU,
            };
            enc32(op, rd.0, ab.0, 0, simm12(off))
        }
        St { rs, ab, off, width } => {
            let op = match width {
                MemWidth::Word => OP_STW,
                MemWidth::Half => OP_STH,
                MemWidth::Byte => OP_STB,
            };
            enc32(op, rs.0, ab.0, 0, simm12(off))
        }
        LdA { ad, ab, off } => enc32(OP_LDA, ad.0, ab.0, 0, simm12(off)),
        StA { a_src, ab, off } => enc32(OP_STA, a_src.0, ab.0, 0, simm12(off)),
        LdWPostInc { rd, ab, inc } => enc32(OP_LDWPI, rd.0, ab.0, 0, simm12(inc)),
        StWPostInc { rs, ab, inc } => enc32(OP_STWPI, rs.0, ab.0, 0, simm12(inc)),
        J { off } => enc32_j(OP_J, off),
        Jl { off } => enc32_j(OP_JL, off),
        Call { off } => enc32_j(OP_CALL, off),
        Ji { aa } => enc32(OP_JI, aa.0, 0, 0, 0),
        CallI { aa } => enc32(OP_CALLI, aa.0, 0, 0, 0),
        JCond { cond, ra, rb, off } => {
            let op = match cond {
                BranchCond::Eq => OP_JEQ,
                BranchCond::Ne => OP_JNE,
                BranchCond::Lt => OP_JLT,
                BranchCond::Ge => OP_JGE,
                BranchCond::LtU => OP_JLTU,
                BranchCond::GeU => OP_JGEU,
            };
            enc32(op, ra.0, rb.0, 0, simm12(off))
        }
        Jz { ra, off } => enc32(OP_JZ, ra.0, 0, 0, simm12(off)),
        Jnz { ra, off } => enc32(OP_JNZ, ra.0, 0, 0, simm12(off)),
        Loop { aa, off } => enc32(OP_LOOP, aa.0, 0, 0, simm12(off)),
        Rfe => enc32(OP_RFE, 0, 0, 0, 0),
        Syscall { num } => enc32(OP_SYSCALL, 0, 0, 0, num & 0xFFF),
        Enable => enc32(OP_ENABLE, 0, 0, 0, 0),
        Disable => enc32(OP_DISABLE, 0, 0, 0, 0),
        Mfcr { rd, csfr } => enc32(OP_MFCR, rd.0, 0, 0, csfr & 0xFFF),
        Mtcr { csfr, rs } => enc32(OP_MTCR, rs.0, 0, 0, csfr & 0xFFF),
        Debug { code } => enc32(OP_DEBUG, 0, 0, 0, u16::from(code)),
        Wait => enc32(OP_WAIT, 0, 0, 0, 0),
        Halt => enc32(OP_HALT, 0, 0, 0, 0),
    }
}

/// Encodes an instruction forcing a specific length.
///
/// The assembler reserves space in its first pass based on *syntactic*
/// compressibility; if an expression later evaluates to a compressible value
/// (e.g. `addi d1, d1, SYM` with `SYM = 3`) the canonical encoding would be
/// two bytes shorter than reserved. This function emits the 32-bit form on
/// demand so sizes always match the first-pass layout.
///
/// # Panics
///
/// Panics if `want_len` is 4 but the instruction has no 32-bit encoding
/// (only register-to-register moves lack one, and those are always sized 2),
/// or if `want_len` is 2 but the canonical encoding is 4 bytes.
#[must_use]
pub fn encode_sized(instr: &Instr, want_len: u8) -> Encoded {
    use Instr::*;
    let canonical = encode(instr);
    if canonical.len == want_len {
        return canonical;
    }
    assert!(want_len == 4, "cannot shrink {instr:?} to {want_len} bytes");
    match *instr {
        Add { rd, ra, rb } => enc32(OP_ADD, rd.0, ra.0, rb.0, 0),
        Sub { rd, ra, rb } => enc32(OP_SUB, rd.0, ra.0, rb.0, 0),
        And { rd, ra, rb } => enc32(OP_AND, rd.0, ra.0, rb.0, 0),
        Or { rd, ra, rb } => enc32(OP_OR, rd.0, ra.0, rb.0, 0),
        AddI { rd, ra, imm } => enc32(OP_ADDI, rd.0, ra.0, 0, simm12(imm)),
        Ld {
            rd,
            ab,
            off,
            width: MemWidth::Word,
            ..
        } => enc32(OP_LDW, rd.0, ab.0, 0, simm12(off)),
        St {
            rs,
            ab,
            off,
            width: MemWidth::Word,
        } => enc32(OP_STW, rs.0, ab.0, 0, simm12(off)),
        Debug { code } => enc32(OP_DEBUG, 0, 0, 0, u16::from(code)),
        ref other => panic!("no 32-bit encoding for {other:?}"),
    }
}

/// Decodes one instruction from the front of `bytes`.
///
/// Returns the instruction and its encoded length in bytes.
///
/// # Errors
///
/// Returns [`SimError::DecodeInstr`] if the opcode is unknown, and reports
/// `addr` (the caller-supplied PC) in the error.
pub fn decode(bytes: &[u8], addr: Addr) -> Result<(Instr, u8), SimError> {
    use Instr::*;
    if bytes.len() < 2 {
        return Err(SimError::DecodeInstr { addr, word: 0 });
    }
    let h = u16::from_le_bytes([bytes[0], bytes[1]]);
    if h & 1 == 0 {
        // 16-bit format.
        let op = ((h >> 1) & 0x7F) as u8;
        let r1 = ((h >> 8) & 0xF) as u8;
        let r2 = ((h >> 12) & 0xF) as u8;
        let instr = match op {
            OP16_NOP => Nop,
            OP16_MOV => MovD {
                rd: DReg(r1),
                rs: DReg(r2),
            },
            OP16_ADD => Add {
                rd: DReg(r1),
                ra: DReg(r1),
                rb: DReg(r2),
            },
            OP16_SUB => Sub {
                rd: DReg(r1),
                ra: DReg(r1),
                rb: DReg(r2),
            },
            OP16_AND => And {
                rd: DReg(r1),
                ra: DReg(r1),
                rb: DReg(r2),
            },
            OP16_OR => Or {
                rd: DReg(r1),
                ra: DReg(r1),
                rb: DReg(r2),
            },
            OP16_MOVAA => MovAA {
                ad: AReg(r1),
                a_src: AReg(r2),
            },
            OP16_MOVD2A => MovDtoA {
                ad: AReg(r1),
                rs: DReg(r2),
            },
            OP16_MOVA2D => MovAtoD {
                rd: DReg(r1),
                a_src: AReg(r2),
            },
            OP16_LDW => Ld {
                rd: DReg(r1),
                ab: AReg(r2),
                off: 0,
                width: MemWidth::Word,
                sign: false,
            },
            OP16_STW => St {
                rs: DReg(r1),
                ab: AReg(r2),
                off: 0,
                width: MemWidth::Word,
            },
            OP16_ADDI => {
                let imm = ((r2 << 4) as i8) >> 4; // sign-extend 4-bit
                AddI {
                    rd: DReg(r1),
                    ra: DReg(r1),
                    imm: i16::from(imm),
                }
            }
            OP16_RET => Ret,
            OP16_DEBUG => Debug { code: r1 },
            _ => {
                return Err(SimError::DecodeInstr {
                    addr,
                    word: u32::from(h),
                })
            }
        };
        return Ok((instr, 2));
    }
    // 32-bit format.
    if bytes.len() < 4 {
        return Err(SimError::DecodeInstr {
            addr,
            word: u32::from(h),
        });
    }
    let w = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let op = ((w >> 1) & 0x7F) as u8;
    let r1 = ((w >> 8) & 0xF) as u8;
    let r2 = ((w >> 12) & 0xF) as u8;
    let r3 = ((w >> 16) & 0xF) as u8;
    let imm12 = ((w >> 20) & 0xFFF) as u16;
    let imm16 = (w >> 16) as u16;
    let off24 = sext24(w >> 8);
    let d = DReg;
    let a = AReg;
    let instr = match op {
        OP_MOVI => MovI {
            rd: d(r1),
            imm: imm16 as i16,
        },
        OP_MOVH => MovH {
            rd: d(r1),
            imm: imm16,
        },
        OP_MOVU => MovU {
            rd: d(r1),
            imm: imm16,
        },
        OP_MOVHA => MovHA {
            ad: a(r1),
            imm: imm16,
        },
        OP_ADDIA => AddIA {
            ad: a(r1),
            imm: imm16 as i16,
        },
        OP_ORIL => OrIL {
            rd: d(r1),
            imm: imm16,
        },
        OP_LEA => Lea {
            ad: a(r1),
            ab: a(r2),
            off: sext12(imm12),
        },
        OP_ADD => Add {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_SUB => Sub {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_AND => And {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_OR => Or {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_XOR => Xor {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_MIN => Min {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_MAX => Max {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_MUL => Mul {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_MAC => Mac {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_DIV => Div {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_REM => Rem {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_SH => Sh {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_SHA => Sha {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_SHI => ShI {
            rd: d(r1),
            ra: d(r2),
            amount: sext12(imm12) as i8,
        },
        OP_ADDI => AddI {
            rd: d(r1),
            ra: d(r2),
            imm: sext12(imm12),
        },
        OP_ANDI => AndI {
            rd: d(r1),
            ra: d(r2),
            imm: imm12,
        },
        OP_ORI => OrI {
            rd: d(r1),
            ra: d(r2),
            imm: imm12,
        },
        OP_XORI => XorI {
            rd: d(r1),
            ra: d(r2),
            imm: imm12,
        },
        OP_CLZ => Clz {
            rd: d(r1),
            ra: d(r2),
        },
        OP_SEXTB => SextB {
            rd: d(r1),
            ra: d(r2),
        },
        OP_SEXTH => SextH {
            rd: d(r1),
            ra: d(r2),
        },
        OP_ZEXTB => ZextB {
            rd: d(r1),
            ra: d(r2),
        },
        OP_ZEXTH => ZextH {
            rd: d(r1),
            ra: d(r2),
        },
        OP_EXTR => Extr {
            rd: d(r1),
            ra: d(r2),
            pos: (imm12 & 0x1F) as u8,
            width: ((imm12 >> 5) & 0x1F) as u8 + 1,
        },
        OP_INSERT => Insert {
            rd: d(r1),
            rs: d(r2),
            pos: (imm12 & 0x1F) as u8,
            width: ((imm12 >> 5) & 0x1F) as u8 + 1,
        },
        OP_LT => Lt {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_LTU => LtU {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_EQ => EqR {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_NE => NeR {
            rd: d(r1),
            ra: d(r2),
            rb: d(r3),
        },
        OP_SEL => Sel {
            rd: d(r1),
            cond: d(r2),
            rs: d(r3),
        },
        OP_LDW => Ld {
            rd: d(r1),
            ab: a(r2),
            off: sext12(imm12),
            width: MemWidth::Word,
            sign: false,
        },
        OP_LDH => Ld {
            rd: d(r1),
            ab: a(r2),
            off: sext12(imm12),
            width: MemWidth::Half,
            sign: true,
        },
        OP_LDHU => Ld {
            rd: d(r1),
            ab: a(r2),
            off: sext12(imm12),
            width: MemWidth::Half,
            sign: false,
        },
        OP_LDB => Ld {
            rd: d(r1),
            ab: a(r2),
            off: sext12(imm12),
            width: MemWidth::Byte,
            sign: true,
        },
        OP_LDBU => Ld {
            rd: d(r1),
            ab: a(r2),
            off: sext12(imm12),
            width: MemWidth::Byte,
            sign: false,
        },
        OP_STW => St {
            rs: d(r1),
            ab: a(r2),
            off: sext12(imm12),
            width: MemWidth::Word,
        },
        OP_STH => St {
            rs: d(r1),
            ab: a(r2),
            off: sext12(imm12),
            width: MemWidth::Half,
        },
        OP_STB => St {
            rs: d(r1),
            ab: a(r2),
            off: sext12(imm12),
            width: MemWidth::Byte,
        },
        OP_LDA => LdA {
            ad: a(r1),
            ab: a(r2),
            off: sext12(imm12),
        },
        OP_STA => StA {
            a_src: a(r1),
            ab: a(r2),
            off: sext12(imm12),
        },
        OP_LDWPI => LdWPostInc {
            rd: d(r1),
            ab: a(r2),
            inc: sext12(imm12),
        },
        OP_STWPI => StWPostInc {
            rs: d(r1),
            ab: a(r2),
            inc: sext12(imm12),
        },
        OP_J => J { off: off24 },
        OP_JL => Jl { off: off24 },
        OP_CALL => Call { off: off24 },
        OP_JI => Ji { aa: a(r1) },
        OP_CALLI => CallI { aa: a(r1) },
        OP_RET => Ret,
        OP_JEQ => JCond {
            cond: BranchCond::Eq,
            ra: d(r1),
            rb: d(r2),
            off: sext12(imm12),
        },
        OP_JNE => JCond {
            cond: BranchCond::Ne,
            ra: d(r1),
            rb: d(r2),
            off: sext12(imm12),
        },
        OP_JLT => JCond {
            cond: BranchCond::Lt,
            ra: d(r1),
            rb: d(r2),
            off: sext12(imm12),
        },
        OP_JGE => JCond {
            cond: BranchCond::Ge,
            ra: d(r1),
            rb: d(r2),
            off: sext12(imm12),
        },
        OP_JLTU => JCond {
            cond: BranchCond::LtU,
            ra: d(r1),
            rb: d(r2),
            off: sext12(imm12),
        },
        OP_JGEU => JCond {
            cond: BranchCond::GeU,
            ra: d(r1),
            rb: d(r2),
            off: sext12(imm12),
        },
        OP_JZ => Jz {
            ra: d(r1),
            off: sext12(imm12),
        },
        OP_JNZ => Jnz {
            ra: d(r1),
            off: sext12(imm12),
        },
        OP_LOOP => Loop {
            aa: a(r1),
            off: sext12(imm12),
        },
        OP_RFE => Rfe,
        OP_SYSCALL => Syscall { num: imm12 },
        OP_ENABLE => Enable,
        OP_DISABLE => Disable,
        OP_MFCR => Mfcr {
            rd: d(r1),
            csfr: imm12,
        },
        OP_MTCR => Mtcr {
            csfr: imm12,
            rs: d(r1),
        },
        OP_DEBUG => Debug {
            code: (imm12 & 0xFF) as u8,
        },
        OP_WAIT => Wait,
        OP_HALT => Halt,
        _ => return Err(SimError::DecodeInstr { addr, word: w }),
    };
    Ok((instr, 4))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instr) {
        let e = encode(&i);
        let (back, len) = decode(e.as_bytes(), Addr(0)).expect("decodes");
        assert_eq!(back, i, "round-trip failed for {i:?}");
        assert_eq!(len, e.len);
    }

    #[test]
    fn short_forms_are_two_bytes() {
        assert_eq!(encode(&Instr::Nop).len, 2);
        assert_eq!(
            encode(&Instr::MovD {
                rd: DReg(1),
                rs: DReg(2)
            })
            .len,
            2
        );
        assert_eq!(
            encode(&Instr::Add {
                rd: DReg(1),
                ra: DReg(1),
                rb: DReg(2)
            })
            .len,
            2
        );
        assert_eq!(encode(&Instr::Ret).len, 2);
        assert_eq!(
            encode(&Instr::Ld {
                rd: DReg(3),
                ab: AReg(4),
                off: 0,
                width: MemWidth::Word,
                sign: false
            })
            .len,
            2
        );
    }

    #[test]
    fn long_forms_are_four_bytes() {
        assert_eq!(
            encode(&Instr::Add {
                rd: DReg(1),
                ra: DReg(2),
                rb: DReg(3)
            })
            .len,
            4
        );
        assert_eq!(encode(&Instr::J { off: 100 }).len, 4);
        assert_eq!(
            encode(&Instr::Ld {
                rd: DReg(3),
                ab: AReg(4),
                off: 8,
                width: MemWidth::Word,
                sign: false
            })
            .len,
            4
        );
    }

    #[test]
    fn roundtrip_representative_instructions() {
        use crate::isa::Instr::*;
        let cases = [
            Nop,
            MovD {
                rd: DReg(0),
                rs: DReg(15),
            },
            MovI {
                rd: DReg(5),
                imm: -1234,
            },
            MovH {
                rd: DReg(5),
                imm: 0x8000,
            },
            MovU {
                rd: DReg(5),
                imm: 0xFFFF,
            },
            MovHA {
                ad: AReg(2),
                imm: 0xD000,
            },
            AddIA {
                ad: AReg(2),
                imm: -32768,
            },
            OrIL {
                rd: DReg(4),
                imm: 0xBEEF,
            },
            Lea {
                ad: AReg(1),
                ab: AReg(2),
                off: -2048,
            },
            Add {
                rd: DReg(1),
                ra: DReg(2),
                rb: DReg(3),
            },
            Add {
                rd: DReg(1),
                ra: DReg(1),
                rb: DReg(3),
            },
            Mul {
                rd: DReg(9),
                ra: DReg(10),
                rb: DReg(11),
            },
            Mac {
                rd: DReg(9),
                ra: DReg(10),
                rb: DReg(11),
            },
            Div {
                rd: DReg(1),
                ra: DReg(2),
                rb: DReg(3),
            },
            ShI {
                rd: DReg(1),
                ra: DReg(2),
                amount: -16,
            },
            AddI {
                rd: DReg(1),
                ra: DReg(2),
                imm: 2047,
            },
            AddI {
                rd: DReg(1),
                ra: DReg(1),
                imm: -8,
            },
            AndI {
                rd: DReg(1),
                ra: DReg(2),
                imm: 0xFFF,
            },
            Extr {
                rd: DReg(1),
                ra: DReg(2),
                pos: 31,
                width: 1,
            },
            Extr {
                rd: DReg(1),
                ra: DReg(2),
                pos: 0,
                width: 32,
            },
            Insert {
                rd: DReg(1),
                rs: DReg(2),
                pos: 5,
                width: 7,
            },
            Sel {
                rd: DReg(1),
                cond: DReg(2),
                rs: DReg(3),
            },
            Ld {
                rd: DReg(1),
                ab: AReg(2),
                off: -4,
                width: MemWidth::Half,
                sign: true,
            },
            Ld {
                rd: DReg(1),
                ab: AReg(2),
                off: 0,
                width: MemWidth::Word,
                sign: false,
            },
            St {
                rs: DReg(1),
                ab: AReg(2),
                off: 100,
                width: MemWidth::Byte,
            },
            LdWPostInc {
                rd: DReg(1),
                ab: AReg(2),
                inc: 4,
            },
            StWPostInc {
                rs: DReg(1),
                ab: AReg(2),
                inc: -4,
            },
            LdA {
                ad: AReg(1),
                ab: AReg(10),
                off: 8,
            },
            StA {
                a_src: AReg(11),
                ab: AReg(10),
                off: -8,
            },
            J { off: -(1 << 23) },
            J { off: (1 << 23) - 1 },
            Jl { off: 42 },
            Call { off: -42 },
            Ji { aa: AReg(11) },
            CallI { aa: AReg(3) },
            Ret,
            JCond {
                cond: BranchCond::GeU,
                ra: DReg(1),
                rb: DReg(2),
                off: -6,
            },
            Jz {
                ra: DReg(7),
                off: 6,
            },
            Jnz {
                ra: DReg(7),
                off: 6,
            },
            Loop {
                aa: AReg(3),
                off: -10,
            },
            Rfe,
            Syscall { num: 77 },
            Enable,
            Disable,
            Mfcr {
                rd: DReg(1),
                csfr: 5,
            },
            Mtcr {
                csfr: 6,
                rs: DReg(2),
            },
            Debug { code: 200 },
            Debug { code: 5 },
            Wait,
            Halt,
        ];
        for c in cases {
            roundtrip(c);
        }
    }

    #[test]
    fn unknown_opcodes_error() {
        // 16-bit op 15 is unassigned.
        let h: u16 = 15 << 1;
        assert!(decode(&h.to_le_bytes(), Addr(0x100)).is_err());
        // 32-bit op 127 is unassigned.
        let w: u32 = 1 | (127 << 1);
        assert!(decode(&w.to_le_bytes(), Addr(0x100)).is_err());
    }

    #[test]
    fn truncated_input_errors() {
        assert!(decode(&[], Addr(0)).is_err());
        assert!(decode(&[0x01], Addr(0)).is_err());
        // 32-bit instruction but only two bytes available.
        let e = encode(&Instr::J { off: 4 });
        assert!(decode(&e.bytes[..2], Addr(0)).is_err());
    }

    #[test]
    fn sign_extension_helpers() {
        assert_eq!(sext12(0xFFF), -1);
        assert_eq!(sext12(0x800), -2048);
        assert_eq!(sext12(0x7FF), 2047);
        assert_eq!(sext24(0x00FF_FFFF), -1);
        assert_eq!(sext24(0x0080_0000), -(1 << 23));
    }
}
