//! Two-pass text assembler for TC-R programs.
//!
//! The workloads in this repository (engine control, transmission,
//! microbenchmarks) are written in this assembly dialect and run on the
//! simulated SoC, so the profiling methodology is exercised on real machine
//! code rather than hand-placed event streams.
//!
//! # Syntax
//!
//! ```text
//! ; comment (also #)
//! .org   0x80000000          ; start a section
//! .equ   TICKS, 1000         ; named constant
//! .align 4                   ; pad with zero bytes
//! .word  1, 2, table         ; 32-bit data (expressions allowed)
//! .half  0x1234              ; 16-bit data
//! .byte  1, 2, 3             ; 8-bit data
//! .space 64                  ; reserve zeroed bytes
//!
//! _start:                    ; labels end with ':'
//!     li    d0, 0x12345678   ; pseudo: load 32-bit constant (2 instrs)
//!     la    a2, table        ; pseudo: load 32-bit address (2 instrs)
//!     ld.w  d1, [a2]         ; word load, zero offset (16-bit form)
//!     ld.w  d1, [a2+8]       ; word load with offset
//!     st.w  d1, [a2+]4       ; word store, post-increment a2 by 4
//!     add   d1, d1, d0
//!     jne   d1, d0, _start   ; compare-and-branch to a label
//!     loop  a3, _start       ; hardware loop
//!     call  function
//!     halt
//! ```
//!
//! Registers are written `d0..d15`, `a0..a15`, with aliases `sp` (= `a10`)
//! and `ra` (= `a11`). Expressions support `+`/`-`, decimal/hex/binary
//! literals, char literals, symbols, and the functions `lo(x)`, `hi(x)`
//! (plain halves) and `hia(x)` (high half adjusted for a signed low half).

use std::collections::BTreeMap;

use audo_common::{Addr, SimError};

use crate::encode::encode_sized;
use crate::image::{Image, Section};
use crate::isa::{AReg, BranchCond, Csfr, DReg, Instr, MemWidth};

/// Assembles TC-R source text into an [`Image`].
///
/// # Errors
///
/// Returns [`SimError::Assemble`] with a line number and message on any
/// syntax error, undefined symbol, or out-of-range immediate/offset.
///
/// # Examples
///
/// ```
/// use audo_tricore::asm::assemble;
/// let image = assemble(".org 0x1000\nstart: movi d0, 7\n halt\n")?;
/// assert_eq!(image.symbol("start"), Some(audo_common::Addr(0x1000)));
/// # Ok::<(), audo_common::SimError>(())
/// ```
pub fn assemble(src: &str) -> Result<Image, SimError> {
    Assembler::new().run(src)
}

fn err(line: usize, message: impl Into<String>) -> SimError {
    SimError::Assemble {
        line,
        message: message.into(),
    }
}

#[derive(Debug)]
enum Item {
    /// An instruction (possibly a pseudo expanding to several).
    Code {
        line: usize,
        pc: u32,
        size: u32,
        mnemonic: String,
        ops: Vec<String>,
    },
    /// `.word`/`.half`/`.byte` data with expression elements.
    Data {
        line: usize,
        pc: u32,
        width: u8,
        exprs: Vec<String>,
    },
    /// `.space` fill.
    Space { pc: u32, len: u32 },
    /// `.align` padding.
    Pad { pc: u32, len: u32 },
}

#[derive(Debug, Default)]
struct Assembler {
    symbols: BTreeMap<String, u32>,
    items: Vec<Item>,
    section_starts: Vec<u32>,
}

impl Assembler {
    fn new() -> Assembler {
        Assembler::default()
    }

    fn run(mut self, src: &str) -> Result<Image, SimError> {
        self.pass1(src)?;
        self.pass2()
    }

    fn pass1(&mut self, src: &str) -> Result<(), SimError> {
        let mut pc: Option<u32> = None;
        for (idx, raw) in src.lines().enumerate() {
            let line_no = idx + 1;
            let mut line = raw;
            if let Some(p) = line.find([';', '#']) {
                line = &line[..p];
            }
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut rest = line;
            // Labels (possibly several on one line).
            while let Some(colon) = rest.find(':') {
                let (label, after) = rest.split_at(colon);
                let label = label.trim();
                if !is_ident(label) {
                    break;
                }
                let here = pc.ok_or_else(|| err(line_no, "label before any .org directive"))?;
                if self.symbols.insert(label.to_string(), here).is_some() {
                    return Err(err(line_no, format!("duplicate symbol `{label}`")));
                }
                rest = after[1..].trim_start();
            }
            if rest.is_empty() {
                continue;
            }
            let (mnemonic, args) = split_mnemonic(rest);
            let mnemonic = mnemonic.to_ascii_lowercase();
            let ops = split_operands(args);
            if let Some(directive) = mnemonic.strip_prefix('.') {
                pc = self.directive(line_no, directive, &ops, pc)?;
                continue;
            }
            let here = pc.ok_or_else(|| err(line_no, "instruction before .org"))?;
            if here % 2 != 0 {
                return Err(err(
                    line_no,
                    "instruction at odd address (missing .align 2?)",
                ));
            }
            let size = self.instr_size(line_no, &mnemonic, &ops)?;
            self.items.push(Item::Code {
                line: line_no,
                pc: here,
                size,
                mnemonic,
                ops,
            });
            pc = Some(here + size);
        }
        Ok(())
    }

    fn directive(
        &mut self,
        line: usize,
        name: &str,
        ops: &[String],
        pc: Option<u32>,
    ) -> Result<Option<u32>, SimError> {
        match name {
            "org" => {
                let base = self.eval(
                    line,
                    ops.first()
                        .ok_or_else(|| err(line, ".org needs an address"))?,
                )?;
                self.section_starts.push(base);
                Ok(Some(base))
            }
            "equ" => {
                if ops.len() != 2 {
                    return Err(err(line, ".equ needs NAME, VALUE"));
                }
                let value = self.eval(line, &ops[1])?;
                if !is_ident(&ops[0]) {
                    return Err(err(line, format!("invalid .equ name `{}`", ops[0])));
                }
                if self.symbols.insert(ops[0].clone(), value).is_some() {
                    return Err(err(line, format!("duplicate symbol `{}`", ops[0])));
                }
                Ok(pc)
            }
            "global" => Ok(pc), // all symbols are visible; accepted for style
            "align" => {
                let here = pc.ok_or_else(|| err(line, ".align before .org"))?;
                let a = self.eval(
                    line,
                    ops.first()
                        .ok_or_else(|| err(line, ".align needs a value"))?,
                )?;
                if a == 0 || !a.is_power_of_two() {
                    return Err(err(line, ".align requires a power of two"));
                }
                let new = (here + a - 1) & !(a - 1);
                if new != here {
                    self.items.push(Item::Pad {
                        pc: here,
                        len: new - here,
                    });
                }
                Ok(Some(new))
            }
            "word" | "half" | "byte" => {
                let here = pc.ok_or_else(|| err(line, "data before .org"))?;
                let width: u8 = match name {
                    "word" => 4,
                    "half" => 2,
                    _ => 1,
                };
                if ops.is_empty() {
                    return Err(err(line, format!(".{name} needs at least one value")));
                }
                let len = ops.len() as u32 * u32::from(width);
                self.items.push(Item::Data {
                    line,
                    pc: here,
                    width,
                    exprs: ops.to_vec(),
                });
                Ok(Some(here + len))
            }
            "space" => {
                let here = pc.ok_or_else(|| err(line, ".space before .org"))?;
                let n = self.eval(
                    line,
                    ops.first()
                        .ok_or_else(|| err(line, ".space needs a length"))?,
                )?;
                self.items.push(Item::Space { pc: here, len: n });
                Ok(Some(here + n))
            }
            other => Err(err(line, format!("unknown directive `.{other}`"))),
        }
    }

    /// Size (in bytes) the instruction will occupy; depends only on the
    /// mnemonic, register operands and *pass-1-resolvable* literals.
    fn instr_size(&self, line: usize, m: &str, ops: &[String]) -> Result<u32, SimError> {
        let size = match m {
            "li" | "la" => 8,
            "nop" | "ret" => 2,
            "mov" if ops.len() == 2 && dreg(&ops[1]).is_some() => 2,
            "mov.aa" | "mov.a" | "mov.d" => 2,
            "add" | "sub" | "and" | "or"
                if ops.len() == 3 && ops[0] == ops[1] && dreg(&ops[2]).is_some() =>
            {
                2
            }
            "addi" if ops.len() == 3 && ops[0] == ops[1] => match self.try_eval(&ops[2]) {
                Some(v) if (-8..8).contains(&(v as i32)) => 2,
                _ => 4,
            },
            "ld.w" | "st.w"
                if ops.len() == 2 && parse_mem(&ops[1]).map(|m| m.is_plain()) == Some(true) =>
            {
                2
            }
            "debug" | "dbg" => match self.try_eval(ops.first().map_or("", |s| s)) {
                Some(v) if v < 16 => 2,
                _ => 4,
            },
            _ => 4,
        };
        let _ = line;
        Ok(size)
    }

    fn pass2(mut self) -> Result<Image, SimError> {
        // Build section extents.
        let mut writes: Vec<(u32, Vec<u8>)> = Vec::new();
        let items = std::mem::take(&mut self.items);
        for item in &items {
            match item {
                Item::Code {
                    line,
                    pc,
                    size,
                    mnemonic,
                    ops,
                } => {
                    let instrs = self.build_instrs(*line, *pc, mnemonic, ops, *size)?;
                    let mut bytes = Vec::with_capacity(*size as usize);
                    for (inst, want) in instrs {
                        let enc = encode_sized(&inst, want);
                        bytes.extend_from_slice(enc.as_bytes());
                    }
                    if bytes.len() as u32 != *size {
                        return Err(err(
                            *line,
                            format!(
                                "internal size mismatch: reserved {size}, emitted {}",
                                bytes.len()
                            ),
                        ));
                    }
                    writes.push((*pc, bytes));
                }
                Item::Data {
                    line,
                    pc,
                    width,
                    exprs,
                } => {
                    let mut bytes = Vec::new();
                    for e in exprs {
                        let v = self.eval(*line, e)?;
                        match width {
                            4 => bytes.extend_from_slice(&v.to_le_bytes()),
                            2 => {
                                if v > 0xFFFF && (v as i32) < -0x8000 {
                                    return Err(err(*line, format!("{e} out of 16-bit range")));
                                }
                                bytes.extend_from_slice(&(v as u16).to_le_bytes());
                            }
                            _ => {
                                bytes.push(v as u8);
                            }
                        }
                    }
                    writes.push((*pc, bytes));
                }
                Item::Space { pc, len } | Item::Pad { pc, len } => {
                    writes.push((*pc, vec![0u8; *len as usize]));
                }
            }
        }
        // Merge writes into contiguous sections.
        writes.sort_by_key(|&(pc, _)| pc);
        let mut sections: Vec<Section> = Vec::new();
        for (pc, bytes) in writes {
            if bytes.is_empty() {
                continue;
            }
            match sections.last_mut() {
                Some(s) if s.base.0 as u64 + s.bytes.len() as u64 == u64::from(pc) => {
                    s.bytes.extend_from_slice(&bytes);
                }
                _ => sections.push(Section {
                    base: Addr(pc),
                    bytes,
                }),
            }
        }
        Ok(Image::from_parts(sections, self.symbols))
    }

    // ------------------------------------------------------------------
    // Instruction construction (pass 2)
    // ------------------------------------------------------------------

    /// Builds the instruction(s) for one source line together with the
    /// encoded width each must take.
    fn build_instrs(
        &self,
        line: usize,
        pc: u32,
        m: &str,
        ops: &[String],
        size: u32,
    ) -> Result<Vec<(Instr, u8)>, SimError> {
        use Instr::*;
        let e = |n: usize| -> Result<&str, SimError> {
            ops.get(n)
                .map(String::as_str)
                .ok_or_else(|| err(line, "missing operand"))
        };
        let d = |n: usize| -> Result<DReg, SimError> {
            dreg(e(n)?).ok_or_else(|| {
                err(
                    line,
                    format!("expected data register, got `{}`", e(n).unwrap_or("")),
                )
            })
        };
        let a = |n: usize| -> Result<AReg, SimError> {
            areg(e(n)?).ok_or_else(|| {
                err(
                    line,
                    format!("expected address register, got `{}`", e(n).unwrap_or("")),
                )
            })
        };
        let nops = ops.len();
        let arity = |want: usize| -> Result<(), SimError> {
            if nops == want {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{m}` expects {want} operands, got {nops}"),
                ))
            }
        };

        let single = |i: Instr| -> Vec<(Instr, u8)> { vec![(i, size as u8)] };

        let instrs: Vec<(Instr, u8)> = match m {
            "nop" => single(Nop),
            "halt" => single(Halt),
            "wait" => single(Wait),
            "ret" => single(Ret),
            "rfe" => single(Rfe),
            "enable" => single(Enable),
            "disable" => single(Disable),
            "debug" | "dbg" => {
                arity(1)?;
                let v = self.eval(line, e(0)?)?;
                if v > 255 {
                    return Err(err(line, "debug code exceeds 8 bits"));
                }
                single(Debug { code: v as u8 })
            }
            "syscall" => {
                arity(1)?;
                let v = self.eval(line, e(0)?)?;
                single(Syscall {
                    num: self.check_u12(line, v)?,
                })
            }
            "mov" => {
                arity(2)?;
                single(MovD {
                    rd: d(0)?,
                    rs: d(1)?,
                })
            }
            "mov.aa" => {
                arity(2)?;
                single(MovAA {
                    ad: a(0)?,
                    a_src: a(1)?,
                })
            }
            "mov.a" => {
                arity(2)?;
                single(MovDtoA {
                    ad: a(0)?,
                    rs: d(1)?,
                })
            }
            "mov.d" => {
                arity(2)?;
                single(MovAtoD {
                    rd: d(0)?,
                    a_src: a(1)?,
                })
            }
            "movi" => {
                arity(2)?;
                let v = self.eval(line, e(1)?)? as i64 as i32;
                if !(-32768..=32767).contains(&v) && (v as u32) > 0xFFFF {
                    return Err(err(line, "movi immediate out of signed 16-bit range"));
                }
                single(MovI {
                    rd: d(0)?,
                    imm: v as i16,
                })
            }
            "movu" => {
                arity(2)?;
                let v = self.eval(line, e(1)?)?;
                if v > 0xFFFF {
                    return Err(err(line, "movu immediate out of 16-bit range"));
                }
                single(MovU {
                    rd: d(0)?,
                    imm: v as u16,
                })
            }
            "movh" => {
                arity(2)?;
                let v = self.eval(line, e(1)?)?;
                if v > 0xFFFF {
                    return Err(err(line, "movh immediate out of 16-bit range"));
                }
                single(MovH {
                    rd: d(0)?,
                    imm: v as u16,
                })
            }
            "movh.a" => {
                arity(2)?;
                let v = self.eval(line, e(1)?)?;
                if v > 0xFFFF {
                    return Err(err(line, "movh.a immediate out of 16-bit range"));
                }
                single(MovHA {
                    ad: a(0)?,
                    imm: v as u16,
                })
            }
            "addia" => {
                arity(2)?;
                let v = self.eval(line, e(1)?)? as i32;
                single(AddIA {
                    ad: a(0)?,
                    imm: v as i16,
                })
            }
            "oril" => {
                arity(2)?;
                let v = self.eval(line, e(1)?)?;
                if v > 0xFFFF {
                    return Err(err(line, "oril immediate out of 16-bit range"));
                }
                single(OrIL {
                    rd: d(0)?,
                    imm: v as u16,
                })
            }
            "li" => {
                arity(2)?;
                let v = self.eval(line, e(1)?)?;
                let rd = d(0)?;
                vec![
                    (
                        MovH {
                            rd,
                            imm: (v >> 16) as u16,
                        },
                        4,
                    ),
                    (OrIL { rd, imm: v as u16 }, 4),
                ]
            }
            "la" => {
                arity(2)?;
                let v = self.eval(line, e(1)?)?;
                let ad = a(0)?;
                let lo = v as u16 as i16;
                let hi = (v.wrapping_sub(lo as i32 as u32) >> 16) as u16;
                vec![(MovHA { ad, imm: hi }, 4), (AddIA { ad, imm: lo }, 4)]
            }
            "lea" => {
                arity(3)?;
                let off = self.check_i12(line, self.eval_signed(line, e(2)?)?)?;
                single(Lea {
                    ad: a(0)?,
                    ab: a(1)?,
                    off,
                })
            }
            "add" | "sub" | "and" | "or" | "xor" | "min" | "max" | "mul" | "mac" | "div"
            | "rem" | "sh" | "sha" | "lt" | "ltu" | "eq" | "ne" => {
                arity(3)?;
                let (rd, ra, rb) = (d(0)?, d(1)?, d(2)?);
                let i = match m {
                    "add" => Add { rd, ra, rb },
                    "sub" => Sub { rd, ra, rb },
                    "and" => And { rd, ra, rb },
                    "or" => Or { rd, ra, rb },
                    "xor" => Xor { rd, ra, rb },
                    "min" => Min { rd, ra, rb },
                    "max" => Max { rd, ra, rb },
                    "mul" => Mul { rd, ra, rb },
                    "mac" => Mac { rd, ra, rb },
                    "div" => Div { rd, ra, rb },
                    "rem" => Rem { rd, ra, rb },
                    "sh" => Sh { rd, ra, rb },
                    "sha" => Sha { rd, ra, rb },
                    "lt" => Lt { rd, ra, rb },
                    "ltu" => LtU { rd, ra, rb },
                    "eq" => EqR { rd, ra, rb },
                    _ => NeR { rd, ra, rb },
                };
                single(i)
            }
            "sel" => {
                arity(3)?;
                single(Sel {
                    rd: d(0)?,
                    cond: d(1)?,
                    rs: d(2)?,
                })
            }
            "shi" => {
                arity(3)?;
                let v = self.eval_signed(line, e(2)?)?;
                if !(-32..=31).contains(&v) {
                    return Err(err(line, "shift amount out of -32..=31"));
                }
                single(ShI {
                    rd: d(0)?,
                    ra: d(1)?,
                    amount: v as i8,
                })
            }
            "addi" => {
                arity(3)?;
                let v = self.check_i12(line, self.eval_signed(line, e(2)?)?)?;
                single(AddI {
                    rd: d(0)?,
                    ra: d(1)?,
                    imm: v,
                })
            }
            "andi" | "ori" | "xori" => {
                arity(3)?;
                let v = self.eval(line, e(2)?)?;
                let imm = self.check_u12(line, v)?;
                let (rd, ra) = (d(0)?, d(1)?);
                single(match m {
                    "andi" => AndI { rd, ra, imm },
                    "ori" => OrI { rd, ra, imm },
                    _ => XorI { rd, ra, imm },
                })
            }
            "clz" => {
                arity(2)?;
                single(Clz {
                    rd: d(0)?,
                    ra: d(1)?,
                })
            }
            "sext.b" | "sext.h" | "zext.b" | "zext.h" => {
                arity(2)?;
                let (rd, ra) = (d(0)?, d(1)?);
                single(match m {
                    "sext.b" => SextB { rd, ra },
                    "sext.h" => SextH { rd, ra },
                    "zext.b" => ZextB { rd, ra },
                    _ => ZextH { rd, ra },
                })
            }
            "extr" | "insert" => {
                arity(4)?;
                let pos = self.eval(line, e(2)?)?;
                let width = self.eval(line, e(3)?)?;
                if pos > 31 || width == 0 || width > 32 {
                    return Err(err(line, "extr/insert pos must be 0..=31, width 1..=32"));
                }
                single(if m == "extr" {
                    Extr {
                        rd: d(0)?,
                        ra: d(1)?,
                        pos: pos as u8,
                        width: width as u8,
                    }
                } else {
                    Insert {
                        rd: d(0)?,
                        rs: d(1)?,
                        pos: pos as u8,
                        width: width as u8,
                    }
                })
            }
            "ld.w" | "ld.h" | "ld.hu" | "ld.b" | "ld.bu" => {
                arity(2)?;
                let rd = d(0)?;
                let mem = parse_mem(e(1)?).ok_or_else(|| err(line, "bad memory operand"))?;
                let (width, sign) = match m {
                    "ld.w" => (MemWidth::Word, false),
                    "ld.h" => (MemWidth::Half, true),
                    "ld.hu" => (MemWidth::Half, false),
                    "ld.b" => (MemWidth::Byte, true),
                    _ => (MemWidth::Byte, false),
                };
                match mem {
                    MemOperand::PostInc { base, inc } => {
                        if width != MemWidth::Word {
                            return Err(err(line, "post-increment only supported for .w"));
                        }
                        let inc = self.check_i12(line, self.eval_signed(line, &inc)?)?;
                        single(LdWPostInc { rd, ab: base, inc })
                    }
                    MemOperand::Offset { base, off } => {
                        let off = self.check_i12(line, self.eval_signed(line, &off)?)?;
                        single(Ld {
                            rd,
                            ab: base,
                            off,
                            width,
                            sign,
                        })
                    }
                }
            }
            "st.w" | "st.h" | "st.b" => {
                arity(2)?;
                let rs = d(0)?;
                let mem = parse_mem(e(1)?).ok_or_else(|| err(line, "bad memory operand"))?;
                let width = match m {
                    "st.w" => MemWidth::Word,
                    "st.h" => MemWidth::Half,
                    _ => MemWidth::Byte,
                };
                match mem {
                    MemOperand::PostInc { base, inc } => {
                        if width != MemWidth::Word {
                            return Err(err(line, "post-increment only supported for .w"));
                        }
                        let inc = self.check_i12(line, self.eval_signed(line, &inc)?)?;
                        single(StWPostInc { rs, ab: base, inc })
                    }
                    MemOperand::Offset { base, off } => {
                        let off = self.check_i12(line, self.eval_signed(line, &off)?)?;
                        single(St {
                            rs,
                            ab: base,
                            off,
                            width,
                        })
                    }
                }
            }
            "ld.a" | "st.a" => {
                arity(2)?;
                let r = a(0)?;
                let mem = parse_mem(e(1)?).ok_or_else(|| err(line, "bad memory operand"))?;
                let MemOperand::Offset { base, off } = mem else {
                    return Err(err(line, "post-increment not supported for .a"));
                };
                let off = self.check_i12(line, self.eval_signed(line, &off)?)?;
                single(if m == "ld.a" {
                    LdA {
                        ad: r,
                        ab: base,
                        off,
                    }
                } else {
                    StA {
                        a_src: r,
                        ab: base,
                        off,
                    }
                })
            }
            "j" | "jl" | "call" => {
                arity(1)?;
                let off = self.branch_off24(line, pc, e(0)?)?;
                single(match m {
                    "j" => J { off },
                    "jl" => Jl { off },
                    _ => Call { off },
                })
            }
            "ji" => {
                arity(1)?;
                single(Ji { aa: a(0)? })
            }
            "calli" => {
                arity(1)?;
                single(CallI { aa: a(0)? })
            }
            "jeq" | "jne" | "jlt" | "jge" | "jltu" | "jgeu" => {
                arity(3)?;
                let cond = match m {
                    "jeq" => BranchCond::Eq,
                    "jne" => BranchCond::Ne,
                    "jlt" => BranchCond::Lt,
                    "jge" => BranchCond::Ge,
                    "jltu" => BranchCond::LtU,
                    _ => BranchCond::GeU,
                };
                let off = self.branch_off12(line, pc, e(2)?)?;
                single(JCond {
                    cond,
                    ra: d(0)?,
                    rb: d(1)?,
                    off,
                })
            }
            "jz" | "jnz" => {
                arity(2)?;
                let off = self.branch_off12(line, pc, e(1)?)?;
                single(if m == "jz" {
                    Jz { ra: d(0)?, off }
                } else {
                    Jnz { ra: d(0)?, off }
                })
            }
            "loop" => {
                arity(2)?;
                let off = self.branch_off12(line, pc, e(1)?)?;
                single(Loop { aa: a(0)?, off })
            }
            "mfcr" => {
                arity(2)?;
                let num = self.csfr_num(line, e(1)?)?;
                single(Mfcr {
                    rd: d(0)?,
                    csfr: num,
                })
            }
            "mtcr" => {
                arity(2)?;
                let num = self.csfr_num(line, e(0)?)?;
                single(Mtcr {
                    csfr: num,
                    rs: d(1)?,
                })
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        };

        // For multi-instruction pseudos the per-instruction widths are fixed
        // (always 4); for single instructions the reserved size applies.
        Ok(instrs)
    }

    fn branch_off24(&self, line: usize, pc: u32, target: &str) -> Result<i32, SimError> {
        let t = self.eval(line, target)?;
        let delta = t.wrapping_sub(pc) as i32;
        if delta % 2 != 0 {
            return Err(err(line, "branch target at odd distance"));
        }
        let off = delta / 2;
        if !(-(1 << 23)..(1 << 23)).contains(&off) {
            return Err(err(line, "branch target out of 24-bit range"));
        }
        Ok(off)
    }

    fn branch_off12(&self, line: usize, pc: u32, target: &str) -> Result<i16, SimError> {
        let t = self.eval(line, target)?;
        let delta = t.wrapping_sub(pc) as i32;
        if delta % 2 != 0 {
            return Err(err(line, "branch target at odd distance"));
        }
        let off = delta / 2;
        if !(-2048..2048).contains(&off) {
            return Err(err(
                line,
                format!("branch target out of 12-bit range ({off})"),
            ));
        }
        Ok(off as i16)
    }

    fn check_i12(&self, line: usize, v: i32) -> Result<i16, SimError> {
        if (-2048..2048).contains(&v) {
            Ok(v as i16)
        } else {
            Err(err(
                line,
                format!("immediate {v} out of signed 12-bit range"),
            ))
        }
    }

    fn check_u12(&self, line: usize, v: u32) -> Result<u16, SimError> {
        if v < 4096 {
            Ok(v as u16)
        } else {
            Err(err(
                line,
                format!("immediate {v} out of unsigned 12-bit range"),
            ))
        }
    }

    fn csfr_num(&self, line: usize, s: &str) -> Result<u16, SimError> {
        let named = match s.to_ascii_lowercase().as_str() {
            "psw" => Some(Csfr::Psw as u16),
            "icr" => Some(Csfr::Icr as u16),
            "biv" => Some(Csfr::Biv as u16),
            "btv" => Some(Csfr::Btv as u16),
            "fcx" => Some(Csfr::Fcx as u16),
            "pcx" => Some(Csfr::Pcx as u16),
            "core_id" => Some(Csfr::CoreId as u16),
            "syscon" => Some(Csfr::Syscon as u16),
            _ => None,
        };
        match named {
            Some(n) => Ok(n),
            None => self.check_u12(line, self.eval(line, s)?),
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn try_eval(&self, s: &str) -> Option<u32> {
        eval_expr(s, &self.symbols).ok()
    }

    fn eval(&self, line: usize, s: &str) -> Result<u32, SimError> {
        eval_expr(s, &self.symbols).map_err(|m| err(line, m))
    }

    fn eval_signed(&self, line: usize, s: &str) -> Result<i32, SimError> {
        Ok(self.eval(line, s)? as i32)
    }
}

// ----------------------------------------------------------------------
// Lexical helpers
// ----------------------------------------------------------------------

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn split_mnemonic(line: &str) -> (&str, &str) {
    match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    }
}

/// Splits an operand list on commas that are not inside brackets.
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' | '(' => {
                depth += 1;
                cur.push(c);
            }
            ']' | ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn dreg(s: &str) -> Option<DReg> {
    let s = s.to_ascii_lowercase();
    let n: u8 = s.strip_prefix('d')?.parse().ok()?;
    (n < 16).then_some(DReg(n))
}

fn areg(s: &str) -> Option<AReg> {
    let s = s.to_ascii_lowercase();
    match s.as_str() {
        "sp" => return Some(AReg::SP),
        "ra" => return Some(AReg::RA),
        _ => {}
    }
    let n: u8 = s.strip_prefix('a')?.parse().ok()?;
    (n < 16).then_some(AReg(n))
}

#[derive(Debug, PartialEq, Eq)]
enum MemOperand {
    Offset { base: AReg, off: String },
    PostInc { base: AReg, inc: String },
}

impl MemOperand {
    fn is_plain(&self) -> bool {
        matches!(self, MemOperand::Offset { off, .. } if off == "0")
    }
}

/// Parses `[aN]`, `[aN+expr]`, `[aN-expr]` or `[aN+]expr`.
fn parse_mem(s: &str) -> Option<MemOperand> {
    let s = s.trim();
    let open = s.find('[')?;
    if open != 0 {
        return None;
    }
    let close = s.find(']')?;
    let inner = &s[1..close];
    let after = s[close + 1..].trim();
    if let Some(base) = inner.strip_suffix('+') {
        // Post-increment: `[aN+]inc`
        let base = areg(base.trim())?;
        if after.is_empty() {
            return None;
        }
        return Some(MemOperand::PostInc {
            base,
            inc: after.to_string(),
        });
    }
    if !after.is_empty() {
        return None;
    }
    // Find the split between register and offset (first +/- after the reg).
    let inner = inner.trim();
    if let Some(pos) = inner.find(['+', '-']) {
        let base = areg(inner[..pos].trim())?;
        let off = if inner.as_bytes()[pos] == b'-' {
            inner[pos..].trim().to_string()
        } else {
            inner[pos + 1..].trim().to_string()
        };
        Some(MemOperand::Offset { base, off })
    } else {
        let base = areg(inner)?;
        Some(MemOperand::Offset {
            base,
            off: "0".to_string(),
        })
    }
}

// ----------------------------------------------------------------------
// Expression evaluator
// ----------------------------------------------------------------------

fn eval_expr(s: &str, symbols: &BTreeMap<String, u32>) -> Result<u32, String> {
    let mut p = Parser {
        s: s.as_bytes(),
        pos: 0,
        symbols,
    };
    let v = p.expr()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(format!("trailing input in expression `{s}`"));
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
    symbols: &'a BTreeMap<String, u32>,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.pos).copied()
    }

    fn expr(&mut self) -> Result<u32, String> {
        let mut v = self.mul_term()?;
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    v = v.wrapping_add(self.mul_term()?);
                }
                Some(b'-') => {
                    self.pos += 1;
                    v = v.wrapping_sub(self.mul_term()?);
                }
                _ => return Ok(v),
            }
        }
    }

    fn mul_term(&mut self) -> Result<u32, String> {
        let mut v = self.term()?;
        while self.peek() == Some(b'*') {
            self.pos += 1;
            v = v.wrapping_mul(self.term()?);
        }
        Ok(v)
    }

    fn term(&mut self) -> Result<u32, String> {
        match self.peek() {
            Some(b'-') => {
                self.pos += 1;
                Ok(self.term()?.wrapping_neg())
            }
            Some(b'(') => {
                self.pos += 1;
                let v = self.expr()?;
                if self.peek() != Some(b')') {
                    return Err("missing `)`".to_string());
                }
                self.pos += 1;
                Ok(v)
            }
            Some(b'\'') => {
                // Char literal.
                self.pos += 1;
                let c = *self.s.get(self.pos).ok_or("unterminated char literal")?;
                self.pos += 1;
                if self.s.get(self.pos) != Some(&b'\'') {
                    return Err("unterminated char literal".to_string());
                }
                self.pos += 1;
                Ok(u32::from(c))
            }
            Some(c) if c.is_ascii_digit() => self.number(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.ident_or_func(),
            other => Err(format!("unexpected token {other:?} in expression")),
        }
    }

    fn number(&mut self) -> Result<u32, String> {
        self.skip_ws();
        let start = self.pos;
        let radix = if self.s[self.pos..].starts_with(b"0x")
            || self.s[self.pos..].starts_with(b"0X")
        {
            self.pos += 2;
            16
        } else if self.s[self.pos..].starts_with(b"0b") || self.s[self.pos..].starts_with(b"0B") {
            self.pos += 2;
            2
        } else {
            10
        };
        let digits_start = self.pos;
        while self.pos < self.s.len()
            && (self.s[self.pos].is_ascii_alphanumeric() || self.s[self.pos] == b'_')
        {
            self.pos += 1;
        }
        let text: String = std::str::from_utf8(&self.s[digits_start..self.pos])
            .map_err(|_| "bad number")?
            .chars()
            .filter(|&c| c != '_')
            .collect();
        i64::from_str_radix(&text, radix)
            .map(|v| v as u32)
            .map_err(|_| {
                format!(
                    "bad number `{}`",
                    String::from_utf8_lossy(&self.s[start..self.pos])
                )
            })
    }

    fn ident_or_func(&mut self) -> Result<u32, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len()
            && (self.s[self.pos].is_ascii_alphanumeric()
                || self.s[self.pos] == b'_'
                || self.s[self.pos] == b'.')
        {
            self.pos += 1;
        }
        let name = std::str::from_utf8(&self.s[start..self.pos]).map_err(|_| "bad ident")?;
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let v = self.expr()?;
            if self.peek() != Some(b')') {
                return Err("missing `)` after function argument".to_string());
            }
            self.pos += 1;
            return match name {
                "lo" => Ok(v & 0xFFFF),
                "hi" => Ok(v >> 16),
                "hia" => Ok((v.wrapping_add(0x8000)) >> 16),
                other => Err(format!("unknown function `{other}`")),
            };
        }
        self.symbols
            .get(name)
            .copied()
            .ok_or_else(|| format!("undefined symbol `{name}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode;

    fn asm(src: &str) -> Image {
        assemble(src).expect("assembles")
    }

    fn decode_all(img: &Image) -> Vec<Instr> {
        let sec = &img.sections()[0];
        let mut out = Vec::new();
        let mut off = 0usize;
        while off < sec.bytes.len() {
            let (i, len) = decode(&sec.bytes[off..], Addr(sec.base.0 + off as u32)).unwrap();
            out.push(i);
            off += len as usize;
        }
        out
    }

    #[test]
    fn simple_program_layout() {
        let img = asm("
            .org 0x80000000
        _start:
            movi d0, 100
            nop
            halt
        ");
        assert_eq!(img.entry(), Addr(0x8000_0000));
        let instrs = decode_all(&img);
        assert_eq!(
            instrs,
            vec![
                Instr::MovI {
                    rd: DReg(0),
                    imm: 100
                },
                Instr::Nop,
                Instr::Halt
            ]
        );
        // movi(4) + nop(2) + halt(4)
        assert_eq!(img.sections()[0].bytes.len(), 10);
    }

    #[test]
    fn compressed_forms_are_selected() {
        let img = asm("
            .org 0x1000
            mov d1, d2
            add d1, d1, d3
            add d1, d2, d3
            addi d1, d1, 5
            addi d1, d1, 100
            ld.w d1, [a2]
            ld.w d1, [a2+4]
            ret
        ");
        let b = &img.sections()[0].bytes;
        // 2 + 2 + 4 + 2 + 4 + 2 + 4 + 2 = 22
        assert_eq!(b.len(), 22);
    }

    #[test]
    fn labels_and_branches() {
        let img = asm("
            .org 0x2000
        start:
            movi d0, 10
        loop_head:
            addi d0, d0, -1
            jnz d0, loop_head
            j   done
            nop
        done:
            halt
        ");
        let instrs = decode_all(&img);
        // movi(4) at 0x2000, addi16(2) at 0x2004, jnz(4) at 0x2006.
        // jnz target = loop_head (0x2004): off = (0x2004-0x2006)/2 = -1.
        assert!(instrs.contains(&Instr::Jnz {
            ra: DReg(0),
            off: -1
        }));
    }

    #[test]
    fn equ_and_expressions() {
        let img = asm("
            .equ BASE, 0xD0000000
            .equ COUNT, 16
            .org 0x1000
            movu d0, COUNT + 1
            movu d1, lo(BASE + 4)
            movu d2, hi(BASE - 0x10000)
        ");
        let instrs = decode_all(&img);
        assert_eq!(
            instrs[0],
            Instr::MovU {
                rd: DReg(0),
                imm: 17
            }
        );
        assert_eq!(
            instrs[1],
            Instr::MovU {
                rd: DReg(1),
                imm: 4
            }
        );
        assert_eq!(
            instrs[2],
            Instr::MovU {
                rd: DReg(2),
                imm: 0xCFFF
            }
        );
    }

    #[test]
    fn li_and_la_pseudos() {
        use crate::arch::ArchState;
        use crate::exec::execute;
        use crate::mem::FlatMem;
        for value in [
            0u32,
            1,
            0xFFFF_FFFF,
            0x8000_0000,
            0x1234_5678,
            0x0000_8000,
            0xFFFF_8000,
        ] {
            let img = asm(&format!(
                ".org 0x1000\n li d0, {value}\n la a0, {value}\n halt\n"
            ));
            let mut mem = FlatMem::new();
            mem.add_region(Addr(0x1000), 0x100);
            img.load_into(&mut mem).unwrap();
            let mut st = ArchState::new(0x1000);
            // Execute the four expanded instructions.
            for _ in 0..4 {
                let pc = st.pc;
                let bytes = mem.read_bytes(Addr(pc), 4).unwrap();
                let (i, len) = decode(&bytes, Addr(pc)).unwrap();
                execute(&mut st, &mut mem, &i, pc, len).unwrap();
            }
            assert_eq!(st.d[0], value, "li {value:#x}");
            assert_eq!(st.a[0], value, "la {value:#x}");
        }
    }

    #[test]
    fn data_directives() {
        let img = asm("
            .org 0x4000
            .word 0x11223344, sym
            .half 0xAABB
            .byte 1, 2
            .align 4
            .space 8
        sym:
            halt
        ");
        let b = &img.sections()[0].bytes;
        assert_eq!(&b[0..4], &0x1122_3344u32.to_le_bytes());
        // sym = 0x4000 + 8 + 2 + 2 (+align pads 0) + 8 = 0x4014
        assert_eq!(img.symbol("sym"), Some(Addr(0x4014)));
        assert_eq!(&b[4..8], &0x4014u32.to_le_bytes());
        assert_eq!(&b[8..10], &0xAABBu16.to_le_bytes());
        assert_eq!(b[10], 1);
        assert_eq!(b[11], 2);
    }

    #[test]
    fn memory_operand_forms() {
        let img = asm("
            .org 0x1000
            ld.w d1, [a2]
            ld.w d1, [a2+8]
            ld.w d1, [a2-8]
            ld.w d1, [a2+]4
            st.w d1, [sp-4]
            ld.hu d2, [a3+2]
            ld.b d3, [a3+1]
            st.b d3, [a3]
        ");
        let instrs = decode_all(&img);
        assert_eq!(
            instrs[1],
            Instr::Ld {
                rd: DReg(1),
                ab: AReg(2),
                off: 8,
                width: MemWidth::Word,
                sign: false
            }
        );
        assert_eq!(
            instrs[2],
            Instr::Ld {
                rd: DReg(1),
                ab: AReg(2),
                off: -8,
                width: MemWidth::Word,
                sign: false
            }
        );
        assert_eq!(
            instrs[3],
            Instr::LdWPostInc {
                rd: DReg(1),
                ab: AReg(2),
                inc: 4
            }
        );
        assert_eq!(
            instrs[4],
            Instr::St {
                rs: DReg(1),
                ab: AReg::SP,
                off: -4,
                width: MemWidth::Word
            }
        );
    }

    #[test]
    fn csfr_names() {
        let img = asm("
            .org 0x1000
            mfcr d0, icr
            mtcr biv, d1
            mfcr d2, 9
        ");
        let instrs = decode_all(&img);
        assert_eq!(
            instrs[0],
            Instr::Mfcr {
                rd: DReg(0),
                csfr: 2
            }
        );
        assert_eq!(
            instrs[1],
            Instr::Mtcr {
                csfr: 3,
                rs: DReg(1)
            }
        );
        assert_eq!(
            instrs[2],
            Instr::Mfcr {
                rd: DReg(2),
                csfr: 9
            }
        );
    }

    #[test]
    fn error_reporting() {
        let e = assemble("movi d0, 1").unwrap_err();
        assert!(e.to_string().contains("before .org"), "{e}");
        let e = assemble(".org 0\nbogus d0").unwrap_err();
        assert!(e.to_string().contains("unknown mnemonic"), "{e}");
        let e = assemble(".org 0\nmovi d0, undef_sym").unwrap_err();
        assert!(e.to_string().contains("undefined symbol"), "{e}");
        let e = assemble(".org 0\nx: nop\nx: nop").unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
        let e = assemble(".org 0\naddi d0, d1, 5000").unwrap_err();
        assert!(e.to_string().contains("12-bit"), "{e}");
    }

    #[test]
    fn branch_range_checks() {
        let mut src = String::from(".org 0x1000\nstart: nop\n");
        // Pad far beyond the 12-bit (±4 KiB) branch range.
        src.push_str(".space 5000\n");
        src.push_str("jz d0, start\n");
        let e = assemble(&src).unwrap_err();
        assert!(e.to_string().contains("12-bit range"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines() {
        let img = asm("
            ; full-line comment
            .org 0x1000     ; trailing comment
            nop             # hash comment
            halt
        ");
        assert_eq!(decode_all(&img), vec![Instr::Nop, Instr::Halt]);
    }

    #[test]
    fn symbolic_zero_offset_keeps_reserved_width() {
        // `foo` evaluates to 0, but the load was *syntactically* offset-form,
        // so it must stay 4 bytes (pass-1 reserved 4).
        let img = asm("
            .equ foo, 0
            .org 0x1000
            ld.w d1, [a2+foo]
            halt
        ");
        let b = &img.sections()[0].bytes;
        assert_eq!(b.len(), 8); // 4 + 4
        let instrs = decode_all(&img);
        assert_eq!(
            instrs[0],
            Instr::Ld {
                rd: DReg(1),
                ab: AReg(2),
                off: 0,
                width: MemWidth::Word,
                sign: false
            }
        );
    }

    #[test]
    fn multiple_sections() {
        let img = asm("
            .org 0x1000
            nop
            .org 0x2000
            halt
        ");
        assert_eq!(img.sections().len(), 2);
        assert_eq!(img.sections()[0].base, Addr(0x1000));
        assert_eq!(img.sections()[1].base, Addr(0x2000));
    }
}
