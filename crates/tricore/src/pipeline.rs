//! Cycle-level model of the TC-R tri-issue in-order pipeline.
//!
//! The model reproduces the timing-relevant structure of a TriCore 1.3-class
//! core:
//!
//! * **Fetch**: one 64-bit granule per request through the instruction-side
//!   bus (I-cache / PSPR), feeding a decode queue; mixed 16/32-bit
//!   instructions are carved out of the byte stream.
//! * **Issue**: up to three instructions per cycle, one per pipe
//!   (integer / load-store / loop), in program order, with no intra-bundle
//!   dependencies. This is what makes "up to 3 instructions within a clock
//!   cycle" (the paper's IPC example) possible.
//! * **Hazards**: a register scoreboard models load-use (1 cycle) and
//!   multiply (2 cycles) latency; divide occupies the integer pipe.
//! * **Branches**: static prediction — backward conditional branches are
//!   predicted taken, forward not-taken; mispredicts pay a flush penalty.
//! * **Loop buffer**: the `LOOP` instruction's body is captured on its first
//!   iterations and then replayed with zero fetch traffic and zero redirect
//!   bubble, like the TriCore loop pipeline.
//! * **Context operations**: `CALL`/`RET`/interrupt entry spill/refill the
//!   upper context through the data port and serialize the pipeline.
//!
//! Architectural semantics are delegated to [`crate::exec::execute`]; the
//! pipeline only adds *time*.
//!
//! # Predecoded fast path
//!
//! Like the functional ISS, the pipeline carries a predecoded-block fast
//! path (on by default, see [`Core::set_fast_path`]). The carve stage
//! groups each straight-line run it decodes into a block keyed by start PC
//! and stamped with the code region's write generation — the same
//! invalidation scheme as [`crate::decode_cache`] — and replays the decoded
//! micro-ops (issue pipe, operand lists, latency class, flow kind) on later
//! executions. A replay drains exactly the fetched bytes a fresh decode of
//! the same stream would have consumed, so fetch traffic, decode-queue
//! occupancy and every stall are **bit-identical** with the fast path on or
//! off; only host-side decode work disappears. Stale bytes are impossible
//! by construction: both the byte stream and each block carry the
//! generation sampled when their bytes left memory, and a block is served
//! only while the two stamps are equal.
//!
//! # Stall accounting
//!
//! The core keeps per-cause stall-cycle counters, retire-cycle, flush,
//! mispredict and loop-buffer counters in [`PipelineStats`] — plain integer
//! bumps, maintained whether or not an [`EventSink`] is attached — so
//! observability can decompose IPC without re-running anything.

use std::collections::{HashMap, VecDeque};

use audo_common::events::{FlowKind, StallReason};
use audo_common::{Addr, Cycle, EventSink, PerfEvent, SimError, SourceId};

use crate::arch::ArchState;
use crate::bus::{CoreBus, TimedMem, FETCH_BYTES};
use crate::decode_cache::CacheStats;
use crate::encode::decode;
use crate::exec::{enter_interrupt, execute};
use crate::isa::{Instr, Pipe, RegList, RegRef};

/// Longest straight-line run predecoded into a single pipeline block
/// (mirrors the ISS decode cache's cap). Public so static analyzers can
/// bound the cost of *any* carved block without re-deriving the cap.
pub const MAX_BLOCK_LEN: usize = 64;

/// Timing configuration of the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Result latency of `MUL`/`MAC` in cycles.
    pub mul_latency: u64,
    /// Cycles `DIV`/`REM` occupy the integer pipe.
    pub div_busy: u64,
    /// Extra flush cycles for a mispredicted branch.
    pub mispredict_penalty: u64,
    /// Serialization cycles for a context save/restore (CSA spill uses a
    /// wide local-memory port, so this is small despite the 16-word frame).
    pub ctx_cycles: u64,
    /// Maximum decoded instructions buffered ahead of issue.
    pub fetch_queue: usize,
    /// Maximum loop-body instructions the loop buffer can capture.
    pub loop_buffer: usize,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig {
            mul_latency: 2,
            div_busy: 8,
            mispredict_penalty: 2,
            ctx_cycles: 4,
            fetch_queue: 8,
            loop_buffer: 16,
        }
    }
}

/// Timing-relevant properties of one instruction, derived from its dense
/// [`Instr`] form.
///
/// The issue stage consults these once per issue attempt; the predecode
/// fast path derives them once per *decode* and replays them, which is
/// where much of the pipeline-tier speedup comes from.
#[derive(Debug, Clone, Copy)]
struct MicroProps {
    pipe: Pipe,
    reads: RegList,
    writes: RegList,
    serializing: bool,
    control_flow: bool,
    is_loop: bool,
    mul_class: bool,
    div_class: bool,
    backward_cond: bool,
}

impl MicroProps {
    fn of(instr: &Instr) -> MicroProps {
        MicroProps {
            pipe: instr.pipe(),
            reads: instr.reads(),
            writes: instr.writes(),
            serializing: instr.is_serializing(),
            control_flow: instr.is_control_flow(),
            is_loop: matches!(instr, Instr::Loop { .. }),
            mul_class: matches!(instr, Instr::Mul { .. } | Instr::Mac { .. }),
            div_class: matches!(instr, Instr::Div { .. } | Instr::Rem { .. }),
            backward_cond: match instr {
                Instr::JCond { off, .. }
                | Instr::Jz { off, .. }
                | Instr::Jnz { off, .. }
                | Instr::Loop { off, .. } => *off < 0,
                _ => false,
            },
        }
    }
}

/// Identity of the predecoded block an instruction was carved into,
/// carried on each queue entry so the profiler can charge cycles to the
/// owning block. `start` is the block's first PC (the cache key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockTag {
    region: u32,
    start: u32,
    generation: u64,
}

impl BlockTag {
    fn key(self) -> audo_obs::profile::BlockKey {
        audo_obs::profile::BlockKey {
            region: self.region,
            offset: self.start.wrapping_sub(self.region),
            generation: self.generation,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Decoded {
    pc: u32,
    instr: Instr,
    len: u8,
    /// Predecoded timing properties: `Some` when carved via the fast path,
    /// `None` on the slow path, which then derives them at issue — exactly
    /// the original per-cycle cost, so fast-off remains an honest baseline.
    props: Option<MicroProps>,
    /// Owning predecode block, when carved from stamped bytes on the fast
    /// path (`None` on the slow path or from unstamped bytes). Purely an
    /// attribution label: timing never reads it.
    tag: Option<BlockTag>,
}

#[derive(Debug, Clone)]
enum QEntry {
    Ok(Decoded),
    /// Decode failed at this PC; fatal only if it reaches issue.
    Bad(u32, SimError),
}

#[derive(Debug, Clone)]
struct LoopBuf {
    loop_pc: u32,
    target: u32,
    body: Vec<Decoded>,
    ready: bool,
    /// `(region base, write generation)` of the loop body's code at
    /// capture time; the buffer serves only while memory still matches
    /// (see [`CoreBus::code_region`]). `None` on buses without generation
    /// tracking, which keeps the legacy unvalidated behaviour.
    code: Option<(u32, u64)>,
}

#[derive(Debug, Clone, Copy)]
struct PendingFetch {
    gen: u64,
    base: Addr,
    ready_at: Cycle,
    bytes: [u8; FETCH_BYTES as usize],
    /// Code-region identity sampled when the bytes left memory.
    code: Option<(u32, u64)>,
}

/// Deterministic multiplicative hasher for block keys. The default SipHash
/// is both slower on 4-byte keys and seeded per process; block lookups sit
/// on the per-carve hot path and must not be a source of run-to-run
/// variation while debugging.
#[derive(Debug, Clone, Copy, Default)]
struct BlockHasher(u64);

impl std::hash::Hasher for BlockHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type BlockMap = HashMap<u32, PredecodedBlock, std::hash::BuildHasherDefault<BlockHasher>>;

/// A predecoded straight-line run, stamped with the identity of the code
/// bytes it was carved from.
#[derive(Debug, Clone)]
struct PredecodedBlock {
    region: u32,
    generation: u64,
    instrs: Vec<Decoded>,
    /// Decode error terminating the run, if the bytes after the last
    /// instruction do not decode: `(pc, error)`. Replaying it skips the
    /// (deterministic) re-decode of the same undecodable bytes.
    error: Option<(u32, SimError)>,
}

/// A block being accumulated by the carve stage on the fast path.
#[derive(Debug, Clone)]
struct FillBlock {
    key: u32,
    region: u32,
    generation: u64,
    instrs: Vec<Decoded>,
    error: Option<(u32, SimError)>,
}

/// Replay cursor into a cached block (avoids a map lookup per carve).
#[derive(Debug, Clone, Copy)]
struct Replay {
    key: u32,
    idx: usize,
    region: u32,
    generation: u64,
}

/// Cycle-accounting and fast-path counters, maintained unconditionally
/// (plain integer bumps) so observability can sample them at any time
/// without changing pipeline behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Stall cycles by cause, indexed by [`StallReason::index`].
    pub stall_cycles: [u64; StallReason::COUNT],
    /// Cycles in which at least one instruction retired.
    pub retire_cycles: u64,
    /// Pipeline flushes: redirects that discarded fetched/decoded work
    /// (taken branches, calls/returns, interrupt entry, host redirects).
    pub flushes: u64,
    /// Mispredictions under the static backward-taken prediction scheme.
    pub mispredicts: u64,
    /// `LOOP` back-edges served from the loop buffer (zero-bubble).
    pub loop_buffer_replays: u64,
    /// Loop-buffer bodies dropped because their code bytes were rewritten.
    pub loop_buffer_invalidations: u64,
    /// Predecode-block cache counters (fast path only).
    pub predecode: CacheStats,
}

impl PipelineStats {
    /// Total stall cycles across all causes.
    #[must_use]
    pub fn stall_total(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }

    /// Stall cycles charged to `reason`.
    #[must_use]
    pub fn stalls(&self, reason: StallReason) -> u64 {
        self.stall_cycles[reason.index()]
    }
}

/// What one pipeline step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepOutput {
    /// Instructions retired this cycle (0..=3).
    pub retired: u8,
    /// An interrupt of this priority was accepted this cycle.
    pub irq_taken: Option<u8>,
    /// `HALT` has been executed (now or earlier).
    pub halted: bool,
}

/// The cycle-level TC-R core.
#[derive(Debug, Clone)]
pub struct Core {
    arch: ArchState,
    cfg: CoreConfig,
    source: SourceId,

    // Fetch state.
    fetch_gen: u64,
    pending_fetch: Option<PendingFetch>,
    byte_buf: Vec<u8>,
    byte_buf_pc: u32,
    /// Code-region identity of the bytes in `byte_buf`; `None` when the
    /// bus has no generation tracking or the buffer mixes snapshots.
    byte_buf_code: Option<(u32, u64)>,
    decode_q: VecDeque<QEntry>,

    // Predecoded fast path.
    fast_path: bool,
    blocks: BlockMap,
    replay: Option<Replay>,
    filling: Option<FillBlock>,

    // Timing state.
    stall_until: Cycle,
    stall_reason: StallReason,
    /// Why the decode queue is empty after a flush, so fetch-fill cycles
    /// stay charged to the stall that caused the flush (branch, context)
    /// instead of being re-labelled as fetch starvation.
    refill_reason: Option<StallReason>,
    ip_busy_until: Cycle,
    ready_d: [Cycle; 16],
    ready_a: [Cycle; 16],

    loop_buf: Option<LoopBuf>,
    recording: bool,
    /// Registers written by instructions issued this cycle (reused buffer).
    bundle_writes: Vec<RegRef>,

    halted: bool,
    idle: bool,
    retired_total: u64,
    stats: PipelineStats,

    // Block-level cycle attribution (opt-in; None costs one untaken
    // branch per charge site).
    profile: Option<Box<audo_obs::profile::BlockProfile>>,
    /// Block of the most recently issued instruction — owns trailing
    /// fetch-starvation and idle cycles.
    last_issue_tag: Option<BlockTag>,
    /// Block charged for `stall_until` wait cycles (the instruction that
    /// armed the stall; cleared on interrupt entry, whose context stall
    /// belongs to no guest block).
    stall_tag: Option<BlockTag>,
}

impl Core {
    /// Creates a core with the given timing config, reset PC and trace
    /// source id (used to attribute emitted events).
    #[must_use]
    pub fn new(cfg: CoreConfig, reset_pc: Addr, source: SourceId) -> Core {
        Core {
            arch: ArchState::new(reset_pc.0),
            cfg,
            source,
            fetch_gen: 0,
            pending_fetch: None,
            byte_buf: Vec::new(),
            byte_buf_pc: reset_pc.0,
            byte_buf_code: None,
            decode_q: VecDeque::new(),
            fast_path: true,
            blocks: BlockMap::default(),
            replay: None,
            filling: None,
            stall_until: Cycle::ZERO,
            stall_reason: StallReason::Fetch,
            refill_reason: None,
            ip_busy_until: Cycle::ZERO,
            ready_d: [Cycle::ZERO; 16],
            ready_a: [Cycle::ZERO; 16],
            loop_buf: None,
            recording: false,
            bundle_writes: Vec::new(),
            halted: false,
            idle: false,
            retired_total: 0,
            stats: PipelineStats::default(),
            profile: None,
            last_issue_tag: None,
            stall_tag: None,
        }
    }

    /// The architectural state.
    #[must_use]
    pub fn arch(&self) -> &ArchState {
        &self.arch
    }

    /// Mutable architectural state (for loaders and test setup). Changing
    /// the PC through this does **not** flush the pipeline; use
    /// [`Core::redirect`] for that.
    pub fn arch_mut(&mut self) -> &mut ArchState {
        &mut self.arch
    }

    /// Flushes the pipeline and restarts fetch/execution at `pc`.
    pub fn redirect(&mut self, pc: Addr) {
        self.arch.pc = pc.0;
        self.flush(pc.0);
        self.stats.flushes += 1;
        self.refill_reason = None;
    }

    /// `true` once `HALT` has retired.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// `true` while the core sits in the `WAIT` idle state.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.idle
    }

    /// Total instructions retired since reset.
    #[must_use]
    pub fn retired_total(&self) -> u64 {
        self.retired_total
    }

    /// Cycle-accounting and fast-path counters since reset.
    #[must_use]
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// Enables or disables the predecoded-block fast path (default: on).
    ///
    /// Timing is bit-identical either way — the fast path only removes
    /// host-side decode work. Disabling drops all cached blocks.
    pub fn set_fast_path(&mut self, fast: bool) {
        self.fast_path = fast;
        if !fast {
            self.blocks.clear();
            self.replay = None;
            self.filling = None;
        }
    }

    /// Whether the predecoded-block fast path is enabled.
    #[must_use]
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// Enables or disables block-level cycle attribution (default: off,
    /// costing one untaken branch per charge site).
    ///
    /// When on, every cycle the core accounts — retire cycles and every
    /// [`StallReason`]-classified stall cycle — is additionally charged to
    /// the predecoded block that owns the retiring/stalling instruction,
    /// keyed by `(region base, block offset, write generation)`. Cycles
    /// with no block identity (cold-start fetch, interrupt entry,
    /// unstamped bytes) land in the profile's explicit `unattributed`
    /// bucket, so the profile's cycle total always equals the
    /// [`PipelineStats`] `retire + Σ stalls` total exactly. Attribution
    /// needs the fast path's block stamps; with the fast path off all
    /// cycles are unattributed. Enabling resets the profile; disabling
    /// drops it. Timing is bit-identical either way.
    pub fn set_profile_observation(&mut self, enabled: bool) {
        self.profile = if enabled {
            Some(Box::new(audo_obs::profile::BlockProfile::new()))
        } else {
            None
        };
        self.last_issue_tag = None;
        self.stall_tag = None;
    }

    /// The block-level cycle-attribution profile, if profiling is on.
    #[must_use]
    pub fn block_profile(&self) -> Option<&audo_obs::profile::BlockProfile> {
        self.profile.as_deref()
    }

    fn flush(&mut self, new_pc: u32) {
        self.fetch_gen += 1;
        self.pending_fetch = None;
        self.byte_buf.clear();
        self.byte_buf_pc = new_pc;
        self.byte_buf_code = None;
        self.decode_q.clear();
        self.recording = false;
        self.replay = None;
        // A partially carved block is still a valid (shorter) block: its
        // instructions were decoded from stamped bytes.
        self.finalize_fill();
    }

    fn stream_end(&self) -> u32 {
        self.byte_buf_pc.wrapping_add(self.byte_buf.len() as u32)
    }

    /// Inserts the in-progress fill block into the cache, if any.
    fn finalize_fill(&mut self) {
        if let Some(fill) = self.filling.take() {
            if !fill.instrs.is_empty() || fill.error.is_some() {
                self.blocks.insert(
                    fill.key,
                    PredecodedBlock {
                        region: fill.region,
                        generation: fill.generation,
                        instrs: fill.instrs,
                        error: fill.error,
                    },
                );
            }
        }
    }

    /// Serves predecoded instructions at the current carve position, if
    /// the fast path holds a block whose byte stamp matches the byte
    /// stream's. Pushes as many entries as fit the decode queue and the
    /// fetched bytes, draining exactly what a fresh decode of the same
    /// stream would have consumed. Returns `true` if anything was served.
    fn serve_predecoded(&mut self) -> bool {
        if !self.fast_path {
            return false;
        }
        let Some(stamp) = self.byte_buf_code else {
            return false;
        };
        let (key, start_idx) = match self.replay {
            Some(r) if (r.region, r.generation) == stamp => (r.key, r.idx),
            _ => {
                self.replay = None;
                let pc = self.byte_buf_pc;
                let valid = match self.blocks.get(&pc) {
                    Some(b) => (b.region, b.generation) == stamp,
                    None => return false,
                };
                if !valid {
                    // Same start PC, different byte snapshot: stale code.
                    self.stats.predecode.invalidations += 1;
                    self.blocks.remove(&pc);
                    return false;
                }
                self.stats.predecode.hits += 1;
                self.finalize_fill();
                (pc, 0)
            }
        };
        let Some(block) = self.blocks.get(&key) else {
            self.replay = None;
            return false;
        };
        let avail = self.byte_buf.len();
        let mut drained = 0usize;
        let mut pc = self.byte_buf_pc;
        let mut idx = start_idx;
        while self.decode_q.len() < self.cfg.fetch_queue {
            let Some(d) = block.instrs.get(idx) else {
                break;
            };
            if d.pc != pc || drained + d.len as usize > avail {
                break;
            }
            self.decode_q.push_back(QEntry::Ok(*d));
            drained += d.len as usize;
            pc = pc.wrapping_add(u32::from(d.len));
            idx += 1;
        }
        // Replay the recorded decode error terminating the run, if the
        // stream has reached it (equal stamps mean the same undecodable
        // bytes are sitting in the buffer).
        let mut served_error = false;
        if idx == block.instrs.len() && self.decode_q.len() < self.cfg.fetch_queue {
            if let Some((epc, e)) = &block.error {
                // Same gate as the outer carve loop: don't replay the
                // error until the stream holds enough bytes for a fresh
                // decode attempt to have been made.
                let remaining = avail - drained;
                let gate = remaining >= 2 && (self.byte_buf[drained] & 1 == 0 || remaining >= 4);
                if *epc == pc && gate {
                    self.decode_q.push_back(QEntry::Bad(*epc, e.clone()));
                    served_error = true;
                }
            }
        }
        if served_error {
            // Mirror the slow path's error handling exactly: discard the
            // remaining bytes and stop stamping until the next flush.
            self.byte_buf.clear();
            self.byte_buf_pc = pc;
            self.byte_buf_code = None;
            self.replay = None;
            return true;
        }
        if idx == start_idx {
            // Position mismatch: fall back to a fresh decode.
            self.replay = None;
            return false;
        }
        self.byte_buf.drain(..drained);
        self.byte_buf_pc = pc;
        self.replay = if idx < block.instrs.len() {
            Some(Replay {
                key,
                idx,
                region: stamp.0,
                generation: stamp.1,
            })
        } else {
            None
        };
        true
    }

    /// Records a freshly decoded instruction into the fill block (fast
    /// path only) and returns the micro-props and owning-block tag for its
    /// queue entry.
    fn note_decoded(
        &mut self,
        pc: u32,
        instr: Instr,
        len: u8,
    ) -> (Option<MicroProps>, Option<BlockTag>) {
        if !self.fast_path {
            return (None, None);
        }
        let props = MicroProps::of(&instr);
        let Some(stamp) = self.byte_buf_code else {
            // Unstamped bytes cannot be cached, but the derived props are
            // a pure function of the instruction and stay usable.
            self.finalize_fill();
            return (Some(props), None);
        };
        let terminal = props.control_flow
            || props.serializing
            || matches!(instr, Instr::Debug { .. } | Instr::Wait | Instr::Halt);
        let extends = self.filling.as_ref().is_some_and(|f| {
            (f.region, f.generation) == stamp
                && f.instrs.len() < MAX_BLOCK_LEN
                && f.instrs
                    .last()
                    .is_some_and(|d| d.pc.wrapping_add(u32::from(d.len)) == pc)
        });
        let tag = if extends {
            let fill = self.filling.as_mut().expect("extends implies filling");
            BlockTag {
                region: fill.region,
                start: fill.key,
                generation: fill.generation,
            }
        } else {
            self.finalize_fill();
            self.stats.predecode.misses += 1;
            self.filling = Some(FillBlock {
                key: pc,
                region: stamp.0,
                generation: stamp.1,
                instrs: Vec::new(),
                error: None,
            });
            BlockTag {
                region: stamp.0,
                start: pc,
                generation: stamp.1,
            }
        };
        let dec = Decoded {
            pc,
            instr,
            len,
            props: Some(props),
            tag: Some(tag),
        };
        if let Some(fill) = &mut self.filling {
            fill.instrs.push(dec);
        }
        if terminal {
            self.finalize_fill();
        }
        (Some(props), Some(tag))
    }

    /// Records a decode error as the terminator of the current fill block
    /// (fast path only), so dead paths that repeatedly run into the same
    /// undecodable bytes replay from cache instead of re-decoding.
    fn note_decode_error(&mut self, pc: u32, e: &SimError) {
        if !self.fast_path {
            self.finalize_fill();
            return;
        }
        let Some(stamp) = self.byte_buf_code else {
            self.finalize_fill();
            return;
        };
        let extends = self.filling.as_ref().is_some_and(|f| {
            (f.region, f.generation) == stamp
                && f.instrs
                    .last()
                    .is_some_and(|d| d.pc.wrapping_add(u32::from(d.len)) == pc)
        });
        if !extends {
            self.finalize_fill();
            self.stats.predecode.misses += 1;
            self.filling = Some(FillBlock {
                key: pc,
                region: stamp.0,
                generation: stamp.1,
                instrs: Vec::new(),
                error: None,
            });
        }
        if let Some(fill) = &mut self.filling {
            fill.error = Some((pc, e.clone()));
        }
        self.finalize_fill();
    }

    fn step_fetch<B: CoreBus>(&mut self, now: Cycle, bus: &mut B) {
        // Harvest a completed fetch.
        if let Some(pf) = self.pending_fetch {
            if pf.gen != self.fetch_gen {
                self.pending_fetch = None;
            } else if pf.ready_at <= now {
                let end = self.stream_end();
                let lo = pf.base.0;
                if end >= lo && end < lo + FETCH_BYTES {
                    if self.byte_buf.is_empty() {
                        self.byte_buf_code = pf.code;
                    } else if self.byte_buf_code != pf.code {
                        // The buffer would mix two snapshots; it can no
                        // longer be stamped (disables caching until the
                        // next flush — safe, merely slower).
                        self.byte_buf_code = None;
                    }
                    self.byte_buf
                        .extend_from_slice(&pf.bytes[(end - lo) as usize..]);
                }
                self.pending_fetch = None;
            }
        }
        // Carve instructions out of the byte stream. The fast path first
        // consults the predecode cache; hits skip `decode` entirely but
        // drain the same bytes, so the timing-visible state (byte stream,
        // queue occupancy) evolves bit-identically either way.
        while self.decode_q.len() < self.cfg.fetch_queue && self.byte_buf.len() >= 2 {
            let pc = self.byte_buf_pc;
            let need32 = self.byte_buf[0] & 1 == 1;
            if need32 && self.byte_buf.len() < 4 {
                break;
            }
            if self.serve_predecoded() {
                continue;
            }
            match decode(&self.byte_buf, Addr(pc)) {
                Ok((instr, len)) => {
                    let (props, tag) = self.note_decoded(pc, instr, len);
                    self.byte_buf.drain(..len as usize);
                    self.byte_buf_pc = pc.wrapping_add(u32::from(len));
                    self.decode_q.push_back(QEntry::Ok(Decoded {
                        pc,
                        instr,
                        len,
                        props,
                        tag,
                    }));
                }
                Err(e) => {
                    self.note_decode_error(pc, &e);
                    self.decode_q.push_back(QEntry::Bad(pc, e));
                    self.byte_buf.clear();
                    self.byte_buf_code = None;
                    break;
                }
            }
        }
        // Launch the next fetch.
        if self.pending_fetch.is_none()
            && self.decode_q.len() < self.cfg.fetch_queue
            && self.byte_buf.len() < 2 * FETCH_BYTES as usize
            && !self.halted
        {
            let addr = Addr(self.stream_end());
            match bus.fetch(now, addr) {
                Ok(slot) => {
                    self.pending_fetch = Some(PendingFetch {
                        gen: self.fetch_gen,
                        base: addr.align_down(FETCH_BYTES),
                        ready_at: slot.ready_at.max(now + 1),
                        bytes: slot.bytes,
                        code: if self.fast_path {
                            bus.code_region(addr)
                        } else {
                            None
                        },
                    });
                }
                Err(e) => {
                    // Fetching unmapped memory is fatal only if execution
                    // actually reaches it.
                    self.decode_q.push_back(QEntry::Bad(addr.0, e));
                }
            }
        }
    }

    fn reg_ready(&self, r: RegRef) -> Cycle {
        match r {
            RegRef::D(i) => self.ready_d[i as usize],
            RegRef::A(i) => self.ready_a[i as usize],
        }
    }

    fn set_reg_ready(&mut self, r: RegRef, t: Cycle) {
        match r {
            RegRef::D(i) => self.ready_d[i as usize] = t,
            RegRef::A(i) => self.ready_a[i as usize] = t,
        }
    }

    /// Counts and emits one stall cycle, charging it to `tag`'s block in
    /// the profile (when profiling is on).
    fn note_stall(
        &mut self,
        now: Cycle,
        reason: StallReason,
        tag: Option<BlockTag>,
        sink: &mut EventSink,
    ) {
        self.stats.stall_cycles[reason.index()] += 1;
        if let Some(profile) = self.profile.as_deref_mut() {
            profile.record_stall_cycle(tag.map(BlockTag::key), reason);
        }
        sink.emit(now, self.source, PerfEvent::Stall { reason });
    }

    /// Serves a taken `LOOP` back-edge from the loop buffer, if the buffer
    /// holds this loop and its captured code bytes are still current
    /// (`code_now` is the region identity sampled by the caller).
    fn serve_loop_buffer(
        &mut self,
        loop_pc: u32,
        target: u32,
        code_now: Option<(u32, u64)>,
    ) -> bool {
        let Some(buf) = &self.loop_buf else {
            return false;
        };
        if !(buf.ready && buf.loop_pc == loop_pc && buf.target == target) {
            return false;
        }
        // The captured micro-ops are only as fresh as the code they were
        // fetched from: any store into the region since capture (a
        // self-modifying loop, an overlay swap) must drop the buffer, not
        // replay stale instructions.
        if buf.code.is_some() && buf.code != code_now {
            self.loop_buf = None;
            self.stats.loop_buffer_invalidations += 1;
            return false;
        }
        let buf = self.loop_buf.take().expect("checked above");
        let resume = loop_pc.wrapping_add(4); // LOOP is always a 32-bit op
        self.flush(resume);
        for d in &buf.body {
            self.decode_q.push_back(QEntry::Ok(*d));
        }
        self.loop_buf = Some(buf);
        self.stats.loop_buffer_replays += 1;
        true
    }

    /// Advances the core by one cycle.
    ///
    /// `pending_irq` is the highest-priority pending interrupt from the
    /// router (if any); it is accepted when strictly above the current CPU
    /// priority and `ICR.IE` is set.
    ///
    /// # Errors
    ///
    /// Returns fatal faults: decode errors reached by execution, unmapped or
    /// misaligned data accesses, CSA list exhaustion.
    pub fn step<B: CoreBus>(
        &mut self,
        now: Cycle,
        bus: &mut B,
        pending_irq: Option<u8>,
        sink: &mut EventSink,
    ) -> Result<StepOutput, SimError> {
        let mut out = StepOutput {
            halted: self.halted,
            ..StepOutput::default()
        };
        if self.halted {
            return Ok(out);
        }

        // ----- Interrupt acceptance (at instruction boundaries) -----
        if let Some(prio) = pending_irq {
            let accept = prio > self.arch.icr_ccpn
                && self.arch.icr_ie
                && (self.idle || now >= self.stall_until);
            if accept {
                let from = Addr(self.arch.pc);
                let mut tm = TimedMem::new(bus, now);
                let flow = enter_interrupt(&mut self.arch, &mut tm, prio)?;
                let done = tm.writes_accepted.max(now + self.cfg.ctx_cycles);
                self.flush(flow.target.0);
                self.stats.flushes += 1;
                self.idle = false;
                self.stall_until = done;
                self.stall_reason = StallReason::Context;
                // Interrupt entry belongs to no guest block.
                self.stall_tag = None;
                self.last_issue_tag = None;
                self.refill_reason = Some(StallReason::Context);
                sink.emit(now, self.source, PerfEvent::IrqTaken { prio });
                sink.emit(
                    now,
                    self.source,
                    PerfEvent::FlowChange {
                        kind: FlowKind::Exception,
                        from,
                        to: flow.target,
                    },
                );
                out.irq_taken = Some(prio);
            }
        }

        if self.idle {
            let tag = self.last_issue_tag;
            self.note_stall(now, StallReason::Idle, tag, sink);
            return Ok(out);
        }

        // ----- Fetch engine (always runs; fills during stalls too) -----
        self.step_fetch(now, bus);

        if now < self.stall_until {
            let reason = self.stall_reason;
            let tag = self.stall_tag;
            self.note_stall(now, reason, tag, sink);
            return Ok(out);
        }

        // ----- Issue up to one instruction per pipe, in order -----
        let mut ip_used = false;
        let mut ls_used = false;
        let mut lp_used = false;
        self.bundle_writes.clear();
        let mut issued = 0u8;
        let mut first_block: Option<StallReason> = None;
        // Profiler attribution for this cycle: the block charged if no
        // instruction issues, and the block owning the first issued op.
        let mut block_attr: Option<BlockTag> = None;
        let mut bundle_tag: Option<BlockTag> = None;

        'issue: while issued < 3 {
            let Some(front) = self.decode_q.front() else {
                if issued == 0 {
                    // An empty queue right after a flush is still the
                    // flush's stall (branch/context), not fetch starvation.
                    first_block = Some(self.refill_reason.unwrap_or(StallReason::Fetch));
                    block_attr = self.last_issue_tag;
                }
                break;
            };
            let dec = match front {
                QEntry::Ok(d) => *d,
                QEntry::Bad(pc, e) => {
                    if issued == 0 {
                        return Err(match e {
                            SimError::UnmappedAddress { .. } => {
                                SimError::UnmappedAddress { addr: Addr(*pc) }
                            }
                            other => other.clone(),
                        });
                    }
                    break;
                }
            };
            let instr = dec.instr;
            let props = dec.props.unwrap_or_else(|| MicroProps::of(&instr));

            // Serializing instructions issue alone.
            if props.serializing && issued > 0 {
                break;
            }
            // Pipe availability.
            let pipe = props.pipe;
            let pipe_free = match pipe {
                Pipe::Ip => !ip_used,
                Pipe::Ls => !ls_used,
                Pipe::Lp => !lp_used,
            };
            if !pipe_free {
                break;
            }
            // Integer-pipe unit busy (divide in flight).
            if pipe == Pipe::Ip && now < self.ip_busy_until {
                if issued == 0 {
                    first_block = Some(StallReason::Execute);
                    block_attr = dec.tag;
                }
                break;
            }
            // Source operands ready?
            for r in props.reads.iter() {
                if self.reg_ready(r) > now {
                    if issued == 0 {
                        first_block = Some(StallReason::Data);
                        block_attr = dec.tag;
                    }
                    break 'issue;
                }
            }
            // No intra-bundle dependencies.
            for r in props.reads.iter().chain(props.writes.iter()) {
                if self.bundle_writes.contains(&r) {
                    break 'issue;
                }
            }

            // ----- Execute -----
            self.decode_q.pop_front();
            self.refill_reason = None;
            let pc = dec.pc;
            let mut tm = TimedMem::new(bus, now);
            let result = execute(&mut self.arch, &mut tm, &instr, pc, dec.len)?;
            let (reads_ready, writes_accepted) = (tm.reads_ready, tm.writes_accepted);
            let did_read = tm.read_count > 0;
            let did_write = tm.write_count > 0;
            issued += 1;
            self.retired_total += 1;
            // The op that issues owns subsequent wait/starvation cycles;
            // the first of the bundle owns the retire cycle.
            self.stall_tag = dec.tag;
            self.last_issue_tag = dec.tag;
            if issued == 1 {
                bundle_tag = dec.tag;
            }
            if let Some(profile) = self.profile.as_deref_mut() {
                match dec.tag {
                    Some(tag) => {
                        let key = tag.key();
                        if pc == tag.start {
                            profile.record_entry(key);
                        }
                        let end = pc.wrapping_add(u32::from(dec.len)).wrapping_sub(tag.start);
                        profile.record_instr(Some(key), end);
                    }
                    None => profile.record_instr(None, 0),
                }
            }
            match pipe {
                Pipe::Ip => ip_used = true,
                Pipe::Ls => ls_used = true,
                Pipe::Lp => lp_used = true,
            }

            // Loop-body capture.
            if self.recording {
                let in_body = self
                    .loop_buf
                    .as_ref()
                    .is_some_and(|b| pc >= b.target && pc <= b.loop_pc);
                let is_other_branch = props.control_flow && !props.is_loop;
                if !in_body || is_other_branch {
                    self.recording = false;
                    self.loop_buf = None;
                } else if let Some(buf) = &mut self.loop_buf {
                    if buf.body.len() >= self.cfg.loop_buffer {
                        self.recording = false;
                        self.loop_buf = None;
                    } else {
                        buf.body.push(dec);
                        if pc == buf.loop_pc {
                            buf.ready = true;
                            self.recording = false;
                        }
                    }
                }
            }

            // ----- Result latencies -----
            let mut dest_ready = now;
            if props.mul_class {
                dest_ready = now + self.cfg.mul_latency;
            }
            if props.div_class {
                self.ip_busy_until = now + self.cfg.div_busy;
                dest_ready = now + self.cfg.div_busy;
            }
            if props.serializing {
                let done = reads_ready.max(writes_accepted).max(
                    now + if did_write || did_read {
                        self.cfg.ctx_cycles
                    } else {
                        1
                    },
                );
                self.stall_until = done;
                self.stall_reason = StallReason::Context;
            } else {
                if did_read {
                    if reads_ready > now {
                        self.stall_until = reads_ready;
                        self.stall_reason = StallReason::Data;
                        dest_ready = reads_ready + 1;
                    } else {
                        dest_ready = dest_ready.max(now + 1); // load-use = 1
                    }
                }
                if did_write && writes_accepted > now {
                    self.stall_until = self.stall_until.max(writes_accepted);
                    self.stall_reason = StallReason::StoreBuffer;
                }
            }
            for r in props.writes.iter() {
                self.set_reg_ready(r, dest_ready);
                self.bundle_writes.push(r);
            }

            // ----- Control flow and prediction -----
            if let Some(flow) = result.flow {
                sink.emit(
                    now,
                    self.source,
                    PerfEvent::FlowChange {
                        kind: flow.kind,
                        from: Addr(pc),
                        to: flow.target,
                    },
                );
                let mut served_from_loop_buffer = false;
                if props.is_loop {
                    let code_now = bus.code_region(flow.target);
                    if self.serve_loop_buffer(pc, flow.target.0, code_now) {
                        served_from_loop_buffer = true;
                    } else if !self
                        .loop_buf
                        .as_ref()
                        .is_some_and(|b| b.ready && b.loop_pc == pc && b.target == flow.target.0)
                    {
                        // Start (re)recording this loop's body.
                        self.loop_buf = Some(LoopBuf {
                            loop_pc: pc,
                            target: flow.target.0,
                            body: Vec::new(),
                            ready: false,
                            code: code_now,
                        });
                        self.recording = true;
                    }
                }
                if !served_from_loop_buffer {
                    let recording = self.recording;
                    let saved = self.loop_buf.take();
                    self.flush(flow.target.0);
                    self.loop_buf = saved;
                    self.recording = recording;
                    self.stats.flushes += 1;
                    // Forward taken conditional = mispredict (static scheme
                    // predicts backward-taken only).
                    let mispredicted =
                        result.branch_taken == Some(true) && flow.target.0 > pc && !props.is_loop;
                    if mispredicted {
                        self.stall_until = self.stall_until.max(now + self.cfg.mispredict_penalty);
                        self.stall_reason = StallReason::Branch;
                        self.stats.mispredicts += 1;
                        self.refill_reason = Some(StallReason::Branch);
                    } else if props.serializing {
                        self.refill_reason = Some(StallReason::Context);
                    }
                }
                // A redirect ends the bundle.
                self.finish_issue(
                    now,
                    issued,
                    first_block,
                    block_attr,
                    bundle_tag,
                    sink,
                    &mut out,
                    result,
                )?;
                return Ok(out);
            }
            if result.branch_taken == Some(false) {
                sink.emit(now, self.source, PerfEvent::BranchNotTaken { at: Addr(pc) });
                // Backward not-taken (loop exit or backward cond) was
                // predicted taken: mispredict penalty, no flush needed.
                if props.backward_cond {
                    self.stall_until = self.stall_until.max(now + self.cfg.mispredict_penalty);
                    self.stall_reason = StallReason::Branch;
                    self.stats.mispredicts += 1;
                    self.finish_issue(
                        now,
                        issued,
                        first_block,
                        block_attr,
                        bundle_tag,
                        sink,
                        &mut out,
                        result,
                    )?;
                    return Ok(out);
                }
            }

            if result.debug.is_some() || result.wait || result.halt {
                self.finish_issue(
                    now,
                    issued,
                    first_block,
                    block_attr,
                    bundle_tag,
                    sink,
                    &mut out,
                    result,
                )?;
                return Ok(out);
            }
            if props.serializing {
                break;
            }
            // Data stall also ends the bundle.
            if now < self.stall_until {
                break;
            }
        }

        let result = crate::exec::Outcome::default();
        self.finish_issue(
            now,
            issued,
            first_block,
            block_attr,
            bundle_tag,
            sink,
            &mut out,
            result,
        )?;
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)] // reason: one internal per-cycle epilogue, not an API
    fn finish_issue(
        &mut self,
        now: Cycle,
        issued: u8,
        first_block: Option<StallReason>,
        block_attr: Option<BlockTag>,
        bundle_tag: Option<BlockTag>,
        sink: &mut EventSink,
        out: &mut StepOutput,
        last: crate::exec::Outcome,
    ) -> Result<(), SimError> {
        if let Some(code) = last.debug {
            sink.emit(now, self.source, PerfEvent::DebugMarker { code });
        }
        if last.wait {
            self.idle = true;
        }
        if last.halt {
            self.halted = true;
            out.halted = true;
        }
        out.retired = issued;
        if issued > 0 {
            self.stats.retire_cycles += 1;
            if let Some(profile) = self.profile.as_deref_mut() {
                profile.record_retire_cycle(bundle_tag.map(BlockTag::key));
            }
            sink.emit(now, self.source, PerfEvent::InstrRetired { count: issued });
        } else if !self.halted && !self.idle {
            let reason = first_block.unwrap_or(StallReason::Data);
            self.note_stall(now, reason, block_attr, sink);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Static cost export
// ---------------------------------------------------------------------------

/// Worst-case cycles any *single* memory-port transaction can take on the
/// bus a program runs against, as seen from the pipeline's issue stage.
///
/// This is the only bus-dependent input to [`CostModel`]; everything else
/// comes from [`CoreConfig`], so the static analyzer and the cycle-level
/// simulator consume one timing table rather than two hand-kept copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCosts {
    /// Worst-case cycles from fetch request to data availability.
    pub fetch: u64,
    /// Worst-case cycles from read request to data availability.
    pub read: u64,
    /// Worst-case cycles until a store is accepted.
    pub write: u64,
}

impl MemCosts {
    /// Costs of a [`TestBus`](crate::bus::TestBus) (the bus the fuzz
    /// tiers and pipeline unit
    /// tests run on), read straight from its latency fields.
    #[must_use]
    pub fn of_test_bus(bus: &crate::bus::TestBus) -> MemCosts {
        MemCosts {
            fetch: bus.fetch_latency,
            read: bus.read_latency,
            write: bus.write_latency,
        }
    }
}

/// Upper bound on data-memory accesses a single serializing instruction
/// performs: a CSA save/restore moves one 16-word frame plus the free-list
/// head updates; 20 leaves headroom for the FCX/PCX bookkeeping.
const CTX_ACCESS_BOUND: u64 = 20;

/// Static per-instruction worst-case cycle costs, derived from the same
/// [`CoreConfig`] knobs and micro-op classification the issue stage
/// itself consults. Every stall the pipeline can charge maps to a term
/// here, so `instr_cost` summed over a block upper-bounds the cycles the
/// simulator can ever attribute to it (interrupt-entry refills and `WAIT`
/// idling excepted — callers account for those separately).
#[derive(Debug, Clone)]
pub struct CostModel {
    cfg: CoreConfig,
    mem: MemCosts,
}

impl CostModel {
    /// Builds a cost model for a core configured with `cfg` running
    /// against a bus bounded by `mem`.
    #[must_use]
    pub fn new(cfg: CoreConfig, mem: MemCosts) -> CostModel {
        CostModel { cfg, mem }
    }

    /// Flush penalty of a mispredicted branch — exported so rate
    /// predictors reuse the pipeline's number instead of hardcoding one.
    #[must_use]
    pub fn redirect_penalty(&self) -> u64 {
        self.cfg.mispredict_penalty
    }

    /// Worst-case cycles one instruction can spend waiting for fetch:
    /// the fetch round-trip plus launch/align slack.
    fn fetch_share(&self) -> u64 {
        self.mem.fetch + 2
    }

    /// Worst-case cycles an instruction can wait at issue for operands or
    /// a busy integer pipe: a divide in flight, a multiply in flight, or a
    /// load result still on the bus (`dest_ready = reads_ready + 1`).
    fn max_issue_wait(&self) -> u64 {
        self.cfg
            .div_busy
            .max(self.cfg.mul_latency)
            .max(self.mem.read + 1)
    }

    /// Worst-case refill bubble after a redirect or serializing flush:
    /// the queue restarts from an empty byte buffer, so up to two fetch
    /// round-trips can pass before the next instruction issues.
    fn redirect_refill(&self) -> u64 {
        2 * self.fetch_share()
    }

    /// Worst-case serialization cost of a context operation: the drain
    /// window plus every CSA frame access at worst-case port latency.
    fn ctx_serialize(&self) -> u64 {
        self.cfg.ctx_cycles + CTX_ACCESS_BOUND * (self.mem.read.max(self.mem.write) + 1)
    }

    /// Worst-case cycles `instr` can add to its block: one retire slot
    /// plus every stall the issue stage can charge on its behalf.
    #[must_use]
    pub fn instr_cost(&self, instr: &Instr) -> u64 {
        let props = MicroProps::of(instr);
        let mut cost = 1 + self.fetch_share();
        if !props.reads.is_empty() || props.pipe == Pipe::Ip {
            cost += self.max_issue_wait();
        }
        if instr.is_memory() && !props.serializing {
            // Loads park the pipe until `reads_ready + 1`; stores can
            // stall issue until the buffer drains at `writes_accepted`.
            cost += self.mem.read.max(self.mem.write) + 1;
        }
        if props.serializing {
            cost += self.ctx_serialize();
        }
        if props.control_flow || props.serializing {
            cost += self.cfg.mispredict_penalty + self.redirect_refill();
        }
        cost
    }

    /// Sum of [`CostModel::instr_cost`] over a block body (saturating).
    pub fn block_cost<'a, I: IntoIterator<Item = &'a Instr>>(&self, instrs: I) -> u64 {
        instrs
            .into_iter()
            .fold(0u64, |acc, i| acc.saturating_add(self.instr_cost(i)))
    }

    /// Worst-case cycles charged to a block *around* its own
    /// instructions each time it is entered: the redirect that reached
    /// it, the refill behind that redirect, and one inherited wait from
    /// in-flight long-latency work, plus alignment slack.
    #[must_use]
    pub fn entry_overhead(&self) -> u64 {
        self.redirect_refill() + self.cfg.mispredict_penalty + self.max_issue_wait() + 2
    }

    /// Worst-case cost of any single instruction this model can rate.
    #[must_use]
    pub fn max_instr_cost(&self) -> u64 {
        1 + self.fetch_share()
            + self.max_issue_wait()
            + (self.mem.read.max(self.mem.write) + 1)
            + self.ctx_serialize()
            + self.cfg.mispredict_penalty
            + self.redirect_refill()
    }

    /// Upper bound on the attributed cost of one execution of *any*
    /// carved pipeline block (at most [`MAX_BLOCK_LEN`] instructions),
    /// independent of its contents. Fleet envelopes use this where no
    /// static image is available.
    #[must_use]
    pub fn carved_block_cost_ub(&self) -> u64 {
        (MAX_BLOCK_LEN as u64)
            .saturating_mul(self.max_instr_cost())
            .saturating_add(self.entry_overhead())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::bus::TestBus;
    use crate::iss::Iss;

    /// Runs a program on the pipeline with a scratchpad-like bus, with the
    /// predecode fast path both on and off, asserting the two runs are
    /// cycle-identical (state, retire count, cycles, full event stream).
    /// Returns the fast run: (core, cycles used, events).
    fn run_pipeline(src: &str, max_cycles: u64) -> (Core, u64, Vec<audo_common::EventRecord>) {
        let run = |fast: bool| {
            let image = assemble(src).expect("assembles");
            let mut bus = TestBus::new();
            bus.mem.add_region(Addr(0x0000_1000), 0x4000);
            bus.mem.add_region(Addr(0xD000_0000), 0x1_0000);
            image.load_into(&mut bus.mem).unwrap();
            let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
            core.set_fast_path(fast);
            core.arch_mut().fcx =
                crate::arch::init_csa_list(&mut bus.mem, Addr(0xD000_8000), 32).unwrap();
            let mut sink = EventSink::new();
            let mut events = Vec::new();
            let mut cyc = 0u64;
            while !core.is_halted() && cyc < max_cycles {
                core.step(Cycle(cyc), &mut bus, None, &mut sink)
                    .expect("no fault");
                events.append(&mut sink.drain());
                cyc += 1;
            }
            assert!(
                core.is_halted(),
                "program did not halt within {max_cycles} cycles (fast={fast})"
            );
            (core, cyc, events)
        };
        let (slow_core, slow_cycles, slow_events) = run(false);
        let (fast_core, fast_cycles, fast_events) = run(true);
        assert_eq!(fast_cycles, slow_cycles, "cycle count fast vs slow");
        assert_eq!(fast_events, slow_events, "event stream fast vs slow");
        assert_eq!(fast_core.arch().d, slow_core.arch().d, "data regs");
        assert_eq!(fast_core.arch().a, slow_core.arch().a, "addr regs");
        assert_eq!(
            fast_core.retired_total(),
            slow_core.retired_total(),
            "retire count"
        );
        // All accounting except the predecode counters must agree too.
        let mut normalized = *fast_core.stats();
        normalized.predecode = slow_core.stats().predecode;
        assert_eq!(&normalized, slow_core.stats(), "stats fast vs slow");
        (fast_core, fast_cycles, fast_events)
    }

    fn golden(src: &str) -> crate::iss::IssRun {
        let image = assemble(src).expect("assembles");
        let mut iss = Iss::new();
        iss.map_region(Addr(0x0000_1000), 0x4000);
        iss.map_region(Addr(0xD000_0000), 0x1_0000);
        iss.init_csa(Addr(0xD000_8000), 32).unwrap();
        iss.load(&image).unwrap();
        iss.run(1_000_000).expect("golden run")
    }

    fn check_against_golden(src: &str) -> (Core, u64) {
        let (core, cycles, _) = run_pipeline(src, 200_000);
        let g = golden(src);
        assert_eq!(core.arch().d, g.state.d, "data registers diverge");
        assert_eq!(core.arch().a, g.state.a, "address registers diverge");
        assert_eq!(core.retired_total(), g.instr_count, "retire count diverges");
        (core, cycles)
    }

    /// Assembles a single instruction and returns its encoding bytes.
    fn encoding_of(line: &str) -> Vec<u8> {
        let img = assemble(&format!(".org 0x1000\n    {line}\n")).unwrap();
        img.bytes_at(Addr(0x1000), img.size()).unwrap()
    }

    /// Emits assembly that stores `enc` (a 2- or 4-byte encoding) over the
    /// code at the address held in `a2`, via halfword stores.
    fn emit_patch_stores(enc: &[u8]) -> String {
        let lo = u16::from_le_bytes([enc[0], enc[1]]);
        let mut s = format!("    li d14, {lo}\n    st.h d14, [a2+0]\n");
        if enc.len() == 4 {
            let hi = u16::from_le_bytes([enc[2], enc[3]]);
            s.push_str(&format!("    li d14, {hi}\n    st.h d14, [a2+2]\n"));
        }
        s
    }

    #[test]
    fn straight_line_code_matches_golden() {
        check_against_golden(
            "
            .org 0x1000
            movi d0, 3
            movi d1, 4
            add d2, d0, d1
            mul d3, d2, d2
            sub d4, d3, d0
            halt
        ",
        );
    }

    #[test]
    fn dual_issue_raises_ipc_above_one() {
        // Independent IP + LS pairs should co-issue.
        let src = "
            .org 0x1000
            la a2, 0xD0000100
            movi d0, 0
            movi d1, 1
            movi d2, 2
            movi d3, 3
            add d0, d1, d2
            ld.w d4, [a2]
            add d1, d2, d3
            ld.w d5, [a2+4]
            add d2, d3, d0
            ld.w d6, [a2+8]
            add d3, d0, d1
            ld.w d7, [a2+12]
            halt
        ";
        let (core, cycles) = check_against_golden(src);
        let ipc = core.retired_total() as f64 / cycles as f64;
        assert!(
            ipc > 1.0,
            "expected dual issue, got IPC {ipc:.2} ({cycles} cycles)"
        );
    }

    #[test]
    fn load_use_hazard_costs_a_cycle() {
        let dependent = "
            .org 0x1000
            la a2, 0xD0000100
            ld.w d0, [a2]
            add d1, d0, d0      ; immediately uses the load
            halt
        ";
        let independent = "
            .org 0x1000
            la a2, 0xD0000100
            ld.w d0, [a2]
            add d1, d2, d3      ; no dependence
            halt
        ";
        let (_, dep_cycles, _) = run_pipeline(dependent, 10_000);
        let (_, ind_cycles, _) = run_pipeline(independent, 10_000);
        assert!(
            dep_cycles > ind_cycles,
            "load-use must cost extra ({dep_cycles} vs {ind_cycles})"
        );
    }

    #[test]
    fn loop_buffer_reaches_steady_state() {
        // A tight MAC loop: after priming, LOOP runs with no fetch and no
        // redirect bubble, so the 2-instruction body should sustain ~2 IPC.
        let src = "
            .org 0x1000
            movi d0, 0
            movi d1, 3
            movi d2, 5
            movi d3, 100
            mov.a a3, d3
        head:
            mac d0, d1, d2
            loop a3, head
            halt
        ";
        let (core, cycles) = check_against_golden(src);
        assert_eq!(core.arch().d[0], 1500);
        // ~100 iterations × 2 instructions; with loop buffer this should be
        // well under 3 cycles per iteration.
        assert!(cycles < 280, "loop not accelerated: {cycles} cycles");
        assert!(
            core.stats().loop_buffer_replays > 90,
            "loop buffer barely used: {:?}",
            core.stats()
        );
    }

    #[test]
    fn division_blocks_the_integer_pipe() {
        let src = "
            .org 0x1000
            movi d0, 1000
            movi d1, 7
            div d2, d0, d1
            add d3, d2, d1      ; depends on divide result
            halt
        ";
        let (core, cycles) = check_against_golden(src);
        assert_eq!(core.arch().d[2], 142);
        assert!(cycles >= 8, "divide latency not modeled: {cycles}");
    }

    #[test]
    fn call_and_ret_serialize_and_match_golden() {
        check_against_golden(
            "
            .org 0x1000
        _start:
            la sp, 0xD0004000
            movi d4, 5
            call square
            mov d5, d4
            call square
            halt
        square:
            mul d4, d4, d4
            ret
        ",
        );
    }

    #[test]
    fn forward_taken_branch_pays_mispredict() {
        let taken_fwd = "
            .org 0x1000
            movi d0, 0
            jz d0, skip     ; forward taken = mispredict
            nop
            nop
        skip:
            halt
        ";
        let not_taken_fwd = "
            .org 0x1000
            movi d0, 1
            jz d0, skip     ; forward not-taken = predicted correctly
            nop
            nop
        skip:
            halt
        ";
        let (taken_core, t, _) = run_pipeline(taken_fwd, 10_000);
        let (nt_core, n, _) = run_pipeline(not_taken_fwd, 10_000);
        // The not-taken path executes two extra NOPs yet should not be much
        // slower; the taken path pays flush + refetch.
        assert!(t + 1 >= n, "taken {t}, not-taken {n}");
        assert_eq!(taken_core.stats().mispredicts, 1);
        assert_eq!(nt_core.stats().mispredicts, 0);
    }

    #[test]
    fn events_report_retires_and_stalls_for_every_cycle() {
        let (core, cycles, events) = run_pipeline(
            "
            .org 0x1000
            movi d0, 10
        head:
            addi d0, d0, -1
            jnz d0, head
            halt
        ",
            10_000,
        );
        let retired: u64 = events
            .iter()
            .filter_map(|e| match e.event {
                PerfEvent::InstrRetired { count } => Some(u64::from(count)),
                _ => None,
            })
            .sum();
        let stall_cycles = events
            .iter()
            .filter(|e| matches!(e.event, PerfEvent::Stall { .. }))
            .count() as u64;
        let retire_cycles = events
            .iter()
            .filter(|e| matches!(e.event, PerfEvent::InstrRetired { .. }))
            .count() as u64;
        assert_eq!(retired, 22, "movi + 10×(addi+jnz) + halt");
        // Every non-final cycle is either a retire cycle or a stall cycle.
        assert_eq!(retire_cycles + stall_cycles, cycles);
        // The always-on counters must agree with the event stream exactly.
        let s = core.stats();
        assert_eq!(s.retire_cycles, retire_cycles);
        assert_eq!(s.stall_total(), stall_cycles);
        assert_eq!(s.retire_cycles + s.stall_total(), cycles);
    }

    #[test]
    fn flow_change_events_track_taken_branches() {
        let (_, _, events) = run_pipeline(
            "
            .org 0x1000
            movi d0, 2
        head:
            addi d0, d0, -1
            jnz d0, head
            halt
        ",
            10_000,
        );
        let flows: Vec<_> = events
            .iter()
            .filter_map(|e| match e.event {
                PerfEvent::FlowChange { kind, from, to } => Some((kind, from, to)),
                _ => None,
            })
            .collect();
        assert_eq!(flows.len(), 1, "one taken jnz expected: {flows:?}");
        assert_eq!(flows[0].0, FlowKind::BranchTaken);
        let not_taken = events
            .iter()
            .filter(|e| matches!(e.event, PerfEvent::BranchNotTaken { .. }))
            .count();
        assert_eq!(not_taken, 1);
    }

    #[test]
    fn interrupt_entry_redirects_and_returns() {
        let src = "
            .org 0x1000
        _start:
            li d0, 0x2000       ; BIV
            mtcr biv, d0
            enable
            movi d1, 0
        spin:
            addi d1, d1, 1
            j spin

            ; vector for priority 3 at BIV + 96
            .org 0x2000 + 96
            movi d2, 77
            rfe
        ";
        let image = assemble(src).unwrap();
        let mut bus = TestBus::new();
        bus.mem.add_region(Addr(0x1000), 0x4000);
        bus.mem.add_region(Addr(0xD000_0000), 0x1_0000);
        image.load_into(&mut bus.mem).unwrap();
        let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
        core.arch_mut().fcx =
            crate::arch::init_csa_list(&mut bus.mem, Addr(0xD000_8000), 32).unwrap();
        let mut sink = EventSink::new();
        let mut irq_taken_at = None;
        for cyc in 0..200u64 {
            let irq = if (40..60).contains(&cyc) && irq_taken_at.is_none() {
                Some(3)
            } else {
                None
            };
            let out = core.step(Cycle(cyc), &mut bus, irq, &mut sink).unwrap();
            if out.irq_taken.is_some() {
                irq_taken_at = Some(cyc);
            }
        }
        assert!(irq_taken_at.is_some(), "interrupt never taken");
        assert_eq!(core.arch().d[2], 77, "handler did not run");
        assert_eq!(core.arch().icr_ccpn, 0, "RFE must restore priority");
        assert!(core.arch().d[1] > 40, "main loop did not resume");
    }

    #[test]
    fn wait_idles_until_interrupt() {
        let src = "
            .org 0x1000
        _start:
            li d0, 0x2000
            mtcr biv, d0
            enable
            wait
            movi d3, 1
            halt
            .org 0x2000 + 32    ; priority 1 vector
            movi d2, 9
            rfe
        ";
        let image = assemble(src).unwrap();
        let mut bus = TestBus::new();
        bus.mem.add_region(Addr(0x1000), 0x4000);
        bus.mem.add_region(Addr(0xD000_0000), 0x1_0000);
        image.load_into(&mut bus.mem).unwrap();
        let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
        core.arch_mut().fcx =
            crate::arch::init_csa_list(&mut bus.mem, Addr(0xD000_8000), 32).unwrap();
        let mut sink = EventSink::new();
        let mut was_idle = false;
        for cyc in 0..300u64 {
            if core.is_halted() {
                break;
            }
            was_idle |= core.is_idle();
            let irq = if cyc == 100 { Some(1) } else { None };
            core.step(Cycle(cyc), &mut bus, irq, &mut sink).unwrap();
        }
        assert!(was_idle, "core never idled");
        assert!(core.is_halted(), "core did not resume after interrupt");
        assert_eq!(core.arch().d[2], 9);
        assert_eq!(core.arch().d[3], 1);
    }

    #[test]
    fn decode_error_is_fatal_only_when_reached() {
        // Jump over garbage: fine.
        let ok = "
            .org 0x1000
            j past
            .half 0x1E         ; op 15 (unassigned 16-bit)
        past:
            halt
        ";
        let (_, _, _) = run_pipeline(ok, 10_000);
        // Fall into garbage: fault.
        let image = assemble(".org 0x1000\n nop\n .half 0x1E\n").unwrap();
        let mut bus = TestBus::new();
        bus.mem.add_region(Addr(0x1000), 0x100);
        image.load_into(&mut bus.mem).unwrap();
        let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
        let mut sink = EventSink::new();
        let mut fault = None;
        for cyc in 0..100 {
            match core.step(Cycle(cyc), &mut bus, None, &mut sink) {
                Ok(_) => {}
                Err(e) => {
                    fault = Some(e);
                    break;
                }
            }
        }
        assert!(
            matches!(fault, Some(SimError::DecodeInstr { .. })),
            "{fault:?}"
        );
    }

    #[test]
    fn slow_memory_stalls_show_up_as_data_stalls() {
        let src = "
            .org 0x1000
            la a2, 0xD0000100
            ld.w d0, [a2]
            ld.w d1, [a2+4]
            halt
        ";
        let image = assemble(src).unwrap();
        let mut bus = TestBus {
            read_latency: 10,
            ..TestBus::new()
        };
        bus.mem.add_region(Addr(0x1000), 0x1000);
        bus.mem.add_region(Addr(0xD000_0000), 0x1_0000);
        image.load_into(&mut bus.mem).unwrap();
        let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
        let mut sink = EventSink::new();
        let mut data_stalls = 0;
        for cyc in 0..500u64 {
            if core.is_halted() {
                break;
            }
            core.step(Cycle(cyc), &mut bus, None, &mut sink).unwrap();
        }
        for e in sink.records() {
            if matches!(
                e.event,
                PerfEvent::Stall {
                    reason: StallReason::Data
                }
            ) {
                data_stalls += 1;
            }
        }
        assert!(
            data_stalls >= 18,
            "two 10-cycle loads should stall ~20 cycles, saw {data_stalls}"
        );
        assert_eq!(
            core.stats().stalls(StallReason::Data),
            data_stalls,
            "counter must mirror the event stream"
        );
    }

    /// The fetch engine "fills during stalls too": once a mispredict's
    /// penalty window has elapsed but the refill fetch is still in flight,
    /// the empty-queue cycles must stay charged to `Branch` — the stall
    /// that caused the flush — not get re-labelled as `Fetch`.
    #[test]
    fn refill_after_mispredict_stays_charged_to_branch() {
        let src = "
            .org 0x1000
            movi d0, 0
            jz d0, skip     ; forward taken = mispredict, then slow refill
            nop
            nop
            nop
            nop
        skip:
            halt
        ";
        let image = assemble(src).unwrap();
        let mut bus = TestBus {
            fetch_latency: 4, // refill takes longer than mispredict_penalty
            ..TestBus::new()
        };
        bus.mem.add_region(Addr(0x1000), 0x1000);
        image.load_into(&mut bus.mem).unwrap();
        let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
        let mut sink = EventSink::new();
        for cyc in 0..200u64 {
            if core.is_halted() {
                break;
            }
            core.step(Cycle(cyc), &mut bus, None, &mut sink).unwrap();
        }
        assert!(core.is_halted());
        let events = sink.records();
        let flow_at = events
            .iter()
            .position(|e| matches!(e.event, PerfEvent::FlowChange { .. }))
            .expect("the taken jz emits a flow change");
        let after = &events[flow_at..];
        let fetch_after = after
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    PerfEvent::Stall {
                        reason: StallReason::Fetch
                    }
                )
            })
            .count();
        let branch_after = after
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    PerfEvent::Stall {
                        reason: StallReason::Branch
                    }
                )
            })
            .count() as u64;
        assert_eq!(
            fetch_after, 0,
            "post-flush fill cycles re-labelled as fetch: {after:?}"
        );
        assert!(
            branch_after > CoreConfig::default().mispredict_penalty,
            "in-flight refill cycles must stay Branch, saw {branch_after}"
        );
        // Cold-start fill (before anything retired) is genuine fetch time.
        let first_retire = events
            .iter()
            .position(|e| matches!(e.event, PerfEvent::InstrRetired { .. }))
            .unwrap();
        let cold_fetch = events[..first_retire]
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    PerfEvent::Stall {
                        reason: StallReason::Fetch
                    }
                )
            })
            .count();
        assert!(cold_fetch > 0, "cold start must still count as fetch");
        // Relabelling must not break the every-cycle accounting invariant.
        let s = core.stats();
        let last_cycle = events.last().unwrap().cycle.0 + 1;
        assert_eq!(s.retire_cycles + s.stall_total(), last_cycle);
    }

    /// A loop body of exactly `loop_buffer` entries (body + the LOOP
    /// instruction itself) must be captured and replayed; one more must
    /// overflow and fall back to refetching — both with correct results.
    #[test]
    fn loop_buffer_capacity_boundary() {
        let body = |n: usize| {
            let adds: String = "    addi d0, d0, 1\n".repeat(n);
            format!(
                "
            .org 0x1000
            movi d0, 0
            movi d3, 6
            mov.a a3, d3
        head:
{adds}
            loop a3, head
            halt
        "
            )
        };
        let n = CoreConfig::default().loop_buffer; // 16
                                                   // n-1 adds + LOOP = exactly n entries: fits.
        let fits = body(n - 1);
        let (core, _) = check_against_golden(&fits);
        assert_eq!(core.arch().d[0], 6 * (n as u32 - 1));
        assert!(
            core.stats().loop_buffer_replays >= 1,
            "an exactly-full body must be buffered: {:?}",
            core.stats()
        );
        // n adds + LOOP = n + 1 entries: overflows, never replays.
        let overflows = body(n);
        let (core, _) = check_against_golden(&overflows);
        assert_eq!(core.arch().d[0], 6 * n as u32);
        assert_eq!(
            core.stats().loop_buffer_replays,
            0,
            "an overflowing body must not be buffered: {:?}",
            core.stats()
        );
    }

    /// A store into the loop body must invalidate the loop buffer: the
    /// next back-edge refetches instead of replaying stale micro-ops.
    #[test]
    fn loop_buffer_invalidated_by_store_into_body() {
        let patched = encoding_of("movi d1, 99");
        let src = format!(
            "
            .org 0x1000
        _start:
            la a2, victim
            movi d3, 0
            movi d15, 4
            mov.a a5, d15
        L0:
        victim:
            movi d1, 11
            add d3, d3, d1
{patch}
            loop a5, L0
            halt
        ",
            patch = emit_patch_stores(&patched),
        );
        let (core, _) = check_against_golden(&src);
        // Pass 1 adds the original 11; passes 2..4 add the patched 99.
        assert_eq!(core.arch().d[3], 11 + 3 * 99);
        assert!(
            core.stats().loop_buffer_invalidations >= 1,
            "stale loop buffer must be dropped: {:?}",
            core.stats()
        );
    }

    /// A backward branch into the *middle* of a buffered loop, after the
    /// body has been patched, must re-execute the patched code on the next
    /// back-edge — not replay the stale buffered body.
    #[test]
    fn backward_branch_into_buffered_loop_sees_patched_body() {
        let patched = encoding_of("movi d1, 99");
        let src = format!(
            "
            .org 0x1000
        _start:
            la a2, victim
            movi d5, 0
            movi d6, 1
            movi d15, 3
            mov.a a5, d15
        head:
        victim:
            movi d1, 11
        mid:
            add d5, d5, d1
            loop a5, head       ; 3 passes, buffer goes live on pass 3
            jz d6, done         ; second arrival: taken
            movi d6, 0
{patch}
            movi d15, 2
            mov.a a5, d15
            movi d1, 7
            j mid               ; backward into the middle of the body
        done:
            halt
        ",
            patch = emit_patch_stores(&patched),
        );
        let (core, _) = check_against_golden(&src);
        // 3×11, then 7 via the mid-entry, then the patched 99.
        assert_eq!(core.arch().d[5], 33 + 7 + 99);
        assert!(
            core.stats().loop_buffer_replays >= 1,
            "loop buffer never engaged: {:?}",
            core.stats()
        );
        assert!(
            core.stats().loop_buffer_invalidations >= 1,
            "patched body must invalidate the buffer: {:?}",
            core.stats()
        );
    }

    /// The predecode cache engages on re-executed code (a backward `jnz`
    /// loop refetches its body every iteration) and its counters move.
    #[test]
    fn predecode_cache_hits_on_reexecuted_code() {
        let (core, _, _) = run_pipeline(
            "
            .org 0x1000
            movi d0, 10
        head:
            addi d0, d0, -1
            jnz d0, head
            halt
        ",
            10_000,
        );
        let s = core.stats().predecode;
        assert!(s.misses >= 1, "first decode must miss: {s:?}");
        assert!(s.hits >= 5, "re-entered loop body must hit: {s:?}");
        assert_eq!(s.invalidations, 0, "nothing was overwritten: {s:?}");
    }

    /// Store-to-own-block self-modification: the predecode fast path must
    /// follow the same prefetch-visibility rules as a fresh decode, and
    /// invalidate stale blocks. (`run_pipeline` checks fast-vs-slow cycle
    /// identity; `check_against_golden` pins the architectural result.)
    #[test]
    fn predecode_invalidates_on_self_modifying_store() {
        let patched = encoding_of("movi d1, 99");
        let src = format!(
            "
            .org 0x1000
        _start:
            la a2, victim
            movi d3, 0
            movi d15, 2
            mov.a a5, d15
        L0:
        victim:
            movi d1, 11
            add d3, d3, d1
{patch}
            loop a5, L0
            halt
        ",
            patch = emit_patch_stores(&patched),
        );
        let (core, _) = check_against_golden(&src);
        assert_eq!(core.arch().d[3], 11 + 99);
        assert!(
            core.stats().predecode.invalidations >= 1,
            "patched block must invalidate: {:?}",
            core.stats().predecode
        );
    }

    #[test]
    fn cost_model_reads_test_bus_latencies() {
        let mut bus = TestBus::new();
        bus.fetch_latency = 3;
        bus.read_latency = 5;
        bus.write_latency = 7;
        let mem = MemCosts::of_test_bus(&bus);
        assert_eq!(
            mem,
            MemCosts {
                fetch: 3,
                read: 5,
                write: 7
            }
        );
    }

    #[test]
    fn cost_model_exports_pipeline_redirect_penalty() {
        let model = CostModel::new(
            CoreConfig::default(),
            MemCosts::of_test_bus(&TestBus::new()),
        );
        assert_eq!(
            model.redirect_penalty(),
            CoreConfig::default().mispredict_penalty
        );
    }

    /// Statically decodes the instructions of an assembled image starting
    /// at `at`, in storage order.
    fn decode_all(src: &str, at: u32) -> Vec<Instr> {
        let image = assemble(src).expect("assembles");
        let bytes = image.bytes_at(Addr(at), image.size()).expect("code bytes");
        let mut out = Vec::new();
        let mut off = 0usize;
        while off + 2 <= bytes.len() {
            let (instr, len) = decode(&bytes[off..], Addr(at + off as u32)).expect("decodes");
            let halt = matches!(instr, Instr::Halt) && off + usize::from(len) == bytes.len();
            out.push(instr);
            off += usize::from(len);
            if halt {
                break;
            }
        }
        out
    }

    /// Every charge path of the issue stage maps to a term of
    /// `instr_cost`, so a run-once program must finish within the summed
    /// static bound plus one pipeline-entry overhead.
    #[test]
    fn cost_model_bounds_measured_cycles() {
        let src = "
            .org 0x1000
        _start:
            la sp, 0xD0004000
            la a2, 0xD0000100
            movi d0, 7
            st.w d0, [a2]
            ld.w d1, [a2]
            mul d2, d1, d1
            div d3, d2, d0
            call helper
            halt
        helper:
            add d4, d3, d0
            ret
        ";
        let (core, cycles, _) = run_pipeline(src, 10_000);
        let instrs = decode_all(src, 0x1000);
        assert_eq!(
            core.retired_total(),
            instrs.len() as u64,
            "run-once program premise broken"
        );
        let model = CostModel::new(
            CoreConfig::default(),
            MemCosts::of_test_bus(&TestBus::new()),
        );
        let bound = model.block_cost(instrs.iter()) + model.entry_overhead();
        assert!(
            cycles <= bound,
            "measured {cycles} cycles exceed static bound {bound}"
        );
        // The bound is pessimistic, but not uselessly so.
        assert!(bound < cycles * 20, "bound {bound} absurd for {cycles}");
    }

    /// CSA depth counters track call nesting and record the peak.
    #[test]
    fn csa_depth_peak_tracks_nesting() {
        let (core, _, _) = run_pipeline(
            "
            .org 0x1000
        _start:
            la sp, 0xD0004000
            call outer
            halt
        outer:
            call inner
            ret
        inner:
            nop
            ret
        ",
            10_000,
        );
        assert_eq!(core.arch().csa_depth, 0, "all frames restored");
        assert_eq!(core.arch().csa_depth_peak, 2, "outer + inner");
    }
}
