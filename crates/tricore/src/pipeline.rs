//! Cycle-level model of the TC-R tri-issue in-order pipeline.
//!
//! The model reproduces the timing-relevant structure of a TriCore 1.3-class
//! core:
//!
//! * **Fetch**: one 64-bit granule per request through the instruction-side
//!   bus (I-cache / PSPR), feeding a decode queue; mixed 16/32-bit
//!   instructions are carved out of the byte stream.
//! * **Issue**: up to three instructions per cycle, one per pipe
//!   (integer / load-store / loop), in program order, with no intra-bundle
//!   dependencies. This is what makes "up to 3 instructions within a clock
//!   cycle" (the paper's IPC example) possible.
//! * **Hazards**: a register scoreboard models load-use (1 cycle) and
//!   multiply (2 cycles) latency; divide occupies the integer pipe.
//! * **Branches**: static prediction — backward conditional branches are
//!   predicted taken, forward not-taken; mispredicts pay a flush penalty.
//! * **Loop buffer**: the `LOOP` instruction's body is captured on its first
//!   iterations and then replayed with zero fetch traffic and zero redirect
//!   bubble, like the TriCore loop pipeline.
//! * **Context operations**: `CALL`/`RET`/interrupt entry spill/refill the
//!   upper context through the data port and serialize the pipeline.
//!
//! Architectural semantics are delegated to [`crate::exec::execute`]; the
//! pipeline only adds *time*.
//!
//! This model deliberately re-fetches and re-decodes every cycle: fetch
//! bandwidth, decode-queue occupancy and redirect bubbles *are* the timing
//! being modelled. The predecoded-block fast path lives in the functional
//! ISS instead (see [`crate::decode_cache`] and [`crate::iss`]), where no
//! timing is observable and skipping fetch/decode is free.

use std::collections::VecDeque;

use audo_common::events::{FlowKind, StallReason};
use audo_common::{Addr, Cycle, EventSink, PerfEvent, SimError, SourceId};

use crate::arch::ArchState;
use crate::bus::{CoreBus, TimedMem, FETCH_BYTES};
use crate::encode::decode;
use crate::exec::{enter_interrupt, execute};
use crate::isa::{Instr, Pipe, RegRef};

/// Timing configuration of the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Result latency of `MUL`/`MAC` in cycles.
    pub mul_latency: u64,
    /// Cycles `DIV`/`REM` occupy the integer pipe.
    pub div_busy: u64,
    /// Extra flush cycles for a mispredicted branch.
    pub mispredict_penalty: u64,
    /// Serialization cycles for a context save/restore (CSA spill uses a
    /// wide local-memory port, so this is small despite the 16-word frame).
    pub ctx_cycles: u64,
    /// Maximum decoded instructions buffered ahead of issue.
    pub fetch_queue: usize,
    /// Maximum loop-body instructions the loop buffer can capture.
    pub loop_buffer: usize,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig {
            mul_latency: 2,
            div_busy: 8,
            mispredict_penalty: 2,
            ctx_cycles: 4,
            fetch_queue: 8,
            loop_buffer: 16,
        }
    }
}

#[derive(Debug, Clone)]
struct Decoded {
    pc: u32,
    instr: Instr,
    len: u8,
}

#[derive(Debug, Clone)]
enum QEntry {
    Ok(Decoded),
    /// Decode failed at this PC; fatal only if it reaches issue.
    Bad(u32, SimError),
}

#[derive(Debug, Clone)]
struct LoopBuf {
    loop_pc: u32,
    target: u32,
    body: Vec<Decoded>,
    ready: bool,
}

#[derive(Debug, Clone, Copy)]
struct PendingFetch {
    gen: u64,
    base: Addr,
    ready_at: Cycle,
    bytes: [u8; FETCH_BYTES as usize],
}

/// What one pipeline step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepOutput {
    /// Instructions retired this cycle (0..=3).
    pub retired: u8,
    /// An interrupt of this priority was accepted this cycle.
    pub irq_taken: Option<u8>,
    /// `HALT` has been executed (now or earlier).
    pub halted: bool,
}

/// The cycle-level TC-R core.
#[derive(Debug, Clone)]
pub struct Core {
    arch: ArchState,
    cfg: CoreConfig,
    source: SourceId,

    // Fetch state.
    fetch_gen: u64,
    pending_fetch: Option<PendingFetch>,
    byte_buf: Vec<u8>,
    byte_buf_pc: u32,
    decode_q: VecDeque<QEntry>,

    // Timing state.
    stall_until: Cycle,
    stall_reason: StallReason,
    ip_busy_until: Cycle,
    ready_d: [Cycle; 16],
    ready_a: [Cycle; 16],

    loop_buf: Option<LoopBuf>,
    recording: bool,

    halted: bool,
    idle: bool,
    retired_total: u64,
}

impl Core {
    /// Creates a core with the given timing config, reset PC and trace
    /// source id (used to attribute emitted events).
    #[must_use]
    pub fn new(cfg: CoreConfig, reset_pc: Addr, source: SourceId) -> Core {
        Core {
            arch: ArchState::new(reset_pc.0),
            cfg,
            source,
            fetch_gen: 0,
            pending_fetch: None,
            byte_buf: Vec::new(),
            byte_buf_pc: reset_pc.0,
            decode_q: VecDeque::new(),
            stall_until: Cycle::ZERO,
            stall_reason: StallReason::Fetch,
            ip_busy_until: Cycle::ZERO,
            ready_d: [Cycle::ZERO; 16],
            ready_a: [Cycle::ZERO; 16],
            loop_buf: None,
            recording: false,
            halted: false,
            idle: false,
            retired_total: 0,
        }
    }

    /// The architectural state.
    #[must_use]
    pub fn arch(&self) -> &ArchState {
        &self.arch
    }

    /// Mutable architectural state (for loaders and test setup). Changing
    /// the PC through this does **not** flush the pipeline; use
    /// [`Core::redirect`] for that.
    pub fn arch_mut(&mut self) -> &mut ArchState {
        &mut self.arch
    }

    /// Flushes the pipeline and restarts fetch/execution at `pc`.
    pub fn redirect(&mut self, pc: Addr) {
        self.arch.pc = pc.0;
        self.flush(pc.0);
    }

    /// `true` once `HALT` has retired.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// `true` while the core sits in the `WAIT` idle state.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.idle
    }

    /// Total instructions retired since reset.
    #[must_use]
    pub fn retired_total(&self) -> u64 {
        self.retired_total
    }

    fn flush(&mut self, new_pc: u32) {
        self.fetch_gen += 1;
        self.pending_fetch = None;
        self.byte_buf.clear();
        self.byte_buf_pc = new_pc;
        self.decode_q.clear();
        self.recording = false;
    }

    fn stream_end(&self) -> u32 {
        self.byte_buf_pc.wrapping_add(self.byte_buf.len() as u32)
    }

    fn step_fetch<B: CoreBus>(&mut self, now: Cycle, bus: &mut B) {
        // Harvest a completed fetch.
        if let Some(pf) = self.pending_fetch {
            if pf.gen != self.fetch_gen {
                self.pending_fetch = None;
            } else if pf.ready_at <= now {
                let end = self.stream_end();
                let lo = pf.base.0;
                if end >= lo && end < lo + FETCH_BYTES {
                    self.byte_buf
                        .extend_from_slice(&pf.bytes[(end - lo) as usize..]);
                }
                self.pending_fetch = None;
            }
        }
        // Carve instructions out of the byte stream.
        while self.decode_q.len() < self.cfg.fetch_queue && self.byte_buf.len() >= 2 {
            let pc = self.byte_buf_pc;
            let need32 = self.byte_buf[0] & 1 == 1;
            if need32 && self.byte_buf.len() < 4 {
                break;
            }
            match decode(&self.byte_buf, Addr(pc)) {
                Ok((instr, len)) => {
                    self.byte_buf.drain(..len as usize);
                    self.byte_buf_pc = pc.wrapping_add(u32::from(len));
                    self.decode_q
                        .push_back(QEntry::Ok(Decoded { pc, instr, len }));
                }
                Err(e) => {
                    self.decode_q.push_back(QEntry::Bad(pc, e));
                    self.byte_buf.clear();
                    break;
                }
            }
        }
        // Launch the next fetch.
        if self.pending_fetch.is_none()
            && self.decode_q.len() < self.cfg.fetch_queue
            && self.byte_buf.len() < 2 * FETCH_BYTES as usize
            && !self.halted
        {
            let addr = Addr(self.stream_end());
            match bus.fetch(now, addr) {
                Ok(slot) => {
                    self.pending_fetch = Some(PendingFetch {
                        gen: self.fetch_gen,
                        base: addr.align_down(FETCH_BYTES),
                        ready_at: slot.ready_at.max(now + 1),
                        bytes: slot.bytes,
                    });
                }
                Err(e) => {
                    // Fetching unmapped memory is fatal only if execution
                    // actually reaches it.
                    self.decode_q.push_back(QEntry::Bad(addr.0, e));
                }
            }
        }
    }

    fn reg_ready(&self, r: RegRef) -> Cycle {
        match r {
            RegRef::D(i) => self.ready_d[i as usize],
            RegRef::A(i) => self.ready_a[i as usize],
        }
    }

    fn set_reg_ready(&mut self, r: RegRef, t: Cycle) {
        match r {
            RegRef::D(i) => self.ready_d[i as usize] = t,
            RegRef::A(i) => self.ready_a[i as usize] = t,
        }
    }

    fn serve_loop_buffer(&mut self, loop_pc: u32, target: u32) -> bool {
        let Some(buf) = &self.loop_buf else {
            return false;
        };
        if !(buf.ready && buf.loop_pc == loop_pc && buf.target == target) {
            return false;
        }
        let body = buf.body.clone();
        let resume = loop_pc.wrapping_add(4); // LOOP is always a 32-bit op
        self.flush(resume);
        for d in body {
            self.decode_q.push_back(QEntry::Ok(d));
        }
        true
    }

    /// Advances the core by one cycle.
    ///
    /// `pending_irq` is the highest-priority pending interrupt from the
    /// router (if any); it is accepted when strictly above the current CPU
    /// priority and `ICR.IE` is set.
    ///
    /// # Errors
    ///
    /// Returns fatal faults: decode errors reached by execution, unmapped or
    /// misaligned data accesses, CSA list exhaustion.
    pub fn step<B: CoreBus>(
        &mut self,
        now: Cycle,
        bus: &mut B,
        pending_irq: Option<u8>,
        sink: &mut EventSink,
    ) -> Result<StepOutput, SimError> {
        let mut out = StepOutput {
            halted: self.halted,
            ..StepOutput::default()
        };
        if self.halted {
            return Ok(out);
        }

        // ----- Interrupt acceptance (at instruction boundaries) -----
        if let Some(prio) = pending_irq {
            let accept = prio > self.arch.icr_ccpn
                && self.arch.icr_ie
                && (self.idle || now >= self.stall_until);
            if accept {
                let from = Addr(self.arch.pc);
                let mut tm = TimedMem::new(bus, now);
                let flow = enter_interrupt(&mut self.arch, &mut tm, prio)?;
                let done = tm.writes_accepted.max(now + self.cfg.ctx_cycles);
                self.flush(flow.target.0);
                self.idle = false;
                self.stall_until = done;
                self.stall_reason = StallReason::Context;
                sink.emit(now, self.source, PerfEvent::IrqTaken { prio });
                sink.emit(
                    now,
                    self.source,
                    PerfEvent::FlowChange {
                        kind: FlowKind::Exception,
                        from,
                        to: flow.target,
                    },
                );
                out.irq_taken = Some(prio);
            }
        }

        if self.idle {
            sink.emit(
                now,
                self.source,
                PerfEvent::Stall {
                    reason: StallReason::Idle,
                },
            );
            return Ok(out);
        }

        // ----- Fetch engine (always runs; fills during stalls too) -----
        self.step_fetch(now, bus);

        if now < self.stall_until {
            sink.emit(
                now,
                self.source,
                PerfEvent::Stall {
                    reason: self.stall_reason,
                },
            );
            return Ok(out);
        }

        // ----- Issue up to one instruction per pipe, in order -----
        let mut ip_used = false;
        let mut ls_used = false;
        let mut lp_used = false;
        let mut bundle_writes: Vec<RegRef> = Vec::new();
        let mut issued = 0u8;
        let mut first_block: Option<StallReason> = None;

        'issue: while issued < 3 {
            let Some(front) = self.decode_q.front() else {
                if issued == 0 {
                    first_block = Some(StallReason::Fetch);
                }
                break;
            };
            let dec = match front {
                QEntry::Ok(d) => d.clone(),
                QEntry::Bad(pc, e) => {
                    if issued == 0 {
                        return Err(match e {
                            SimError::UnmappedAddress { .. } => {
                                SimError::UnmappedAddress { addr: Addr(*pc) }
                            }
                            other => other.clone(),
                        });
                    }
                    break;
                }
            };
            let instr = dec.instr;

            // Serializing instructions issue alone.
            if instr.is_serializing() && issued > 0 {
                break;
            }
            // Pipe availability.
            let pipe = instr.pipe();
            let pipe_free = match pipe {
                Pipe::Ip => !ip_used,
                Pipe::Ls => !ls_used,
                Pipe::Lp => !lp_used,
            };
            if !pipe_free {
                break;
            }
            // Integer-pipe unit busy (divide in flight).
            if pipe == Pipe::Ip && now < self.ip_busy_until {
                if issued == 0 {
                    first_block = Some(StallReason::Execute);
                }
                break;
            }
            // Source operands ready?
            for r in instr.reads().iter() {
                if self.reg_ready(r) > now {
                    if issued == 0 {
                        first_block = Some(StallReason::Data);
                    }
                    break 'issue;
                }
            }
            // No intra-bundle dependencies.
            for r in instr.reads().iter().chain(instr.writes().iter()) {
                if bundle_writes.contains(&r) {
                    break 'issue;
                }
            }

            // ----- Execute -----
            self.decode_q.pop_front();
            let pc = dec.pc;
            let mut tm = TimedMem::new(bus, now);
            let result = execute(&mut self.arch, &mut tm, &instr, pc, dec.len)?;
            let (reads_ready, writes_accepted) = (tm.reads_ready, tm.writes_accepted);
            let did_read = tm.read_count > 0;
            let did_write = tm.write_count > 0;
            issued += 1;
            self.retired_total += 1;
            match pipe {
                Pipe::Ip => ip_used = true,
                Pipe::Ls => ls_used = true,
                Pipe::Lp => lp_used = true,
            }

            // Loop-body capture.
            if self.recording {
                let in_body = self
                    .loop_buf
                    .as_ref()
                    .is_some_and(|b| pc >= b.target && pc <= b.loop_pc);
                let is_other_branch =
                    instr.is_control_flow() && !matches!(instr, Instr::Loop { .. });
                if !in_body || is_other_branch {
                    self.recording = false;
                    self.loop_buf = None;
                } else if let Some(buf) = &mut self.loop_buf {
                    if buf.body.len() >= self.cfg.loop_buffer {
                        self.recording = false;
                        self.loop_buf = None;
                    } else {
                        buf.body.push(dec.clone());
                        if pc == buf.loop_pc {
                            buf.ready = true;
                            self.recording = false;
                        }
                    }
                }
            }

            // ----- Result latencies -----
            let mut dest_ready = now;
            if matches!(instr, Instr::Mul { .. } | Instr::Mac { .. }) {
                dest_ready = now + self.cfg.mul_latency;
            }
            if matches!(instr, Instr::Div { .. } | Instr::Rem { .. }) {
                self.ip_busy_until = now + self.cfg.div_busy;
                dest_ready = now + self.cfg.div_busy;
            }
            if instr.is_serializing() {
                let done = reads_ready.max(writes_accepted).max(
                    now + if did_write || did_read {
                        self.cfg.ctx_cycles
                    } else {
                        1
                    },
                );
                self.stall_until = done;
                self.stall_reason = StallReason::Context;
            } else {
                if did_read {
                    if reads_ready > now {
                        self.stall_until = reads_ready;
                        self.stall_reason = StallReason::Data;
                        dest_ready = reads_ready + 1;
                    } else {
                        dest_ready = dest_ready.max(now + 1); // load-use = 1
                    }
                }
                if did_write && writes_accepted > now {
                    self.stall_until = self.stall_until.max(writes_accepted);
                    self.stall_reason = StallReason::StoreBuffer;
                }
            }
            for r in instr.writes().iter() {
                self.set_reg_ready(r, dest_ready);
                bundle_writes.push(r);
            }

            // ----- Control flow and prediction -----
            if let Some(flow) = result.flow {
                sink.emit(
                    now,
                    self.source,
                    PerfEvent::FlowChange {
                        kind: flow.kind,
                        from: Addr(pc),
                        to: flow.target,
                    },
                );
                let mut served_from_loop_buffer = false;
                if let Instr::Loop { .. } = instr {
                    if self.serve_loop_buffer(pc, flow.target.0) {
                        served_from_loop_buffer = true;
                    } else if !self
                        .loop_buf
                        .as_ref()
                        .is_some_and(|b| b.ready && b.loop_pc == pc && b.target == flow.target.0)
                    {
                        // Start (re)recording this loop's body.
                        self.loop_buf = Some(LoopBuf {
                            loop_pc: pc,
                            target: flow.target.0,
                            body: Vec::new(),
                            ready: false,
                        });
                        self.recording = true;
                    }
                }
                if !served_from_loop_buffer {
                    let recording = self.recording;
                    let saved = self.loop_buf.take();
                    self.flush(flow.target.0);
                    self.loop_buf = saved;
                    self.recording = recording;
                    // Forward taken conditional = mispredict (static scheme
                    // predicts backward-taken only).
                    let mispredicted = result.branch_taken == Some(true)
                        && flow.target.0 > pc
                        && !matches!(instr, Instr::Loop { .. });
                    if mispredicted {
                        self.stall_until = self.stall_until.max(now + self.cfg.mispredict_penalty);
                        self.stall_reason = StallReason::Branch;
                    }
                }
                // A redirect ends the bundle.
                self.finish_issue(now, issued, first_block, sink, &mut out, result)?;
                return Ok(out);
            }
            if result.branch_taken == Some(false) {
                sink.emit(now, self.source, PerfEvent::BranchNotTaken { at: Addr(pc) });
                // Backward not-taken (loop exit or backward cond) was
                // predicted taken: mispredict penalty, no flush needed.
                let target_backward = match instr {
                    Instr::JCond { off, .. }
                    | Instr::Jz { off, .. }
                    | Instr::Jnz { off, .. }
                    | Instr::Loop { off, .. } => off < 0,
                    _ => false,
                };
                if target_backward {
                    self.stall_until = self.stall_until.max(now + self.cfg.mispredict_penalty);
                    self.stall_reason = StallReason::Branch;
                    self.finish_issue(now, issued, first_block, sink, &mut out, result)?;
                    return Ok(out);
                }
            }

            if result.debug.is_some() || result.wait || result.halt {
                self.finish_issue(now, issued, first_block, sink, &mut out, result)?;
                return Ok(out);
            }
            if instr.is_serializing() {
                break;
            }
            // Data stall also ends the bundle.
            if now < self.stall_until {
                break;
            }
        }

        let result = crate::exec::Outcome::default();
        self.finish_issue(now, issued, first_block, sink, &mut out, result)?;
        Ok(out)
    }

    fn finish_issue(
        &mut self,
        now: Cycle,
        issued: u8,
        first_block: Option<StallReason>,
        sink: &mut EventSink,
        out: &mut StepOutput,
        last: crate::exec::Outcome,
    ) -> Result<(), SimError> {
        if let Some(code) = last.debug {
            sink.emit(now, self.source, PerfEvent::DebugMarker { code });
        }
        if last.wait {
            self.idle = true;
        }
        if last.halt {
            self.halted = true;
            out.halted = true;
        }
        out.retired = issued;
        if issued > 0 {
            sink.emit(now, self.source, PerfEvent::InstrRetired { count: issued });
        } else if !self.halted && !self.idle {
            let reason = first_block.unwrap_or(StallReason::Data);
            sink.emit(now, self.source, PerfEvent::Stall { reason });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::bus::TestBus;
    use crate::iss::Iss;

    /// Runs a program on the pipeline with a scratchpad-like bus; returns
    /// (core, cycles used, events).
    fn run_pipeline(src: &str, max_cycles: u64) -> (Core, u64, Vec<audo_common::EventRecord>) {
        let image = assemble(src).expect("assembles");
        let mut bus = TestBus::new();
        bus.mem.add_region(Addr(0x0000_1000), 0x4000);
        bus.mem.add_region(Addr(0xD000_0000), 0x1_0000);
        image.load_into(&mut bus.mem).unwrap();
        let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
        core.arch_mut().fcx =
            crate::arch::init_csa_list(&mut bus.mem, Addr(0xD000_8000), 32).unwrap();
        let mut sink = EventSink::new();
        let mut events = Vec::new();
        let mut cyc = 0u64;
        while !core.is_halted() && cyc < max_cycles {
            core.step(Cycle(cyc), &mut bus, None, &mut sink)
                .expect("no fault");
            events.append(&mut sink.drain());
            cyc += 1;
        }
        assert!(
            core.is_halted(),
            "program did not halt within {max_cycles} cycles"
        );
        (core, cyc, events)
    }

    fn golden(src: &str) -> crate::iss::IssRun {
        let image = assemble(src).expect("assembles");
        let mut iss = Iss::new();
        iss.map_region(Addr(0x0000_1000), 0x4000);
        iss.map_region(Addr(0xD000_0000), 0x1_0000);
        iss.init_csa(Addr(0xD000_8000), 32).unwrap();
        iss.load(&image).unwrap();
        iss.run(1_000_000).expect("golden run")
    }

    fn check_against_golden(src: &str) -> (Core, u64) {
        let (core, cycles, _) = run_pipeline(src, 200_000);
        let g = golden(src);
        assert_eq!(core.arch().d, g.state.d, "data registers diverge");
        assert_eq!(core.arch().a, g.state.a, "address registers diverge");
        assert_eq!(core.retired_total(), g.instr_count, "retire count diverges");
        (core, cycles)
    }

    #[test]
    fn straight_line_code_matches_golden() {
        check_against_golden(
            "
            .org 0x1000
            movi d0, 3
            movi d1, 4
            add d2, d0, d1
            mul d3, d2, d2
            sub d4, d3, d0
            halt
        ",
        );
    }

    #[test]
    fn dual_issue_raises_ipc_above_one() {
        // Independent IP + LS pairs should co-issue.
        let src = "
            .org 0x1000
            la a2, 0xD0000100
            movi d0, 0
            movi d1, 1
            movi d2, 2
            movi d3, 3
            add d0, d1, d2
            ld.w d4, [a2]
            add d1, d2, d3
            ld.w d5, [a2+4]
            add d2, d3, d0
            ld.w d6, [a2+8]
            add d3, d0, d1
            ld.w d7, [a2+12]
            halt
        ";
        let (core, cycles) = check_against_golden(src);
        let ipc = core.retired_total() as f64 / cycles as f64;
        assert!(
            ipc > 1.0,
            "expected dual issue, got IPC {ipc:.2} ({cycles} cycles)"
        );
    }

    #[test]
    fn load_use_hazard_costs_a_cycle() {
        let dependent = "
            .org 0x1000
            la a2, 0xD0000100
            ld.w d0, [a2]
            add d1, d0, d0      ; immediately uses the load
            halt
        ";
        let independent = "
            .org 0x1000
            la a2, 0xD0000100
            ld.w d0, [a2]
            add d1, d2, d3      ; no dependence
            halt
        ";
        let (_, dep_cycles, _) = run_pipeline(dependent, 10_000);
        let (_, ind_cycles, _) = run_pipeline(independent, 10_000);
        assert!(
            dep_cycles > ind_cycles,
            "load-use must cost extra ({dep_cycles} vs {ind_cycles})"
        );
    }

    #[test]
    fn loop_buffer_reaches_steady_state() {
        // A tight MAC loop: after priming, LOOP runs with no fetch and no
        // redirect bubble, so the 2-instruction body should sustain ~2 IPC.
        let src = "
            .org 0x1000
            movi d0, 0
            movi d1, 3
            movi d2, 5
            movi d3, 100
            mov.a a3, d3
        head:
            mac d0, d1, d2
            loop a3, head
            halt
        ";
        let (core, cycles) = check_against_golden(src);
        assert_eq!(core.arch().d[0], 1500);
        // ~100 iterations × 2 instructions; with loop buffer this should be
        // well under 3 cycles per iteration.
        assert!(cycles < 280, "loop not accelerated: {cycles} cycles");
    }

    #[test]
    fn division_blocks_the_integer_pipe() {
        let src = "
            .org 0x1000
            movi d0, 1000
            movi d1, 7
            div d2, d0, d1
            add d3, d2, d1      ; depends on divide result
            halt
        ";
        let (core, cycles) = check_against_golden(src);
        assert_eq!(core.arch().d[2], 142);
        assert!(cycles >= 8, "divide latency not modeled: {cycles}");
    }

    #[test]
    fn call_and_ret_serialize_and_match_golden() {
        check_against_golden(
            "
            .org 0x1000
        _start:
            la sp, 0xD0004000
            movi d4, 5
            call square
            mov d5, d4
            call square
            halt
        square:
            mul d4, d4, d4
            ret
        ",
        );
    }

    #[test]
    fn forward_taken_branch_pays_mispredict() {
        let taken_fwd = "
            .org 0x1000
            movi d0, 0
            jz d0, skip     ; forward taken = mispredict
            nop
            nop
        skip:
            halt
        ";
        let not_taken_fwd = "
            .org 0x1000
            movi d0, 1
            jz d0, skip     ; forward not-taken = predicted correctly
            nop
            nop
        skip:
            halt
        ";
        let (_, t, _) = run_pipeline(taken_fwd, 10_000);
        let (_, n, _) = run_pipeline(not_taken_fwd, 10_000);
        // The not-taken path executes two extra NOPs yet should not be much
        // slower; the taken path pays flush + refetch.
        assert!(t + 1 >= n, "taken {t}, not-taken {n}");
    }

    #[test]
    fn events_report_retires_and_stalls_for_every_cycle() {
        let (_, cycles, events) = run_pipeline(
            "
            .org 0x1000
            movi d0, 10
        head:
            addi d0, d0, -1
            jnz d0, head
            halt
        ",
            10_000,
        );
        let retired: u64 = events
            .iter()
            .filter_map(|e| match e.event {
                PerfEvent::InstrRetired { count } => Some(u64::from(count)),
                _ => None,
            })
            .sum();
        let stall_cycles = events
            .iter()
            .filter(|e| matches!(e.event, PerfEvent::Stall { .. }))
            .count() as u64;
        let retire_cycles = events
            .iter()
            .filter(|e| matches!(e.event, PerfEvent::InstrRetired { .. }))
            .count() as u64;
        assert_eq!(retired, 22, "movi + 10×(addi+jnz) + halt");
        // Every non-final cycle is either a retire cycle or a stall cycle.
        assert_eq!(retire_cycles + stall_cycles, cycles);
    }

    #[test]
    fn flow_change_events_track_taken_branches() {
        let (_, _, events) = run_pipeline(
            "
            .org 0x1000
            movi d0, 2
        head:
            addi d0, d0, -1
            jnz d0, head
            halt
        ",
            10_000,
        );
        let flows: Vec<_> = events
            .iter()
            .filter_map(|e| match e.event {
                PerfEvent::FlowChange { kind, from, to } => Some((kind, from, to)),
                _ => None,
            })
            .collect();
        assert_eq!(flows.len(), 1, "one taken jnz expected: {flows:?}");
        assert_eq!(flows[0].0, FlowKind::BranchTaken);
        let not_taken = events
            .iter()
            .filter(|e| matches!(e.event, PerfEvent::BranchNotTaken { .. }))
            .count();
        assert_eq!(not_taken, 1);
    }

    #[test]
    fn interrupt_entry_redirects_and_returns() {
        let src = "
            .org 0x1000
        _start:
            li d0, 0x2000       ; BIV
            mtcr biv, d0
            enable
            movi d1, 0
        spin:
            addi d1, d1, 1
            j spin

            ; vector for priority 3 at BIV + 96
            .org 0x2000 + 96
            movi d2, 77
            rfe
        ";
        let image = assemble(src).unwrap();
        let mut bus = TestBus::new();
        bus.mem.add_region(Addr(0x1000), 0x4000);
        bus.mem.add_region(Addr(0xD000_0000), 0x1_0000);
        image.load_into(&mut bus.mem).unwrap();
        let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
        core.arch_mut().fcx =
            crate::arch::init_csa_list(&mut bus.mem, Addr(0xD000_8000), 32).unwrap();
        let mut sink = EventSink::new();
        let mut irq_taken_at = None;
        for cyc in 0..200u64 {
            let irq = if (40..60).contains(&cyc) && irq_taken_at.is_none() {
                Some(3)
            } else {
                None
            };
            let out = core.step(Cycle(cyc), &mut bus, irq, &mut sink).unwrap();
            if out.irq_taken.is_some() {
                irq_taken_at = Some(cyc);
            }
        }
        assert!(irq_taken_at.is_some(), "interrupt never taken");
        assert_eq!(core.arch().d[2], 77, "handler did not run");
        assert_eq!(core.arch().icr_ccpn, 0, "RFE must restore priority");
        assert!(core.arch().d[1] > 40, "main loop did not resume");
    }

    #[test]
    fn wait_idles_until_interrupt() {
        let src = "
            .org 0x1000
        _start:
            li d0, 0x2000
            mtcr biv, d0
            enable
            wait
            movi d3, 1
            halt
            .org 0x2000 + 32    ; priority 1 vector
            movi d2, 9
            rfe
        ";
        let image = assemble(src).unwrap();
        let mut bus = TestBus::new();
        bus.mem.add_region(Addr(0x1000), 0x4000);
        bus.mem.add_region(Addr(0xD000_0000), 0x1_0000);
        image.load_into(&mut bus.mem).unwrap();
        let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
        core.arch_mut().fcx =
            crate::arch::init_csa_list(&mut bus.mem, Addr(0xD000_8000), 32).unwrap();
        let mut sink = EventSink::new();
        let mut was_idle = false;
        for cyc in 0..300u64 {
            if core.is_halted() {
                break;
            }
            was_idle |= core.is_idle();
            let irq = if cyc == 100 { Some(1) } else { None };
            core.step(Cycle(cyc), &mut bus, irq, &mut sink).unwrap();
        }
        assert!(was_idle, "core never idled");
        assert!(core.is_halted(), "core did not resume after interrupt");
        assert_eq!(core.arch().d[2], 9);
        assert_eq!(core.arch().d[3], 1);
    }

    #[test]
    fn decode_error_is_fatal_only_when_reached() {
        // Jump over garbage: fine.
        let ok = "
            .org 0x1000
            j past
            .half 0x1E         ; op 15 (unassigned 16-bit)
        past:
            halt
        ";
        let (_, _, _) = run_pipeline(ok, 10_000);
        // Fall into garbage: fault.
        let image = assemble(".org 0x1000\n nop\n .half 0x1E\n").unwrap();
        let mut bus = TestBus::new();
        bus.mem.add_region(Addr(0x1000), 0x100);
        image.load_into(&mut bus.mem).unwrap();
        let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
        let mut sink = EventSink::new();
        let mut fault = None;
        for cyc in 0..100 {
            match core.step(Cycle(cyc), &mut bus, None, &mut sink) {
                Ok(_) => {}
                Err(e) => {
                    fault = Some(e);
                    break;
                }
            }
        }
        assert!(
            matches!(fault, Some(SimError::DecodeInstr { .. })),
            "{fault:?}"
        );
    }

    #[test]
    fn slow_memory_stalls_show_up_as_data_stalls() {
        let src = "
            .org 0x1000
            la a2, 0xD0000100
            ld.w d0, [a2]
            ld.w d1, [a2+4]
            halt
        ";
        let image = assemble(src).unwrap();
        let mut bus = TestBus {
            read_latency: 10,
            ..TestBus::new()
        };
        bus.mem.add_region(Addr(0x1000), 0x1000);
        bus.mem.add_region(Addr(0xD000_0000), 0x1_0000);
        image.load_into(&mut bus.mem).unwrap();
        let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
        let mut sink = EventSink::new();
        let mut data_stalls = 0;
        for cyc in 0..500u64 {
            if core.is_halted() {
                break;
            }
            core.step(Cycle(cyc), &mut bus, None, &mut sink).unwrap();
        }
        for e in sink.records() {
            if matches!(
                e.event,
                PerfEvent::Stall {
                    reason: StallReason::Data
                }
            ) {
                data_stalls += 1;
            }
        }
        assert!(
            data_stalls >= 18,
            "two 10-cycle loads should stall ~20 cycles, saw {data_stalls}"
        );
    }
}
