//! Simple functional memory for the golden-model ISS and for unit tests.
//!
//! Besides the raw bytes, every region carries a monotonically increasing
//! *generation* counter that is bumped on each write into the region. The
//! ISS decode cache ([`crate::decode_cache`]) snapshots the generation of
//! the code region when it predecodes a basic block and re-validates it on
//! every block entry, so any write to code memory — a self-modifying
//! store, or a calibration-overlay swap loaded over flash — lazily
//! invalidates the stale predecoded blocks without a write barrier in the
//! store path.

use std::cell::Cell;

use audo_common::{Addr, SimError};

use crate::arch::ArchMem;

/// One mapped region: backing bytes plus a write-generation counter.
#[derive(Debug, Clone, Default)]
struct Region {
    bytes: Vec<u8>,
    generation: u64,
}

/// Flat, region-based functional memory with no timing.
///
/// Regions are added explicitly; accesses outside any region fail with
/// [`SimError::UnmappedAddress`], which mirrors how the real SoC buses
/// report address errors.
///
/// # Examples
///
/// ```
/// use audo_common::Addr;
/// use audo_tricore::arch::ArchMem;
/// use audo_tricore::mem::FlatMem;
///
/// let mut m = FlatMem::new();
/// m.add_region(Addr(0x1000), 256);
/// m.write(Addr(0x1000), 4, 0xDEAD_BEEF)?;
/// assert_eq!(m.read(Addr(0x1000), 4)?, 0xDEAD_BEEF);
/// assert_eq!(m.read(Addr(0x1002), 2)?, 0xDEAD);
/// # Ok::<(), audo_common::SimError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlatMem {
    /// Mapped regions, sorted by base address. Region count is tiny (a
    /// handful of memories per SoC), so a sorted vector beats a tree.
    regions: Vec<(u32, Region)>,
    /// Index of the most recently hit region. Accesses cluster heavily
    /// (code streams, stack traffic), so this makes the common lookup a
    /// single bounds check. Purely an index cache — never affects results.
    last: Cell<usize>,
}

impl FlatMem {
    /// Creates an empty memory with no mapped regions.
    #[must_use]
    pub fn new() -> FlatMem {
        FlatMem::default()
    }

    /// Maps a zero-initialised region of `len` bytes at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the region overlaps an existing one.
    pub fn add_region(&mut self, base: Addr, len: u32) {
        for (b, region) in &self.regions {
            let existing_end = u64::from(*b) + region.bytes.len() as u64;
            let new_end = u64::from(base.0) + u64::from(len);
            assert!(
                new_end <= u64::from(*b) || u64::from(base.0) >= existing_end,
                "region {base}+{len:#x} overlaps existing region at {:#x}",
                b
            );
        }
        let at = self.regions.partition_point(|&(b, _)| b < base.0);
        self.regions.insert(
            at,
            (
                base.0,
                Region {
                    bytes: vec![0; len as usize],
                    generation: 0,
                },
            ),
        );
        self.last.set(0);
    }

    /// Copies `bytes` into memory at `base` (which must be mapped).
    ///
    /// # Panics
    ///
    /// Panics if the target range is not fully mapped.
    pub fn load(&mut self, base: Addr, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_byte(base.offset(i as u32), b)
                .unwrap_or_else(|_| panic!("load outside mapped memory at {base}+{i}"));
        }
    }

    /// Finds the region containing `addr`; returns `(region index, byte
    /// offset within it)`.
    fn locate(&self, addr: Addr) -> Option<(usize, usize)> {
        let li = self.last.get();
        if let Some((base, region)) = self.regions.get(li) {
            let off = addr.0.wrapping_sub(*base) as usize;
            if off < region.bytes.len() {
                return Some((li, off));
            }
        }
        let idx = match self.regions.binary_search_by_key(&addr.0, |&(b, _)| b) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let (base, region) = &self.regions[idx];
        let off = (addr.0 - base) as usize;
        if off < region.bytes.len() {
            self.last.set(idx);
            Some((idx, off))
        } else {
            None
        }
    }

    /// Returns `(base, length)` of the mapped region containing `addr`,
    /// or `None` if the address is unmapped.
    #[must_use]
    pub fn region_span(&self, addr: Addr) -> Option<(Addr, u32)> {
        let (idx, _) = self.locate(addr)?;
        let (base, region) = &self.regions[idx];
        Some((Addr(*base), region.bytes.len() as u32))
    }

    /// Returns the write-generation counter of the region containing
    /// `addr`, or `None` if the address is unmapped.
    ///
    /// The counter starts at zero when the region is mapped and is bumped
    /// by every byte written into the region (stores, [`FlatMem::load`],
    /// image/overlay loads). Consumers that cache derived views of memory
    /// — the ISS decode cache foremost — record the generation at fill
    /// time and treat any later value as "contents may have changed".
    #[must_use]
    pub fn generation(&self, addr: Addr) -> Option<u64> {
        let (idx, _) = self.locate(addr)?;
        Some(self.regions[idx].1.generation)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnmappedAddress`] outside mapped regions.
    pub fn read_byte(&self, addr: Addr) -> Result<u8, SimError> {
        let (idx, off) = self
            .locate(addr)
            .ok_or(SimError::UnmappedAddress { addr })?;
        Ok(self.regions[idx].1.bytes[off])
    }

    /// Writes one byte, bumping the owning region's generation counter.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnmappedAddress`] outside mapped regions.
    pub fn write_byte(&mut self, addr: Addr, value: u8) -> Result<(), SimError> {
        let (idx, off) = self
            .locate(addr)
            .ok_or(SimError::UnmappedAddress { addr })?;
        let region = &mut self.regions[idx].1;
        region.bytes[off] = value;
        region.generation += 1;
        Ok(())
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnmappedAddress`] if any byte is unmapped.
    pub fn read_bytes(&self, addr: Addr, len: usize) -> Result<Vec<u8>, SimError> {
        if let Some((idx, off)) = self.locate(addr) {
            let bytes = &self.regions[idx].1.bytes;
            if let Some(slice) = bytes.get(off..off + len) {
                return Ok(slice.to_vec());
            }
        }
        (0..len)
            .map(|i| self.read_byte(addr.offset(i as u32)))
            .collect()
    }

    /// Reads `buf.len()` bytes starting at `addr` into `buf` without
    /// allocating (instruction-fetch hot path).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnmappedAddress`] if any byte is unmapped.
    pub fn read_into(&self, addr: Addr, buf: &mut [u8]) -> Result<(), SimError> {
        if let Some((idx, off)) = self.locate(addr) {
            let bytes = &self.regions[idx].1.bytes;
            if let Some(slice) = bytes.get(off..off + buf.len()) {
                buf.copy_from_slice(slice);
                return Ok(());
            }
        }
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_byte(addr.offset(i as u32))?;
        }
        Ok(())
    }

    /// Returns `(region base, write generation)` for the region containing
    /// `addr` in a single lookup (predecode stamp hot path).
    #[must_use]
    pub fn region_stamp(&self, addr: Addr) -> Option<(u32, u64)> {
        let (idx, _) = self.locate(addr)?;
        let (base, region) = &self.regions[idx];
        Some((*base, region.generation))
    }
}

impl ArchMem for FlatMem {
    fn read(&mut self, addr: Addr, size: u8) -> Result<u32, SimError> {
        if !addr.is_aligned(u32::from(size)) {
            return Err(SimError::MisalignedAccess { addr, size });
        }
        // Single region lookup; an aligned access never straddles regions.
        if let Some((idx, off)) = self.locate(addr) {
            let bytes = &self.regions[idx].1.bytes;
            if let Some(slice) = bytes.get(off..off + size as usize) {
                let mut v: u32 = 0;
                for (i, &b) in slice.iter().enumerate() {
                    v |= u32::from(b) << (8 * i);
                }
                return Ok(v);
            }
        }
        let mut v: u32 = 0;
        for i in 0..size {
            v |= u32::from(self.read_byte(addr.offset(u32::from(i)))?) << (8 * i);
        }
        Ok(v)
    }

    fn write(&mut self, addr: Addr, size: u8, value: u32) -> Result<(), SimError> {
        if !addr.is_aligned(u32::from(size)) {
            return Err(SimError::MisalignedAccess { addr, size });
        }
        if let Some((idx, off)) = self.locate(addr) {
            let region = &mut self.regions[idx].1;
            if let Some(slice) = region.bytes.get_mut(off..off + size as usize) {
                for (i, b) in slice.iter_mut().enumerate() {
                    *b = (value >> (8 * i)) as u8;
                }
                // Same count as the byte-at-a-time path bumped, so cached
                // stamps recorded under either path stay comparable.
                region.generation += u64::from(size);
                return Ok(());
            }
        }
        for i in 0..size {
            self.write_byte(addr.offset(u32::from(i)), (value >> (8 * i)) as u8)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_errors() {
        let mut m = FlatMem::new();
        assert!(matches!(
            m.read(Addr(0x40), 4),
            Err(SimError::UnmappedAddress { .. })
        ));
        m.add_region(Addr(0x100), 16);
        assert!(m.read(Addr(0x100), 4).is_ok());
        assert!(m.read(Addr(0x110), 4).is_err());
        // Last byte of the region is accessible, word crossing the end is not.
        assert!(m.read_byte(Addr(0x10F)).is_ok());
        assert!(m.read(Addr(0x10C), 4).is_ok());
    }

    #[test]
    fn misaligned_access_errors() {
        let mut m = FlatMem::new();
        m.add_region(Addr(0), 64);
        assert!(matches!(
            m.read(Addr(2), 4),
            Err(SimError::MisalignedAccess { .. })
        ));
        assert!(matches!(
            m.write(Addr(1), 2, 0),
            Err(SimError::MisalignedAccess { .. })
        ));
        assert!(m.read(Addr(1), 1).is_ok());
    }

    #[test]
    fn little_endian_layout() {
        let mut m = FlatMem::new();
        m.add_region(Addr(0), 8);
        m.write(Addr(0), 4, 0x0403_0201).unwrap();
        assert_eq!(m.read_byte(Addr(0)).unwrap(), 0x01);
        assert_eq!(m.read_byte(Addr(3)).unwrap(), 0x04);
        assert_eq!(m.read(Addr(2), 2).unwrap(), 0x0403);
    }

    #[test]
    fn load_and_read_bytes() {
        let mut m = FlatMem::new();
        m.add_region(Addr(0x200), 16);
        m.load(Addr(0x200), &[1, 2, 3, 4]);
        assert_eq!(m.read_bytes(Addr(0x200), 4).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_regions_panic() {
        let mut m = FlatMem::new();
        m.add_region(Addr(0x100), 32);
        m.add_region(Addr(0x110), 32);
    }

    #[test]
    fn adjacent_regions_are_fine() {
        let mut m = FlatMem::new();
        m.add_region(Addr(0x100), 32);
        m.add_region(Addr(0x120), 32);
        assert!(m.read(Addr(0x11C), 4).is_ok());
        assert!(m.read(Addr(0x120), 4).is_ok());
    }

    #[test]
    fn generation_bumps_on_writes_only_in_owning_region() {
        let mut m = FlatMem::new();
        m.add_region(Addr(0x100), 32);
        m.add_region(Addr(0x200), 32);
        assert_eq!(m.generation(Addr(0x100)), Some(0));
        assert_eq!(m.generation(Addr(0x200)), Some(0));
        assert_eq!(m.generation(Addr(0x300)), None);

        m.write(Addr(0x200), 4, 0xAABB_CCDD).unwrap();
        // Word write = four byte writes, each bumping the counter.
        assert_eq!(m.generation(Addr(0x200)), Some(4));
        // Writes to one region leave the other region's counter alone.
        assert_eq!(m.generation(Addr(0x100)), Some(0));

        // Reads never bump.
        m.read(Addr(0x200), 4).unwrap();
        assert_eq!(m.generation(Addr(0x200)), Some(4));

        // `load` goes through write_byte and therefore bumps too.
        m.load(Addr(0x108), &[1, 2]);
        assert_eq!(m.generation(Addr(0x11F)), Some(2));
    }

    #[test]
    fn region_span_reports_base_and_len() {
        let mut m = FlatMem::new();
        m.add_region(Addr(0x100), 32);
        assert_eq!(m.region_span(Addr(0x11F)), Some((Addr(0x100), 32)));
        assert_eq!(m.region_span(Addr(0x120)), None);
    }
}
