//! Predecoded basic-block cache for the functional ISS fast path.
//!
//! The slow path of [`crate::iss::Iss`] re-fetches and re-decodes every
//! instruction on every step. This module decodes each instruction **once**
//! into its dense [`Instr`] form, groups straight-line runs into basic
//! blocks terminated at control flow, serializing instructions, debug
//! markers and `WAIT`/`HALT`, and lets the ISS dispatch a whole block
//! without touching the fetch path again.
//!
//! Correctness hinges on invalidation: a block is only valid while the
//! bytes it was decoded from are unchanged. Rather than snooping every
//! store, each block records the write-generation counter of the memory
//! region it was decoded from (see [`FlatMem::generation`]) and is
//! re-validated on every entry. Any write into code memory — a
//! self-modifying store or a calibration-overlay swap loaded over flash —
//! bumps the counter and lazily invalidates all blocks in that region.
//! This is the same observable-behavior discipline the paper demands of
//! the on-chip trace hardware: the fast path must not change the event
//! stream, only the wall-clock speed of producing it.

use std::collections::HashMap;

use audo_common::Addr;

use crate::encode::decode;
use crate::isa::Instr;
use crate::mem::FlatMem;

/// Longest straight-line run predecoded into a single block.
///
/// Blocks almost always end at a branch well before this; the cap bounds
/// the work wasted when a block is invalidated by a code write.
const MAX_BLOCK_LEN: usize = 64;

/// One predecoded instruction within a block.
#[derive(Debug, Clone, Copy)]
pub struct CachedInstr {
    /// Address the instruction was decoded from.
    pub pc: u32,
    /// Encoded length in bytes (2 or 4).
    pub len: u8,
    /// The decoded instruction.
    pub instr: Instr,
    /// Whether the instruction is a plain store ([`Instr::is_plain_store`]).
    ///
    /// After executing such an instruction the ISS re-checks the block's
    /// region generation: a store *into the current block* would otherwise
    /// keep executing stale predecoded instructions.
    pub may_store: bool,
}

/// A predecoded straight-line run of instructions.
#[derive(Debug, Clone)]
pub struct Block {
    /// Base address of the memory region the block was decoded from.
    pub region: Addr,
    /// Write generation of that region at fill time.
    pub generation: u64,
    /// The predecoded instructions, in program order.
    pub instrs: Vec<CachedInstr>,
}

/// Hit/miss/invalidation counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Block lookups that found a valid predecoded block.
    pub hits: u64,
    /// Block lookups that had to decode a fresh block.
    pub misses: u64,
    /// Cached blocks discarded because their region had been written.
    pub invalidations: u64,
}

/// Cache of predecoded basic blocks, keyed by start PC.
#[derive(Debug, Clone, Default)]
pub struct DecodeCache {
    blocks: HashMap<u32, Block>,
    stats: CacheStats,
}

impl DecodeCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> DecodeCache {
        DecodeCache::default()
    }

    /// Returns the accumulated hit/miss/invalidation counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of blocks currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the cache holds no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Drops every cached block (counters are kept).
    pub fn clear(&mut self) {
        self.blocks.clear();
    }

    /// Looks up (or predecodes) the block starting at `pc`.
    ///
    /// Returns `None` when no block can be formed — `pc` unmapped, or the
    /// first instruction fails to fetch/decode. The caller must then fall
    /// back to single-stepping so the fault surfaces with exactly the slow
    /// path's semantics. A cached block whose region generation no longer
    /// matches memory is discarded and refilled transparently.
    pub fn get_or_fill<'a>(&'a mut self, pc: u32, mem: &FlatMem) -> Option<&'a Block> {
        if let Some(block) = self.blocks.get(&pc) {
            if mem.generation(block.region) == Some(block.generation) {
                self.stats.hits += 1;
                // Re-borrow immutably to decouple the returned lifetime
                // from the `get` above (borrow-checker friendly).
                return self.blocks.get(&pc);
            }
            self.stats.invalidations += 1;
            self.blocks.remove(&pc);
        }
        let block = fill_block(pc, mem)?;
        self.stats.misses += 1;
        Some(self.blocks.entry(pc).or_insert(block))
    }
}

/// Predecodes the basic block starting at `pc`, or `None` if not even the
/// first instruction is fetchable/decodable there.
fn fill_block(pc: u32, mem: &FlatMem) -> Option<Block> {
    let (region, region_len) = mem.region_span(Addr(pc))?;
    let generation = mem.generation(Addr(pc))?;
    let region_end = u64::from(region.0) + u64::from(region_len);
    let mut instrs = Vec::new();
    let mut cur = pc;
    while instrs.len() < MAX_BLOCK_LEN {
        // Mirror the slow path's fetch exactly: a 4-byte window, falling
        // back to 2 bytes near the end of mapped memory.
        let bytes = match mem
            .read_bytes(Addr(cur), 4)
            .or_else(|_| mem.read_bytes(Addr(cur), 2))
        {
            Ok(b) => b,
            Err(_) => break,
        };
        let (instr, len) = match decode(&bytes, Addr(cur)) {
            Ok(d) => d,
            Err(_) => break,
        };
        // Never let a block leak past its region: bytes outside `region`
        // are not covered by its generation counter.
        if u64::from(cur) + u64::from(len) > region_end {
            break;
        }
        let terminal = instr.is_control_flow()
            || instr.is_serializing()
            || matches!(instr, Instr::Debug { .. } | Instr::Wait | Instr::Halt);
        instrs.push(CachedInstr {
            pc: cur,
            len,
            instr,
            may_store: instr.is_plain_store(),
        });
        if terminal {
            break;
        }
        cur = cur.wrapping_add(u32::from(len));
    }
    if instrs.is_empty() {
        return None;
    }
    Some(Block {
        region,
        generation,
        instrs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn mem_with(src: &str) -> FlatMem {
        let image = assemble(src).expect("assembles");
        let mut mem = FlatMem::new();
        mem.add_region(Addr(0x1000), 0x1000);
        image.load_into(&mut mem).unwrap();
        mem
    }

    #[test]
    fn block_ends_at_control_flow() {
        let mem = mem_with(
            "
            .org 0x1000
            movi d0, 1
            movi d1, 2
            add  d2, d0, d1
            j    done
            movi d3, 99
        done:
            halt
        ",
        );
        let mut cache = DecodeCache::new();
        let block = cache.get_or_fill(0x1000, &mem).expect("fills");
        // movi, movi, add, j — the jump terminates the block.
        assert_eq!(block.instrs.len(), 4);
        assert!(block.instrs[3].instr.is_control_flow());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn hit_then_invalidate_on_code_write() {
        let mem_src = "
            .org 0x1000
            movi d0, 1
            halt
        ";
        let mut mem = mem_with(mem_src);
        let mut cache = DecodeCache::new();
        cache.get_or_fill(0x1000, &mem).expect("fills");
        cache.get_or_fill(0x1000, &mem).expect("hits");
        assert_eq!(cache.stats().hits, 1);
        // Any write into the code region invalidates on next entry.
        mem.write_byte(Addr(0x1800), 0xFF).unwrap();
        cache.get_or_fill(0x1000, &mem).expect("refills");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
    }

    #[test]
    fn unmapped_pc_yields_none() {
        let mem = FlatMem::new();
        let mut cache = DecodeCache::new();
        assert!(cache.get_or_fill(0x4000_0000, &mem).is_none());
    }

    #[test]
    fn debug_wait_halt_terminate_blocks() {
        let mem = mem_with(
            "
            .org 0x1000
            movi d0, 1
            debug 7
            movi d1, 2
            halt
        ",
        );
        let mut cache = DecodeCache::new();
        let block = cache.get_or_fill(0x1000, &mem).expect("fills");
        assert_eq!(block.instrs.len(), 2, "debug marker ends the block");
    }
}
