//! The TC-R instruction set: a TriCore-flavoured 32-bit automotive RISC ISA.
//!
//! The real TriCore 1.3 is a tri-issue, dual-register-bank (data/address)
//! architecture with mixed 16/32-bit instruction encodings, hardware loops,
//! and a memory-resident context-save architecture (CSA). TC-R reproduces
//! those *structural* properties — they are what the profiling methodology
//! observes — without copying the proprietary encoding:
//!
//! * 16 data registers `D0..D15` and 16 address registers `A0..A15`
//!   (`A10` = stack pointer, `A11` = return address),
//! * 16-bit and 32-bit instruction formats (bit 0 of the first halfword
//!   selects the length),
//! * three issue pipes: integer ([`Pipe::Ip`]), load/store ([`Pipe::Ls`])
//!   and loop ([`Pipe::Lp`]),
//! * `CALL`/`RET` and interrupt entry spill an *upper context* of 16 words
//!   to a linked list of context save areas in memory,
//! * a `LOOP` instruction executed by the loop pipe with zero steady-state
//!   overhead.

use std::fmt;

/// A data register `D0..D15`.
///
/// # Examples
///
/// ```
/// use audo_tricore::isa::DReg;
/// assert_eq!(DReg(3).to_string(), "d3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DReg(pub u8);

/// An address register `A0..A15`.
///
/// `A10` is the stack pointer and `A11` the return-address register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AReg(pub u8);

impl AReg {
    /// The stack pointer, `A10`.
    pub const SP: AReg = AReg(10);
    /// The return-address register, `A11`.
    pub const RA: AReg = AReg(11);
}

impl fmt::Display for DReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for AReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Core special-function register numbers for `MFCR`/`MTCR`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Csfr {
    /// Program status word.
    Psw = 0,
    /// Interrupt control register (`IE` and current priority `CCPN`).
    Icr = 2,
    /// Base address of the interrupt vector table.
    Biv = 3,
    /// Base address of the trap vector table.
    Btv = 4,
    /// Free CSA list head pointer.
    Fcx = 5,
    /// Previous context pointer.
    Pcx = 6,
    /// Core identification register.
    CoreId = 9,
    /// System configuration.
    Syscon = 10,
}

impl Csfr {
    /// Converts a raw CSFR number into a known register.
    #[must_use]
    pub fn from_u16(v: u16) -> Option<Csfr> {
        Some(match v {
            0 => Csfr::Psw,
            2 => Csfr::Icr,
            3 => Csfr::Biv,
            4 => Csfr::Btv,
            5 => Csfr::Fcx,
            6 => Csfr::Pcx,
            9 => Csfr::CoreId,
            10 => Csfr::Syscon,
            _ => return None,
        })
    }
}

/// Condition codes for compare-and-branch instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `ra == rb`
    Eq,
    /// `ra != rb`
    Ne,
    /// `ra < rb` (signed)
    Lt,
    /// `ra >= rb` (signed)
    Ge,
    /// `ra < rb` (unsigned)
    LtU,
    /// `ra >= rb` (unsigned)
    GeU,
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchCond::Eq => "eq",
            BranchCond::Ne => "ne",
            BranchCond::Lt => "lt",
            BranchCond::Ge => "ge",
            BranchCond::LtU => "ltu",
            BranchCond::GeU => "geu",
        };
        f.write_str(s)
    }
}

/// Memory access widths for load/store instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 8-bit.
    Byte,
    /// 16-bit.
    Half,
    /// 32-bit.
    Word,
}

impl MemWidth {
    /// Access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u8 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }
}

/// A decoded TC-R instruction.
///
/// The enum is the single source of truth for the ISA: the encoder, decoder,
/// assembler, disassembler, execution semantics and pipeline classification
/// all match on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Instr {
    // ------------------------------------------------------------------
    // Moves and immediates
    // ------------------------------------------------------------------
    /// `rd = rs` (data).
    MovD { rd: DReg, rs: DReg },
    /// `ad = as` (address).
    MovAA { ad: AReg, a_src: AReg },
    /// `ad = rs` (data to address bank).
    MovDtoA { ad: AReg, rs: DReg },
    /// `rd = as` (address to data bank).
    MovAtoD { rd: DReg, a_src: AReg },
    /// `rd = sign_extend(imm16)`.
    MovI { rd: DReg, imm: i16 },
    /// `rd = imm16 << 16`.
    MovH { rd: DReg, imm: u16 },
    /// `rd = zero_extend(imm16)`.
    MovU { rd: DReg, imm: u16 },
    /// `ad = imm16 << 16` (address-bank variant for building pointers).
    MovHA { ad: AReg, imm: u16 },
    /// `ad += sign_extend(imm16)` — pairs with [`Instr::MovHA`] to build any
    /// 32-bit address in two instructions.
    AddIA { ad: AReg, imm: i16 },
    /// `rd |= zero_extend(imm16)` — pairs with [`Instr::MovH`] to build any
    /// 32-bit constant in two instructions.
    OrIL { rd: DReg, imm: u16 },
    /// `ad = ab + simm12` (address arithmetic, LS pipe).
    Lea { ad: AReg, ab: AReg, off: i16 },

    // ------------------------------------------------------------------
    // Integer ALU
    // ------------------------------------------------------------------
    /// `rd = ra + rb`.
    Add { rd: DReg, ra: DReg, rb: DReg },
    /// `rd = ra - rb`.
    Sub { rd: DReg, ra: DReg, rb: DReg },
    /// `rd = ra & rb`.
    And { rd: DReg, ra: DReg, rb: DReg },
    /// `rd = ra | rb`.
    Or { rd: DReg, ra: DReg, rb: DReg },
    /// `rd = ra ^ rb`.
    Xor { rd: DReg, ra: DReg, rb: DReg },
    /// `rd = min(ra, rb)` signed.
    Min { rd: DReg, ra: DReg, rb: DReg },
    /// `rd = max(ra, rb)` signed.
    Max { rd: DReg, ra: DReg, rb: DReg },
    /// `rd = ra * rb` (low 32 bits; 2-cycle result latency).
    Mul { rd: DReg, ra: DReg, rb: DReg },
    /// `rd += ra * rb` (multiply-accumulate; 2-cycle result latency).
    Mac { rd: DReg, ra: DReg, rb: DReg },
    /// `rd = ra / rb` signed (8-cycle, non-pipelined). Division by zero
    /// yields `0` and overflow wraps, so the instruction never traps.
    Div { rd: DReg, ra: DReg, rb: DReg },
    /// `rd = ra % rb` signed (8-cycle, non-pipelined).
    Rem { rd: DReg, ra: DReg, rb: DReg },
    /// Dynamic shift: positive `rb` shifts left, negative shifts right
    /// (logical), like TriCore `SH`.
    Sh { rd: DReg, ra: DReg, rb: DReg },
    /// Dynamic arithmetic shift (negative amounts shift right arithmetic).
    Sha { rd: DReg, ra: DReg, rb: DReg },
    /// Immediate shift with `SH` semantics.
    ShI { rd: DReg, ra: DReg, amount: i8 },
    /// `rd = ra + simm12`.
    AddI { rd: DReg, ra: DReg, imm: i16 },
    /// `rd = ra & uimm12`.
    AndI { rd: DReg, ra: DReg, imm: u16 },
    /// `rd = ra | uimm12`.
    OrI { rd: DReg, ra: DReg, imm: u16 },
    /// `rd = ra ^ uimm12`.
    XorI { rd: DReg, ra: DReg, imm: u16 },
    /// `rd = leading_zeros(ra)`.
    Clz { rd: DReg, ra: DReg },
    /// Sign-extend the low 8 bits.
    SextB { rd: DReg, ra: DReg },
    /// Sign-extend the low 16 bits.
    SextH { rd: DReg, ra: DReg },
    /// Zero-extend the low 8 bits.
    ZextB { rd: DReg, ra: DReg },
    /// Zero-extend the low 16 bits.
    ZextH { rd: DReg, ra: DReg },
    /// `rd = (ra >> pos) & ((1 << width) - 1)` — bit-field extract.
    Extr {
        rd: DReg,
        ra: DReg,
        pos: u8,
        width: u8,
    },
    /// Insert the low `width` bits of `rs` into `rd` at `pos`.
    Insert {
        rd: DReg,
        rs: DReg,
        pos: u8,
        width: u8,
    },
    /// `rd = (ra < rb) ? 1 : 0` signed.
    Lt { rd: DReg, ra: DReg, rb: DReg },
    /// `rd = (ra < rb) ? 1 : 0` unsigned.
    LtU { rd: DReg, ra: DReg, rb: DReg },
    /// `rd = (ra == rb) ? 1 : 0`.
    EqR { rd: DReg, ra: DReg, rb: DReg },
    /// `rd = (ra != rb) ? 1 : 0`.
    NeR { rd: DReg, ra: DReg, rb: DReg },
    /// `rd = (cond != 0) ? rs : rd` — conditional select.
    Sel { rd: DReg, cond: DReg, rs: DReg },

    // ------------------------------------------------------------------
    // Loads and stores (LS pipe)
    // ------------------------------------------------------------------
    /// Load from `[ab + off]` into a data register.
    ///
    /// `sign` selects sign extension for byte/half loads; word loads ignore
    /// it and are canonically encoded with `sign: false`.
    Ld {
        rd: DReg,
        ab: AReg,
        off: i16,
        width: MemWidth,
        sign: bool,
    },
    /// Store a data register to `[ab + off]`.
    St {
        rs: DReg,
        ab: AReg,
        off: i16,
        width: MemWidth,
    },
    /// Word load with post-increment: `rd = [ab]; ab += inc`.
    LdWPostInc { rd: DReg, ab: AReg, inc: i16 },
    /// Word store with post-increment: `[ab] = rs; ab += inc`.
    StWPostInc { rs: DReg, ab: AReg, inc: i16 },
    /// Load an address register from `[ab + off]`.
    LdA { ad: AReg, ab: AReg, off: i16 },
    /// Store an address register to `[ab + off]`.
    StA { a_src: AReg, ab: AReg, off: i16 },

    // ------------------------------------------------------------------
    // Control flow
    // ------------------------------------------------------------------
    /// Unconditional jump, `pc += 2 * off` (halfword-scaled 24-bit offset).
    J { off: i32 },
    /// Light leaf call: `A11 = return address; pc += 2 * off`. No CSA.
    Jl { off: i32 },
    /// Full call: spill upper context to the CSA list, then jump.
    Call { off: i32 },
    /// Indirect jump to `aa`.
    Ji { aa: AReg },
    /// Indirect full call to `aa` (CSA spill).
    CallI { aa: AReg },
    /// Return: `pc = A11`, restore upper context from the CSA list.
    Ret,
    /// Compare-and-branch: `if cond(ra, rb) pc += 2 * off`.
    JCond {
        cond: BranchCond,
        ra: DReg,
        rb: DReg,
        off: i16,
    },
    /// Branch if `ra == 0`.
    Jz { ra: DReg, off: i16 },
    /// Branch if `ra != 0`.
    Jnz { ra: DReg, off: i16 },
    /// Hardware loop: `aa -= 1; if aa != 0 pc += 2 * off` (loop pipe;
    /// zero steady-state overhead once the loop buffer is primed).
    Loop { aa: AReg, off: i16 },

    // ------------------------------------------------------------------
    // System
    // ------------------------------------------------------------------
    /// Return from exception/interrupt: restore upper context, pop priority.
    Rfe,
    /// Synchronous trap to the BTV vector; `D15` receives `num`.
    Syscall { num: u16 },
    /// Globally enable interrupts (`ICR.IE = 1`).
    Enable,
    /// Globally disable interrupts (`ICR.IE = 0`).
    Disable,
    /// Read a core special-function register.
    Mfcr { rd: DReg, csfr: u16 },
    /// Write a core special-function register (serializing).
    Mtcr { csfr: u16, rs: DReg },
    /// Emit an MCDS debug marker event carrying `code`.
    Debug { code: u8 },
    /// Suspend execution until an interrupt is pending.
    Wait,
    /// Stop the simulation (testbench convenience; not a real TriCore op).
    Halt,
    /// No operation.
    Nop,
}

/// Which execution pipe an instruction issues to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pipe {
    /// Integer pipeline (ALU, multiply/divide, data-bank branches, system).
    Ip,
    /// Load/store pipeline (memory, address arithmetic, address moves).
    Ls,
    /// Loop pipeline (the `LOOP` instruction).
    Lp,
}

/// Coarse instruction classification used by the retired-instruction mix
/// counters (observability layer).
///
/// Every [`Instr`] variant maps to exactly one class via [`Instr::class`].
/// The granularity follows the buckets an architect reads off a workload
/// characterisation: register moves and immediates, single-cycle ALU ops,
/// multi-cycle multiply/divide, loads, stores, control flow, and system /
/// CSFR instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum InstrClass {
    /// Register-to-register moves, immediate loads and address arithmetic
    /// that carries no data dependency through the integer pipe.
    Move,
    /// Single-cycle integer ALU operations (arithmetic, logic, shifts,
    /// comparisons, bit-field ops).
    Alu,
    /// Multiply, multiply-accumulate, divide and remainder.
    MulDiv,
    /// Memory loads (data and address registers).
    Load,
    /// Memory stores (data and address registers).
    Store,
    /// Jumps, calls, returns and the hardware loop.
    ControlFlow,
    /// System instructions: traps, interrupt control, CSFR access,
    /// `DEBUG`/`WAIT`/`HALT`/`NOP`.
    System,
}

impl InstrClass {
    /// Number of classes (length of a per-class counter array).
    pub const COUNT: usize = 7;

    /// All classes in counter-index order.
    pub const ALL: [InstrClass; InstrClass::COUNT] = [
        InstrClass::Move,
        InstrClass::Alu,
        InstrClass::MulDiv,
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::ControlFlow,
        InstrClass::System,
    ];

    /// Stable lower-case label, suitable as a metric-name component.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            InstrClass::Move => "move",
            InstrClass::Alu => "alu",
            InstrClass::MulDiv => "muldiv",
            InstrClass::Load => "load",
            InstrClass::Store => "store",
            InstrClass::ControlFlow => "control_flow",
            InstrClass::System => "system",
        }
    }

    /// Index into a `[u64; InstrClass::COUNT]` counter array.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl Instr {
    /// Returns the pipe this instruction issues to.
    ///
    /// The assignment mirrors TriCore 1.3: memory operations and
    /// address-register arithmetic go to the load/store pipe, `LOOP` to the
    /// loop pipe and everything else to the integer pipe.
    #[must_use]
    pub fn pipe(&self) -> Pipe {
        use Instr::*;
        match self {
            Ld { .. }
            | St { .. }
            | LdWPostInc { .. }
            | StWPostInc { .. }
            | LdA { .. }
            | StA { .. }
            | Lea { .. }
            | MovAA { .. }
            | MovDtoA { .. }
            | MovHA { .. }
            | AddIA { .. } => Pipe::Ls,
            Loop { .. } => Pipe::Lp,
            _ => Pipe::Ip,
        }
    }

    /// Returns `true` for instructions that may redirect the program counter.
    #[must_use]
    pub fn is_control_flow(&self) -> bool {
        use Instr::*;
        matches!(
            self,
            J { .. }
                | Jl { .. }
                | Call { .. }
                | Ji { .. }
                | CallI { .. }
                | Ret
                | JCond { .. }
                | Jz { .. }
                | Jnz { .. }
                | Loop { .. }
                | Rfe
                | Syscall { .. }
        )
    }

    /// Returns `true` for conditional branches (including `LOOP`).
    #[must_use]
    pub fn is_conditional(&self) -> bool {
        matches!(
            self,
            Instr::JCond { .. } | Instr::Jz { .. } | Instr::Jnz { .. } | Instr::Loop { .. }
        )
    }

    /// Returns `true` if the instruction serializes the pipeline
    /// (context-save operations and CSFR writes).
    #[must_use]
    pub fn is_serializing(&self) -> bool {
        matches!(
            self,
            Instr::Call { .. }
                | Instr::CallI { .. }
                | Instr::Ret
                | Instr::Rfe
                | Instr::Syscall { .. }
                | Instr::Mtcr { .. }
        )
    }

    /// Returns `true` if the instruction performs a data-memory access
    /// (loads, stores and the CSA traffic of call/return).
    #[must_use]
    pub fn is_memory(&self) -> bool {
        use Instr::*;
        matches!(
            self,
            Ld { .. }
                | St { .. }
                | LdWPostInc { .. }
                | StWPostInc { .. }
                | LdA { .. }
                | StA { .. }
                | Call { .. }
                | CallI { .. }
                | Ret
                | Rfe
                | Syscall { .. }
        )
    }

    /// Returns `true` for plain data stores — instructions that write
    /// memory without redirecting control flow (context-save traffic from
    /// calls/returns is excluded; those are [`Instr::is_serializing`]).
    ///
    /// The ISS decode cache uses this to know when a predecoded basic
    /// block must re-validate its memory generation mid-block: only a
    /// plain store can silently overwrite code the block has yet to
    /// execute.
    #[must_use]
    pub fn is_plain_store(&self) -> bool {
        matches!(
            self,
            Instr::St { .. } | Instr::StWPostInc { .. } | Instr::StA { .. }
        )
    }

    /// Returns the coarse [`InstrClass`] of this instruction, used by the
    /// observability layer's retired-instruction mix counters.
    #[must_use]
    pub fn class(&self) -> InstrClass {
        use Instr::*;
        match self {
            MovD { .. }
            | MovAA { .. }
            | MovDtoA { .. }
            | MovAtoD { .. }
            | MovI { .. }
            | MovH { .. }
            | MovU { .. }
            | MovHA { .. }
            | AddIA { .. }
            | OrIL { .. }
            | Lea { .. } => InstrClass::Move,
            Add { .. }
            | Sub { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | Min { .. }
            | Max { .. }
            | Sh { .. }
            | Sha { .. }
            | ShI { .. }
            | AddI { .. }
            | AndI { .. }
            | OrI { .. }
            | XorI { .. }
            | Clz { .. }
            | SextB { .. }
            | SextH { .. }
            | ZextB { .. }
            | ZextH { .. }
            | Extr { .. }
            | Insert { .. }
            | Lt { .. }
            | LtU { .. }
            | EqR { .. }
            | NeR { .. }
            | Sel { .. } => InstrClass::Alu,
            Mul { .. } | Mac { .. } | Div { .. } | Rem { .. } => InstrClass::MulDiv,
            Ld { .. } | LdWPostInc { .. } | LdA { .. } => InstrClass::Load,
            St { .. } | StWPostInc { .. } | StA { .. } => InstrClass::Store,
            J { .. }
            | Jl { .. }
            | Call { .. }
            | Ji { .. }
            | CallI { .. }
            | Ret
            | JCond { .. }
            | Jz { .. }
            | Jnz { .. }
            | Loop { .. } => InstrClass::ControlFlow,
            Rfe
            | Syscall { .. }
            | Enable
            | Disable
            | Mfcr { .. }
            | Mtcr { .. }
            | Debug { .. }
            | Wait
            | Halt
            | Nop => InstrClass::System,
        }
    }
}

/// A reference to a register in either bank, for hazard tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegRef {
    /// Data register.
    D(u8),
    /// Address register.
    A(u8),
}

/// A small fixed-capacity list of register references (avoids allocation in
/// the pipeline's per-instruction hazard checks).
#[derive(Debug, Clone, Copy, Default)]
pub struct RegList {
    regs: [Option<RegRef>; 4],
    len: u8,
}

impl RegList {
    fn push(&mut self, r: RegRef) {
        self.regs[self.len as usize] = Some(r);
        self.len += 1;
    }

    /// Iterates over the contained register references.
    pub fn iter(&self) -> impl Iterator<Item = RegRef> + '_ {
        self.regs[..self.len as usize]
            .iter()
            .map(|r| r.expect("filled slot"))
    }

    /// Returns `true` if `r` is in the list.
    #[must_use]
    pub fn contains(&self, r: RegRef) -> bool {
        self.iter().any(|x| x == r)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Instr {
    /// Registers this instruction reads.
    ///
    /// Serializing instructions (CALL/RET/RFE/SYSCALL) touch the whole upper
    /// context; they report only their explicitly named registers because
    /// the pipeline issues them alone anyway.
    #[must_use]
    pub fn reads(&self) -> RegList {
        use Instr::*;
        use RegRef::{A, D};
        let mut l = RegList::default();
        match *self {
            MovD { rs, .. } => l.push(D(rs.0)),
            MovAA { a_src, .. } => l.push(A(a_src.0)),
            MovDtoA { rs, .. } => l.push(D(rs.0)),
            MovAtoD { a_src, .. } => l.push(A(a_src.0)),
            AddIA { ad, .. } => l.push(A(ad.0)),
            OrIL { rd, .. } => l.push(D(rd.0)),
            Lea { ab, .. } => l.push(A(ab.0)),
            Add { ra, rb, .. }
            | Sub { ra, rb, .. }
            | And { ra, rb, .. }
            | Or { ra, rb, .. }
            | Xor { ra, rb, .. }
            | Min { ra, rb, .. }
            | Max { ra, rb, .. }
            | Mul { ra, rb, .. }
            | Div { ra, rb, .. }
            | Rem { ra, rb, .. }
            | Sh { ra, rb, .. }
            | Sha { ra, rb, .. }
            | Lt { ra, rb, .. }
            | LtU { ra, rb, .. }
            | EqR { ra, rb, .. }
            | NeR { ra, rb, .. } => {
                l.push(D(ra.0));
                l.push(D(rb.0));
            }
            Mac { rd, ra, rb } => {
                l.push(D(rd.0));
                l.push(D(ra.0));
                l.push(D(rb.0));
            }
            ShI { ra, .. }
            | AddI { ra, .. }
            | AndI { ra, .. }
            | OrI { ra, .. }
            | XorI { ra, .. }
            | Clz { ra, .. }
            | SextB { ra, .. }
            | SextH { ra, .. }
            | ZextB { ra, .. }
            | ZextH { ra, .. }
            | Extr { ra, .. } => l.push(D(ra.0)),
            Insert { rd, rs, .. } => {
                l.push(D(rd.0));
                l.push(D(rs.0));
            }
            Sel { rd, cond, rs } => {
                l.push(D(rd.0));
                l.push(D(cond.0));
                l.push(D(rs.0));
            }
            Ld { ab, .. } | LdA { ab, .. } => l.push(A(ab.0)),
            St { rs, ab, .. } => {
                l.push(D(rs.0));
                l.push(A(ab.0));
            }
            LdWPostInc { ab, .. } => l.push(A(ab.0)),
            StWPostInc { rs, ab, .. } => {
                l.push(D(rs.0));
                l.push(A(ab.0));
            }
            StA { a_src, ab, .. } => {
                l.push(A(a_src.0));
                l.push(A(ab.0));
            }
            Ji { aa } | CallI { aa } => l.push(A(aa.0)),
            Ret | Rfe => l.push(A(11)),
            JCond { ra, rb, .. } => {
                l.push(D(ra.0));
                l.push(D(rb.0));
            }
            Jz { ra, .. } | Jnz { ra, .. } => l.push(D(ra.0)),
            Loop { aa, .. } => l.push(A(aa.0)),
            Mtcr { rs, .. } => l.push(D(rs.0)),
            MovI { .. }
            | MovH { .. }
            | MovU { .. }
            | MovHA { .. }
            | J { .. }
            | Jl { .. }
            | Call { .. }
            | Syscall { .. }
            | Enable
            | Disable
            | Mfcr { .. }
            | Debug { .. }
            | Wait
            | Halt
            | Nop => {}
        }
        l
    }

    /// Registers this instruction writes.
    #[must_use]
    pub fn writes(&self) -> RegList {
        use Instr::*;
        use RegRef::{A, D};
        let mut l = RegList::default();
        match *self {
            MovD { rd, .. }
            | MovI { rd, .. }
            | MovH { rd, .. }
            | MovU { rd, .. }
            | OrIL { rd, .. }
            | Add { rd, .. }
            | Sub { rd, .. }
            | And { rd, .. }
            | Or { rd, .. }
            | Xor { rd, .. }
            | Min { rd, .. }
            | Max { rd, .. }
            | Mul { rd, .. }
            | Mac { rd, .. }
            | Div { rd, .. }
            | Rem { rd, .. }
            | Sh { rd, .. }
            | Sha { rd, .. }
            | ShI { rd, .. }
            | AddI { rd, .. }
            | AndI { rd, .. }
            | OrI { rd, .. }
            | XorI { rd, .. }
            | Clz { rd, .. }
            | SextB { rd, .. }
            | SextH { rd, .. }
            | ZextB { rd, .. }
            | ZextH { rd, .. }
            | Extr { rd, .. }
            | Insert { rd, .. }
            | Lt { rd, .. }
            | LtU { rd, .. }
            | EqR { rd, .. }
            | NeR { rd, .. }
            | Sel { rd, .. }
            | Mfcr { rd, .. }
            | Ld { rd, .. } => l.push(D(rd.0)),
            MovAA { ad, .. }
            | MovDtoA { ad, .. }
            | MovHA { ad, .. }
            | AddIA { ad, .. }
            | Lea { ad, .. }
            | LdA { ad, .. } => l.push(A(ad.0)),
            MovAtoD { rd, .. } => l.push(D(rd.0)),
            LdWPostInc { rd, ab, .. } => {
                l.push(D(rd.0));
                l.push(A(ab.0));
            }
            StWPostInc { ab, .. } => l.push(A(ab.0)),
            Jl { .. } | Call { .. } | CallI { .. } => l.push(A(11)),
            Syscall { .. } => {
                l.push(D(15));
                l.push(A(11));
            }
            Loop { aa, .. } => l.push(A(aa.0)),
            St { .. }
            | StA { .. }
            | J { .. }
            | Ji { .. }
            | Ret
            | Rfe
            | JCond { .. }
            | Jz { .. }
            | Jnz { .. }
            | Enable
            | Disable
            | Mtcr { .. }
            | Debug { .. }
            | Wait
            | Halt
            | Nop => {}
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_classification() {
        assert_eq!(
            Instr::Add {
                rd: DReg(0),
                ra: DReg(1),
                rb: DReg(2)
            }
            .pipe(),
            Pipe::Ip
        );
        assert_eq!(
            Instr::Ld {
                rd: DReg(0),
                ab: AReg(1),
                off: 0,
                width: MemWidth::Word,
                sign: false
            }
            .pipe(),
            Pipe::Ls
        );
        assert_eq!(
            Instr::Loop {
                aa: AReg(2),
                off: -4
            }
            .pipe(),
            Pipe::Lp
        );
        assert_eq!(
            Instr::Lea {
                ad: AReg(0),
                ab: AReg(1),
                off: 4
            }
            .pipe(),
            Pipe::Ls
        );
        assert_eq!(
            Instr::MovHA {
                ad: AReg(0),
                imm: 1
            }
            .pipe(),
            Pipe::Ls
        );
    }

    #[test]
    fn control_flow_classification() {
        assert!(Instr::J { off: 2 }.is_control_flow());
        assert!(Instr::Ret.is_control_flow());
        assert!(Instr::Loop {
            aa: AReg(1),
            off: -2
        }
        .is_conditional());
        assert!(!Instr::Nop.is_control_flow());
        assert!(Instr::Jz {
            ra: DReg(1),
            off: 2
        }
        .is_conditional());
        assert!(!Instr::J { off: 2 }.is_conditional());
    }

    #[test]
    fn serializing_and_memory_classification() {
        assert!(Instr::Call { off: 4 }.is_serializing());
        assert!(Instr::Call { off: 4 }.is_memory());
        assert!(Instr::Mtcr {
            csfr: 2,
            rs: DReg(1)
        }
        .is_serializing());
        assert!(!Instr::Add {
            rd: DReg(0),
            ra: DReg(0),
            rb: DReg(0)
        }
        .is_memory());
        assert!(Instr::StWPostInc {
            rs: DReg(1),
            ab: AReg(2),
            inc: 4
        }
        .is_memory());
    }

    #[test]
    fn csfr_roundtrip() {
        for c in [
            Csfr::Psw,
            Csfr::Icr,
            Csfr::Biv,
            Csfr::Btv,
            Csfr::Fcx,
            Csfr::Pcx,
        ] {
            assert_eq!(Csfr::from_u16(c as u16), Some(c));
        }
        assert_eq!(Csfr::from_u16(999), None);
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::Half.bytes(), 2);
        assert_eq!(MemWidth::Word.bytes(), 4);
    }

    #[test]
    fn register_display() {
        assert_eq!(DReg(15).to_string(), "d15");
        assert_eq!(AReg::SP.to_string(), "a10");
        assert_eq!(BranchCond::GeU.to_string(), "geu");
    }
}
