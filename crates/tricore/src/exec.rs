//! Architectural execution semantics of TC-R instructions.
//!
//! [`execute`] is the single definition of what every instruction *does*.
//! Both the cycle-accurate pipeline (`crate::pipeline`) and the functional
//! golden-model ISS (`crate::iss`) call it, so they agree on architectural
//! state by construction; integration tests then verify the pipeline's
//! bookkeeping never diverges.

use audo_common::events::FlowKind;
use audo_common::{Addr, SimError};

use crate::arch::{restore_upper_context, save_upper_context, ArchMem, ArchState};
use crate::isa::{BranchCond, Instr, MemWidth};

/// A control-flow redirect produced by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Classification for the trace unit.
    pub kind: FlowKind,
    /// The address execution continues at.
    pub target: Addr,
}

/// What one instruction did, beyond updating [`ArchState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Outcome {
    /// Address of the next instruction to execute.
    pub next_pc: u32,
    /// Set when the instruction redirected control flow.
    pub flow: Option<Flow>,
    /// `Some(taken)` when the instruction was a conditional branch.
    pub branch_taken: Option<bool>,
    /// Debug marker code from a `DEBUG` instruction.
    pub debug: Option<u8>,
    /// The core entered the idle (`WAIT`) state.
    pub wait: bool,
    /// The simulation should stop (`HALT`).
    pub halt: bool,
}

/// Describes a data-memory access an instruction will perform, for the
/// pipeline's hazard logic. Produced by [`mem_access_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessPlan {
    /// Effective address.
    pub addr: Addr,
    /// Width in bytes.
    pub size: u8,
    /// `true` for stores.
    pub is_store: bool,
}

fn branch_target(pc: u32, off: i32) -> u32 {
    pc.wrapping_add((off as u32).wrapping_mul(2))
}

/// Computes the data access (if any) a load/store instruction at `pc` would
/// perform in state `st`, without executing it.
#[must_use]
pub fn mem_access_of(st: &ArchState, instr: &Instr) -> Option<MemAccessPlan> {
    use Instr::*;
    Some(match *instr {
        Ld { ab, off, width, .. } => MemAccessPlan {
            addr: Addr(st.a[ab.0 as usize].wrapping_add(off as i32 as u32)),
            size: width.bytes(),
            is_store: false,
        },
        St { ab, off, width, .. } => MemAccessPlan {
            addr: Addr(st.a[ab.0 as usize].wrapping_add(off as i32 as u32)),
            size: width.bytes(),
            is_store: true,
        },
        LdWPostInc { ab, .. } => MemAccessPlan {
            addr: Addr(st.a[ab.0 as usize]),
            size: 4,
            is_store: false,
        },
        StWPostInc { ab, .. } => MemAccessPlan {
            addr: Addr(st.a[ab.0 as usize]),
            size: 4,
            is_store: true,
        },
        LdA { ab, off, .. } => MemAccessPlan {
            addr: Addr(st.a[ab.0 as usize].wrapping_add(off as i32 as u32)),
            size: 4,
            is_store: false,
        },
        StA { ab, off, .. } => MemAccessPlan {
            addr: Addr(st.a[ab.0 as usize].wrapping_add(off as i32 as u32)),
            size: 4,
            is_store: true,
        },
        _ => return None,
    })
}

fn dyn_shift(value: u32, amount: u32, arithmetic: bool) -> u32 {
    // TriCore SH semantics: the low 6 bits of the amount are sign-extended;
    // positive shifts left, negative shifts right.
    let amt = ((amount as i32) << 26) >> 26;
    shift_by(value, amt, arithmetic)
}

fn shift_by(value: u32, amt: i32, arithmetic: bool) -> u32 {
    if amt >= 0 {
        if amt >= 32 {
            0
        } else {
            value << amt
        }
    } else {
        let sh = -amt;
        if arithmetic {
            if sh >= 32 {
                ((value as i32) >> 31) as u32
            } else {
                ((value as i32) >> sh) as u32
            }
        } else if sh >= 32 {
            0
        } else {
            value >> sh
        }
    }
}

fn mask(width: u8) -> u32 {
    if width >= 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    }
}

/// Executes one instruction, updating `st` and `mem`.
///
/// `pc` is the instruction's own address and `ilen` its encoded length;
/// `st.pc` is **not** consulted (the pipeline executes ahead of its
/// architectural PC) but *is* updated to `Outcome::next_pc`.
///
/// # Errors
///
/// Returns memory errors (unmapped/misaligned) and CSA list faults.
/// On error, partial register updates may have occurred; callers treat any
/// error as a fatal program fault and stop the simulation.
pub fn execute<M: ArchMem>(
    st: &mut ArchState,
    mem: &mut M,
    instr: &Instr,
    pc: u32,
    ilen: u8,
) -> Result<Outcome, SimError> {
    use Instr::*;
    let fallthrough = pc.wrapping_add(u32::from(ilen));
    let mut out = Outcome {
        next_pc: fallthrough,
        ..Outcome::default()
    };

    macro_rules! d {
        ($r:expr) => {
            st.d[$r.0 as usize]
        };
    }
    macro_rules! a {
        ($r:expr) => {
            st.a[$r.0 as usize]
        };
    }
    macro_rules! take_branch {
        ($kind:expr, $target:expr) => {{
            out.next_pc = $target;
            out.flow = Some(Flow {
                kind: $kind,
                target: Addr($target),
            });
        }};
    }
    macro_rules! cond_branch {
        ($taken:expr, $off:expr) => {{
            let taken = $taken;
            out.branch_taken = Some(taken);
            if taken {
                take_branch!(FlowKind::BranchTaken, branch_target(pc, i32::from($off)));
            }
        }};
    }

    match *instr {
        Nop => {}
        MovD { rd, rs } => d!(rd) = d!(rs),
        MovAA { ad, a_src } => a!(ad) = a!(a_src),
        MovDtoA { ad, rs } => a!(ad) = d!(rs),
        MovAtoD { rd, a_src } => d!(rd) = a!(a_src),
        MovI { rd, imm } => d!(rd) = imm as i32 as u32,
        MovH { rd, imm } => d!(rd) = u32::from(imm) << 16,
        MovU { rd, imm } => d!(rd) = u32::from(imm),
        MovHA { ad, imm } => a!(ad) = u32::from(imm) << 16,
        AddIA { ad, imm } => a!(ad) = a!(ad).wrapping_add(imm as i32 as u32),
        OrIL { rd, imm } => d!(rd) |= u32::from(imm),
        Lea { ad, ab, off } => a!(ad) = a!(ab).wrapping_add(off as i32 as u32),

        Add { rd, ra, rb } => d!(rd) = d!(ra).wrapping_add(d!(rb)),
        Sub { rd, ra, rb } => d!(rd) = d!(ra).wrapping_sub(d!(rb)),
        And { rd, ra, rb } => d!(rd) = d!(ra) & d!(rb),
        Or { rd, ra, rb } => d!(rd) = d!(ra) | d!(rb),
        Xor { rd, ra, rb } => d!(rd) = d!(ra) ^ d!(rb),
        Min { rd, ra, rb } => d!(rd) = (d!(ra) as i32).min(d!(rb) as i32) as u32,
        Max { rd, ra, rb } => d!(rd) = (d!(ra) as i32).max(d!(rb) as i32) as u32,
        Mul { rd, ra, rb } => d!(rd) = d!(ra).wrapping_mul(d!(rb)),
        Mac { rd, ra, rb } => d!(rd) = d!(rd).wrapping_add(d!(ra).wrapping_mul(d!(rb))),
        Div { rd, ra, rb } => {
            let (x, y) = (d!(ra) as i32, d!(rb) as i32);
            d!(rd) = if y == 0 { 0 } else { x.wrapping_div(y) as u32 };
        }
        Rem { rd, ra, rb } => {
            let (x, y) = (d!(ra) as i32, d!(rb) as i32);
            d!(rd) = if y == 0 {
                x as u32
            } else {
                x.wrapping_rem(y) as u32
            };
        }
        Sh { rd, ra, rb } => d!(rd) = dyn_shift(d!(ra), d!(rb), false),
        Sha { rd, ra, rb } => d!(rd) = dyn_shift(d!(ra), d!(rb), true),
        ShI { rd, ra, amount } => d!(rd) = shift_by(d!(ra), i32::from(amount), false),
        AddI { rd, ra, imm } => d!(rd) = d!(ra).wrapping_add(imm as i32 as u32),
        AndI { rd, ra, imm } => d!(rd) = d!(ra) & u32::from(imm),
        OrI { rd, ra, imm } => d!(rd) = d!(ra) | u32::from(imm),
        XorI { rd, ra, imm } => d!(rd) = d!(ra) ^ u32::from(imm),
        Clz { rd, ra } => d!(rd) = d!(ra).leading_zeros(),
        SextB { rd, ra } => d!(rd) = d!(ra) as u8 as i8 as i32 as u32,
        SextH { rd, ra } => d!(rd) = d!(ra) as u16 as i16 as i32 as u32,
        ZextB { rd, ra } => d!(rd) = d!(ra) & 0xFF,
        ZextH { rd, ra } => d!(rd) = d!(ra) & 0xFFFF,
        Extr { rd, ra, pos, width } => d!(rd) = (d!(ra) >> pos) & mask(width),
        Insert { rd, rs, pos, width } => {
            let m = mask(width) << pos;
            d!(rd) = (d!(rd) & !m) | ((d!(rs) << pos) & m);
        }
        Lt { rd, ra, rb } => d!(rd) = u32::from((d!(ra) as i32) < (d!(rb) as i32)),
        LtU { rd, ra, rb } => d!(rd) = u32::from(d!(ra) < d!(rb)),
        EqR { rd, ra, rb } => d!(rd) = u32::from(d!(ra) == d!(rb)),
        NeR { rd, ra, rb } => d!(rd) = u32::from(d!(ra) != d!(rb)),
        Sel { rd, cond, rs } => {
            if d!(cond) != 0 {
                d!(rd) = d!(rs);
            }
        }

        Ld {
            rd,
            ab,
            off,
            width,
            sign,
        } => {
            let addr = Addr(a!(ab).wrapping_add(off as i32 as u32));
            let raw = mem.read(addr, width.bytes())?;
            d!(rd) = extend(raw, width, sign);
        }
        St { rs, ab, off, width } => {
            let addr = Addr(a!(ab).wrapping_add(off as i32 as u32));
            mem.write(addr, width.bytes(), d!(rs))?;
        }
        LdWPostInc { rd, ab, inc } => {
            let addr = Addr(a!(ab));
            let raw = mem.read(addr, 4)?;
            d!(rd) = raw;
            a!(ab) = a!(ab).wrapping_add(inc as i32 as u32);
        }
        StWPostInc { rs, ab, inc } => {
            let addr = Addr(a!(ab));
            mem.write(addr, 4, d!(rs))?;
            a!(ab) = a!(ab).wrapping_add(inc as i32 as u32);
        }
        LdA { ad, ab, off } => {
            let addr = Addr(a!(ab).wrapping_add(off as i32 as u32));
            a!(ad) = mem.read(addr, 4)?;
        }
        StA { a_src, ab, off } => {
            let addr = Addr(a!(ab).wrapping_add(off as i32 as u32));
            mem.write(addr, 4, a!(a_src))?;
        }

        J { off } => take_branch!(FlowKind::BranchTaken, branch_target(pc, off)),
        Jl { off } => {
            a!(crate::isa::AReg::RA) = fallthrough;
            take_branch!(FlowKind::Call, branch_target(pc, off));
        }
        Call { off } => {
            save_upper_context(st, mem)?;
            a!(crate::isa::AReg::RA) = fallthrough;
            take_branch!(FlowKind::Call, branch_target(pc, off));
        }
        Ji { aa } => take_branch!(FlowKind::Indirect, a!(aa)),
        CallI { aa } => {
            let target = a!(aa);
            save_upper_context(st, mem)?;
            a!(crate::isa::AReg::RA) = fallthrough;
            take_branch!(FlowKind::Indirect, target);
        }
        Ret => {
            let target = a!(crate::isa::AReg::RA);
            restore_upper_context(st, mem, false)?;
            take_branch!(FlowKind::Return, target);
        }
        JCond { cond, ra, rb, off } => {
            let (x, y) = (d!(ra), d!(rb));
            let taken = match cond {
                BranchCond::Eq => x == y,
                BranchCond::Ne => x != y,
                BranchCond::Lt => (x as i32) < (y as i32),
                BranchCond::Ge => (x as i32) >= (y as i32),
                BranchCond::LtU => x < y,
                BranchCond::GeU => x >= y,
            };
            cond_branch!(taken, off);
        }
        Jz { ra, off } => cond_branch!(d!(ra) == 0, off),
        Jnz { ra, off } => cond_branch!(d!(ra) != 0, off),
        Loop { aa, off } => {
            a!(aa) = a!(aa).wrapping_sub(1);
            cond_branch!(a!(aa) != 0, off);
        }

        Rfe => {
            let target = a!(crate::isa::AReg::RA);
            restore_upper_context(st, mem, true)?;
            take_branch!(FlowKind::ExceptionReturn, target);
        }
        Syscall { num } => {
            save_upper_context(st, mem)?;
            a!(crate::isa::AReg::RA) = fallthrough;
            st.d[15] = u32::from(num);
            st.icr_ie = false;
            take_branch!(FlowKind::Exception, st.btv);
        }
        Enable => st.icr_ie = true,
        Disable => st.icr_ie = false,
        Mfcr { rd, csfr } => d!(rd) = st.read_csfr(csfr),
        Mtcr { csfr, rs } => {
            let v = d!(rs);
            st.write_csfr(csfr, v);
        }
        Debug { code } => out.debug = Some(code),
        Wait => out.wait = true,
        Halt => out.halt = true,
    }

    st.pc = out.next_pc;
    Ok(out)
}

/// Performs asynchronous interrupt entry at priority `prio`.
///
/// Spills the upper context, records the resume address in `A11`, raises the
/// current CPU priority to `prio`, clears `ICR.IE` (as TriCore does — the
/// handler re-enables for nesting), and redirects to the vector
/// `BIV + 32 * prio`.
///
/// # Errors
///
/// Returns CSA/memory faults from the context spill.
pub fn enter_interrupt<M: ArchMem>(
    st: &mut ArchState,
    mem: &mut M,
    prio: u8,
) -> Result<Flow, SimError> {
    save_upper_context(st, mem)?;
    st.a[11] = st.pc;
    st.icr_ccpn = prio;
    st.icr_ie = false;
    let target = st.biv.wrapping_add(u32::from(prio) * 32);
    st.pc = target;
    Ok(Flow {
        kind: FlowKind::Exception,
        target: Addr(target),
    })
}

fn extend(raw: u32, width: MemWidth, sign: bool) -> u32 {
    match (width, sign) {
        (MemWidth::Word, _) => raw,
        (MemWidth::Half, true) => raw as u16 as i16 as i32 as u32,
        (MemWidth::Half, false) => raw & 0xFFFF,
        (MemWidth::Byte, true) => raw as u8 as i8 as i32 as u32,
        (MemWidth::Byte, false) => raw & 0xFF,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::init_csa_list;
    use crate::isa::{AReg, DReg};
    use crate::mem::FlatMem;

    fn setup() -> (ArchState, FlatMem) {
        let mut mem = FlatMem::new();
        mem.add_region(Addr(0xD000_0000), 64 * 1024);
        let mut st = ArchState::new(0x8000_0000);
        st.fcx = init_csa_list(&mut mem, Addr(0xD000_8000), 16).unwrap();
        (st, mem)
    }

    fn run(st: &mut ArchState, mem: &mut FlatMem, i: Instr) -> Outcome {
        let pc = st.pc;
        execute(st, mem, &i, pc, 4).unwrap()
    }

    #[test]
    fn alu_basics() {
        let (mut st, mut mem) = setup();
        st.d[1] = 7;
        st.d[2] = 5;
        run(
            &mut st,
            &mut mem,
            Instr::Add {
                rd: DReg(0),
                ra: DReg(1),
                rb: DReg(2),
            },
        );
        assert_eq!(st.d[0], 12);
        run(
            &mut st,
            &mut mem,
            Instr::Sub {
                rd: DReg(0),
                ra: DReg(1),
                rb: DReg(2),
            },
        );
        assert_eq!(st.d[0], 2);
        st.d[3] = u32::MAX;
        run(
            &mut st,
            &mut mem,
            Instr::AddI {
                rd: DReg(3),
                ra: DReg(3),
                imm: 1,
            },
        );
        assert_eq!(st.d[3], 0, "add wraps");
        run(
            &mut st,
            &mut mem,
            Instr::Min {
                rd: DReg(4),
                ra: DReg(1),
                rb: DReg(2),
            },
        );
        assert_eq!(st.d[4], 5);
        st.d[5] = (-3i32) as u32;
        run(
            &mut st,
            &mut mem,
            Instr::Max {
                rd: DReg(4),
                ra: DReg(5),
                rb: DReg(2),
            },
        );
        assert_eq!(st.d[4], 5, "signed max");
    }

    #[test]
    fn division_never_traps() {
        let (mut st, mut mem) = setup();
        st.d[1] = 10;
        st.d[2] = 0;
        run(
            &mut st,
            &mut mem,
            Instr::Div {
                rd: DReg(0),
                ra: DReg(1),
                rb: DReg(2),
            },
        );
        assert_eq!(st.d[0], 0);
        run(
            &mut st,
            &mut mem,
            Instr::Rem {
                rd: DReg(0),
                ra: DReg(1),
                rb: DReg(2),
            },
        );
        assert_eq!(st.d[0], 10);
        st.d[1] = i32::MIN as u32;
        st.d[2] = (-1i32) as u32;
        run(
            &mut st,
            &mut mem,
            Instr::Div {
                rd: DReg(0),
                ra: DReg(1),
                rb: DReg(2),
            },
        );
        assert_eq!(st.d[0], i32::MIN as u32, "overflow wraps");
    }

    #[test]
    fn tricore_style_shifts() {
        let (mut st, mut mem) = setup();
        st.d[1] = 0x8000_0001;
        st.d[2] = 4; // positive = left
        run(
            &mut st,
            &mut mem,
            Instr::Sh {
                rd: DReg(0),
                ra: DReg(1),
                rb: DReg(2),
            },
        );
        assert_eq!(st.d[0], 0x10);
        st.d[2] = (-4i32) as u32; // negative = right logical
        run(
            &mut st,
            &mut mem,
            Instr::Sh {
                rd: DReg(0),
                ra: DReg(1),
                rb: DReg(2),
            },
        );
        assert_eq!(st.d[0], 0x0800_0000);
        run(
            &mut st,
            &mut mem,
            Instr::Sha {
                rd: DReg(0),
                ra: DReg(1),
                rb: DReg(2),
            },
        );
        assert_eq!(st.d[0], 0xF800_0000, "arithmetic right fills sign");
        run(
            &mut st,
            &mut mem,
            Instr::ShI {
                rd: DReg(0),
                ra: DReg(1),
                amount: -31,
            },
        );
        assert_eq!(st.d[0], 1);
    }

    #[test]
    fn bitfield_ops() {
        let (mut st, mut mem) = setup();
        st.d[1] = 0xABCD_1234;
        run(
            &mut st,
            &mut mem,
            Instr::Extr {
                rd: DReg(0),
                ra: DReg(1),
                pos: 12,
                width: 8,
            },
        );
        assert_eq!(st.d[0], 0xD1);
        st.d[0] = 0xFFFF_FFFF;
        st.d[2] = 0b1010;
        run(
            &mut st,
            &mut mem,
            Instr::Insert {
                rd: DReg(0),
                rs: DReg(2),
                pos: 4,
                width: 4,
            },
        );
        assert_eq!(st.d[0], 0xFFFF_FFAF);
        st.d[3] = 0x0000_1000;
        run(
            &mut st,
            &mut mem,
            Instr::Clz {
                rd: DReg(0),
                ra: DReg(3),
            },
        );
        assert_eq!(st.d[0], 19);
    }

    #[test]
    fn loads_and_stores_extend_correctly() {
        let (mut st, mut mem) = setup();
        st.a[2] = 0xD000_0100;
        st.d[1] = 0xFFFF_FF80;
        run(
            &mut st,
            &mut mem,
            Instr::St {
                rs: DReg(1),
                ab: AReg(2),
                off: 0,
                width: MemWidth::Byte,
            },
        );
        run(
            &mut st,
            &mut mem,
            Instr::Ld {
                rd: DReg(3),
                ab: AReg(2),
                off: 0,
                width: MemWidth::Byte,
                sign: true,
            },
        );
        assert_eq!(st.d[3], 0xFFFF_FF80);
        run(
            &mut st,
            &mut mem,
            Instr::Ld {
                rd: DReg(3),
                ab: AReg(2),
                off: 0,
                width: MemWidth::Byte,
                sign: false,
            },
        );
        assert_eq!(st.d[3], 0x80);
    }

    #[test]
    fn post_increment_addressing() {
        let (mut st, mut mem) = setup();
        st.a[4] = 0xD000_0200;
        st.d[1] = 42;
        run(
            &mut st,
            &mut mem,
            Instr::StWPostInc {
                rs: DReg(1),
                ab: AReg(4),
                inc: 4,
            },
        );
        assert_eq!(st.a[4], 0xD000_0204);
        st.a[4] = 0xD000_0200;
        run(
            &mut st,
            &mut mem,
            Instr::LdWPostInc {
                rd: DReg(2),
                ab: AReg(4),
                inc: 8,
            },
        );
        assert_eq!(st.d[2], 42);
        assert_eq!(st.a[4], 0xD000_0208);
    }

    #[test]
    fn branches_are_halfword_scaled() {
        let (mut st, mut mem) = setup();
        st.pc = 0x8000_0100;
        let out = run(&mut st, &mut mem, Instr::J { off: 8 });
        assert_eq!(out.next_pc, 0x8000_0110);
        assert_eq!(st.pc, 0x8000_0110);
        st.pc = 0x8000_0100;
        let out = run(&mut st, &mut mem, Instr::J { off: -8 });
        assert_eq!(out.next_pc, 0x8000_00F0);
    }

    #[test]
    fn conditional_branch_outcomes() {
        let (mut st, mut mem) = setup();
        st.d[1] = 5;
        st.d[2] = 5;
        st.pc = 0x8000_0000;
        let out = run(
            &mut st,
            &mut mem,
            Instr::JCond {
                cond: BranchCond::Eq,
                ra: DReg(1),
                rb: DReg(2),
                off: 4,
            },
        );
        assert_eq!(out.branch_taken, Some(true));
        assert_eq!(st.pc, 0x8000_0008);
        let out = run(
            &mut st,
            &mut mem,
            Instr::JCond {
                cond: BranchCond::Ne,
                ra: DReg(1),
                rb: DReg(2),
                off: 4,
            },
        );
        assert_eq!(out.branch_taken, Some(false));
        assert_eq!(st.pc, 0x8000_000C, "fallthrough");
        // Unsigned vs signed comparison.
        st.d[1] = (-1i32) as u32;
        st.d[2] = 1;
        let out = run(
            &mut st,
            &mut mem,
            Instr::JCond {
                cond: BranchCond::Lt,
                ra: DReg(1),
                rb: DReg(2),
                off: 4,
            },
        );
        assert_eq!(out.branch_taken, Some(true), "-1 < 1 signed");
        let out = run(
            &mut st,
            &mut mem,
            Instr::JCond {
                cond: BranchCond::LtU,
                ra: DReg(1),
                rb: DReg(2),
                off: 4,
            },
        );
        assert_eq!(out.branch_taken, Some(false), "0xFFFFFFFF not < 1 unsigned");
    }

    #[test]
    fn loop_decrements_and_branches() {
        let (mut st, mut mem) = setup();
        st.a[3] = 3;
        st.pc = 0x8000_0010;
        let out = run(
            &mut st,
            &mut mem,
            Instr::Loop {
                aa: AReg(3),
                off: -4,
            },
        );
        assert_eq!(st.a[3], 2);
        assert_eq!(out.branch_taken, Some(true));
        assert_eq!(st.pc, 0x8000_0008);
        st.a[3] = 1;
        st.pc = 0x8000_0010;
        let out = run(
            &mut st,
            &mut mem,
            Instr::Loop {
                aa: AReg(3),
                off: -4,
            },
        );
        assert_eq!(st.a[3], 0);
        assert_eq!(
            out.branch_taken,
            Some(false),
            "exits when counter reaches zero"
        );
    }

    #[test]
    fn call_ret_roundtrip_preserves_upper_context() {
        let (mut st, mut mem) = setup();
        st.pc = 0x8000_0000;
        st.d[8] = 0x1234;
        st.a[12] = 0x5678;
        run(&mut st, &mut mem, Instr::Call { off: 0x100 });
        assert_eq!(st.pc, 0x8000_0200);
        assert_eq!(st.a[11], 0x8000_0004, "return address");
        // Callee clobbers.
        st.d[8] = 0;
        st.a[12] = 0;
        let out = run(&mut st, &mut mem, Instr::Ret);
        assert_eq!(out.flow.unwrap().kind, FlowKind::Return);
        assert_eq!(st.pc, 0x8000_0004);
        assert_eq!(st.d[8], 0x1234);
        assert_eq!(st.a[12], 0x5678);
    }

    #[test]
    fn jl_is_a_light_call_without_csa() {
        let (mut st, mut mem) = setup();
        let fcx_before = st.fcx;
        st.pc = 0x8000_0000;
        run(&mut st, &mut mem, Instr::Jl { off: 4 });
        assert_eq!(st.a[11], 0x8000_0004);
        assert_eq!(st.fcx, fcx_before, "JL allocates no CSA");
    }

    #[test]
    fn interrupt_entry_and_rfe() {
        let (mut st, mut mem) = setup();
        st.biv = 0x8000_2000;
        st.pc = 0x8000_0042;
        st.icr_ie = true;
        st.icr_ccpn = 0;
        let flow = enter_interrupt(&mut st, &mut mem, 5).unwrap();
        assert_eq!(flow.kind, FlowKind::Exception);
        assert_eq!(st.pc, 0x8000_2000 + 5 * 32);
        assert_eq!(st.icr_ccpn, 5);
        assert!(!st.icr_ie, "IE cleared on entry");
        assert_eq!(st.a[11], 0x8000_0042);
        // Handler returns.
        let out = run(&mut st, &mut mem, Instr::Rfe);
        assert_eq!(out.flow.unwrap().kind, FlowKind::ExceptionReturn);
        assert_eq!(st.pc, 0x8000_0042);
        assert_eq!(st.icr_ccpn, 0);
        assert!(st.icr_ie, "IE restored by RFE");
    }

    #[test]
    fn syscall_vectors_to_btv() {
        let (mut st, mut mem) = setup();
        st.btv = 0x8000_3000;
        st.pc = 0x8000_0010;
        let out = run(&mut st, &mut mem, Instr::Syscall { num: 9 });
        assert_eq!(out.flow.unwrap().kind, FlowKind::Exception);
        assert_eq!(st.pc, 0x8000_3000);
        assert_eq!(st.d[15], 9);
        assert_eq!(st.a[11], 0x8000_0014);
    }

    #[test]
    fn misc_system_ops() {
        let (mut st, mut mem) = setup();
        run(&mut st, &mut mem, Instr::Enable);
        assert!(st.icr_ie);
        run(&mut st, &mut mem, Instr::Disable);
        assert!(!st.icr_ie);
        let out = run(&mut st, &mut mem, Instr::Debug { code: 7 });
        assert_eq!(out.debug, Some(7));
        let out = run(&mut st, &mut mem, Instr::Wait);
        assert!(out.wait);
        let out = run(&mut st, &mut mem, Instr::Halt);
        assert!(out.halt);
    }

    #[test]
    fn sel_conditional_move() {
        let (mut st, mut mem) = setup();
        st.d[0] = 1;
        st.d[1] = 0;
        st.d[2] = 99;
        run(
            &mut st,
            &mut mem,
            Instr::Sel {
                rd: DReg(0),
                cond: DReg(1),
                rs: DReg(2),
            },
        );
        assert_eq!(st.d[0], 1, "cond false keeps rd");
        st.d[1] = 1;
        run(
            &mut st,
            &mut mem,
            Instr::Sel {
                rd: DReg(0),
                cond: DReg(1),
                rs: DReg(2),
            },
        );
        assert_eq!(st.d[0], 99, "cond true takes rs");
    }

    #[test]
    fn mem_access_plan_matches_execution() {
        let (mut st, _mem) = setup();
        st.a[2] = 0xD000_0100;
        let plan = mem_access_of(
            &st,
            &Instr::Ld {
                rd: DReg(0),
                ab: AReg(2),
                off: 8,
                width: MemWidth::Half,
                sign: false,
            },
        )
        .unwrap();
        assert_eq!(plan.addr, Addr(0xD000_0108));
        assert_eq!(plan.size, 2);
        assert!(!plan.is_store);
        assert!(mem_access_of(&st, &Instr::Nop).is_none());
    }
}
