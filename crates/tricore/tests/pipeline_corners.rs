//! Pipeline corner cases beyond the in-crate unit tests.

use audo_common::{Addr, Cycle, EventSink, PerfEvent, SourceId};
use audo_tricore::asm::assemble;
use audo_tricore::bus::TestBus;
use audo_tricore::pipeline::{Core, CoreConfig};

fn setup(src: &str) -> (Core, TestBus) {
    let image = assemble(src).expect("assembles");
    let mut bus = TestBus::new();
    bus.mem.add_region(Addr(0x0000_1000), 0x8000);
    bus.mem.add_region(Addr(0xD000_0000), 0x1_0000);
    image.load_into(&mut bus.mem).unwrap();
    let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
    core.arch_mut().fcx =
        audo_tricore::arch::init_csa_list(&mut bus.mem, Addr(0xD000_8000), 32).unwrap();
    (core, bus)
}

fn run(core: &mut Core, bus: &mut TestBus, max: u64) -> (u64, Vec<audo_common::EventRecord>) {
    let mut sink = EventSink::new();
    let mut events = Vec::new();
    let mut cyc = 0;
    while !core.is_halted() && cyc < max {
        core.step(Cycle(cyc), bus, None, &mut sink)
            .expect("no fault");
        events.append(&mut sink.drain());
        cyc += 1;
    }
    assert!(core.is_halted(), "did not halt in {max} cycles");
    (cyc, events)
}

#[test]
fn redirect_flushes_stale_instructions() {
    let src = "
        .org 0x1000
    _start:
        movi d0, 1
        halt
    alt:
        movi d0, 99
        halt
    ";
    let (mut core, mut bus) = setup(src);
    // Let fetch fill the queue, then redirect before anything retires.
    let mut sink = EventSink::disabled();
    core.step(Cycle(0), &mut bus, None, &mut sink).unwrap();
    let image = assemble(src).unwrap();
    core.redirect(image.symbol("alt").unwrap());
    let (_, _) = run(&mut core, &mut bus, 1000);
    assert_eq!(
        core.arch().d[0],
        99,
        "execution continued at the redirect target"
    );
}

#[test]
fn deep_loop_nest_exercises_loop_buffer_replacement() {
    // Inner loops are buffered; outer LOOPs thrash the single buffer.
    let src = "
        .org 0x1000
    _start:
        movi d0, 0
        movi d1, 6
        mov.a a2, d1
    outer:
        movi d2, 10
        mov.a a3, d2
    inner:
        addi d0, d0, 1
        loop a3, inner
        loop a2, outer
        halt
    ";
    let (mut core, mut bus) = setup(src);
    let (_, _) = run(&mut core, &mut bus, 10_000);
    assert_eq!(core.arch().d[0], 60);
}

#[test]
fn zero_iteration_loop_wraps_like_hardware() {
    // LOOP decrements before testing: a0 = 1 exits immediately; a0 = 0
    // wraps to u32::MAX (documented TriCore behaviour) — use jnz guards in
    // real code. Here we just confirm the single-iteration case.
    let src = "
        .org 0x1000
    _start:
        movi d1, 1
        mov.a a3, d1
    head:
        addi d0, d0, 1
        loop a3, head
        halt
    ";
    let (mut core, mut bus) = setup(src);
    run(&mut core, &mut bus, 1000);
    assert_eq!(core.arch().d[0], 1, "counter 1 = exactly one iteration");
}

#[test]
fn store_then_load_same_address_sees_the_store() {
    // The store buffer model must not let a following load read stale data.
    let src = "
        .org 0x1000
    _start:
        la a2, 0xD0000100
        movi d0, 77
        st.w d0, [a2]
        ld.w d1, [a2]
        halt
    ";
    let (mut core, mut bus) = setup(src);
    run(&mut core, &mut bus, 1000);
    assert_eq!(core.arch().d[1], 77);
}

#[test]
fn debug_markers_survive_dual_issue() {
    let src = "
        .org 0x1000
    _start:
        debug 1
        add d1, d2, d3
        lea a2, a2, 4
        debug 2
        halt
    ";
    let (mut core, mut bus) = setup(src);
    let (_, events) = run(&mut core, &mut bus, 1000);
    let codes: Vec<u8> = events
        .iter()
        .filter_map(|e| match e.event {
            PerfEvent::DebugMarker { code } => Some(code),
            _ => None,
        })
        .collect();
    assert_eq!(codes, vec![1, 2]);
}

#[test]
fn interrupt_priority_masking_blocks_lower_and_equal() {
    let src = "
        .org 0x1000
    _start:
        li d0, 0x2000
        mtcr biv, d0
        li d1, 0x105        ; ICR: IE + CCPN 5
        mtcr icr, d1
        movi d2, 0
    spin:
        addi d2, d2, 1
        li d3, 200
        jne d2, d3, spin
        halt
        .org 0x2000 + 5*32
        movi d4, 55
        rfe
        .org 0x2000 + 6*32
        movi d4, 66
        rfe
    ";
    let image = assemble(src).unwrap();
    let mut bus = TestBus::new();
    bus.mem.add_region(Addr(0x1000), 0x8000);
    bus.mem.add_region(Addr(0xD000_0000), 0x1_0000);
    image.load_into(&mut bus.mem).unwrap();
    let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
    core.arch_mut().fcx =
        audo_tricore::arch::init_csa_list(&mut bus.mem, Addr(0xD000_8000), 32).unwrap();
    let mut sink = EventSink::disabled();
    let mut taken = Vec::new();
    for cyc in 0..3000u64 {
        if core.is_halted() {
            break;
        }
        // Offer priority 5 (equal to CCPN: must be masked), then 6.
        let irq = if (100..1000).contains(&cyc) {
            Some(5)
        } else if (1000..1002).contains(&cyc) {
            Some(6) // a short pulse: cleared once accepted, like a real SRN
        } else {
            None
        };
        let out = core.step(Cycle(cyc), &mut bus, irq, &mut sink).unwrap();
        if let Some(p) = out.irq_taken {
            taken.push(p);
        }
    }
    assert!(core.is_halted());
    assert_eq!(core.arch().d[4], 66, "only the higher-priority handler ran");
    assert_eq!(taken, vec![6], "equal priority must be masked");
}
