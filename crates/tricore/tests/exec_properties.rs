//! Property tests for tricky instruction semantics: TriCore-style dynamic
//! shifts and bit-field operations, validated against reference formulas.

use audo_common::Addr;
use audo_tricore::arch::ArchState;
use audo_tricore::exec::execute;
use audo_tricore::isa::{DReg, Instr};
use audo_tricore::mem::FlatMem;
use proptest::prelude::*;

fn run1(instr: Instr, d1: u32, d2: u32) -> u32 {
    let mut st = ArchState::new(0x1000);
    let mut mem = FlatMem::new();
    st.d[1] = d1;
    st.d[2] = d2;
    execute(&mut st, &mut mem, &instr, 0x1000, 4).expect("executes");
    st.d[0]
}

/// Reference for `SH`: low 6 bits of the amount, sign-extended; positive
/// left, negative right logical; |amt| ≥ 32 saturates to zero.
fn ref_sh(v: u32, amount: u32) -> u32 {
    let amt = ((amount as i32) << 26) >> 26;
    if amt >= 0 {
        if amt >= 32 {
            0
        } else {
            v << amt
        }
    } else if -amt >= 32 {
        0
    } else {
        v >> -amt
    }
}

fn ref_sha(v: u32, amount: u32) -> u32 {
    let amt = ((amount as i32) << 26) >> 26;
    if amt >= 0 {
        if amt >= 32 {
            0
        } else {
            v << amt
        }
    } else if -amt >= 32 {
        ((v as i32) >> 31) as u32
    } else {
        ((v as i32) >> -amt) as u32
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2000, ..ProptestConfig::default() })]

    #[test]
    fn sh_matches_reference(v in any::<u32>(), amount in any::<u32>()) {
        let got = run1(Instr::Sh { rd: DReg(0), ra: DReg(1), rb: DReg(2) }, v, amount);
        prop_assert_eq!(got, ref_sh(v, amount));
    }

    #[test]
    fn sha_matches_reference(v in any::<u32>(), amount in any::<u32>()) {
        let got = run1(Instr::Sha { rd: DReg(0), ra: DReg(1), rb: DReg(2) }, v, amount);
        prop_assert_eq!(got, ref_sha(v, amount));
    }

    /// extract(insert(x, field)) returns the field.
    #[test]
    fn insert_then_extract_is_identity(
        base in any::<u32>(),
        field in any::<u32>(),
        pos in 0u8..32,
        width_seed in 1u8..33,
    ) {
        // Constrain width so the field fits (avoids reject storms).
        let width = width_seed.min(32 - pos);
        prop_assume!(width >= 1);
        let mut st = ArchState::new(0x1000);
        let mut mem = FlatMem::new();
        st.d[0] = base;
        st.d[2] = field;
        execute(
            &mut st,
            &mut mem,
            &Instr::Insert { rd: DReg(0), rs: DReg(2), pos, width },
            0x1000,
            4,
        )
        .unwrap();
        execute(
            &mut st,
            &mut mem,
            &Instr::Extr { rd: DReg(3), ra: DReg(0), pos, width },
            0x1004,
            4,
        )
        .unwrap();
        let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
        prop_assert_eq!(st.d[3], field & mask);
        // Bits outside the field are untouched.
        let keep = !(mask << pos);
        prop_assert_eq!(st.d[0] & keep, base & keep);
    }

    /// Division semantics: never traps, truncates toward zero, and
    /// `q * b + r == a` whenever `b != 0` (no overflow case).
    #[test]
    fn div_rem_identity(a in any::<i32>(), b in any::<i32>()) {
        let q = run1(Instr::Div { rd: DReg(0), ra: DReg(1), rb: DReg(2) }, a as u32, b as u32) as i32;
        let r = run1(Instr::Rem { rd: DReg(0), ra: DReg(1), rb: DReg(2) }, a as u32, b as u32) as i32;
        if b == 0 {
            prop_assert_eq!(q, 0);
            prop_assert_eq!(r, a);
        } else if !(a == i32::MIN && b == -1) {
            prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
            prop_assert_eq!(q, a.wrapping_div(b));
        }
    }

    /// `CLZ` agrees with the host.
    #[test]
    fn clz_matches_host(v in any::<u32>()) {
        let got = run1(Instr::Clz { rd: DReg(0), ra: DReg(1) }, v, 0);
        prop_assert_eq!(got, v.leading_zeros());
    }

    /// `min`/`max` are signed and agree with the host.
    #[test]
    fn min_max_signed(a in any::<i32>(), b in any::<i32>()) {
        let mn = run1(Instr::Min { rd: DReg(0), ra: DReg(1), rb: DReg(2) }, a as u32, b as u32);
        let mx = run1(Instr::Max { rd: DReg(0), ra: DReg(1), rb: DReg(2) }, a as u32, b as u32);
        prop_assert_eq!(mn as i32, a.min(b));
        prop_assert_eq!(mx as i32, a.max(b));
    }
}

#[test]
fn addr_reporting_in_errors_uses_given_pc() {
    // Decode errors report the caller-supplied PC.
    let bad = [0x1Eu8, 0x00]; // unassigned 16-bit opcode 15
    let err = audo_tricore::encode::decode(&bad, Addr(0xCAFE)).unwrap_err();
    assert!(err.to_string().contains("cafe"), "{err}");
}
