//! Property tests over the whole instruction set: encode/decode round-trip
//! for every representable instruction, and assembler↔disassembler
//! consistency.

use audo_common::Addr;
use audo_tricore::asm::assemble;
use audo_tricore::disasm::format_instr;
use audo_tricore::encode::{decode, encode};
use audo_tricore::isa::{AReg, BranchCond, DReg, Instr, MemWidth};
use proptest::prelude::*;

fn dreg() -> impl Strategy<Value = DReg> {
    (0u8..16).prop_map(DReg)
}

fn areg() -> impl Strategy<Value = AReg> {
    (0u8..16).prop_map(AReg)
}

fn width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::Byte),
        Just(MemWidth::Half),
        Just(MemWidth::Word)
    ]
}

fn cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::LtU),
        Just(BranchCond::GeU),
    ]
}

/// Every constructible instruction with in-range immediates.
fn arb_instr() -> impl Strategy<Value = Instr> {
    use Instr::*;
    prop_oneof![
        Just(Nop),
        Just(Ret),
        Just(Rfe),
        Just(Enable),
        Just(Disable),
        Just(Wait),
        Just(Halt),
        (dreg(), dreg()).prop_map(|(rd, rs)| MovD { rd, rs }),
        (areg(), areg()).prop_map(|(ad, a_src)| MovAA { ad, a_src }),
        (areg(), dreg()).prop_map(|(ad, rs)| MovDtoA { ad, rs }),
        (dreg(), areg()).prop_map(|(rd, a_src)| MovAtoD { rd, a_src }),
        (dreg(), any::<i16>()).prop_map(|(rd, imm)| MovI { rd, imm }),
        (dreg(), any::<u16>()).prop_map(|(rd, imm)| MovH { rd, imm }),
        (dreg(), any::<u16>()).prop_map(|(rd, imm)| MovU { rd, imm }),
        (areg(), any::<u16>()).prop_map(|(ad, imm)| MovHA { ad, imm }),
        (areg(), any::<i16>()).prop_map(|(ad, imm)| AddIA { ad, imm }),
        (dreg(), any::<u16>()).prop_map(|(rd, imm)| OrIL { rd, imm }),
        (areg(), areg(), -2048i16..2048).prop_map(|(ad, ab, off)| Lea { ad, ab, off }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| Add { rd, ra, rb }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| Sub { rd, ra, rb }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| And { rd, ra, rb }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| Or { rd, ra, rb }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| Xor { rd, ra, rb }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| Min { rd, ra, rb }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| Max { rd, ra, rb }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| Mul { rd, ra, rb }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| Mac { rd, ra, rb }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| Div { rd, ra, rb }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| Rem { rd, ra, rb }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| Sh { rd, ra, rb }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| Sha { rd, ra, rb }),
        (dreg(), dreg(), -32i8..32).prop_map(|(rd, ra, amount)| ShI { rd, ra, amount }),
        (dreg(), dreg(), -2048i16..2048).prop_map(|(rd, ra, imm)| AddI { rd, ra, imm }),
        (dreg(), dreg(), 0u16..4096).prop_map(|(rd, ra, imm)| AndI { rd, ra, imm }),
        (dreg(), dreg(), 0u16..4096).prop_map(|(rd, ra, imm)| OrI { rd, ra, imm }),
        (dreg(), dreg(), 0u16..4096).prop_map(|(rd, ra, imm)| XorI { rd, ra, imm }),
        (dreg(), dreg()).prop_map(|(rd, ra)| Clz { rd, ra }),
        (dreg(), dreg()).prop_map(|(rd, ra)| SextB { rd, ra }),
        (dreg(), dreg()).prop_map(|(rd, ra)| SextH { rd, ra }),
        (dreg(), dreg()).prop_map(|(rd, ra)| ZextB { rd, ra }),
        (dreg(), dreg()).prop_map(|(rd, ra)| ZextH { rd, ra }),
        (dreg(), dreg(), 0u8..32, 1u8..33).prop_map(|(rd, ra, pos, width)| Extr {
            rd,
            ra,
            pos,
            width
        }),
        (dreg(), dreg(), 0u8..32, 1u8..33).prop_map(|(rd, rs, pos, width)| Insert {
            rd,
            rs,
            pos,
            width
        }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| Lt { rd, ra, rb }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| LtU { rd, ra, rb }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| EqR { rd, ra, rb }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, ra, rb)| NeR { rd, ra, rb }),
        (dreg(), dreg(), dreg()).prop_map(|(rd, cond, rs)| Sel { rd, cond, rs }),
        (dreg(), areg(), -2048i16..2048, width(), any::<bool>()).prop_map(
            |(rd, ab, off, width, sign)| Ld {
                rd,
                ab,
                off,
                width,
                // Word loads ignore `sign`; the canonical encoding is false.
                sign: sign && width != MemWidth::Word,
            }
        ),
        (dreg(), areg(), -2048i16..2048, width()).prop_map(|(rs, ab, off, width)| St {
            rs,
            ab,
            off,
            width
        }),
        (dreg(), areg(), -2048i16..2048).prop_map(|(rd, ab, inc)| LdWPostInc { rd, ab, inc }),
        (dreg(), areg(), -2048i16..2048).prop_map(|(rs, ab, inc)| StWPostInc { rs, ab, inc }),
        (areg(), areg(), -2048i16..2048).prop_map(|(ad, ab, off)| LdA { ad, ab, off }),
        (areg(), areg(), -2048i16..2048).prop_map(|(a_src, ab, off)| StA { a_src, ab, off }),
        (-(1i32 << 23)..(1 << 23)).prop_map(|off| J { off }),
        (-(1i32 << 23)..(1 << 23)).prop_map(|off| Jl { off }),
        (-(1i32 << 23)..(1 << 23)).prop_map(|off| Call { off }),
        areg().prop_map(|aa| Ji { aa }),
        areg().prop_map(|aa| CallI { aa }),
        (cond(), dreg(), dreg(), -2048i16..2048).prop_map(|(cond, ra, rb, off)| JCond {
            cond,
            ra,
            rb,
            off
        }),
        (dreg(), -2048i16..2048).prop_map(|(ra, off)| Jz { ra, off }),
        (dreg(), -2048i16..2048).prop_map(|(ra, off)| Jnz { ra, off }),
        (areg(), -2048i16..2048).prop_map(|(aa, off)| Loop { aa, off }),
        (0u16..4096).prop_map(|num| Syscall { num }),
        (dreg(), 0u16..4096).prop_map(|(rd, csfr)| Mfcr { rd, csfr }),
        (dreg(), 0u16..4096).prop_map(|(rs, csfr)| Mtcr { csfr, rs }),
        any::<u8>().prop_map(|code| Debug { code }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2000, ..ProptestConfig::default() })]

    /// decode(encode(i)) == i for every representable instruction.
    #[test]
    fn encode_decode_roundtrip(instr in arb_instr()) {
        let enc = encode(&instr);
        let (back, len) = decode(enc.as_bytes(), Addr(0)).expect("decodes");
        prop_assert_eq!(back, instr);
        prop_assert_eq!(len, enc.len);
    }

    /// Sign bit of the halfword correctly selects the format.
    #[test]
    fn length_bit_is_consistent(instr in arb_instr()) {
        let enc = encode(&instr);
        let is32 = enc.bytes[0] & 1 == 1;
        prop_assert_eq!(enc.len == 4, is32);
    }
}

/// Disassembled branch instructions reassemble to the same bytes when
/// anchored at a concrete PC: the disassembler prints absolute targets,
/// the assembler converts them back to PC-relative offsets, and the two
/// must agree bit-for-bit through the halfword scaling.
#[test]
fn branch_disassembly_reassembles_at_concrete_pc() {
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    let strategy = arb_instr();
    // Mid-flash anchor: ±16 MiB (24-bit) targets stay inside the segment.
    let pc = Addr(0x8100_0000);
    let mut checked = 0;
    for _ in 0..2000 {
        let instr = strategy.new_tree(&mut runner).unwrap().current();
        if !instr.is_control_flow() {
            continue;
        }
        let text = format_instr(&instr, pc);
        let src = format!(".org {:#x}\n    {text}\n", pc.0);
        let image = assemble(&src).unwrap_or_else(|e| panic!("`{text}` must reassemble: {e}"));
        let bytes = &image.sections()[0].bytes;
        let enc = encode(&instr);
        assert_eq!(
            bytes.as_slice(),
            enc.as_bytes(),
            "asm/disasm disagree for {instr:?} (`{text}`) at {pc:?}"
        );
        checked += 1;
    }
    assert!(checked > 200, "enough branch samples ({checked})");
}

/// Pinned regressions for the branch round-trip: the offsets that sit on
/// the boundaries of the halfword-scaled immediate fields.
#[test]
fn branch_roundtrip_boundary_offsets() {
    let pc = Addr(0x8100_0000);
    let cases = [
        Instr::J { off: 0 },
        Instr::J { off: (1 << 23) - 1 },
        Instr::J { off: -(1 << 23) },
        Instr::Jl { off: -1 },
        Instr::Call { off: 1 },
        Instr::Jz {
            ra: DReg(0),
            off: 2047,
        },
        Instr::Jnz {
            ra: DReg(15),
            off: -2048,
        },
        Instr::Loop {
            aa: AReg(2),
            off: -2048,
        },
        Instr::JCond {
            cond: BranchCond::GeU,
            ra: DReg(3),
            rb: DReg(4),
            off: 2047,
        },
    ];
    for instr in cases {
        let text = format_instr(&instr, pc);
        let src = format!(".org {:#x}\n    {text}\n", pc.0);
        let image = assemble(&src).unwrap_or_else(|e| panic!("`{text}` must reassemble: {e}"));
        let enc = encode(&instr);
        assert_eq!(
            image.sections()[0].bytes.as_slice(),
            enc.as_bytes(),
            "asm/disasm disagree for {instr:?} (`{text}`)"
        );
    }
}

/// Disassembled non-branch instructions reassemble to the same bytes.
///
/// (Branch text uses absolute targets that only resolve at a concrete PC,
/// so they are exercised with an anchored PC above.)
#[test]
fn disassembly_reassembles_identically() {
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    let strategy = arb_instr();
    let mut checked = 0;
    for _ in 0..2000 {
        let instr = strategy.new_tree(&mut runner).unwrap().current();
        if instr.is_control_flow() {
            continue; // targets are PC-relative in text form
        }
        let text = format_instr(&instr, Addr(0x1000));
        let src = format!(".org 0x1000\n    {text}\n");
        let image = assemble(&src).unwrap_or_else(|e| panic!("`{text}` must reassemble: {e}"));
        let bytes = &image.sections()[0].bytes;
        let enc = encode(&instr);
        assert_eq!(
            bytes.as_slice(),
            enc.as_bytes(),
            "asm/disasm disagree for {instr:?} (`{text}`)"
        );
        checked += 1;
    }
    assert!(checked > 1000, "enough non-branch samples ({checked})");
}
