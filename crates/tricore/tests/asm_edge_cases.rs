//! Assembler edge cases and error reporting beyond the unit tests.

use audo_common::{Addr, SimError};
use audo_tricore::asm::assemble;

fn err_of(src: &str) -> String {
    assemble(src).unwrap_err().to_string()
}

#[test]
fn expression_operator_precedence_and_parens() {
    let img = assemble(
        "
        .equ A, 2 + 3 * 4
        .equ B, (2 + 3) * 4
        .equ C, 10 - 2 - 3
        .equ D, -A + 30
        .org 0x1000
        .word A, B, C, D
    ",
    )
    .unwrap();
    let b = &img.sections()[0].bytes;
    let word = |i: usize| u32::from_le_bytes([b[i * 4], b[i * 4 + 1], b[i * 4 + 2], b[i * 4 + 3]]);
    assert_eq!(word(0), 14, "multiplication binds tighter");
    assert_eq!(word(1), 20);
    assert_eq!(word(2), 5, "left-associative subtraction");
    assert_eq!(word(3), 16u32);
}

#[test]
fn hi_lo_hia_functions() {
    let img = assemble(
        "
        .equ X, 0xD0008123
        .org 0x1000
        .word lo(X), hi(X), hia(X), hia(0xD000F000)
    ",
    )
    .unwrap();
    let b = &img.sections()[0].bytes;
    let word = |i: usize| u32::from_le_bytes([b[i * 4], b[i * 4 + 1], b[i * 4 + 2], b[i * 4 + 3]]);
    assert_eq!(word(0), 0x8123);
    assert_eq!(word(1), 0xD000);
    assert_eq!(
        word(2),
        0xD001,
        "hia adjusts for a negative signed low half"
    );
    assert_eq!(word(3), 0xD001);
}

#[test]
fn char_literals_and_binary_numbers() {
    let img = assemble(".org 0\n .byte 'A', 'z'\n .half 0b1010_1010\n").unwrap();
    let b = &img.sections()[0].bytes;
    assert_eq!(b[0], b'A');
    assert_eq!(b[1], b'z');
    assert_eq!(u16::from_le_bytes([b[2], b[3]]), 0xAA);
}

#[test]
fn error_messages_carry_line_numbers() {
    let e = assemble(".org 0\n nop\n bogus_op d1\n").unwrap_err();
    match e {
        SimError::Assemble { line, ref message } => {
            assert_eq!(line, 3);
            assert!(message.contains("bogus_op"));
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn bad_operand_forms_are_rejected() {
    assert!(err_of(".org 0\n ld.w d1, [x2]\n").contains("memory operand"));
    assert!(err_of(".org 0\n ld.a a1, [a2+]4\n").contains("post-increment"));
    assert!(err_of(".org 0\n add d1, d2\n").contains("expects 3 operands"));
    assert!(err_of(".org 0\n mov d1, a2\n").contains("expected data register"));
    assert!(err_of(".org 0\n movu d1, 0x10000\n").contains("16-bit"));
    assert!(err_of(".org 0\n shi d1, d2, 40\n").contains("shift amount"));
    assert!(err_of(".org 0\n extr d1, d2, 32, 1\n").contains("pos"));
    assert!(err_of(".org 0\n .align 3\n").contains("power of two"));
    assert!(err_of(".org 0\n .word\n").contains("at least one value"));
}

#[test]
fn labels_on_their_own_line_and_multiple_labels() {
    let img = assemble(
        "
        .org 0x2000
    alpha:
    beta:  gamma: nop
        halt
    ",
    )
    .unwrap();
    assert_eq!(img.symbol("alpha"), Some(Addr(0x2000)));
    assert_eq!(img.symbol("beta"), Some(Addr(0x2000)));
    assert_eq!(img.symbol("gamma"), Some(Addr(0x2000)));
}

#[test]
fn forward_references_resolve() {
    let img = assemble(
        "
        .org 0x1000
        j end
        .word tab
    tab:
        .word 7
    end:
        halt
    ",
    )
    .unwrap();
    let tab = img.symbol("tab").unwrap();
    let b = &img.sections()[0].bytes;
    assert_eq!(u32::from_le_bytes([b[4], b[5], b[6], b[7]]), tab.0);
}

#[test]
fn sixteen_bit_compression_is_size_stable_across_passes() {
    // A program mixing every auto-compressed form assembles with consistent
    // label placement (sizes fixed in pass 1).
    let img = assemble(
        "
        .org 0x1000
    a0_lbl:
        mov d1, d2          ; 2
        add d1, d1, d2      ; 2
        sub d3, d3, d4      ; 2
        and d3, d3, d4      ; 2
        or  d5, d5, d6      ; 2
        mov.aa a1, a2       ; 2
        mov.a a1, d2        ; 2
        mov.d d1, a2        ; 2
        ld.w d1, [a2]       ; 2
        st.w d1, [a2]       ; 2
        addi d1, d1, 7      ; 2
        addi d1, d1, -8     ; 2
        debug 15            ; 2
        ret                 ; 2
    end_lbl:
    ",
    )
    .unwrap();
    let span = img.symbol("end_lbl").unwrap().0 - img.symbol("a0_lbl").unwrap().0;
    assert_eq!(span, 14 * 2, "every instruction took its 16-bit form");
}

#[test]
fn equ_must_be_defined_before_use_in_sizing() {
    // .equ after use still resolves in pass 2 for 32-bit forms.
    let img = assemble(
        "
        .org 0x1000
        movi d0, LATER
        .equ LATER, 42
    ",
    );
    assert!(img.is_ok(), "pass-2 resolution: {img:?}");
}
