//! Static per-block rate predictions and static-vs-measured divergence
//! checking.
//!
//! The paper's methodology reduces measured traces to characteristic rates
//! (flash accesses per 100 instructions, scratchpad accesses per 100
//! instructions, IPC). This module derives *static* bounds for the same
//! rates from the recovered CFG so a measured run can be checked against
//! them:
//!
//! * The **steady-state set** — the blocks that dominate a long run — is
//!   everything reachable from an interrupt vector plus everything in an
//!   unbounded cycle (the background loop). One-shot init code, such as a
//!   table-copy loop with a statically known trip count that no steady
//!   block can reach again, is excluded.
//! * Self-looping blocks with an inferable trip count (hardware `LOOP`
//!   counters, `addi -1; jnz` counters) are weighted by that count, which
//!   is what makes the mix "trip-weighted".
//! * The **IPC upper bound** comes from the tri-issue bundle model: at
//!   most one instruction per pipe (Ip/Ls/Lp) per cycle, no intra-bundle
//!   RAW dependencies, serializing instructions issue alone.
//! * The **IPC lower bound** assumes every data access pays its region's
//!   uncached worst-case latency, then halves the result as a safety
//!   margin (fetch stalls and arbitration are not modelled statically).
//! * The flash-rate bound assumes no data cache (sound worst case: the
//!   TC1767 has none, and the TC1797's can be defeated by large working
//!   sets).

use std::collections::BTreeMap;

use audo_platform::config::{Region, SocConfig};
use audo_tricore::isa::Instr;
use audo_tricore::pipeline::CostModel;

use crate::access::{self};
use crate::cfg::{self, Block, Cfg};
use crate::constprop::{RegState, Solution};
use crate::wcet;

/// Static rate prediction for one steady-state block.
#[derive(Debug, Clone)]
pub struct BlockPredict {
    /// Block start address.
    pub start: u32,
    /// Instruction count.
    pub instrs: u32,
    /// Trip weight (1 unless a self-loop trip count was inferred).
    pub weight: u64,
    /// Issue bundles under the tri-issue model.
    pub bundles: u32,
    /// Data-side accesses per iteration that statically hit program or
    /// data flash.
    pub flash_data: u32,
    /// Data-side accesses hitting a scratchpad (DSPR/PSPR).
    pub spr_data: u32,
    /// Data-side accesses hitting other known regions (SRAM/EMEM/periph).
    pub other_data: u32,
    /// Data-side accesses whose target could not be resolved.
    pub unknown_data: u32,
    /// Worst-case cycles per iteration: fully serial issue plus uncached
    /// data stalls plus a pipeline-redirect penalty when the block ends
    /// in a branch.
    pub worst_cycles: u64,
}

impl BlockPredict {
    /// Per-block IPC upper bound (instructions per bundle-cycle).
    #[must_use]
    pub fn ipc_ub(&self) -> f64 {
        f64::from(self.instrs) / f64::from(self.bundles.max(1))
    }
}

/// Whole-image static prediction.
#[derive(Debug, Clone, Default)]
pub struct Prediction {
    /// Steady-state blocks, sorted by start address.
    pub blocks: Vec<BlockPredict>,
    /// IPC cannot exceed this (best block bound + slack).
    pub ipc_ub: f64,
    /// IPC cannot fall below this (worst-stall model with safety factor).
    pub ipc_lb: f64,
    /// Static trip-weighted flash accesses per 100 instructions
    /// (data side, no-dcache assumption).
    pub flash_per_100: f64,
    /// Static trip-weighted scratchpad accesses per 100 instructions.
    pub spr_per_100: f64,
    /// Upper bound on the cycles any single carved block can cost per
    /// execution (from the shared pipeline cost model, at the SoC's
    /// worst-case memory latencies). Fleet envelope for the measured
    /// block profiler.
    pub block_cycles_ub: u64,
    /// Worst-case whole-program CSA depth, when the call graph is
    /// recursion-free and fully resolved. Fleet envelope for the
    /// measured `csa_depth_peak` gauge.
    pub csa_depth_ub: Option<u64>,
}

/// Meet of the register states flowing into `block` from outside itself
/// (i.e. excluding its own back edge). For a loop block this is the
/// first-iteration entry state, which is what resolves the base address
/// of a post-increment sweep.
fn outside_entry(
    cfg: &Cfg,
    sol: &Solution,
    preds: &BTreeMap<u32, Vec<u32>>,
    block: u32,
) -> RegState {
    let mut st: Option<RegState> = None;
    let mut found_pred = false;
    if let Some(ps) = preds.get(&block) {
        for &p in ps {
            if p == block {
                continue;
            }
            found_pred = true;
            let Some(out) = sol.edge_out.get(&(p, block)) else {
                continue;
            };
            match &mut st {
                None => st = Some(out.clone()),
                Some(cur) => {
                    cur.meet(out);
                }
            }
        }
    }
    // Roots have no predecessors; everything else falls back to the
    // (already met) solution entry.
    if !found_pred && cfg.roots.iter().any(|(a, _)| *a == block) {
        return RegState::unknown();
    }
    st.unwrap_or_else(|| sol.entry_of(block))
}

/// Infers the trip count of a self-looping block: the hardware `LOOP`
/// counter, or an `addi rN, rN, -1; ...; jnz rN` counter, evaluated in
/// the first-iteration entry state.
#[must_use]
pub fn self_loop_trip(block: &Block, outside: &RegState) -> Option<u64> {
    if !block.edges.iter().any(|e| e.to == block.start) {
        return None;
    }
    let last = block.instrs.last()?;
    let trip = match last.instr {
        Instr::Loop { aa, .. } => outside.a[aa.0 as usize],
        Instr::Jnz { ra, .. } => {
            let decremented = block.instrs.iter().any(|s| {
                matches!(s.instr, Instr::AddI { rd, ra: src, imm: -1 }
                    if rd == ra && src == ra)
            });
            if decremented {
                outside.d[ra.0 as usize]
            } else {
                None
            }
        }
        _ => None,
    }?;
    // Zero means "loops 2^32 times" on real decrement counters; huge
    // values are almost certainly not a static constant worth trusting.
    if (1..=16_777_216).contains(&trip) {
        Some(u64::from(trip))
    } else {
        None
    }
}

/// Greedy tri-issue bundle count: at most three instructions per bundle,
/// one per pipe, no intra-bundle RAW dependency, serializing instructions
/// alone, control flow closes the bundle it joins.
#[must_use]
pub fn bundle_count(instrs: &[Instr]) -> u32 {
    let mut bundles = 0u32;
    let mut in_bundle = 0usize;
    let mut pipes_used: Vec<audo_tricore::isa::Pipe> = Vec::with_capacity(3);
    let mut writes: Vec<audo_tricore::isa::RegRef> = Vec::new();

    for instr in instrs {
        let pipe = instr.pipe();
        let raw = instr.reads().iter().any(|r| writes.contains(&r));
        let fits = in_bundle > 0
            && in_bundle < 3
            && !pipes_used.contains(&pipe)
            && !raw
            && !instr.is_serializing();
        if !fits {
            bundles += 1;
            in_bundle = 0;
            pipes_used.clear();
            writes.clear();
        }
        in_bundle += 1;
        pipes_used.push(pipe);
        for w in instr.writes().iter() {
            writes.push(w);
        }
        if instr.is_control_flow() || instr.is_serializing() {
            // Close the bundle: nothing issues alongside past a redirect.
            in_bundle = 3;
        }
    }
    bundles.max(1)
}

fn data_penalty(soc: &SocConfig, region: Option<Region>) -> u64 {
    match region {
        Some(Region::PflashCached | Region::PflashUncached) => soc.flash.wait_states,
        // EEPROM programming stalls are real but rare; charging the full
        // write-busy time would swamp the model, so charge a read.
        Some(Region::Dflash) => soc.dflash_read_latency,
        Some(Region::Dspr | Region::Pspr) => 0,
        Some(Region::Sram) => soc.sram_latency,
        Some(Region::Emem) => soc.emem_latency,
        Some(Region::Periph) => soc.periph_latency,
        Some(Region::Unmapped) => soc.flash.wait_states,
        None => soc.flash.wait_states.max(soc.sram_latency),
    }
}

/// Computes the steady-state block set with trip weights.
///
/// Returns `(block start -> weight)`; see the module docs for the rules.
#[must_use]
pub fn steady_set(cfg: &Cfg, sol: &Solution) -> BTreeMap<u32, u64> {
    let preds = cfg.preds();
    let sccs = cfg::sccs(cfg);

    // Roots of the steady region: interrupt vectors, plus every block in
    // a cycle whose iteration count is NOT statically bounded.
    let mut seeds: Vec<u32> = cfg
        .roots
        .iter()
        .filter(|(_, name)| name.starts_with("vector"))
        .map(|(a, _)| *a)
        .collect();
    for comp in &sccs {
        let bounded = comp.len() == 1 && {
            let only = *comp.iter().next().expect("non-empty");
            let outside = outside_entry(cfg, sol, &preds, only);
            self_loop_trip(&cfg.blocks[&only], &outside).is_some()
        };
        if !bounded {
            seeds.extend(comp.iter().copied());
        }
    }
    // A program with no interrupts and no unbounded loop (straight-line
    // test images): every reachable block is "steady".
    if seeds.is_empty() {
        seeds = cfg.roots.iter().map(|(a, _)| *a).collect();
    }

    let steady = cfg::reachable(cfg, &seeds);
    steady
        .into_iter()
        .map(|b| {
            let outside = outside_entry(cfg, sol, &preds, b);
            let w = self_loop_trip(&cfg.blocks[&b], &outside).unwrap_or(1);
            (b, w)
        })
        .collect()
}

/// Builds the whole-image prediction.
#[must_use]
pub fn predict(cfg: &Cfg, sol: &Solution, soc: &SocConfig) -> Prediction {
    let preds = cfg.preds();
    let weights = steady_set(cfg, sol);
    // One timing table: the same exported cost model the WCET analyzer
    // and the cycle-level pipeline share.
    let model = CostModel::new(soc.cpu.clone(), wcet::soc_mem_costs(soc));

    let mut blocks = Vec::new();
    for (&start, &weight) in &weights {
        let block = &cfg.blocks[&start];
        // Resolve accesses in the first-iteration state: a post-increment
        // sweep is classified by the region its base starts in.
        let outside = outside_entry(cfg, sol, &preds, start);
        let shadow = Cfg {
            blocks: BTreeMap::from([(start, block.clone())]),
            roots: vec![(start, "block".to_string())],
            ..Cfg::default()
        };
        let shadow_sol = Solution {
            entry: BTreeMap::from([(start, outside)]),
            edge_out: BTreeMap::new(),
        };
        let accesses = access::extract(&shadow, &shadow_sol, soc);

        let mut flash_data = 0u32;
        let mut spr_data = 0u32;
        let mut other_data = 0u32;
        let mut unknown_data = 0u32;
        let mut stall = 0u64;
        for a in &accesses {
            match a.region {
                Some(r) if r.is_pflash() || r == Region::Dflash => flash_data += 1,
                Some(Region::Dspr | Region::Pspr) => spr_data += 1,
                Some(_) => other_data += 1,
                None => unknown_data += 1,
            }
            stall += data_penalty(soc, a.region);
        }

        let instr_list: Vec<Instr> = block.instrs.iter().map(|s| s.instr).collect();
        let bundles = bundle_count(&instr_list);
        let redirect = match block.term {
            cfg::Terminator::Jump
            | cfg::Terminator::Branch
            | cfg::Terminator::Call
            | cfg::Terminator::IndirectJump
            | cfg::Terminator::Return => model.redirect_penalty(),
            cfg::Terminator::Halt | cfg::Terminator::FallThrough | cfg::Terminator::DecodeStop => 0,
        };
        blocks.push(BlockPredict {
            start,
            instrs: block.instrs.len() as u32,
            weight,
            bundles,
            flash_data,
            spr_data,
            other_data,
            unknown_data,
            worst_cycles: block.instrs.len() as u64 + stall + redirect,
        });
    }

    let wi: f64 = blocks
        .iter()
        .map(|b| b.weight as f64 * f64::from(b.instrs))
        .sum();
    let wc: f64 = blocks
        .iter()
        .map(|b| b.weight as f64 * b.worst_cycles as f64)
        .sum();
    let wflash: f64 = blocks
        .iter()
        .map(|b| b.weight as f64 * f64::from(b.flash_data))
        .sum();
    let wspr: f64 = blocks
        .iter()
        .map(|b| b.weight as f64 * f64::from(b.spr_data))
        .sum();

    let best_block = blocks
        .iter()
        .map(BlockPredict::ipc_ub)
        .fold(0.0f64, f64::max);
    Prediction {
        ipc_ub: if blocks.is_empty() {
            3.05
        } else {
            best_block + 0.05
        },
        // Halve the stall-model IPC: static analysis cannot see fetch
        // stalls, arbitration or CSA traffic, so leave generous room.
        ipc_lb: if wc > 0.0 { wi / wc * 0.5 } else { 0.0 },
        flash_per_100: if wi > 0.0 { wflash * 100.0 / wi } else { 0.0 },
        spr_per_100: if wi > 0.0 { wspr * 100.0 / wi } else { 0.0 },
        block_cycles_ub: model.carved_block_cost_ub(),
        csa_depth_ub: wcet::program_csa_bound(cfg, sol).finite(),
        blocks,
    }
}

/// One row of the static-vs-measured divergence table.
#[derive(Debug, Clone)]
pub struct CheckRow {
    /// Human-readable rate name.
    pub name: &'static str,
    /// Measured value, when the snapshot contained the needed metrics.
    pub measured: Option<f64>,
    /// Inclusive static lower bound.
    pub lo: f64,
    /// Inclusive static upper bound.
    pub hi: f64,
}

impl CheckRow {
    /// `true` when the measurement is absent or inside the bounds.
    #[must_use]
    pub fn ok(&self) -> bool {
        match self.measured {
            None => true,
            Some(m) => m >= self.lo && m <= self.hi,
        }
    }
}

/// Parses a Prometheus text snapshot (`# `-prefixed comments skipped)
/// into `name -> value`. Labelled series keep their label block in the
/// key.
///
/// A duplicate key is an error, not last-write-wins: the registry never
/// emits the same series twice, so a duplicate means the snapshot was
/// concatenated or truncated-and-retried, and silently keeping either
/// value would check rates against corrupt data.
///
/// # Errors
///
/// Returns the first duplicated series name.
pub fn parse_snapshot(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(value)) = (parts.next(), parts.next()) else {
            continue;
        };
        if let Ok(v) = value.parse::<f64>() {
            if out.insert(name.to_string(), v).is_some() {
                return Err(format!("duplicate metric series `{name}` in snapshot"));
            }
        }
    }
    Ok(out)
}

fn lookup(snapshot: &BTreeMap<String, f64>, suffix: &str) -> Option<f64> {
    snapshot
        .iter()
        .find(|(k, _)| k.ends_with(suffix))
        .map(|(_, v)| *v)
}

/// Checks a measured snapshot against the static prediction.
///
/// The flash rate uses the flash *buffer* traffic (hits + misses) — every
/// flash-destined access reaches the buffers whether or not it hits —
/// normalized per 100 retired instructions, matching the paper's
/// characteristic-rate units.
#[must_use]
pub fn check(pred: &Prediction, snapshot: &BTreeMap<String, f64>) -> Vec<CheckRow> {
    let retired = lookup(snapshot, "soc_tricore_instructions_retired");
    let flash = match (
        lookup(snapshot, "soc_flash_buffer_hits"),
        lookup(snapshot, "soc_flash_buffer_misses"),
        retired,
    ) {
        (Some(h), Some(m), Some(r)) if r > 0.0 => Some((h + m) / r * 100.0),
        _ => None,
    };
    let ipc = lookup(snapshot, "soc_tricore_ipc");
    let csa = lookup(snapshot, "soc_tricore_csa_depth_peak");

    vec![
        CheckRow {
            name: "ipc",
            measured: ipc,
            lo: pred.ipc_lb,
            hi: pred.ipc_ub,
        },
        CheckRow {
            name: "flash_per_100_instrs",
            measured: flash,
            // Factor 2 + absolute slack: the static mix is a worst-case
            // no-dcache model, not a cycle-accurate trace.
            lo: 0.0,
            hi: pred.flash_per_100 * 2.0 + 0.5,
        },
        CheckRow {
            name: "csa_depth",
            measured: csa,
            lo: 0.0,
            // No finite static depth (recursion, unresolved calls):
            // nothing to hold the measurement to.
            // reason: CSA depths are tiny integers; exact in f64.
            #[allow(clippy::cast_precision_loss)]
            hi: pred.csa_depth_ub.map_or(f64::INFINITY, |d| d as f64),
        },
    ]
}

/// Renders the divergence table (fixed-width, deterministic).
#[must_use]
pub fn render_check(image: &str, rows: &[CheckRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "static-vs-measured divergence for `{image}`:");
    let _ = writeln!(
        out,
        "  {:<22} {:>12} {:>12} {:>12}  verdict",
        "rate", "measured", "static lo", "static hi"
    );
    for r in rows {
        let measured = match r.measured {
            Some(m) => format!("{m:.3}"),
            None => "n/a".to_string(),
        };
        let _ = writeln!(
            out,
            "  {:<22} {:>12} {:>12.3} {:>12.3}  {}",
            r.name,
            measured,
            r.lo,
            r.hi,
            if r.ok() { "ok" } else { "DIVERGED" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constprop;
    use audo_tricore::asm::assemble;
    use audo_tricore::isa::{AReg, DReg};

    fn predicted(src: &str) -> Prediction {
        let g = cfg::recover(&assemble(src).expect("test source assembles"));
        let sol = constprop::solve(&g);
        predict(&g, &sol, &SocConfig::tc1797())
    }

    #[test]
    fn bundle_model_packs_distinct_pipes() {
        // Ip (movi) + Ls (lea) can dual-issue; the dependent add cannot
        // join the bundle that writes its source.
        let instrs = [
            Instr::MovI {
                rd: DReg(0),
                imm: 1,
            },
            Instr::Lea {
                ad: AReg(2),
                ab: AReg(2),
                off: 4,
            },
            Instr::Add {
                rd: DReg(1),
                ra: DReg(0),
                rb: DReg(0),
            },
        ];
        assert_eq!(bundle_count(&instrs), 2);
        // Three independent same-pipe ALU ops: three bundles.
        let same_pipe = [
            Instr::MovI {
                rd: DReg(0),
                imm: 1,
            },
            Instr::MovI {
                rd: DReg(1),
                imm: 2,
            },
            Instr::MovI {
                rd: DReg(2),
                imm: 3,
            },
        ];
        assert_eq!(bundle_count(&same_pipe), 3);
    }

    #[test]
    fn init_loop_excluded_hot_loop_weighted() {
        let p = predicted(
            "
    .org 0x80000000
_start:
    li d0, 0x80008000
    mtcr biv, d0
    la a2, 0xd0000400
    li d1, 272
copy:
    st.w d3, [a2+]4
    addi d1, d1, -1
    jnz d1, copy
main:
    li d2, 64
bg:
    ld.w d3, [a4+]4
    addi d2, d2, -1
    jnz d2, bg
    j main
    .org 0x80008000 + 32*4
    j isr
isr:
    rfe
",
        );
        // The copy loop is init-only: bounded trip (272), unreachable from
        // the steady seeds — its weight must not appear.
        assert!(
            p.blocks.iter().all(|b| b.weight != 272),
            "init copy loop must not be steady: {:?}",
            p.blocks
        );
        // The bg loop sits in the unbounded main cycle and carries its
        // inferred trip weight.
        let bg = p
            .blocks
            .iter()
            .find(|b| b.weight == 64)
            .expect("weighted bg loop");
        assert_eq!(bg.instrs, 3);
        // The ISR is steady via its vector root.
        assert!(p.blocks.iter().any(|b| b.start >= 0x8000_8000));
    }

    #[test]
    fn flash_sweep_is_classified_from_its_base() {
        let p = predicted(
            "
    .org 0x80000000
_start:
    la a2, 0x80001000
    li d2, 128
bg:
    ld.w d3, [a2+]4
    addi d2, d2, -1
    jnz d2, bg
    j _start
",
        );
        let bg = p.blocks.iter().find(|b| b.weight == 128).expect("bg loop");
        assert_eq!(bg.flash_data, 1, "sweep base resolves to pflash");
        assert_eq!(bg.unknown_data, 0);
        assert!(p.flash_per_100 > 20.0, "flash-dominated mix: {p:?}");
        assert!(p.ipc_lb > 0.0 && p.ipc_lb < p.ipc_ub);
    }

    #[test]
    fn scratchpad_sweep_has_low_flash_rate() {
        let p = predicted(
            "
    .org 0x80000000
_start:
    la a2, 0xd0000400
    li d2, 128
bg:
    ld.w d3, [a2+]4
    addi d2, d2, -1
    jnz d2, bg
    j _start
",
        );
        assert!(p.flash_per_100 < 1.0, "{p:?}");
        assert!(p.spr_per_100 > 20.0, "{p:?}");
    }

    #[test]
    fn check_flags_out_of_bounds_rates() {
        let p = predicted(
            "
    .org 0x80000000
_start:
    la a2, 0xd0000400
    li d2, 128
bg:
    ld.w d3, [a2+]4
    addi d2, d2, -1
    jnz d2, bg
    j _start
",
        );
        let good = parse_snapshot(
            "# HELP audo_soc_tricore_ipc ipc\n\
             audo_soc_tricore_ipc 0.7\n\
             audo_soc_flash_buffer_hits 10\n\
             audo_soc_flash_buffer_misses 0\n\
             audo_soc_tricore_instructions_retired 10000\n",
        )
        .expect("clean snapshot parses");
        assert!(check(&p, &good).iter().all(CheckRow::ok));

        // A flash-heavy measurement cannot come from this scratchpad-
        // resident image.
        let bad = parse_snapshot(
            "audo_soc_tricore_ipc 0.7\n\
             audo_soc_flash_buffer_hits 2400\n\
             audo_soc_flash_buffer_misses 100\n\
             audo_soc_tricore_instructions_retired 10000\n",
        )
        .expect("clean snapshot parses");
        let rows = check(&p, &bad);
        assert!(!rows.iter().all(CheckRow::ok));
        let table = render_check("img", &rows);
        assert!(table.contains("DIVERGED"), "{table}");
    }

    #[test]
    fn duplicate_metric_series_is_rejected() {
        let err = parse_snapshot(
            "audo_soc_tricore_ipc 0.7\n\
             audo_soc_tricore_ipc 0.9\n",
        )
        .expect_err("duplicate must not be last-write-wins");
        assert!(err.contains("audo_soc_tricore_ipc"), "{err}");
        // Comments and blank lines never count as series.
        let ok = parse_snapshot(
            "# HELP x y\n\
             \n\
             # HELP x y\n\
             audo_soc_tricore_ipc 0.7\n",
        )
        .expect("comments are not duplicates");
        assert_eq!(ok.len(), 1);
    }

    /// First-iteration entry state of a block, as `steady_set` sees it.
    fn outside_of(src: &str, start_hint: u32) -> (Cfg, RegState) {
        let g = cfg::recover(&assemble(src).expect("test source assembles"));
        let sol = constprop::solve(&g);
        let preds = g.preds();
        let st = outside_entry(&g, &sol, &preds, start_hint);
        (g, st)
    }

    /// Finds the unique self-looping block of `src` and returns its
    /// inferred trip count.
    fn trip_of(src: &str) -> Option<u64> {
        let g = cfg::recover(&assemble(src).expect("test source assembles"));
        let looping: Vec<u32> = g
            .blocks
            .values()
            .filter(|b| b.edges.iter().any(|e| e.to == b.start))
            .map(|b| b.start)
            .collect();
        assert_eq!(looping.len(), 1, "expected one self-loop: {looping:x?}");
        let (g2, outside) = outside_of(src, looping[0]);
        self_loop_trip(&g2.blocks[&looping[0]], &outside)
    }

    #[test]
    fn zero_counter_is_not_a_trip_bound() {
        // A decrement counter entered at 0 wraps and loops 2^32 times;
        // certifying trip 0 (or anything) would be unsound.
        assert_eq!(
            trip_of(
                "
    .org 0x80000000
_start:
    li d2, 0
bg:
    addi d2, d2, -1
    jnz d2, bg
    halt
"
            ),
            None
        );
    }

    #[test]
    fn non_unit_step_is_not_certified() {
        // Stepping by -2 from an odd start never hits zero: the `addi -1`
        // pattern must not match a -2 decrement.
        assert_eq!(
            trip_of(
                "
    .org 0x80000000
_start:
    li d2, 7
bg:
    addi d2, d2, -2
    jnz d2, bg
    halt
"
            ),
            None
        );
        // An ascending counter never terminates by decrement either.
        assert_eq!(
            trip_of(
                "
    .org 0x80000000
_start:
    li d2, 7
bg:
    addi d2, d2, 1
    jnz d2, bg
    halt
"
            ),
            None
        );
    }

    #[test]
    fn wraparound_entry_value_is_not_certified() {
        // Entered with a negative (huge unsigned) value: the loop runs
        // ~2^32 iterations; the trip clamp must reject it.
        assert_eq!(
            trip_of(
                "
    .org 0x80000000
_start:
    li d2, 0xfffffff0
bg:
    addi d2, d2, -1
    jnz d2, bg
    halt
"
            ),
            None
        );
    }

    #[test]
    fn prediction_exports_fleet_envelope_bounds() {
        let p = predicted(
            "
    .org 0x80000000
_start:
    call helper
    halt
helper:
    movi d0, 1
    ret
",
        );
        assert!(p.block_cycles_ub > 0);
        assert_eq!(p.csa_depth_ub, Some(1));
    }

    #[test]
    fn missing_metrics_are_not_divergence() {
        let p = predicted(
            "
    .org 0x80000000
_start:
    halt
",
        );
        let rows = check(&p, &BTreeMap::new());
        assert!(rows.iter().all(CheckRow::ok));
        assert!(render_check("img", &rows).contains("n/a"));
    }
}
