//! Static guest-image analysis for the simulated AUDO-class SoC.
//!
//! The paper's methodology is *measurement*: run the system, observe it
//! through trace hardware, reduce the observations to characteristic
//! rates. This crate is the complementary *static* leg. From nothing but
//! a loaded [`Image`] and the platform memory map it recovers the
//! control-flow graph, classifies every statically resolvable memory
//! access, detects multi-master hazards against DMA and PCP access
//! ranges, and predicts the characteristic rates the measurement side
//! reports — so a measured profile can be cross-checked against what the
//! binary could possibly do ([`predict::check`]).
//!
//! Entry point: [`analyze`]. The result carries severity-ranked
//! [`findings::Finding`]s with deterministic JSON/text renderings and a
//! [`predict::Prediction`] with static rate bounds.

#![warn(missing_docs)]

pub mod access;
pub mod cfg;
pub mod constprop;
pub mod findings;
pub mod hazard;
pub mod loopbound;
pub mod predict;
pub mod symbols;
pub mod wcet;

use audo_common::Addr;
use audo_platform::config::{Region, SocConfig};
use audo_tricore::Image;

use access::{AccessKind, MemAccess};
use findings::{Finding, Severity};
pub use hazard::MasterRanges;

/// Everything the analyzer derived from one image.
#[derive(Debug)]
pub struct Analysis {
    /// Image name (used in reports).
    pub image_name: String,
    /// Recovered control-flow graph.
    pub cfg: cfg::Cfg,
    /// Every static load/store site with classification.
    pub accesses: Vec<MemAccess>,
    /// Severity-ranked findings, sorted by [`Finding::sort_key`].
    pub findings: Vec<Finding>,
    /// Static rate prediction over the steady-state block set.
    pub prediction: predict::Prediction,
}

impl Analysis {
    /// Number of findings at [`Severity::Error`].
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Deterministic JSON report.
    #[must_use]
    pub fn to_json(&self) -> String {
        findings::render_json(&self.image_name, &self.findings)
    }

    /// Rustc-style text report.
    #[must_use]
    pub fn to_text(&self) -> String {
        findings::render_text(&self.image_name, &self.findings)
    }
}

/// Runs the full static analysis of `image` against `soc`'s memory map,
/// with `masters` describing concurrent DMA/PCP activity (use
/// [`MasterRanges::empty`] for a CPU-only view).
#[must_use]
pub fn analyze(image: &Image, soc: &SocConfig, masters: &MasterRanges, name: &str) -> Analysis {
    let graph = cfg::recover(image);
    let sol = constprop::solve(&graph);
    let accesses = access::extract(&graph, &sol, soc);

    let mut findings = Vec::new();
    access_findings(&accesses, &mut findings);
    findings.extend(hazard::detect(&accesses, masters, soc));
    loop_findings(&graph, &mut findings);
    unreachable_findings(&graph, image, &mut findings);
    unresolved_findings(&graph, &mut findings);

    // Attach the enclosing symbol to every finding that has an address.
    for f in &mut findings {
        if f.context.is_none() {
            if let Some(addr) = f.addr {
                if let Some(sym) = image.symbol_containing(Addr(addr)) {
                    f.context = Some(sym.to_string());
                }
            }
        }
    }
    findings.sort_by(|x, y| x.sort_key().cmp(&y.sort_key()));
    findings.dedup();

    let prediction = predict::predict(&graph, &sol, soc);
    Analysis {
        image_name: name.to_string(),
        cfg: graph,
        accesses,
        findings,
        prediction,
    }
}

/// Memory-map contract findings: flash writes, unmapped and misaligned
/// accesses, data-flash (EEPROM) writes.
fn access_findings(accesses: &[MemAccess], out: &mut Vec<Finding>) {
    for a in accesses {
        let (Some(target), Some(region)) = (a.target, a.region) else {
            continue;
        };
        if a.kind == AccessKind::Store && region.is_pflash() {
            let mut f = Finding::new(
                Severity::Error,
                "flash-write",
                Some(a.site),
                format!("store to program flash at {target:#010x}"),
            );
            f.note =
                Some("program flash is not writable by the CPU; use data flash or RAM".to_string());
            out.push(f);
        }
        if region == Region::Unmapped {
            out.push(Finding::new(
                Severity::Error,
                "unmapped-access",
                Some(a.site),
                format!(
                    "{} targets unmapped address {target:#010x}",
                    if a.kind == AccessKind::Store {
                        "store"
                    } else {
                        "load"
                    }
                ),
            ));
        } else if target % u32::from(a.width) != 0 {
            out.push(Finding::new(
                Severity::Error,
                "misaligned-access",
                Some(a.site),
                format!(
                    "{}-byte access to {target:#010x} is not naturally aligned",
                    a.width
                ),
            ));
        }
        if a.kind == AccessKind::Store && region == Region::Dflash {
            let mut f = Finding::new(
                Severity::Info,
                "dflash-write",
                Some(a.site),
                format!("EEPROM-emulation write to data flash at {target:#010x}"),
            );
            f.note = Some("data-flash programming stalls the bus for the write-busy time".into());
            out.push(f);
        }
    }
}

/// Warns about cycles with no way out: an SCC whose blocks have no edge
/// leaving the component and contain no `halt`/`wait` (a `wait` parks the
/// core for an interrupt, which is an idle loop, not a hang).
fn loop_findings(graph: &cfg::Cfg, out: &mut Vec<Finding>) {
    use audo_tricore::isa::Instr;
    for comp in cfg::sccs(graph) {
        let escapes = comp
            .iter()
            .any(|b| graph.blocks[b].edges.iter().any(|e| !comp.contains(&e.to)));
        if escapes {
            continue;
        }
        let parks = comp.iter().any(|b| {
            graph.blocks[b]
                .instrs
                .iter()
                .any(|s| matches!(s.instr, Instr::Wait | Instr::Halt | Instr::Debug { .. }))
        });
        if parks {
            continue;
        }
        let head = *comp.iter().next().expect("non-empty SCC");
        let mut f = Finding::new(
            Severity::Warning,
            "infinite-loop",
            Some(head),
            format!("cycle of {} block(s) has no exit edge", comp.len()),
        );
        f.note = Some("no halt, wait or escaping branch anywhere in the cycle".to_string());
        out.push(f);
    }
}

/// Flags code-like symbols in flash that recursive descent never reached.
fn unreachable_findings(graph: &cfg::Cfg, image: &Image, out: &mut Vec<Finding>) {
    use audo_tricore::encode::decode;
    for (name, &a) in image.symbols() {
        // Only flag flash symbols, skip data-looking and reached ones.
        if !flash_addr(a) || graph.block_containing(a).is_some() {
            continue;
        }
        // Heuristic: decodes cleanly for a few instructions and hits a
        // terminator-like opcode within a short window.
        let mut pc = a;
        let mut decoded = 0;
        let mut looks_code = false;
        for _ in 0..12 {
            let Some(bytes) = image
                .bytes_at(Addr(pc), 4)
                .or_else(|| image.bytes_at(Addr(pc), 2))
            else {
                break;
            };
            let Ok((instr, len)) = decode(&bytes, Addr(pc)) else {
                break;
            };
            decoded += 1;
            if instr.is_control_flow() || matches!(instr, audo_tricore::isa::Instr::Halt) {
                looks_code = decoded >= 3;
                break;
            }
            pc = pc.wrapping_add(u32::from(len));
        }
        if looks_code {
            out.push(Finding::new(
                Severity::Info,
                "unreachable-code",
                Some(a),
                format!("symbol `{name}` looks like code but is never reached"),
            ));
        }
    }
}

/// Reports indirect branches the propagator could not resolve: the CFG
/// (and therefore every downstream check) is incomplete behind them.
fn unresolved_findings(graph: &cfg::Cfg, out: &mut Vec<Finding>) {
    for &site in &graph.unresolved_indirect {
        out.push(Finding::new(
            Severity::Warning,
            "unresolved-indirect",
            Some(site),
            "indirect branch target is not statically resolvable".to_string(),
        ));
    }
    for (&addr, reason) in &graph.decode_stops {
        out.push(Finding::new(
            Severity::Warning,
            "decode-stop",
            Some(addr),
            format!("control flow reaches undecodable bytes: {reason}"),
        ));
    }
}

/// `true` for program-flash addresses (either segment alias).
fn flash_addr(a: u32) -> bool {
    (0x8000_0000..0x8F00_0000).contains(&a) || (0xA000_0000..0xAF00_0000).contains(&a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use audo_tricore::asm::assemble;

    fn run(src: &str) -> Analysis {
        let image = assemble(src).expect("test source assembles");
        analyze(&image, &SocConfig::tc1797(), &MasterRanges::empty(), "test")
    }

    #[test]
    fn clean_image_has_no_findings() {
        let a = run("
    .org 0x80000000
_start:
    la a2, 0xd0000200
    st.w d0, [a2]
    ld.w d1, [a2+4]
    halt
");
        assert_eq!(a.findings, vec![], "{}", a.to_text());
        assert_eq!(a.error_count(), 0);
    }

    #[test]
    fn flash_write_and_misalignment_are_errors() {
        let a = run("
    .org 0x80000000
_start:
    la a2, 0x80002000
    st.w d0, [a2]
    la a3, 0xd0000201
    ld.w d1, [a3]
    halt
");
        let codes: Vec<&str> = a.findings.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"flash-write"), "{codes:?}");
        assert!(codes.contains(&"misaligned-access"), "{codes:?}");
        assert_eq!(a.error_count(), 2);
    }

    #[test]
    fn unmapped_access_is_reported() {
        let a = run("
    .org 0x80000000
_start:
    la a2, 0x12345678
    ld.w d1, [a2]
    halt
");
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].code, "unmapped-access");
        assert_eq!(a.findings[0].severity, Severity::Error);
    }

    #[test]
    fn runaway_cycle_without_wait_is_warned() {
        let a = run("
    .org 0x80000000
_start:
    nop
spin:
    addi d0, d0, 1
    j spin
");
        assert!(
            a.findings.iter().any(|f| f.code == "infinite-loop"),
            "{}",
            a.to_text()
        );
        // An idle loop that waits for interrupts is fine.
        let idle = run("
    .org 0x80000000
_start:
    nop
spin:
    wait
    j spin
");
        assert!(
            idle.findings.iter().all(|f| f.code != "infinite-loop"),
            "{}",
            idle.to_text()
        );
    }

    #[test]
    fn report_is_byte_identical_across_runs() {
        let src = "
    .org 0x80000000
_start:
    la a2, 0x80002000
    st.w d0, [a2]
    halt
";
        let a = run(src);
        let b = run(src);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_text(), b.to_text());
    }

    #[test]
    fn context_symbol_is_attached() {
        let a = run("
    .org 0x80000000
_start:
    nop
bad_writer:
    la a2, 0x80002000
    st.w d0, [a2]
    halt
");
        let f = a
            .findings
            .iter()
            .find(|f| f.code == "flash-write")
            .expect("flash write finding");
        assert_eq!(f.context.as_deref(), Some("bad_writer"));
    }
}
