//! Flow-sensitive constant propagation over the recovered CFG.
//!
//! Tracks one lattice value per architectural register (known 32-bit
//! constant or unknown) through every basic block, meeting states at join
//! points. The transfer function mirrors the executable semantics in
//! `audo_tricore::exec` for the constant-resolvable subset (immediates,
//! address building, ALU-on-constants); everything else conservatively
//! kills the written registers via [`Instr::writes`].
//!
//! The results drive indirect-branch resolution (`la aN, handler; ji aN`),
//! static memory-access classification (base register + offset) and loop
//! trip-count inference.

use std::collections::{BTreeMap, BTreeSet};

use audo_tricore::isa::{Instr, RegRef};

use crate::cfg::{Cfg, EdgeKind};

/// Per-register lattice state: `Some(v)` = known constant, `None` = unknown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegState {
    /// Data registers `D0..D15`.
    pub d: [Option<u32>; 16],
    /// Address registers `A0..A15`.
    pub a: [Option<u32>; 16],
}

impl RegState {
    /// The bottom state: every register unknown.
    #[must_use]
    pub fn unknown() -> Self {
        RegState {
            d: [None; 16],
            a: [None; 16],
        }
    }

    /// Meets `other` into `self` (keep a constant only where both sides
    /// agree). Returns `true` when `self` changed.
    pub fn meet(&mut self, other: &RegState) -> bool {
        let mut changed = false;
        for i in 0..16 {
            if self.d[i].is_some() && self.d[i] != other.d[i] {
                self.d[i] = None;
                changed = true;
            }
            if self.a[i].is_some() && self.a[i] != other.a[i] {
                self.a[i] = None;
                changed = true;
            }
        }
        changed
    }

    /// Kills the lower context (`D0..D7`, `A2..A7`): what a full call
    /// clobbers. The upper context (`D8..D15`, `A10..A15`) is restored by
    /// the CSA and `A0`, `A1`, `A8`, `A9` are system globals.
    pub fn clobber_lower(&mut self) {
        for i in 0..8 {
            self.d[i] = None;
        }
        for i in 2..8 {
            self.a[i] = None;
        }
    }

    /// Kills everything (after a `jl` leaf-call return: no CSA spill).
    pub fn clobber_all(&mut self) {
        *self = RegState::unknown();
    }
}

fn shift_by(value: u32, amt: i32) -> u32 {
    // Matches `SH` semantics in `audo_tricore::exec` (logical shifts).
    if amt >= 0 {
        if amt >= 32 {
            0
        } else {
            value << amt
        }
    } else {
        let sh = -amt;
        if sh >= 32 {
            0
        } else {
            value >> sh
        }
    }
}

/// Applies one instruction's effect to the register state.
///
/// Mirrors `audo_tricore::exec` for the constant subset; any other
/// instruction conservatively kills its written registers.
pub fn transfer(st: &mut RegState, instr: &Instr) {
    let sext = |i: i16| i as i32 as u32;
    match *instr {
        Instr::MovD { rd, rs } => st.d[rd.0 as usize] = st.d[rs.0 as usize],
        Instr::MovAA { ad, a_src } => st.a[ad.0 as usize] = st.a[a_src.0 as usize],
        Instr::MovDtoA { ad, rs } => st.a[ad.0 as usize] = st.d[rs.0 as usize],
        Instr::MovAtoD { rd, a_src } => st.d[rd.0 as usize] = st.a[a_src.0 as usize],
        Instr::MovI { rd, imm } => st.d[rd.0 as usize] = Some(sext(imm)),
        Instr::MovH { rd, imm } => st.d[rd.0 as usize] = Some(u32::from(imm) << 16),
        Instr::MovU { rd, imm } => st.d[rd.0 as usize] = Some(u32::from(imm)),
        Instr::MovHA { ad, imm } => st.a[ad.0 as usize] = Some(u32::from(imm) << 16),
        Instr::AddIA { ad, imm } => {
            st.a[ad.0 as usize] = st.a[ad.0 as usize].map(|v| v.wrapping_add(sext(imm)));
        }
        Instr::OrIL { rd, imm } => {
            st.d[rd.0 as usize] = st.d[rd.0 as usize].map(|v| v | u32::from(imm));
        }
        Instr::Lea { ad, ab, off } => {
            st.a[ad.0 as usize] = st.a[ab.0 as usize].map(|v| v.wrapping_add(sext(off)));
        }
        Instr::Add { rd, ra, rb } => bin(st, rd.0, ra.0, rb.0, u32::wrapping_add),
        Instr::Sub { rd, ra, rb } => bin(st, rd.0, ra.0, rb.0, u32::wrapping_sub),
        Instr::And { rd, ra, rb } => bin(st, rd.0, ra.0, rb.0, |x, y| x & y),
        Instr::Or { rd, ra, rb } => bin(st, rd.0, ra.0, rb.0, |x, y| x | y),
        Instr::Xor { rd, ra, rb } => bin(st, rd.0, ra.0, rb.0, |x, y| x ^ y),
        Instr::Mul { rd, ra, rb } => bin(st, rd.0, ra.0, rb.0, u32::wrapping_mul),
        Instr::AddI { rd, ra, imm } => {
            st.d[rd.0 as usize] = st.d[ra.0 as usize].map(|v| v.wrapping_add(sext(imm)));
        }
        Instr::AndI { rd, ra, imm } => {
            st.d[rd.0 as usize] = st.d[ra.0 as usize].map(|v| v & u32::from(imm));
        }
        Instr::OrI { rd, ra, imm } => {
            st.d[rd.0 as usize] = st.d[ra.0 as usize].map(|v| v | u32::from(imm));
        }
        Instr::XorI { rd, ra, imm } => {
            st.d[rd.0 as usize] = st.d[ra.0 as usize].map(|v| v ^ u32::from(imm));
        }
        Instr::ShI { rd, ra, amount } => {
            st.d[rd.0 as usize] = st.d[ra.0 as usize].map(|v| shift_by(v, i32::from(amount)));
        }
        Instr::LdWPostInc { rd, ab, inc } => {
            st.d[rd.0 as usize] = None;
            st.a[ab.0 as usize] = st.a[ab.0 as usize].map(|v| v.wrapping_add(sext(inc)));
        }
        Instr::StWPostInc { ab, inc, .. } => {
            st.a[ab.0 as usize] = st.a[ab.0 as usize].map(|v| v.wrapping_add(sext(inc)));
        }
        Instr::Loop { aa, .. } => {
            // The hardware loop decrements before testing, on both paths.
            st.a[aa.0 as usize] = st.a[aa.0 as usize].map(|v| v.wrapping_sub(1));
        }
        ref other => {
            for r in other.writes().iter() {
                match r {
                    RegRef::D(i) => st.d[i as usize] = None,
                    RegRef::A(i) => st.a[i as usize] = None,
                }
            }
        }
    }
}

fn bin(st: &mut RegState, rd: u8, ra: u8, rb: u8, f: impl Fn(u32, u32) -> u32) {
    st.d[rd as usize] = match (st.d[ra as usize], st.d[rb as usize]) {
        (Some(x), Some(y)) => Some(f(x, y)),
        _ => None,
    };
}

/// The propagation result.
#[derive(Debug, Clone, Default)]
pub struct Solution {
    /// Register state at each block entry.
    pub entry: BTreeMap<u32, RegState>,
    /// Register state flowing along each `(from, to)` edge, after the
    /// edge-kind adjustment (call clobbers).
    pub edge_out: BTreeMap<(u32, u32), RegState>,
}

impl Solution {
    /// State at block entry, or all-unknown when the block was never
    /// reached by propagation.
    #[must_use]
    pub fn entry_of(&self, block: u32) -> RegState {
        self.entry
            .get(&block)
            .cloned()
            .unwrap_or_else(RegState::unknown)
    }
}

/// Runs the worklist to a fixpoint over `cfg`.
///
/// Roots start all-unknown (interrupt handlers inherit nothing). The
/// deterministic `BTreeSet` worklist makes the result independent of hash
/// ordering.
#[must_use]
pub fn solve(cfg: &Cfg) -> Solution {
    let mut entry: BTreeMap<u32, RegState> = BTreeMap::new();
    let mut edge_out: BTreeMap<(u32, u32), RegState> = BTreeMap::new();
    let mut work: BTreeSet<u32> = BTreeSet::new();

    for (root, _) in &cfg.roots {
        if cfg.blocks.contains_key(root) {
            entry.insert(*root, RegState::unknown());
            work.insert(*root);
        }
    }

    // Bounded by lattice height: each register can only drop to unknown
    // once per block, so the loop terminates; the explicit cap is a guard
    // against bugs, not a tuning knob.
    let mut budget = cfg.blocks.len().saturating_mul(64).max(4096);
    while let Some(b) = work.pop_first() {
        if budget == 0 {
            break;
        }
        budget -= 1;
        let Some(block) = cfg.blocks.get(&b) else {
            continue;
        };
        let mut st = entry.get(&b).cloned().unwrap_or_else(RegState::unknown);
        for site in &block.instrs {
            transfer(&mut st, &site.instr);
        }
        for e in &block.edges {
            if !cfg.blocks.contains_key(&e.to) {
                continue;
            }
            let mut out = st.clone();
            match e.kind {
                EdgeKind::Flow | EdgeKind::CallTarget => {}
                EdgeKind::CallReturn => out.clobber_lower(),
                EdgeKind::JlReturn => out.clobber_all(),
            }
            edge_out.insert((b, e.to), out.clone());
            match entry.get_mut(&e.to) {
                None => {
                    entry.insert(e.to, out);
                    work.insert(e.to);
                }
                Some(cur) => {
                    if cur.meet(&out) {
                        work.insert(e.to);
                    }
                }
            }
        }
    }

    Solution { entry, edge_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use audo_tricore::asm::assemble;

    fn solved(src: &str) -> (crate::cfg::Cfg, Solution) {
        let g = cfg::recover(&assemble(src).expect("test source assembles"));
        let sol = solve(&g);
        (g, sol)
    }

    #[test]
    fn li_constant_reaches_block_entry() {
        let (g, sol) = solved(
            "
    .org 0x80000000
_start:
    li d0, 0xd0000200
    j next
next:
    halt
",
        );
        let next = g
            .blocks
            .keys()
            .copied()
            .find(|&a| a != 0x8000_0000)
            .expect("next block");
        assert_eq!(sol.entry_of(next).d[0], Some(0xd000_0200));
    }

    #[test]
    fn join_of_disagreeing_values_is_unknown() {
        let (g, sol) = solved(
            "
    .org 0x80000000
_start:
    movi d1, 0
    jz d1, a_side
    movi d0, 1
    j join
a_side:
    movi d0, 2
    j join
join:
    halt
",
        );
        let join = *g.blocks.keys().max().expect("blocks");
        let st = sol.entry_of(join);
        assert_eq!(st.d[0], None, "disagreeing d0 must meet to unknown");
        assert_eq!(st.d[1], Some(0));
    }

    #[test]
    fn call_preserves_upper_context_only() {
        let (g, sol) = solved(
            "
    .org 0x80000000
_start:
    movi d2, 7
    movi d8, 9
    la a2, 0x1000
    la a12, 0x2000
    call f
after:
    halt
f:
    ret
",
        );
        let after = g
            .blocks
            .get(&0x8000_0000)
            .expect("entry block")
            .edges
            .iter()
            .find(|e| e.kind == cfg::EdgeKind::CallReturn)
            .expect("call return edge")
            .to;
        let st = sol.entry_of(after);
        assert_eq!(st.d[2], None, "lower-context d2 clobbered by call");
        assert_eq!(st.a[2], None, "lower-context a2 clobbered by call");
        assert_eq!(st.d[8], Some(9), "upper-context d8 restored");
        assert_eq!(st.a[12], Some(0x2000), "upper-context a12 restored");
    }

    #[test]
    fn loop_counter_decrements_and_joins_unknown() {
        let (g, sol) = solved(
            "
    .org 0x80000000
_start:
    la a2, 16
body:
    nop
    loop a2, body
    halt
",
        );
        // Entry to `body` meets 16 (first pass) with decremented values
        // from the back edge: unknown.
        let body = g
            .blocks
            .values()
            .find(|b| b.edges.iter().any(|e| e.to == b.start))
            .expect("self-looping body");
        assert_eq!(sol.entry_of(body.start).a[2], None);
        // But the edge from _start into the loop still carries 16.
        let entry_edge = sol
            .edge_out
            .get(&(0x8000_0000, body.start))
            .expect("entry edge state");
        assert_eq!(entry_edge.a[2], Some(16));
    }
}
