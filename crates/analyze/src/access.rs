//! Static memory-access extraction and memory-map classification.
//!
//! Walks every load/store site in the CFG with the constant-propagation
//! entry states, computes the effective address where the base register is
//! statically known, and classifies it against the platform memory map
//! ([`SocConfig::region_of`]). Unresolvable accesses (pointer chases,
//! post-increment bases that lost their constant at a join) are kept with
//! `target: None` so callers can still count them per block.

use audo_common::Addr;
use audo_platform::config::{Region, SocConfig};
use audo_tricore::isa::Instr;

use crate::cfg::Cfg;
use crate::constprop::{self, Solution};

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessKind {
    /// Read from memory.
    Load,
    /// Write to memory.
    Store,
}

/// One static memory access site.
#[derive(Debug, Clone, Copy)]
pub struct MemAccess {
    /// Instruction address.
    pub site: u32,
    /// Start address of the enclosing basic block.
    pub block: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Access width in bytes.
    pub width: u8,
    /// Statically resolved effective address, when the base register held
    /// a known constant at this site.
    pub target: Option<u32>,
    /// Memory-map region of `target` (None exactly when `target` is).
    pub region: Option<Region>,
}

fn operands(
    instr: &Instr,
) -> Option<(
    AccessKind,
    u8,  /* ab */
    i32, /* off */
    u8,  /* width */
)> {
    match *instr {
        Instr::Ld { ab, off, width, .. } => {
            Some((AccessKind::Load, ab.0, i32::from(off), width.bytes()))
        }
        Instr::St { ab, off, width, .. } => {
            Some((AccessKind::Store, ab.0, i32::from(off), width.bytes()))
        }
        Instr::LdWPostInc { ab, .. } => Some((AccessKind::Load, ab.0, 0, 4)),
        Instr::StWPostInc { ab, .. } => Some((AccessKind::Store, ab.0, 0, 4)),
        Instr::LdA { ab, off, .. } => Some((AccessKind::Load, ab.0, i32::from(off), 4)),
        Instr::StA { ab, off, .. } => Some((AccessKind::Store, ab.0, i32::from(off), 4)),
        _ => None,
    }
}

/// Extracts every static access site in `cfg`, resolving targets through
/// the propagation solution and classifying them against `cfg_soc`'s map.
#[must_use]
pub fn extract(cfg: &Cfg, sol: &Solution, soc: &SocConfig) -> Vec<MemAccess> {
    let mut out = Vec::new();
    for block in cfg.blocks.values() {
        let mut st = sol.entry_of(block.start);
        for site in &block.instrs {
            if let Some((kind, ab, off, width)) = operands(&site.instr) {
                let target = st.a[ab as usize].map(|base| base.wrapping_add(off as u32));
                out.push(MemAccess {
                    site: site.addr,
                    block: block.start,
                    kind,
                    width,
                    target,
                    region: target.map(|t| soc.region_of(Addr(t))),
                });
            }
            constprop::transfer(&mut st, &site.instr);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use audo_tricore::asm::assemble;

    fn accesses(src: &str) -> Vec<MemAccess> {
        let g = cfg::recover(&assemble(src).expect("test source assembles"));
        let sol = crate::constprop::solve(&g);
        extract(&g, &sol, &SocConfig::tc1797())
    }

    #[test]
    fn resolved_store_classified_by_region() {
        let acc = accesses(
            "
    .org 0x80000000
_start:
    la a2, 0xd0000200
    st.w d0, [a2]
    la a3, 0x90000010
    ld.w d1, [a3+4]
    halt
",
        );
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0].kind, AccessKind::Store);
        assert_eq!(acc[0].target, Some(0xd000_0200));
        assert_eq!(acc[0].region, Some(Region::Dspr));
        assert_eq!(acc[1].kind, AccessKind::Load);
        assert_eq!(acc[1].target, Some(0x9000_0014));
        assert_eq!(acc[1].region, Some(Region::Sram));
    }

    #[test]
    fn unknown_base_yields_unresolved_access() {
        let acc = accesses(
            "
    .org 0x80000000
_start:
    ld.w d0, [a2]
    halt
",
        );
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].target, None);
        assert_eq!(acc[0].region, None);
    }

    #[test]
    fn post_increment_uses_pre_state_base() {
        let acc = accesses(
            "
    .org 0x80000000
_start:
    la a2, 0x80001000
    ld.w d3, [a2+]4
    ld.w d4, [a2+]4
    halt
",
        );
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0].target, Some(0x8000_1000));
        assert_eq!(acc[0].region, Some(Region::PflashCached));
        // The post-increment advanced the base for the second access.
        assert_eq!(acc[1].target, Some(0x8000_1004));
    }
}
