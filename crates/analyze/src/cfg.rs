//! Control-flow-graph recovery from a loaded [`Image`].
//!
//! Recursive-descent disassembly (reusing the TriCore decoder from
//! `audo-tricore`) from a set of roots: the image entry point plus any
//! interrupt-vector slots discovered through the `mtcr biv` write. Indirect
//! jumps (`ji`/`calli`) are resolved by the constant propagator
//! ([`crate::constprop`]); recovery iterates descent and propagation to a
//! fixpoint so vectors of the `la a15, handler; ji a15` form (scratchpad
//! handlers outside the 24-bit branch range) are followed too.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use audo_common::Addr;
use audo_tricore::encode::decode;
use audo_tricore::isa::{Csfr, Instr};
use audo_tricore::Image;

use crate::constprop;

/// One decoded instruction at its address.
#[derive(Debug, Clone)]
pub struct Site {
    /// Guest address.
    pub addr: u32,
    /// Decoded instruction.
    pub instr: Instr,
    /// Encoded length in bytes (2 or 4).
    pub len: u8,
}

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump,
    /// Conditional branch: taken edge plus fall-through edge.
    Branch,
    /// `call`/`calli`/`jl`: control returns to the fall-through.
    Call,
    /// Indirect jump (`ji`), resolved statically when possible.
    IndirectJump,
    /// `ret`/`rfe`.
    Return,
    /// `halt` — simulation stops.
    Halt,
    /// Straight-line flow into the next block (a branch target starts
    /// there).
    FallThrough,
    /// The decoder rejected the bytes that follow, or flow ran past the
    /// bytes present in the image.
    DecodeStop,
}

/// How control reaches a successor (drives register-state propagation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Jump, branch or fall-through: state flows unchanged.
    Flow,
    /// Call target: the callee sees the caller's registers.
    CallTarget,
    /// Fall-through after `call`/`calli`: the context-save architecture
    /// restores the upper context, so only the lower context is clobbered.
    CallReturn,
    /// Fall-through after `jl` (no CSA spill): everything is clobbered.
    JlReturn,
}

/// One CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Successor block start address.
    pub to: u32,
    /// Propagation semantics.
    pub kind: EdgeKind,
}

/// A basic block.
#[derive(Debug, Clone)]
pub struct Block {
    /// First instruction address.
    pub start: u32,
    /// Address one past the last instruction byte.
    pub end: u32,
    /// The instructions, in address order (never empty).
    pub instrs: Vec<Site>,
    /// Terminator kind.
    pub term: Terminator,
    /// Outgoing edges.
    pub edges: Vec<Edge>,
}

/// The recovered control-flow graph.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    /// Blocks keyed by start address.
    pub blocks: BTreeMap<u32, Block>,
    /// Root addresses with labels (`entry`, `vector_p10`, ...).
    pub roots: Vec<(u32, String)>,
    /// Interrupt vector table base discovered from the `mtcr biv` write.
    pub biv: Option<u32>,
    /// Addresses where descent stopped (decode error or off-image), with
    /// the reason.
    pub decode_stops: BTreeMap<u32, String>,
    /// `ji`/`calli` sites whose target the constant propagator resolved.
    pub resolved_indirect: BTreeMap<u32, u32>,
    /// `ji`/`calli` sites that stayed unresolved.
    pub unresolved_indirect: Vec<u32>,
}

impl Cfg {
    /// The block containing `addr`, if any.
    #[must_use]
    pub fn block_containing(&self, addr: u32) -> Option<&Block> {
        self.blocks
            .range(..=addr)
            .next_back()
            .map(|(_, b)| b)
            .filter(|b| addr < b.end)
    }

    /// Total decoded instruction count.
    #[must_use]
    pub fn instr_count(&self) -> usize {
        self.blocks.values().map(|b| b.instrs.len()).sum()
    }

    /// Predecessor map (block start -> predecessors' starts).
    #[must_use]
    pub fn preds(&self) -> BTreeMap<u32, Vec<u32>> {
        let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (start, b) in &self.blocks {
            for e in &b.edges {
                preds.entry(e.to).or_default().push(*start);
            }
        }
        preds
    }
}

fn rel32(pc: u32, off: i32) -> u32 {
    pc.wrapping_add((off as u32).wrapping_mul(2))
}

fn rel16(pc: u32, off: i16) -> u32 {
    rel32(pc, i32::from(off))
}

/// Branch target of a control-flow instruction at `pc`, when direct.
#[must_use]
pub fn direct_target(instr: &Instr, pc: u32) -> Option<u32> {
    match *instr {
        Instr::J { off } | Instr::Jl { off } | Instr::Call { off } => Some(rel32(pc, off)),
        Instr::JCond { off, .. }
        | Instr::Jz { off, .. }
        | Instr::Jnz { off, .. }
        | Instr::Loop { off, .. } => Some(rel16(pc, off)),
        _ => None,
    }
}

struct Explorer<'a> {
    image: &'a Image,
    decoded: BTreeMap<u32, (Instr, u8)>,
    leaders: BTreeSet<u32>,
    queue: VecDeque<u32>,
    stops: BTreeMap<u32, String>,
    indirect_sites: BTreeSet<u32>,
}

impl<'a> Explorer<'a> {
    fn new(image: &'a Image) -> Self {
        Explorer {
            image,
            decoded: BTreeMap::new(),
            leaders: BTreeSet::new(),
            queue: VecDeque::new(),
            stops: BTreeMap::new(),
            indirect_sites: BTreeSet::new(),
        }
    }

    fn add_leader(&mut self, t: u32) {
        self.leaders.insert(t);
        if !self.decoded.contains_key(&t) {
            self.queue.push_back(t);
        }
    }

    fn fetch(&self, pc: u32) -> Option<Vec<u8>> {
        self.image
            .bytes_at(Addr(pc), 4)
            .or_else(|| self.image.bytes_at(Addr(pc), 2))
    }

    fn trace_all(&mut self) {
        while let Some(start) = self.queue.pop_front() {
            let mut pc = start;
            while !self.decoded.contains_key(&pc) {
                let Some(bytes) = self.fetch(pc) else {
                    self.stops
                        .entry(pc)
                        .or_insert_with(|| "control flow runs past the image bytes".to_string());
                    break;
                };
                let (instr, len) = match decode(&bytes, Addr(pc)) {
                    Ok(d) => d,
                    Err(e) => {
                        self.stops.entry(pc).or_insert_with(|| e.to_string());
                        break;
                    }
                };
                self.decoded.insert(pc, (instr, len));
                let next = pc.wrapping_add(u32::from(len));
                match instr {
                    Instr::J { off } => {
                        self.add_leader(rel32(pc, off));
                        break;
                    }
                    Instr::Jl { off } | Instr::Call { off } => {
                        self.add_leader(rel32(pc, off));
                        self.add_leader(next);
                        pc = next;
                    }
                    Instr::JCond { off, .. } => {
                        self.add_leader(rel16(pc, off));
                        self.add_leader(next);
                        pc = next;
                    }
                    Instr::Jz { off, .. } | Instr::Jnz { off, .. } | Instr::Loop { off, .. } => {
                        self.add_leader(rel16(pc, off));
                        self.add_leader(next);
                        pc = next;
                    }
                    Instr::Ji { .. } => {
                        self.indirect_sites.insert(pc);
                        break;
                    }
                    Instr::CallI { .. } => {
                        self.indirect_sites.insert(pc);
                        self.add_leader(next);
                        pc = next;
                    }
                    Instr::Ret | Instr::Rfe | Instr::Halt => break,
                    _ => pc = next,
                }
            }
        }
    }
}

fn terminator_of(
    site: &Site,
    next: u32,
    resolved: &BTreeMap<u32, u32>,
) -> Option<(Terminator, Vec<Edge>)> {
    let e = |to, kind| Edge { to, kind };
    match site.instr {
        Instr::J { off } => Some((
            Terminator::Jump,
            vec![e(rel32(site.addr, off), EdgeKind::Flow)],
        )),
        Instr::Call { off } => Some((
            Terminator::Call,
            vec![
                e(rel32(site.addr, off), EdgeKind::CallTarget),
                e(next, EdgeKind::CallReturn),
            ],
        )),
        Instr::Jl { off } => Some((
            Terminator::Call,
            vec![
                e(rel32(site.addr, off), EdgeKind::CallTarget),
                e(next, EdgeKind::JlReturn),
            ],
        )),
        Instr::CallI { .. } => {
            let mut edges = Vec::new();
            if let Some(&t) = resolved.get(&site.addr) {
                edges.push(e(t, EdgeKind::CallTarget));
            }
            edges.push(e(next, EdgeKind::CallReturn));
            Some((Terminator::Call, edges))
        }
        Instr::Ji { .. } => {
            let edges = resolved
                .get(&site.addr)
                .map(|&t| vec![e(t, EdgeKind::Flow)])
                .unwrap_or_default();
            Some((Terminator::IndirectJump, edges))
        }
        Instr::JCond { off, .. }
        | Instr::Jz { off, .. }
        | Instr::Jnz { off, .. }
        | Instr::Loop { off, .. } => Some((
            Terminator::Branch,
            vec![
                e(rel16(site.addr, off), EdgeKind::Flow),
                e(next, EdgeKind::Flow),
            ],
        )),
        Instr::Ret | Instr::Rfe => Some((Terminator::Return, vec![])),
        Instr::Halt => Some((Terminator::Halt, vec![])),
        _ => None,
    }
}

fn build_blocks(
    decoded: &BTreeMap<u32, (Instr, u8)>,
    leaders: &BTreeSet<u32>,
    stops: &BTreeMap<u32, String>,
    resolved: &BTreeMap<u32, u32>,
) -> BTreeMap<u32, Block> {
    let mut blocks = BTreeMap::new();
    let mut cur: Vec<Site> = Vec::new();

    let finalize = |cur: &mut Vec<Site>,
                    term: Terminator,
                    edges: Vec<Edge>,
                    blocks: &mut BTreeMap<u32, Block>| {
        if cur.is_empty() {
            return;
        }
        let start = cur[0].addr;
        let last = cur.last().expect("non-empty");
        let end = last.addr.wrapping_add(u32::from(last.len));
        blocks.insert(
            start,
            Block {
                start,
                end,
                instrs: std::mem::take(cur),
                term,
                edges,
            },
        );
    };

    let addrs: Vec<u32> = decoded.keys().copied().collect();
    for &addr in &addrs {
        let (instr, len) = &decoded[&addr];
        if !cur.is_empty() {
            let last = cur.last().expect("non-empty");
            let expected = last.addr.wrapping_add(u32::from(last.len));
            // A new leader or a gap in the decoded bytes starts a block.
            if addr != expected {
                finalize(&mut cur, Terminator::DecodeStop, vec![], &mut blocks);
            } else if leaders.contains(&addr) {
                finalize(
                    &mut cur,
                    Terminator::FallThrough,
                    vec![Edge {
                        to: addr,
                        kind: EdgeKind::Flow,
                    }],
                    &mut blocks,
                );
            }
        }
        let site = Site {
            addr,
            instr: *instr,
            len: *len,
        };
        let next = addr.wrapping_add(u32::from(*len));
        let term = terminator_of(&site, next, resolved);
        cur.push(site);
        if let Some((term, edges)) = term {
            finalize(&mut cur, term, edges, &mut blocks);
        } else if stops.contains_key(&next) {
            finalize(&mut cur, Terminator::DecodeStop, vec![], &mut blocks);
        }
    }
    finalize(&mut cur, Terminator::DecodeStop, vec![], &mut blocks);
    blocks
}

/// Recovers the CFG of `image`.
///
/// Iterates recursive descent and constant propagation until no new
/// indirect-branch targets or interrupt vectors appear (bounded at 8
/// rounds; real images converge in 2–3).
#[must_use]
pub fn recover(image: &Image) -> Cfg {
    let mut roots: Vec<(u32, String)> = vec![(image.entry().0, "entry".to_string())];
    let mut resolved: BTreeMap<u32, u32> = BTreeMap::new();
    let mut biv: Option<u32> = None;

    for _round in 0..8 {
        let mut ex = Explorer::new(image);
        for (a, _) in &roots {
            ex.add_leader(*a);
        }
        for &t in resolved.values() {
            ex.add_leader(t);
        }
        ex.trace_all();
        let blocks = build_blocks(&ex.decoded, &ex.leaders, &ex.stops, &resolved);
        let cfg = Cfg {
            blocks,
            roots: roots.clone(),
            biv,
            decode_stops: ex.stops.clone(),
            resolved_indirect: resolved.clone(),
            unresolved_indirect: vec![],
        };
        let sol = constprop::solve(&cfg);

        let mut changed = false;
        for block in cfg.blocks.values() {
            let Some(entry) = sol.entry.get(&block.start) else {
                continue;
            };
            let mut st = entry.clone();
            for site in &block.instrs {
                match site.instr {
                    Instr::Ji { aa } | Instr::CallI { aa } => {
                        if let Some(t) = st.a[aa.0 as usize] {
                            if !resolved.contains_key(&site.addr)
                                && image.byte_at(Addr(t)).is_some()
                            {
                                resolved.insert(site.addr, t);
                                changed = true;
                            }
                        }
                    }
                    Instr::Mtcr { csfr, rs } if csfr == Csfr::Biv as u16 => {
                        if let Some(v) = st.d[rs.0 as usize] {
                            if biv != Some(v) {
                                biv = Some(v);
                                changed = true;
                            }
                        }
                    }
                    _ => {}
                }
                constprop::transfer(&mut st, &site.instr);
            }
        }
        if let Some(base) = biv {
            for prio in 0u32..16 {
                let slot = base.wrapping_add(32 * prio);
                if image.bytes_at(Addr(slot), 2).is_some() && !roots.iter().any(|(a, _)| *a == slot)
                {
                    roots.push((slot, format!("vector_p{prio}")));
                    changed = true;
                }
            }
        }
        if !changed {
            let mut cfg = cfg;
            cfg.unresolved_indirect = ex
                .indirect_sites
                .iter()
                .filter(|a| !resolved.contains_key(a))
                .copied()
                .collect();
            return cfg;
        }
    }

    // Bounded out: rebuild once more with whatever was discovered.
    let mut ex = Explorer::new(image);
    for (a, _) in &roots {
        ex.add_leader(*a);
    }
    for &t in resolved.values() {
        ex.add_leader(t);
    }
    ex.trace_all();
    let blocks = build_blocks(&ex.decoded, &ex.leaders, &ex.stops, &resolved);
    let unresolved = ex
        .indirect_sites
        .iter()
        .filter(|a| !resolved.contains_key(a))
        .copied()
        .collect();
    Cfg {
        blocks,
        roots,
        biv,
        decode_stops: ex.stops,
        resolved_indirect: resolved,
        unresolved_indirect: unresolved,
    }
}

/// Strongly connected components of the block graph (iterative Tarjan).
///
/// Returns one set per SCC, in a deterministic order (by smallest member).
/// Single blocks only count as an SCC when they have a self edge.
#[must_use]
pub fn sccs(cfg: &Cfg) -> Vec<BTreeSet<u32>> {
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<u32>,
        lowlink: u32,
        on_stack: bool,
    }
    let mut state: BTreeMap<u32, NodeState> = cfg
        .blocks
        .keys()
        .map(|&k| (k, NodeState::default()))
        .collect();
    let mut index = 0u32;
    let mut stack: Vec<u32> = Vec::new();
    let mut out: Vec<BTreeSet<u32>> = Vec::new();

    enum Frame {
        Enter(u32),
        Resume(u32, usize),
    }

    let starts: Vec<u32> = cfg.blocks.keys().copied().collect();
    for &root in &starts {
        if state[&root].index.is_some() {
            continue;
        }
        let mut work = vec![Frame::Enter(root)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    let st = state.get_mut(&v).expect("known node");
                    if st.index.is_some() {
                        continue;
                    }
                    st.index = Some(index);
                    st.lowlink = index;
                    st.on_stack = true;
                    index += 1;
                    stack.push(v);
                    work.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut i) => {
                    let edges: Vec<u32> = cfg.blocks[&v]
                        .edges
                        .iter()
                        .map(|e| e.to)
                        .filter(|t| cfg.blocks.contains_key(t))
                        .collect();
                    let mut descended = false;
                    while i < edges.len() {
                        let w = edges[i];
                        i += 1;
                        if state[&w].index.is_none() {
                            work.push(Frame::Resume(v, i));
                            work.push(Frame::Enter(w));
                            descended = true;
                            break;
                        }
                        if state[&w].on_stack {
                            let wl = state[&w].index.expect("indexed");
                            let sv = state.get_mut(&v).expect("known node");
                            sv.lowlink = sv.lowlink.min(wl);
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All edges done: maybe pop an SCC, then update parent.
                    let (vl, vi) = {
                        let sv = &state[&v];
                        (sv.lowlink, sv.index.expect("indexed"))
                    };
                    if vl == vi {
                        let mut comp = BTreeSet::new();
                        while let Some(w) = stack.pop() {
                            state.get_mut(&w).expect("known node").on_stack = false;
                            comp.insert(w);
                            if w == v {
                                break;
                            }
                        }
                        let trivial = comp.len() == 1 && {
                            let only = *comp.iter().next().expect("non-empty");
                            !cfg.blocks[&only].edges.iter().any(|e| e.to == only)
                        };
                        if !trivial {
                            out.push(comp);
                        }
                    }
                    if let Some(Frame::Resume(p, _)) = work.last() {
                        let p = *p;
                        let sp_low = state[&p].lowlink;
                        state.get_mut(&p).expect("known node").lowlink = sp_low.min(vl);
                    }
                }
            }
        }
    }
    out.sort_by_key(|c| *c.iter().next().expect("non-empty"));
    out
}

/// Blocks reachable from `from` (inclusive) over all edges.
#[must_use]
pub fn reachable(cfg: &Cfg, from: &[u32]) -> BTreeSet<u32> {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut queue: VecDeque<u32> = from
        .iter()
        .filter(|a| cfg.blocks.contains_key(a))
        .copied()
        .collect();
    while let Some(b) = queue.pop_front() {
        if !seen.insert(b) {
            continue;
        }
        for e in &cfg.blocks[&b].edges {
            if cfg.blocks.contains_key(&e.to) && !seen.contains(&e.to) {
                queue.push_back(e.to);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use audo_tricore::asm::assemble;

    fn cfg_of(src: &str) -> Cfg {
        recover(&assemble(src).expect("test source assembles"))
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = cfg_of(
            "
    .org 0x80000000
_start:
    movi d0, 1
    movi d1, 2
    add d2, d0, d1
    halt
",
        );
        assert_eq!(cfg.blocks.len(), 1);
        let b = cfg.blocks.values().next().expect("one block");
        assert_eq!(b.term, Terminator::Halt);
        assert_eq!(b.instrs.len(), 4);
    }

    #[test]
    fn branch_splits_blocks_and_links_edges() {
        let cfg = cfg_of(
            "
    .org 0x80000000
_start:
    movi d0, 5
loop:
    addi d0, d0, -1
    jnz d0, loop
    halt
",
        );
        // _start, loop, halt.
        assert_eq!(cfg.blocks.len(), 3);
        let loop_block = cfg
            .blocks
            .values()
            .find(|b| b.term == Terminator::Branch)
            .expect("loop block");
        assert!(loop_block.edges.iter().any(|e| e.to == loop_block.start));
        let comps = sccs(&cfg);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].contains(&loop_block.start));
    }

    #[test]
    fn call_has_target_and_return_edges() {
        let cfg = cfg_of(
            "
    .org 0x80000000
_start:
    call f
    halt
f:
    ret
",
        );
        let entry = &cfg.blocks[&0x8000_0000];
        assert_eq!(entry.term, Terminator::Call);
        assert!(entry.edges.iter().any(|e| e.kind == EdgeKind::CallTarget));
        assert!(entry.edges.iter().any(|e| e.kind == EdgeKind::CallReturn));
    }

    #[test]
    fn indirect_jump_through_la_is_resolved() {
        let cfg = cfg_of(
            "
    .org 0x80000000
_start:
    la a15, dest
    ji a15
    .org 0x80000100
dest:
    halt
",
        );
        assert_eq!(cfg.resolved_indirect.len(), 1);
        assert!(cfg.blocks.contains_key(&0x8000_0100));
        assert!(cfg.unresolved_indirect.is_empty());
    }

    #[test]
    fn vectors_discovered_via_biv_write() {
        let cfg = cfg_of(
            "
    .org 0x80000000
_start:
    li d0, 0x80008000
    mtcr biv, d0
    enable
spin:
    wait
    j spin
    .org 0x80008000 + 4*32
    j isr
isr:
    rfe
",
        );
        assert_eq!(cfg.biv, Some(0x8000_8000));
        assert!(cfg.roots.iter().any(|(_, n)| n == "vector_p4"));
        let isr = cfg
            .blocks
            .values()
            .find(|b| b.term == Terminator::Return)
            .expect("isr block reached");
        assert_eq!(isr.instrs.len(), 1);
    }

    #[test]
    fn decode_stop_recorded_for_data_flow() {
        // Fall into data that cannot decode: descent records a stop.
        let cfg = cfg_of(
            "
    .org 0x80000000
_start:
    movi d0, 1
    .word 0xffffffff
",
        );
        assert!(!cfg.decode_stops.is_empty());
    }
}
