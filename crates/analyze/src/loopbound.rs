//! Loop discovery and static trip-count bounds over the recovered CFG.
//!
//! Generalizes [`crate::predict::self_loop_trip`] from single-block self
//! loops to arbitrary natural loops: strongly connected components of the
//! intra-procedural flow graph, peeled recursively (remove each loop's
//! back edge, re-run SCC on its body) so nested loops get their own
//! bounds. Every loop gets an explicit [`TripBound`] — either an exact
//! iteration count proven from the constprop lattice, or `Unbounded` with
//! the reason the proof failed. There are no silent guesses: anything the
//! counter analysis cannot pin becomes `Unbounded` and poisons the WCET.
//!
//! A trip bound of `Exact(n)` means: each time control enters the loop
//! through its header, the header executes at most `n` times before the
//! loop exits. The two provable shapes mirror the hardware idioms the
//! predictor already understood:
//!
//! * `LOOP aN, header` — the hardware loop counter, entered with a known
//!   constant, decremented only by the `LOOP` itself.
//! * `ADDI dN, dN, -1; ...; JNZ dN, header` — a software decrement
//!   counter, decremented exactly once per iteration and written by
//!   nothing else in the loop. "Once per iteration" is proven
//!   structurally: the decrement's block must lie on *every* header→latch
//!   path (a decrement behind a conditional branch can be skipped, so the
//!   loop need never terminate) and on *no* cycle of the loop body (a
//!   decrement inside an inner loop can step the counter past zero and
//!   wrap through 2^32). Either obstruction yields `Unbounded`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use audo_tricore::isa::{Instr, RegRef};

use crate::cfg::{Cfg, EdgeKind};
use crate::constprop::Solution;

/// Ceiling on trip counts the analysis will certify; entry value zero on a
/// decrement counter means "wraps through 2^32", which is never a bound
/// worth reporting as finite. Mirrors `self_loop_trip`'s clamp.
pub const MAX_TRIP: u32 = 16_777_216;

/// Static iteration bound of one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripBound {
    /// The header executes at most this many times per loop entry.
    Exact(u64),
    /// No finite bound could be proven; the payload names the first
    /// obstruction (stable strings, used in reports and findings).
    Unbounded(&'static str),
}

impl TripBound {
    /// The exact bound, when one was proven.
    #[must_use]
    pub fn exact(self) -> Option<u64> {
        match self {
            TripBound::Exact(n) => Some(n),
            TripBound::Unbounded(_) => None,
        }
    }
}

/// One discovered loop.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// The unique entry block (when the loop is reducible).
    pub header: u32,
    /// The unique back-edge source (when there is exactly one).
    pub latch: Option<u32>,
    /// Every block in the loop, header included.
    pub blocks: BTreeSet<u32>,
    /// Static iteration bound.
    pub trip: TripBound,
    /// Nesting depth: 0 for outermost loops.
    pub depth: usize,
}

/// Intra-procedural successor map.
///
/// Full calls (`call`/`calli`) contribute their fall-through
/// (`CallReturn`) edge only — the callee body is priced separately
/// through the call graph, and cycles through a callee (recursion) stay
/// out of the flow graph so they surface as `CSA-RECURSION` instead of as
/// loops. Light calls (`jl`, no CSA spill) are *inlined*: their
/// call-target edge joins the flow graph, because the callee returns via
/// its own resolved `ji a11` flow edge, making the callee body part of
/// the caller's paths. The `JlReturn` shortcut edge is kept too, which
/// double-counts the callee when its return did resolve — sound, and the
/// only cover when it did not.
#[must_use]
pub fn flow_adjacency(cfg: &Cfg) -> BTreeMap<u32, Vec<u32>> {
    cfg.blocks
        .iter()
        .map(|(&start, b)| {
            let light_call = matches!(b.instrs.last().map(|s| &s.instr), Some(Instr::Jl { .. }));
            let succs = b
                .edges
                .iter()
                .filter(|e| {
                    (e.kind != EdgeKind::CallTarget || light_call) && cfg.blocks.contains_key(&e.to)
                })
                .map(|e| e.to)
                .collect();
            (start, succs)
        })
        .collect()
}

/// Strongly connected components of the subgraph induced on `nodes`,
/// minus the `removed` edges (iterative Tarjan, deterministic order by
/// smallest member). Trivial single-node components without a self edge
/// are dropped.
pub(crate) fn cyclic_sccs(
    adj: &BTreeMap<u32, Vec<u32>>,
    nodes: &BTreeSet<u32>,
    removed: &BTreeSet<(u32, u32)>,
) -> Vec<BTreeSet<u32>> {
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<u32>,
        lowlink: u32,
        on_stack: bool,
    }
    let succs = |v: u32| -> Vec<u32> {
        adj.get(&v)
            .map(|s| {
                s.iter()
                    .filter(|&&t| nodes.contains(&t) && !removed.contains(&(v, t)))
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    };
    let mut state: BTreeMap<u32, NodeState> =
        nodes.iter().map(|&k| (k, NodeState::default())).collect();
    let mut index = 0u32;
    let mut stack: Vec<u32> = Vec::new();
    let mut out: Vec<BTreeSet<u32>> = Vec::new();

    enum Frame {
        Enter(u32),
        Resume(u32, usize),
    }

    for &root in nodes {
        if state[&root].index.is_some() {
            continue;
        }
        let mut work = vec![Frame::Enter(root)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    let st = state.get_mut(&v).expect("known node");
                    if st.index.is_some() {
                        continue;
                    }
                    st.index = Some(index);
                    st.lowlink = index;
                    st.on_stack = true;
                    index += 1;
                    stack.push(v);
                    work.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut i) => {
                    let edges = succs(v);
                    let mut descended = false;
                    while i < edges.len() {
                        let w = edges[i];
                        i += 1;
                        match state[&w].index {
                            None => {
                                work.push(Frame::Resume(v, i));
                                work.push(Frame::Enter(w));
                                descended = true;
                                break;
                            }
                            Some(wi) if state[&w].on_stack => {
                                let low = state[&v].lowlink.min(wi);
                                state.get_mut(&v).expect("known").lowlink = low;
                            }
                            Some(_) => {}
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All children visited: fold their lowlinks in.
                    for &w in &edges {
                        if state[&w].on_stack {
                            let low = state[&v].lowlink.min(state[&w].lowlink);
                            state.get_mut(&v).expect("known").lowlink = low;
                        }
                    }
                    if state[&v].lowlink == state[&v].index.expect("visited") {
                        let mut comp = BTreeSet::new();
                        while let Some(w) = stack.pop() {
                            state.get_mut(&w).expect("known").on_stack = false;
                            comp.insert(w);
                            if w == v {
                                break;
                            }
                        }
                        let trivial = comp.len() == 1 && {
                            let only = *comp.iter().next().expect("non-empty");
                            !succs(only).contains(&only)
                        };
                        if !trivial {
                            out.push(comp);
                        }
                    }
                }
            }
        }
    }
    out.sort_by_key(|c| *c.iter().next().expect("non-empty"));
    out
}

/// Structural shape of one cyclic SCC: its header, latch, and trip bound.
#[derive(Debug, Clone)]
pub struct LoopShape {
    /// Unique entry block, when reducible.
    pub header: Option<u32>,
    /// Unique back-edge source, when there is exactly one.
    pub latch: Option<u32>,
    /// Static iteration bound.
    pub trip: TripBound,
}

/// `true` when `instr` writes register `reg`.
fn writes_reg(instr: &Instr, reg: RegRef) -> bool {
    instr.writes().iter().any(|w| w == reg)
}

/// Analyzes one cyclic SCC of the flow graph: finds its unique header
/// (entry from outside) and latch (back-edge source), then tries to prove
/// a trip bound from the counter idiom at the latch and the constprop
/// state on the entry edges.
#[must_use]
pub fn shape_of(
    cfg: &Cfg,
    sol: &Solution,
    preds: &BTreeMap<u32, Vec<u32>>,
    scc: &BTreeSet<u32>,
) -> LoopShape {
    // Header: the unique SCC block with a flow predecessor outside.
    let headers: Vec<u32> = scc
        .iter()
        .filter(|&&b| {
            preds
                .get(&b)
                .is_some_and(|ps| ps.iter().any(|p| !scc.contains(p)))
                || cfg.roots.iter().any(|(a, _)| *a == b)
        })
        .copied()
        .collect();
    let Ok([header]) = <[u32; 1]>::try_from(headers) else {
        return LoopShape {
            header: None,
            latch: None,
            trip: TripBound::Unbounded("irreducible"),
        };
    };

    // Latch: the unique SCC block with an edge back to the header.
    let latches: Vec<u32> = scc
        .iter()
        .filter(|&&b| {
            cfg.blocks[&b]
                .edges
                .iter()
                .any(|e| e.kind != EdgeKind::CallTarget && e.to == header)
        })
        .copied()
        .collect();
    let Ok([latch]) = <[u32; 1]>::try_from(latches) else {
        return LoopShape {
            header: Some(header),
            latch: None,
            trip: TripBound::Unbounded("multi-latch"),
        };
    };

    let trip = trip_of(cfg, sol, preds, scc, header, latch);
    LoopShape {
        header: Some(header),
        latch: Some(latch),
        trip,
    }
}

/// Proves the trip bound of a single-header single-latch loop, or names
/// the obstruction.
fn trip_of(
    cfg: &Cfg,
    sol: &Solution,
    preds: &BTreeMap<u32, Vec<u32>>,
    scc: &BTreeSet<u32>,
    header: u32,
    latch: u32,
) -> TripBound {
    let latch_block = &cfg.blocks[&latch];
    let Some(last) = latch_block.instrs.last() else {
        return TripBound::Unbounded("empty-latch");
    };

    // Identify the counter register and check the loop body leaves it
    // alone apart from the sanctioned decrement.
    let counter: RegRef = match last.instr {
        Instr::Loop { aa, .. } => {
            // Only the LOOP instruction itself may touch the counter.
            let foreign_write = scc.iter().any(|&b| {
                cfg.blocks[&b]
                    .instrs
                    .iter()
                    .any(|s| s.addr != last.addr && writes_reg(&s.instr, RegRef::A(aa.0)))
            });
            if foreign_write {
                return TripBound::Unbounded("counter-clobbered");
            }
            RegRef::A(aa.0)
        }
        Instr::Jnz { ra, .. } => {
            // Exactly one unit decrement of the counter in the whole
            // loop, and nothing else writes it (a non-unit or ascending
            // step has no provable bound here).
            let mut decrements = 0usize;
            let mut other_writes = 0usize;
            let mut dec_block: Option<u32> = None;
            for &b in scc {
                for s in &cfg.blocks[&b].instrs {
                    match s.instr {
                        Instr::AddI {
                            rd,
                            ra: src,
                            imm: -1,
                        } if rd == ra && src == ra => {
                            decrements += 1;
                            dec_block = Some(b);
                        }
                        ref i if writes_reg(i, RegRef::D(ra.0)) => other_writes += 1,
                        _ => {}
                    }
                }
            }
            if decrements != 1 || other_writes != 0 {
                return TripBound::Unbounded("counter-clobbered");
            }
            // The decrement must run exactly once per iteration. In the
            // header it runs each time the loop does; in the latch it sits
            // straight-line before the `jnz`, so every continuing
            // iteration decrements once and tests immediately (a monotone
            // -1 tested after each step cannot skip zero). Anywhere else,
            // prove it structurally: on every header→latch path (or an
            // iteration can skip it and the counter never reaches zero)
            // and on no cycle of the loop body (or an iteration can
            // decrement repeatedly, stepping past zero and wrapping).
            let dec_block = dec_block.expect("exactly one decrement");
            if dec_block != header && dec_block != latch {
                if path_avoiding(preds, scc, header, latch, dec_block) {
                    return TripBound::Unbounded("conditional-decrement");
                }
                if on_body_cycle(preds, scc, header, latch, dec_block) {
                    return TripBound::Unbounded("repeated-decrement");
                }
            }
            RegRef::D(ra.0)
        }
        _ => return TripBound::Unbounded("no-counter"),
    };

    // Entry value: max over every flow edge into the header from outside
    // the loop. All entries must carry a known constant.
    let mut entry_value: Option<u32> = None;
    let empty = Vec::new();
    for &p in preds.get(&header).unwrap_or(&empty) {
        if scc.contains(&p) {
            continue;
        }
        let Some(st) = sol.edge_out.get(&(p, header)) else {
            // Never reached by propagation: cannot enter at run time.
            continue;
        };
        let v = match counter {
            RegRef::A(i) => st.a[i as usize],
            RegRef::D(i) => st.d[i as usize],
        };
        match v {
            Some(v) => entry_value = Some(entry_value.map_or(v, |c| c.max(v))),
            None => return TripBound::Unbounded("entry-not-constant"),
        }
    }
    let Some(n) = entry_value else {
        return TripBound::Unbounded("no-known-entry");
    };
    // Zero wraps through 2^32 on a decrement counter; huge values are not
    // a constant worth certifying.
    if (1..=MAX_TRIP).contains(&n) {
        TripBound::Exact(u64::from(n))
    } else {
        TripBound::Unbounded("trip-out-of-range")
    }
}

/// `true` when some header→latch path through the loop body avoids
/// `avoid`: searches backward from the latch over intra-SCC predecessor
/// edges, never entering `avoid`, until the header is found. The back
/// edge is never traversed because the search stops at the header
/// instead of expanding it. No removed ancestor back edge connects two
/// blocks of a peeled inner SCC (peeling breaks the only cycle through
/// an ancestor header), so filtering the global predecessor map by SCC
/// membership is exact here.
fn path_avoiding(
    preds: &BTreeMap<u32, Vec<u32>>,
    scc: &BTreeSet<u32>,
    header: u32,
    latch: u32,
    avoid: u32,
) -> bool {
    let empty = Vec::new();
    let mut seen = BTreeSet::from([latch]);
    let mut queue = VecDeque::from([latch]);
    while let Some(x) = queue.pop_front() {
        for &p in preds.get(&x).unwrap_or(&empty) {
            if p == header {
                return true;
            }
            if scc.contains(&p) && p != avoid && seen.insert(p) {
                queue.push_back(p);
            }
        }
    }
    false
}

/// `true` when `node` lies on a cycle of the loop body (the SCC minus
/// its `latch`→`header` back edge): searches backward from `node` over
/// intra-SCC predecessor edges, skipping the back edge, for a path that
/// returns to `node`.
fn on_body_cycle(
    preds: &BTreeMap<u32, Vec<u32>>,
    scc: &BTreeSet<u32>,
    header: u32,
    latch: u32,
    node: u32,
) -> bool {
    let empty = Vec::new();
    let mut seen = BTreeSet::from([node]);
    let mut queue = VecDeque::from([node]);
    while let Some(x) = queue.pop_front() {
        for &p in preds.get(&x).unwrap_or(&empty) {
            if x == header && p == latch {
                continue;
            }
            if p == node {
                return true;
            }
            if scc.contains(&p) && seen.insert(p) {
                queue.push_back(p);
            }
        }
    }
    false
}

/// Discovers every loop (outermost first, then peeled inner loops) over
/// the intra-procedural flow graph, with a [`TripBound`] for each.
///
/// Peeling stops below irreducible or latch-less regions — their bodies
/// are already unbounded, so inner structure cannot tighten anything.
#[must_use]
pub fn loop_forest(cfg: &Cfg, sol: &Solution) -> Vec<LoopInfo> {
    let adj = flow_adjacency(cfg);
    let preds = flow_preds(&adj);
    let all: BTreeSet<u32> = cfg.blocks.keys().copied().collect();
    let mut out = Vec::new();
    let mut removed: BTreeSet<(u32, u32)> = BTreeSet::new();
    peel(cfg, sol, &adj, &preds, &all, &mut removed, 0, &mut out);
    out
}

/// Flow predecessors derived from the same adjacency the SCCs use.
#[must_use]
pub fn flow_preds(adj: &BTreeMap<u32, Vec<u32>>) -> BTreeMap<u32, Vec<u32>> {
    let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for (&from, succs) in adj {
        for &to in succs {
            preds.entry(to).or_default().push(from);
        }
    }
    preds
}

#[allow(clippy::too_many_arguments)] // reason: internal recursion, not an API
fn peel(
    cfg: &Cfg,
    sol: &Solution,
    adj: &BTreeMap<u32, Vec<u32>>,
    preds: &BTreeMap<u32, Vec<u32>>,
    nodes: &BTreeSet<u32>,
    removed: &mut BTreeSet<(u32, u32)>,
    depth: usize,
    out: &mut Vec<LoopInfo>,
) {
    for scc in cyclic_sccs(adj, nodes, removed) {
        let shape = shape_of(cfg, sol, preds, &scc);
        let Some(header) = shape.header else {
            out.push(LoopInfo {
                header: *scc.iter().next().expect("non-empty"),
                latch: None,
                blocks: scc,
                trip: shape.trip,
                depth,
            });
            continue;
        };
        out.push(LoopInfo {
            header,
            latch: shape.latch,
            blocks: scc.clone(),
            trip: shape.trip,
            depth,
        });
        if let Some(latch) = shape.latch {
            // Peel: drop the back edge and look for inner loops.
            removed.insert((latch, header));
            peel(cfg, sol, adj, preds, &scc, removed, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cfg, constprop};
    use audo_tricore::asm::assemble;

    fn forest(src: &str) -> Vec<LoopInfo> {
        let g = cfg::recover(&assemble(src).expect("test source assembles"));
        let sol = constprop::solve(&g);
        loop_forest(&g, &sol)
    }

    #[test]
    fn multi_block_loop_gets_exact_trip() {
        let loops = forest(
            "
    .org 0x80000000
_start:
    la a2, 0xd0000400
    li d2, 8
head:
    ld.w d0, [a2]
    jz d0, even
    nop
even:
    addi d2, d2, -1
    jnz d2, head
    halt
",
        );
        assert_eq!(loops.len(), 1, "{loops:?}");
        let l = &loops[0];
        assert_eq!(l.trip, TripBound::Exact(8));
        assert_eq!(l.depth, 0);
        assert!(l.blocks.len() >= 3, "conditional body spans blocks: {l:?}");
    }

    #[test]
    fn nested_loops_get_independent_bounds() {
        let loops = forest(
            "
    .org 0x80000000
_start:
    li d2, 5
outer:
    li d3, 10
inner:
    addi d3, d3, -1
    jnz d3, inner
    addi d2, d2, -1
    jnz d2, outer
    halt
",
        );
        assert_eq!(loops.len(), 2, "{loops:?}");
        let outer = loops.iter().find(|l| l.depth == 0).expect("outer");
        let inner = loops.iter().find(|l| l.depth == 1).expect("inner");
        assert_eq!(outer.trip, TripBound::Exact(5));
        assert_eq!(inner.trip, TripBound::Exact(10));
        assert!(outer.blocks.contains(&inner.header), "nesting");
    }

    #[test]
    fn uncounted_cycle_is_unbounded_with_reason() {
        let loops = forest(
            "
    .org 0x80000000
main:
    nop
    j main
",
        );
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].trip, TripBound::Unbounded("no-counter"));
    }

    #[test]
    fn clobbered_counter_is_not_certified() {
        // The body reloads the counter every iteration: never terminates,
        // and must NOT be reported as bounded.
        let loops = forest(
            "
    .org 0x80000000
_start:
    li d2, 4
head:
    li d2, 4
    addi d2, d2, -1
    jnz d2, head
    halt
",
        );
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].trip, TripBound::Unbounded("counter-clobbered"));
    }

    #[test]
    fn conditional_decrement_is_not_certified() {
        // The decrement is guarded by a data-dependent branch: iterations
        // that take the `jz` skip it, so the counter need never reach
        // zero and the loop can run forever. Must NOT be Exact(4).
        let loops = forest(
            "
    .org 0x80000000
_start:
    la a2, 0xd0000400
    li d2, 4
head:
    ld.w d0, [a2]
    jz d0, skip
    addi d2, d2, -1
skip:
    jnz d2, head
    halt
",
        );
        assert_eq!(loops.len(), 1, "{loops:?}");
        assert_eq!(loops[0].trip, TripBound::Unbounded("conditional-decrement"));
    }

    #[test]
    fn decrement_inside_inner_loop_is_not_certified() {
        // The outer counter is decremented twice per outer iteration (the
        // inner loop runs twice): from 3 it steps 3 → 1 → -1 → ... and
        // wraps through 2^32 without ever being zero at the outer test.
        // The inner loop itself stays provable.
        let loops = forest(
            "
    .org 0x80000000
_start:
    li d2, 3
outer:
    li d3, 2
inner:
    addi d2, d2, -1
    addi d3, d3, -1
    jnz d3, inner
    jnz d2, outer
    halt
",
        );
        assert_eq!(loops.len(), 2, "{loops:?}");
        let outer = loops.iter().find(|l| l.depth == 0).expect("outer");
        let inner = loops.iter().find(|l| l.depth == 1).expect("inner");
        assert_eq!(outer.trip, TripBound::Unbounded("repeated-decrement"));
        assert_eq!(inner.trip, TripBound::Exact(2));
    }

    #[test]
    fn decrement_on_every_path_is_certified() {
        // The decrement sits in an interior body block (neither header
        // nor latch — branches diverge before it and after it), but both
        // arms rejoin at it: every iteration decrements exactly once, so
        // the exact trip is still provable.
        let loops = forest(
            "
    .org 0x80000000
_start:
    la a2, 0xd0000400
    li d2, 8
head:
    ld.w d0, [a2]
    jz d0, join
    nop
join:
    addi d2, d2, -1
    jz d0, tail
    nop
tail:
    jnz d2, head
    halt
",
        );
        assert_eq!(loops.len(), 1, "{loops:?}");
        assert_eq!(loops[0].trip, TripBound::Exact(8));
    }

    #[test]
    fn unknown_entry_value_is_unbounded() {
        let loops = forest(
            "
    .org 0x80000000
_start:
    la a2, 0xd0000400
    ld.w d2, [a2]
head:
    addi d2, d2, -1
    jnz d2, head
    halt
",
        );
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].trip, TripBound::Unbounded("entry-not-constant"));
    }

    #[test]
    fn hardware_loop_bound_matches_self_loop_trip() {
        let loops = forest(
            "
    .org 0x80000000
_start:
    la a3, 100
head:
    nop
    loop a3, head
    halt
",
        );
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].trip, TripBound::Exact(100));
    }
}
