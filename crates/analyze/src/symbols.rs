//! Profile symbolization from the recovered CFG.
//!
//! The sampling profiler (`audo_obs::profile`) needs two static inputs it
//! cannot derive itself: an address→name [`SymbolMap`] and a name-level
//! [`CallGraph`] for folded-stack synthesis. Both fall out of a recovered
//! [`Cfg`]: function entries are the CFG roots (which keep their
//! `entry`/`vector_pN` labels) plus every call-edge target (named
//! `fn_<addr>`), and call edges between blocks become call edges between
//! the functions that contain them. The platform memory map supplies
//! named fallback ranges, so code the CFG never reached still symbolizes
//! to its region (`pflash`, `pspr`, ...).

use std::collections::BTreeSet;

use audo_obs::profile::{CallGraph, SymbolMap};
use audo_platform::config::{
    SocConfig, DFLASH_BASE, DSPR_BASE, EMEM_BASE, PFLASH_BASE, PSPR_BASE, SRAM_BASE,
};

use crate::cfg::{Cfg, EdgeKind};

/// Synthetic name for a call target without a root label.
#[must_use]
pub fn function_name(addr: u32) -> String {
    format!("fn_{addr:08x}")
}

/// Builds the address→name map for `cfg`'s code over `soc`'s memory map.
///
/// Roots are registered first so a vector slot that is also a call target
/// keeps its `vector_pN` label; call targets get [`function_name`] names;
/// the configured memories become fallback ranges.
#[must_use]
pub fn symbol_map(cfg: &Cfg, soc: &SocConfig) -> SymbolMap {
    let mut map = SymbolMap::new();
    // reason: ByteSize::bytes is a u64 API over u32-sized memories.
    #[allow(clippy::cast_possible_truncation)]
    for (base, len, name) in [
        (PFLASH_BASE.0, soc.pflash_size.bytes() as u32, "pflash"),
        (DFLASH_BASE.0, soc.dflash_size.bytes() as u32, "dflash"),
        (SRAM_BASE.0, soc.sram_size.bytes() as u32, "sram"),
        (PSPR_BASE.0, soc.pspr_size.bytes() as u32, "pspr"),
        (DSPR_BASE.0, soc.dspr_size.bytes() as u32, "dspr"),
        (EMEM_BASE.0, soc.emem_size.bytes() as u32, "emem"),
    ] {
        map.add_region(base, len, name);
    }
    for (addr, label) in &cfg.roots {
        map.add_func(*addr, label.clone());
    }
    for target in call_targets(cfg) {
        map.add_func(target, function_name(target));
    }
    map
}

/// Builds the function-level call graph for folded-stack synthesis: CFG
/// roots (in discovery order) become stack roots, and every call edge
/// from a block inside function `f` to a target named `g` becomes an
/// `f → g` call.
#[must_use]
pub fn call_graph(cfg: &Cfg, symbols: &SymbolMap) -> CallGraph {
    let mut graph = CallGraph::new();
    for (_, label) in &cfg.roots {
        graph.add_root(label.clone());
    }
    for block in cfg.blocks.values() {
        let caller = symbols.resolve(block.start).to_string();
        for edge in &block.edges {
            if edge.kind == EdgeKind::CallTarget {
                graph.add_call(caller.clone(), symbols.resolve(edge.to).to_string());
            }
        }
    }
    graph
}

fn call_targets(cfg: &Cfg) -> BTreeSet<u32> {
    cfg.blocks
        .values()
        .flat_map(|b| b.edges.iter())
        .filter(|e| e.kind == EdgeKind::CallTarget)
        .map(|e| e.to)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use audo_tricore::asm::assemble;

    #[test]
    fn roots_and_call_targets_are_symbolized() {
        let image = assemble(
            "
            .org 0x80000000
        _start:
            la   sp, 0xD0004000
            movi d4, 21
            call work
            halt
        work:
            add  d4, d4, d4
            ret
        ",
        )
        .expect("assembles");
        let graph = cfg::recover(&image);
        let soc = SocConfig::tc1797();
        let symbols = symbol_map(&graph, &soc);
        assert_eq!(symbols.resolve(0x8000_0000), "entry");
        // The call target gets a synthetic fn_ name; addresses inside it
        // resolve to the same function.
        let work = graph
            .blocks
            .values()
            .flat_map(|b| b.edges.iter())
            .find(|e| e.kind == EdgeKind::CallTarget)
            .map(|e| e.to)
            .expect("call edge recovered");
        assert_eq!(symbols.resolve(work), function_name(work));
        assert_eq!(symbols.resolve(work + 2), function_name(work));
        // Data scratchpad addresses fall back to the region name.
        assert_eq!(symbols.resolve(0xD000_0100), "dspr");

        let calls = call_graph(&graph, &symbols);
        let paths = calls.stack_paths();
        assert_eq!(
            paths[&function_name(work)],
            vec!["entry".to_string(), function_name(work)]
        );
    }
}
