//! Multi-master hazard detection.
//!
//! On AUDO-class devices three masters touch shared memory: the TriCore
//! core, the DMA move engine and the PCP I/O processor. A write range of
//! one master overlapping another master's access range — without any
//! synchronization the analyzer can see — is a classic integration bug
//! (and exactly the kind of behaviour the paper's bus observation blocks
//! exist to expose). This module derives each non-CPU master's static
//! access ranges and intersects them with the CPU's statically resolved
//! store set.
//!
//! Only *RAM-like* regions participate (scratchpads, SRAM, EMEM, data
//! flash): concurrent MMIO accesses to a peripheral are the normal way
//! hardware is shared, not a hazard.

use std::collections::{BTreeMap, BTreeSet};

use audo_common::Addr;
use audo_pcp::isa::{PReg, PcpInstr};
use audo_platform::config::{Region, SocConfig};
use audo_platform::dma::DmaState;

use crate::access::{AccessKind, MemAccess};
use crate::findings::{Finding, Severity};

/// A contiguous byte range `[start, start + len)` accessed by a master.
#[derive(Debug, Clone)]
pub struct MasterRange {
    /// Master label, e.g. `dma ch0` or `pcp ch3`.
    pub master: String,
    /// Read or write.
    pub kind: AccessKind,
    /// First byte.
    pub start: u32,
    /// Length in bytes (non-zero).
    pub len: u32,
}

impl MasterRange {
    fn overlaps(&self, addr: u32, width: u32) -> bool {
        let a_end = u64::from(addr) + u64::from(width);
        let r_end = u64::from(self.start) + u64::from(self.len);
        u64::from(addr) < r_end && u64::from(self.start) < a_end
    }
}

/// Static access ranges of the non-CPU masters.
#[derive(Debug, Clone, Default)]
pub struct MasterRanges {
    /// All ranges, in derivation order.
    pub ranges: Vec<MasterRange>,
}

impl MasterRanges {
    /// No other masters (pure-CPU analysis).
    #[must_use]
    pub fn empty() -> Self {
        MasterRanges::default()
    }

    /// Derives ranges from programmed DMA channels and an optional PCP
    /// program (`words` loaded at CMEM `base`, started at `entries`).
    #[must_use]
    pub fn derive(dma: &DmaState, pcp: Option<(&[u32], u16, &[u16])>) -> Self {
        let mut ranges = dma_ranges(dma);
        if let Some((words, base, entries)) = pcp {
            ranges.extend(pcp_ranges(words, base, entries));
        }
        MasterRanges { ranges }
    }
}

/// Span of a DMA side: `count` word beats starting at `base`, stepped by
/// `inc` bytes per beat (0 = fixed register address: one word).
fn dma_span(base: u32, count: u32, inc: i32) -> (u32, u32) {
    if count == 0 {
        return (base, 4);
    }
    match inc {
        0 => (base, 4),
        i if i > 0 => (base, (count - 1).saturating_mul(i as u32).saturating_add(4)),
        i => {
            let back = (count - 1).saturating_mul(i.unsigned_abs());
            (base.wrapping_sub(back), back.saturating_add(4))
        }
    }
}

/// Access ranges of every enabled DMA channel.
#[must_use]
pub fn dma_ranges(dma: &DmaState) -> Vec<MasterRange> {
    let mut out = Vec::new();
    for (i, c) in dma.ch.iter().enumerate() {
        if !c.enabled {
            continue;
        }
        let (rs, rl) = dma_span(c.src, c.count, c.src_inc);
        let (ws, wl) = dma_span(c.dst, c.count, c.dst_inc);
        out.push(MasterRange {
            master: format!("dma ch{i}"),
            kind: AccessKind::Load,
            start: rs,
            len: rl,
        });
        out.push(MasterRange {
            master: format!("dma ch{i}"),
            kind: AccessKind::Store,
            start: ws,
            len: wl,
        });
    }
    out
}

/// PCP register lattice: 8 per-channel registers.
type PcpState = [Option<u32>; 8];

fn pcp_transfer(st: &mut PcpState, instr: &PcpInstr) {
    let r = |st: &PcpState, reg: PReg| st[reg.0 as usize];
    match *instr {
        PcpInstr::Ldi { r1, imm } => st[r1.0 as usize] = Some(u32::from(imm)),
        PcpInstr::Ldih { r1, imm } => {
            st[r1.0 as usize] = r(st, r1).map(|v| (u32::from(imm) << 16) | (v & 0xFFFF));
        }
        PcpInstr::Add { r1, r2 } => {
            st[r1.0 as usize] = match (r(st, r1), r(st, r2)) {
                (Some(x), Some(y)) => Some(x.wrapping_add(y)),
                _ => None,
            };
        }
        PcpInstr::Addi { r1, imm } => {
            st[r1.0 as usize] = r(st, r1).map(|v| v.wrapping_add(imm as i32 as u32));
        }
        PcpInstr::Shl { r1, imm } => {
            st[r1.0 as usize] = r(st, r1).map(|v| v << imm);
        }
        PcpInstr::Shr { r1, imm } => {
            st[r1.0 as usize] = r(st, r1).map(|v| v >> imm);
        }
        PcpInstr::Ld { r1, .. } | PcpInstr::Ldp { r1, .. } => st[r1.0 as usize] = None,
        PcpInstr::Sub { r1, .. }
        | PcpInstr::And { r1, .. }
        | PcpInstr::Or { r1, .. }
        | PcpInstr::Xor { r1, .. }
        | PcpInstr::Mul { r1, .. }
        | PcpInstr::Min { r1, .. }
        | PcpInstr::Max { r1, .. } => st[r1.0 as usize] = None,
        _ => {}
    }
}

fn meet_pcp(into: &mut PcpState, other: &PcpState) -> bool {
    let mut changed = false;
    for i in 0..8 {
        if into[i].is_some() && into[i] != other[i] {
            into[i] = None;
            changed = true;
        }
    }
    changed
}

/// FPI (crossbar) access ranges of a PCP channel program.
///
/// Runs a small constant propagation over the channel-program words
/// (`words` loaded at CMEM word offset `base`, one entry point per
/// started channel) and collects every `Ld`/`St` whose base register is
/// statically known. PRAM accesses (`Ldp`/`Stp`) are local to the PCP and
/// never reach shared memory, so they are ignored.
#[must_use]
pub fn pcp_ranges(words: &[u32], base: u16, entries: &[u16]) -> Vec<MasterRange> {
    // Per-word-index entry states (channels share the flat CMEM space).
    let mut entry_state: BTreeMap<u16, PcpState> = BTreeMap::new();
    let mut work: Vec<u16> = Vec::new();
    for &e in entries {
        entry_state.insert(e, [None; 8]);
        work.push(e);
    }
    let decode_at = |idx: u16| -> Option<PcpInstr> {
        let rel = idx.checked_sub(base)? as usize;
        let w = *words.get(rel)?;
        PcpInstr::decode(w, Addr(u32::from(idx))).ok()
    };

    fn propagate(
        entry_state: &mut BTreeMap<u16, PcpState>,
        work: &mut Vec<u16>,
        t: u16,
        st: &PcpState,
    ) {
        match entry_state.get_mut(&t) {
            None => {
                entry_state.insert(t, *st);
                work.push(t);
            }
            Some(cur) => {
                if meet_pcp(cur, st) {
                    work.push(t);
                }
            }
        }
    }

    // Worklist over straight-line runs; lattice height bounds iteration.
    let mut budget = words.len().saturating_mul(64).max(1024);
    while let Some(start) = work.pop() {
        let mut idx = start;
        let mut st = entry_state.get(&start).copied().unwrap_or([None; 8]);
        loop {
            if budget == 0 {
                return collect_pcp_accesses(words, base, &entry_state);
            }
            budget -= 1;
            let Some(instr) = decode_at(idx) else {
                break;
            };
            match instr {
                PcpInstr::Jmp { target } => {
                    propagate(&mut entry_state, &mut work, target, &st);
                    break;
                }
                PcpInstr::Jnz { target, .. } | PcpInstr::Jz { target, .. } => {
                    propagate(&mut entry_state, &mut work, target, &st);
                    pcp_transfer(&mut st, &instr);
                    let next = idx.wrapping_add(1);
                    propagate(&mut entry_state, &mut work, next, &st);
                    break;
                }
                PcpInstr::Exit => break,
                _ => {
                    pcp_transfer(&mut st, &instr);
                    idx = idx.wrapping_add(1);
                    // Continue the straight-line run, but join into any
                    // already-known entry point we fall into.
                    if entry_state.contains_key(&idx) {
                        propagate(&mut entry_state, &mut work, idx, &st);
                        break;
                    }
                }
            }
        }
    }
    collect_pcp_accesses(words, base, &entry_state)
}

/// Replays each known entry state over its straight-line run, recording
/// resolvable FPI accesses.
fn collect_pcp_accesses(
    words: &[u32],
    base: u16,
    entry_state: &BTreeMap<u16, PcpState>,
) -> Vec<MasterRange> {
    let mut seen: BTreeSet<(u32, AccessKind)> = BTreeSet::new();
    let mut out = Vec::new();
    for (&start, st0) in entry_state {
        let mut st = *st0;
        let mut idx = start;
        while let Some(rel) = idx.checked_sub(base) {
            let Some(&w) = words.get(rel as usize) else {
                break;
            };
            let Ok(instr) = PcpInstr::decode(w, Addr(u32::from(idx))) else {
                break;
            };
            match instr {
                PcpInstr::Ld { r2, off, .. } | PcpInstr::St { r2, off, .. } => {
                    if let Some(b) = st[r2.0 as usize] {
                        let addr = b.wrapping_add(off as i32 as u32);
                        let kind = if matches!(instr, PcpInstr::St { .. }) {
                            AccessKind::Store
                        } else {
                            AccessKind::Load
                        };
                        if seen.insert((addr, kind)) {
                            out.push(MasterRange {
                                master: format!("pcp @{idx}"),
                                kind,
                                start: addr,
                                len: 4,
                            });
                        }
                    }
                }
                PcpInstr::Jmp { .. } | PcpInstr::Exit => break,
                PcpInstr::Jnz { .. } | PcpInstr::Jz { .. } => break,
                _ => {}
            }
            pcp_transfer(&mut st, &instr);
            idx = idx.wrapping_add(1);
            // Stop at the next entry point: it is replayed on its own
            // (meet-adjusted) state.
            if idx != start && entry_state.contains_key(&idx) {
                break;
            }
        }
    }
    out
}

fn shared_ram(region: Region) -> bool {
    matches!(
        region,
        Region::Dspr | Region::Pspr | Region::Sram | Region::Emem | Region::Dflash
    )
}

/// Intersects the CPU's resolved accesses with the other masters' ranges.
///
/// CPU write ∩ other-master write → [`Severity::Error`] (lost updates);
/// CPU access ∩ other-master write, or CPU write ∩ other-master read →
/// [`Severity::Warning`] (torn reads / stale data), reported once per
/// (site, master) pair.
#[must_use]
pub fn detect(accesses: &[MemAccess], masters: &MasterRanges, soc: &SocConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    for acc in accesses {
        let (Some(target), Some(region)) = (acc.target, acc.region) else {
            continue;
        };
        if !shared_ram(region) {
            continue;
        }
        for mr in &masters.ranges {
            if !mr.overlaps(target, u32::from(acc.width)) {
                continue;
            }
            // Both sides reading is harmless.
            if acc.kind == AccessKind::Load && mr.kind == AccessKind::Load {
                continue;
            }
            let master_region = soc.region_of(Addr(mr.start));
            if !shared_ram(master_region) {
                continue;
            }
            let code = if mr.master.starts_with("dma") {
                "hazard-dma"
            } else {
                "hazard-pcp"
            };
            let both_write = acc.kind == AccessKind::Store && mr.kind == AccessKind::Store;
            let severity = if both_write {
                Severity::Error
            } else {
                Severity::Warning
            };
            let verb = match (acc.kind, mr.kind) {
                (AccessKind::Store, AccessKind::Store) => "write/write",
                (AccessKind::Store, AccessKind::Load) => "CPU write vs. master read",
                _ => "CPU read vs. master write",
            };
            let mut f = Finding::new(
                severity,
                code,
                Some(acc.site),
                format!(
                    "{verb} overlap at {target:#010x} ({}) between the CPU and {}",
                    region.name(),
                    mr.master
                ),
            );
            f.note = Some(format!(
                "{} range {:#010x}..{:#010x} has no synchronization the analyzer can see",
                mr.master,
                mr.start,
                u64::from(mr.start) + u64::from(mr.len)
            ));
            out.push(f);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dma_with(dst: u32, count: u32, dst_inc: i32) -> DmaState {
        let mut dma = DmaState::new();
        let c = &mut dma.ch[0];
        c.src = 0xF000_200C;
        c.dst = dst;
        c.count = count;
        c.src_inc = 0;
        c.dst_inc = dst_inc;
        c.enabled = true;
        dma
    }

    #[test]
    fn dma_span_covers_incrementing_block() {
        let dma = dma_with(0xD000_0100, 8, 4);
        let ranges = dma_ranges(&dma);
        let w = ranges
            .iter()
            .find(|r| r.kind == AccessKind::Store)
            .expect("write range");
        assert_eq!(w.start, 0xD000_0100);
        assert_eq!(w.len, 32);
        let r = ranges
            .iter()
            .find(|r| r.kind == AccessKind::Load)
            .expect("read range");
        assert_eq!((r.start, r.len), (0xF000_200C, 4), "fixed src = one word");
    }

    #[test]
    fn cpu_write_into_dma_write_range_is_error() {
        let soc = SocConfig::tc1797();
        let masters = MasterRanges::derive(&dma_with(0xD000_0100, 8, 4), None);
        let acc = [MemAccess {
            site: 0x8000_0010,
            block: 0x8000_0000,
            kind: AccessKind::Store,
            width: 4,
            target: Some(0xD000_0104),
            region: Some(Region::Dspr),
        }];
        let f = detect(&acc, &masters, &soc);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Error);
        assert_eq!(f[0].code, "hazard-dma");
    }

    #[test]
    fn cpu_read_of_dma_write_range_is_warning_and_mmio_is_ignored() {
        let soc = SocConfig::tc1797();
        let masters = MasterRanges::derive(&dma_with(0xD000_0100, 8, 4), None);
        let acc = [
            MemAccess {
                site: 0x8000_0010,
                block: 0x8000_0000,
                kind: AccessKind::Load,
                width: 4,
                target: Some(0xD000_0100),
                region: Some(Region::Dspr),
            },
            // Reading the same ADC FIFO register the DMA drains: normal.
            MemAccess {
                site: 0x8000_0014,
                block: 0x8000_0000,
                kind: AccessKind::Load,
                width: 4,
                target: Some(0xF000_200C),
                region: Some(Region::Periph),
            },
        ];
        let f = detect(&acc, &masters, &soc);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Warning);
    }

    #[test]
    fn disjoint_ranges_produce_nothing() {
        let soc = SocConfig::tc1797();
        let masters = MasterRanges::derive(&dma_with(0xD000_0100, 8, 4), None);
        let acc = [MemAccess {
            site: 0x8000_0010,
            block: 0x8000_0000,
            kind: AccessKind::Store,
            width: 4,
            target: Some(0xD000_0200),
            region: Some(Region::Dspr),
        }];
        assert!(detect(&acc, &masters, &soc).is_empty());
    }

    #[test]
    fn pcp_store_range_found_through_ldi_ldih() {
        // r7 = 0x90000100 built with LDI/LDIH, then ST via FPI.
        let words = vec![
            PcpInstr::Ldi {
                r1: PReg(7),
                imm: 0x0100,
            }
            .encode(),
            PcpInstr::Ldih {
                r1: PReg(7),
                imm: 0x9000,
            }
            .encode(),
            PcpInstr::St {
                r1: PReg(0),
                r2: PReg(7),
                off: 4,
            }
            .encode(),
            PcpInstr::Exit.encode(),
        ];
        let ranges = pcp_ranges(&words, 0, &[0]);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].kind, AccessKind::Store);
        assert_eq!(ranges[0].start, 0x9000_0104);
    }

    #[test]
    fn pcp_loop_join_keeps_agreeing_base() {
        // Loop body stores through a base that never changes: the join
        // must keep it constant across the back edge.
        let words = vec![
            PcpInstr::Ldi {
                r1: PReg(7),
                imm: 0x0200,
            }
            .encode(),
            PcpInstr::Ldih {
                r1: PReg(7),
                imm: 0x9000,
            }
            .encode(),
            PcpInstr::Ldi {
                r1: PReg(0),
                imm: 4,
            }
            .encode(),
            // word 3: loop head
            PcpInstr::St {
                r1: PReg(1),
                r2: PReg(7),
                off: 0,
            }
            .encode(),
            PcpInstr::Addi {
                r1: PReg(0),
                imm: -1,
            }
            .encode(),
            PcpInstr::Jnz {
                r1: PReg(0),
                target: 3,
            }
            .encode(),
            PcpInstr::Exit.encode(),
        ];
        let ranges = pcp_ranges(&words, 0, &[0]);
        assert!(
            ranges
                .iter()
                .any(|r| r.kind == AccessKind::Store && r.start == 0x9000_0200),
            "{ranges:?}"
        );
    }
}
