//! Findings: severity-ranked diagnostics with deterministic JSON and
//! rustc-style text rendering.
//!
//! Findings are value types; the [`crate::analyze`] entry point collects
//! them from the individual passes, sorts them into a stable order
//! (severity, then code, then address), and the two renderers here
//! guarantee byte-identical output for identical analyses.

use std::fmt::Write as _;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The program violates the platform contract (writes to flash,
    /// unmapped or misaligned accesses, unsynchronized multi-master
    /// write overlap). The analyzer exits non-zero.
    Error,
    /// Suspicious but not provably wrong (multi-master read/write
    /// overlap, infinite loop with no exit edge).
    Warning,
    /// Worth knowing (data-flash EEPROM writes, possibly-unreachable
    /// code).
    Info,
}

impl Severity {
    /// Lower-case label used in both renderers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity rank.
    pub severity: Severity,
    /// Stable machine-readable code (kebab-case), e.g. `flash-write`.
    pub code: &'static str,
    /// The guest address the finding anchors to (an instruction site, a
    /// block start, or a data address), if any.
    pub addr: Option<u32>,
    /// One-line human-readable statement of the defect.
    pub message: String,
    /// Enclosing symbol of `addr`, when the image knows one.
    pub context: Option<String>,
    /// Extra `= note:` line for the text renderer.
    pub note: Option<String>,
}

impl Finding {
    /// Builds a finding with no context/note (the common case).
    #[must_use]
    pub fn new(severity: Severity, code: &'static str, addr: Option<u32>, message: String) -> Self {
        Finding {
            severity,
            code,
            addr,
            message,
            context: None,
            note: None,
        }
    }

    /// Stable sort key: severity, then code, then address, then message.
    #[must_use]
    pub fn sort_key(&self) -> (Severity, &'static str, u64, &str) {
        // Missing addresses sort after all real ones.
        let addr = self.addr.map_or(u64::MAX, u64::from);
        (self.severity, self.code, addr, &self.message)
    }
}

/// Escapes a string for inclusion in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a deterministic JSON document.
///
/// The caller passes the findings already sorted (see
/// [`Finding::sort_key`]); this function serializes them verbatim, so
/// repeated runs over the same image produce byte-identical output.
#[must_use]
pub fn render_json(image_name: &str, findings: &[Finding]) -> String {
    let count = |s: Severity| findings.iter().filter(|f| f.severity == s).count();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"image\": \"{}\",", json_escape(image_name));
    let _ = writeln!(out, "  \"errors\": {},", count(Severity::Error));
    let _ = writeln!(out, "  \"warnings\": {},", count(Severity::Warning));
    let _ = writeln!(out, "  \"infos\": {},", count(Severity::Info));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {");
        let _ = write!(out, "\"severity\": \"{}\"", f.severity.label());
        let _ = write!(out, ", \"code\": \"{}\"", f.code);
        match f.addr {
            Some(a) => {
                let _ = write!(out, ", \"addr\": \"{a:#010x}\"");
            }
            None => out.push_str(", \"addr\": null"),
        }
        let _ = write!(out, ", \"message\": \"{}\"", json_escape(&f.message));
        if let Some(ctx) = &f.context {
            let _ = write!(out, ", \"context\": \"{}\"", json_escape(ctx));
        }
        if let Some(note) = &f.note {
            let _ = write!(out, ", \"note\": \"{}\"", json_escape(note));
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders findings as a rustc-style text report.
#[must_use]
pub fn render_text(image_name: &str, findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}[{}]: {}", f.severity.label(), f.code, f.message);
        if let Some(a) = f.addr {
            match &f.context {
                Some(ctx) => {
                    let _ = writeln!(out, "  --> {a:#010x} (in {ctx})");
                }
                None => {
                    let _ = writeln!(out, "  --> {a:#010x}");
                }
            }
        }
        if let Some(note) = &f.note {
            let _ = writeln!(out, "  = note: {note}");
        }
    }
    let e = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let w = findings
        .iter()
        .filter(|f| f.severity == Severity::Warning)
        .count();
    if findings.is_empty() {
        let _ = writeln!(out, "{image_name}: no findings");
    } else {
        let _ = writeln!(
            out,
            "{image_name}: {} finding(s), {e} error(s), {w} warning(s)",
            findings.len()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding::new(
                Severity::Error,
                "flash-write",
                Some(0x8000_0040),
                "store to program flash".into(),
            ),
            Finding {
                severity: Severity::Warning,
                code: "infinite-loop",
                addr: Some(0x8000_0100),
                message: "loop with no exit edge".into(),
                context: Some("spin".into()),
                note: Some("no halt, wait or outgoing edge in the cycle".into()),
            },
        ]
    }

    #[test]
    fn json_is_deterministic_and_escapes() {
        let f = vec![Finding::new(
            Severity::Info,
            "test",
            None,
            "quote \" backslash \\ newline \n".into(),
        )];
        let a = render_json("img", &f);
        let b = render_json("img", &f);
        assert_eq!(a, b);
        assert!(a.contains("\\\""));
        assert!(a.contains("\\\\"));
        assert!(a.contains("\\n"));
        assert!(a.contains("\"addr\": null"));
    }

    #[test]
    fn text_report_shape() {
        let t = render_text("img", &sample());
        assert!(t.contains("error[flash-write]: store to program flash"));
        assert!(t.contains("--> 0x80000040"));
        assert!(t.contains("(in spin)"));
        assert!(t.contains("= note:"));
        assert!(t.contains("img: 2 finding(s), 1 error(s), 1 warning(s)"));
    }

    #[test]
    fn severity_orders_errors_first() {
        let mut f = sample();
        f.reverse();
        f.sort_by(|x, y| x.sort_key().cmp(&y.sort_key()));
        assert_eq!(f[0].severity, Severity::Error);
    }

    #[test]
    fn empty_report_says_so() {
        assert!(render_text("img", &[]).contains("img: no findings"));
        let j = render_json("img", &[]);
        assert!(j.contains("\"errors\": 0"));
        assert!(j.contains("\"findings\": [\n  ]"));
    }
}
