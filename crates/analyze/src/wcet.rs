//! Static worst-case execution time (WCET) and CSA-depth bounds.
//!
//! IPET-style formulation over the recovered CFG: every block gets a
//! worst-case cycle cost from the pipeline's own exported cost model
//! ([`CostModel`] — one timing table, shared with the cycle-level
//! simulator), every loop gets a trip bound from [`crate::loopbound`],
//! and the whole-program WCET is the longest path through the
//! condensation of the flow graph, with each loop collapsed to
//! `trip × longest-single-iteration`. Calls price the callee's WCET into
//! the calling block; recursion, unresolved indirects, `wait`, `syscall`
//! and undecodable successors all poison the bound to an explicit
//! [`Bound::Unbounded`] with the obstruction named — the analyzer never
//! silently guesses.
//!
//! The same call graph yields the worst-case context-save depth: `call`/
//! `calli` spill one CSA frame each, `jl` spills none, and every
//! interrupt vector can nest once on top of the main program (TriCore
//! priority ceilings admit one live activation per priority level). A
//! finite depth beyond the platform's free-list budget is a
//! `CSA-OVERFLOW` error; recursion is `CSA-RECURSION`.
//!
//! Soundness is machine-checked, not argued: [`check_profile`] compares
//! a measured [`BlockProfile`] (exact per-block cycle attribution from
//! the pipeline tier) against the static per-block bounds, and the
//! fuzzer's `--check-wcet` mode searches generated programs for
//! violations. A measured value above a static bound is a timing-model
//! bug by definition.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use audo_common::Addr;
use audo_obs::profile::BlockProfile;
use audo_platform::config::SocConfig;
use audo_tricore::bus::CoreBus;
use audo_tricore::isa::Instr;
use audo_tricore::pipeline::{CostModel, MemCosts};

use crate::cfg::{Cfg, EdgeKind, Terminator};
use crate::constprop::Solution;
use crate::findings::{Finding, Severity};
use crate::loopbound::{self, LoopInfo, TripBound};

/// A worst-case bound: a finite cycle/frame count, or unbounded with the
/// first obstruction named (stable strings, reported verbatim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Proven finite bound.
    Finite(u64),
    /// No finite bound exists or could be proven.
    Unbounded(&'static str),
}

impl Bound {
    /// The finite value, when one was proven.
    #[must_use]
    pub fn finite(self) -> Option<u64> {
        match self {
            Bound::Finite(n) => Some(n),
            Bound::Unbounded(_) => None,
        }
    }

    fn add(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Unbounded(r), _) => Bound::Unbounded(r),
            (_, Bound::Unbounded(r)) => Bound::Unbounded(r),
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_add(b)),
        }
    }

    fn mul(self, n: u64) -> Bound {
        match self {
            Bound::Unbounded(r) => Bound::Unbounded(r),
            Bound::Finite(a) => Bound::Finite(a.saturating_mul(n)),
        }
    }

    fn max(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Unbounded(r), _) => Bound::Unbounded(r),
            (_, Bound::Unbounded(r)) => Bound::Unbounded(r),
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.max(b)),
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Finite(n) => write!(f, "{n}"),
            Bound::Unbounded(r) => write!(f, "unbounded({r})"),
        }
    }
}

/// Worst-case bounds of one function (a root or full-call target).
#[derive(Debug, Clone)]
pub struct FuncBound {
    /// Entry block address.
    pub entry: u32,
    /// Root label when the entry is a root (`entry`, `vector_p4`, ...).
    pub label: Option<String>,
    /// Worst-case cycles from entry to any return/halt.
    pub wcet: Bound,
    /// Worst-case CSA frames the function can have live at once (its own
    /// deepest call chain; the frame its caller spilled is not included).
    pub csa_frames: Bound,
    /// Blocks reachable inside the function.
    pub blocks: usize,
}

/// The static worst-case report for one image.
#[derive(Debug, Clone)]
pub struct WcetReport {
    /// Image name (used in renders).
    pub image: String,
    /// Per-block body cost bound (cycles per execution, entry overhead
    /// excluded), keyed by block start.
    pub block_cost: BTreeMap<u32, u64>,
    /// Every discovered loop with its trip bound.
    pub loops: Vec<LoopInfo>,
    /// Per-function bounds, sorted by entry address.
    pub funcs: Vec<FuncBound>,
    /// Whole-program WCET from the entry root (unbounded when interrupt
    /// vectors exist: preemption has no static activation count).
    pub program_wcet: Bound,
    /// Worst-case CSA depth: entry chain plus one nesting per vector.
    pub program_csa: Bound,
    /// CSA frames available on the target (the free-list length).
    pub csa_budget: u32,
    /// Cost-model entry overhead (cycles charged around a block per
    /// execution), exported for the profile check.
    pub entry_overhead: u64,
    /// Largest per-block body cost in the image.
    pub max_block_cost: u64,
    /// `WCET-UNBOUNDED` / `CSA-RECURSION` / `CSA-OVERFLOW` findings.
    pub findings: Vec<Finding>,
}

impl WcetReport {
    /// `true` when the report contains an error-severity finding (CSA
    /// overflow or recursion): the CLI exit-2 condition.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }
}

/// Worst-case single-transaction memory costs for a full SoC, from its
/// configuration. Deliberately pessimistic: every access is priced at
/// the slowest slave behind the crossbar, plus an arbitration backlog of
/// one outstanding transaction per competing master (PCP, DMA, the
/// CPU's other port) and one in-flight data-flash program.
#[must_use]
pub fn soc_mem_costs(cfg: &SocConfig) -> MemCosts {
    let slave = cfg
        .flash
        .wait_states
        .max(cfg.dflash_read_latency)
        .max(cfg.sram_latency)
        .max(cfg.emem_latency)
        .max(cfg.periph_latency);
    let backlog = 3 * slave + cfg.dflash_write_busy;
    MemCosts {
        fetch: cfg.flash.wait_states * 2 + backlog,
        read: slave + backlog,
        write: slave + backlog,
    }
}

/// Blocks reachable from `entry` over the intra-procedural flow graph.
fn reach(adj: &BTreeMap<u32, Vec<u32>>, entry: u32) -> BTreeSet<u32> {
    let mut seen = BTreeSet::new();
    if !adj.contains_key(&entry) {
        return seen;
    }
    let mut queue = VecDeque::from([entry]);
    while let Some(b) = queue.pop_front() {
        if !seen.insert(b) {
            continue;
        }
        for &s in adj.get(&b).map(Vec::as_slice).unwrap_or_default() {
            if !seen.contains(&s) {
                queue.push_back(s);
            }
        }
    }
    seen
}

/// The call target of `block`, when resolved to a recovered block.
fn call_target(cfg: &Cfg, block: u32) -> Option<u32> {
    cfg.blocks[&block]
        .edges
        .iter()
        .find(|e| e.kind == EdgeKind::CallTarget && cfg.blocks.contains_key(&e.to))
        .map(|e| e.to)
}

/// `true` when `block` ends in a `jl` (light call, inlined into the flow
/// graph by [`loopbound::flow_adjacency`]).
fn is_light_call(cfg: &Cfg, block: u32) -> bool {
    matches!(
        cfg.blocks[&block].instrs.last().map(|s| &s.instr),
        Some(Instr::Jl { .. })
    )
}

struct Analyzer<'a> {
    cfg: &'a Cfg,
    sol: &'a Solution,
    adj: BTreeMap<u32, Vec<u32>>,
    preds: BTreeMap<u32, Vec<u32>>,
    block_cost: BTreeMap<u32, u64>,
    wcet_memo: BTreeMap<u32, Bound>,
    csa_memo: BTreeMap<u32, Bound>,
    wcet_visiting: BTreeSet<u32>,
    csa_visiting: BTreeSet<u32>,
    /// Entries found on a cycle of the call graph.
    recursive: BTreeSet<u32>,
}

impl Analyzer<'_> {
    /// Worst-case cycles one execution of `b` contributes to a path: its
    /// body cost plus, for full calls, the callee's whole WCET.
    fn block_weight(&mut self, b: u32) -> Bound {
        let cfg = self.cfg;
        let block = &cfg.blocks[&b];
        for s in &block.instrs {
            match s.instr {
                // `wait` parks the core until an interrupt: no bound.
                Instr::Wait => return Bound::Unbounded("wait"),
                // The trap handler is not in the CFG.
                Instr::Syscall { .. } => return Bound::Unbounded("syscall"),
                _ => {}
            }
        }
        let base = Bound::Finite(self.block_cost[&b]);
        match block.term {
            Terminator::Call if !is_light_call(cfg, b) => match call_target(cfg, b) {
                Some(callee) => base.add(self.func_wcet(callee)),
                None => Bound::Unbounded("unresolved-call"),
            },
            Terminator::IndirectJump if block.edges.is_empty() => {
                Bound::Unbounded("unresolved-indirect")
            }
            Terminator::DecodeStop => Bound::Unbounded("decode-stop"),
            _ => base,
        }
    }

    /// Memoized per-function WCET; a cycle in the call graph yields
    /// `unbounded(recursion)`.
    fn func_wcet(&mut self, entry: u32) -> Bound {
        if let Some(&b) = self.wcet_memo.get(&entry) {
            return b;
        }
        if !self.wcet_visiting.insert(entry) {
            self.recursive.insert(entry);
            return Bound::Unbounded("recursion");
        }
        let nodes = reach(&self.adj, entry);
        let w = if nodes.is_empty() {
            Bound::Unbounded("no-blocks")
        } else {
            let mut weights = BTreeMap::new();
            for &b in &nodes {
                let w = self.block_weight(b);
                weights.insert(b, w);
            }
            let mut removed = BTreeSet::new();
            self.region_longest(&nodes, &mut removed, &weights, entry)
        };
        self.wcet_visiting.remove(&entry);
        self.wcet_memo.insert(entry, w);
        w
    }

    /// Longest path from `entry` through the region `nodes` (minus the
    /// already-peeled `removed` back edges): contract every cyclic SCC to
    /// `trip × longest-single-iteration`, then sweep the condensation
    /// DAG in topological order.
    fn region_longest(
        &self,
        nodes: &BTreeSet<u32>,
        removed: &mut BTreeSet<(u32, u32)>,
        weights: &BTreeMap<u32, Bound>,
        entry: u32,
    ) -> Bound {
        let sccs = loopbound::cyclic_sccs(&self.adj, nodes, removed);

        // Component ids: cyclic SCCs first, then singleton nodes.
        let mut comp_of: BTreeMap<u32, usize> = BTreeMap::new();
        let mut comp_weight: Vec<Bound> = Vec::new();
        for scc in &sccs {
            let id = comp_weight.len();
            for &b in scc {
                comp_of.insert(b, id);
            }
            let shape = loopbound::shape_of(self.cfg, self.sol, &self.preds, scc);
            let w = match (shape.trip, shape.header, shape.latch) {
                (TripBound::Exact(trip), Some(header), Some(latch)) => {
                    removed.insert((latch, header));
                    self.region_longest(scc, removed, weights, header).mul(trip)
                }
                (TripBound::Exact(_), _, _) => Bound::Unbounded("irreducible"),
                (TripBound::Unbounded(reason), _, _) => Bound::Unbounded(reason),
            };
            comp_weight.push(w);
        }
        for &b in nodes {
            if let std::collections::btree_map::Entry::Vacant(e) = comp_of.entry(b) {
                e.insert(comp_weight.len());
                comp_weight.push(weights[&b]);
            }
        }

        // Condensation DAG over the region.
        let n = comp_weight.len();
        let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        let mut indeg = vec![0usize; n];
        for &b in nodes {
            for &s in self.adj.get(&b).map(Vec::as_slice).unwrap_or_default() {
                if !nodes.contains(&s) || removed.contains(&(b, s)) {
                    continue;
                }
                let (cb, cs) = (comp_of[&b], comp_of[&s]);
                if cb != cs && succs[cb].insert(cs) {
                    indeg[cs] += 1;
                }
            }
        }

        // Longest path from the entry component, in topological order.
        let centry = comp_of[&entry];
        let mut dist: Vec<Option<Bound>> = vec![None; n];
        dist[centry] = Some(comp_weight[centry]);
        let mut queue: VecDeque<usize> = (0..n).filter(|&c| indeg[c] == 0).collect();
        let mut best = comp_weight[centry];
        while let Some(c) = queue.pop_front() {
            if let Some(d) = dist[c] {
                best = best.max(d);
                for &s in &succs[c] {
                    let cand = d.add(comp_weight[s]);
                    dist[s] = Some(match dist[s] {
                        None => cand,
                        Some(cur) => cur.max(cand),
                    });
                }
            }
            for &s in &succs[c] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        best
    }

    /// Memoized worst-case live CSA frames of one function: the deepest
    /// chain of full calls it can have outstanding.
    fn func_csa(&mut self, entry: u32) -> Bound {
        if let Some(&b) = self.csa_memo.get(&entry) {
            return b;
        }
        if !self.csa_visiting.insert(entry) {
            self.recursive.insert(entry);
            return Bound::Unbounded("recursion");
        }
        let cfg = self.cfg;
        let nodes = reach(&self.adj, entry);
        // An entry the CFG never decoded has no claimable depth — mirror
        // `func_wcet`, never report a confident 0.
        let mut depth = if nodes.is_empty() {
            Bound::Unbounded("no-blocks")
        } else {
            Bound::Finite(0)
        };
        for &b in &nodes {
            let block = &cfg.blocks[&b];
            if block
                .instrs
                .iter()
                .any(|s| matches!(s.instr, Instr::Syscall { .. }))
            {
                // A syscall spills a frame and enters a trap handler the
                // CFG does not model.
                depth = depth.max(Bound::Unbounded("syscall"));
                continue;
            }
            let site = match block.instrs.last().map(|s| &s.instr) {
                Some(Instr::Call { .. } | Instr::CallI { .. }) => match call_target(cfg, b) {
                    Some(callee) => Bound::Finite(1).add(self.func_csa(callee)),
                    None => Bound::Unbounded("unresolved-call"),
                },
                // `jl` spills nothing and its callee is inlined into
                // `nodes`, so the callee's own call sites are already
                // visited by this loop.
                _ => Bound::Finite(0),
            };
            depth = depth.max(site);
        }
        self.csa_visiting.remove(&entry);
        self.csa_memo.insert(entry, depth);
        depth
    }
}

/// Worst-case whole-program CSA depth only: the entry root's deepest
/// call chain plus one nested activation per interrupt vector. A cheap
/// subset of [`analyze_wcet`] (no per-block costs, no longest paths)
/// used by the rate predictor's fleet envelope.
#[must_use]
pub fn program_csa_bound(cfg: &Cfg, sol: &Solution) -> Bound {
    let adj = loopbound::flow_adjacency(cfg);
    let preds = loopbound::flow_preds(&adj);
    let mut az = Analyzer {
        cfg,
        sol,
        adj,
        preds,
        block_cost: BTreeMap::new(),
        wcet_memo: BTreeMap::new(),
        csa_memo: BTreeMap::new(),
        wcet_visiting: BTreeSet::new(),
        csa_visiting: BTreeSet::new(),
        recursive: BTreeSet::new(),
    };
    let entry_root = cfg.roots.first().map(|(a, _)| *a);
    let mut depth = entry_root.map_or(Bound::Unbounded("no-entry"), |e| az.func_csa(e));
    for (a, name) in &cfg.roots {
        if name.starts_with("vector") && cfg.blocks.contains_key(a) {
            depth = depth.add(Bound::Finite(1)).add(az.func_csa(*a));
        }
    }
    depth
}

/// Runs the whole-image WCET and CSA-depth analysis.
///
/// `model` must describe the bus the image will actually run against
/// ([`MemCosts::of_test_bus`] for fuzz-tier programs, [`soc_mem_costs`]
/// for the full SoC); `csa_budget` is the number of frames on the free
/// list (the platform default is `audo_platform::soc::CSA_AREAS`).
#[must_use]
pub fn analyze_wcet(
    cfg: &Cfg,
    sol: &Solution,
    model: &CostModel,
    csa_budget: u32,
    image: &str,
) -> WcetReport {
    let adj = loopbound::flow_adjacency(cfg);
    let preds = loopbound::flow_preds(&adj);
    let block_cost: BTreeMap<u32, u64> = cfg
        .blocks
        .iter()
        .map(|(&start, b)| (start, model.block_cost(b.instrs.iter().map(|s| &s.instr))))
        .collect();
    let max_block_cost = block_cost.values().copied().max().unwrap_or(0);
    let loops = loopbound::loop_forest(cfg, sol);

    let mut az = Analyzer {
        cfg,
        sol,
        adj,
        preds,
        block_cost,
        wcet_memo: BTreeMap::new(),
        csa_memo: BTreeMap::new(),
        wcet_visiting: BTreeSet::new(),
        csa_visiting: BTreeSet::new(),
        recursive: BTreeSet::new(),
    };

    // Function entries: every root, plus every resolved full-call target
    // (`jl` targets are inlined into their callers, not functions).
    let mut entries: BTreeMap<u32, Option<String>> = cfg
        .roots
        .iter()
        .filter(|(a, _)| cfg.blocks.contains_key(a))
        .map(|(a, label)| (*a, Some(label.clone())))
        .collect();
    for (&start, block) in &cfg.blocks {
        if block.term == Terminator::Call && !is_light_call(cfg, start) {
            if let Some(t) = call_target(cfg, start) {
                entries.entry(t).or_insert(None);
            }
        }
    }

    let funcs: Vec<FuncBound> = entries
        .iter()
        .map(|(&entry, label)| FuncBound {
            entry,
            label: label.clone(),
            wcet: az.func_wcet(entry),
            csa_frames: az.func_csa(entry),
            blocks: reach(&az.adj, entry).len(),
        })
        .collect();

    // Whole-program bounds. Interrupt vectors make end-to-end time
    // unbounded (preemption has no static activation count), but each
    // vector still nests at most once on the CSA (priority ceilings).
    let entry_root = cfg.roots.first().map(|(a, _)| *a);
    let vectors: Vec<u32> = cfg
        .roots
        .iter()
        .filter(|(a, name)| name.starts_with("vector") && cfg.blocks.contains_key(a))
        .map(|(a, _)| *a)
        .collect();
    let entry_wcet = entry_root.map_or(Bound::Unbounded("no-entry"), |e| az.func_wcet(e));
    let program_wcet = if vectors.is_empty() {
        entry_wcet
    } else {
        Bound::Unbounded("interrupt-driven")
    };
    let mut program_csa = entry_root.map_or(Bound::Unbounded("no-entry"), |e| az.func_csa(e));
    for &v in &vectors {
        program_csa = program_csa.add(Bound::Finite(1)).add(az.func_csa(v));
    }

    let mut findings = Vec::new();
    if let Bound::Unbounded(reason) = program_wcet {
        findings.push(Finding::new(
            Severity::Warning,
            "WCET-UNBOUNDED",
            entry_root,
            format!("no finite whole-program WCET: {reason}"),
        ));
    }
    for &r in &az.recursive {
        let mut f = Finding::new(
            Severity::Error,
            "CSA-RECURSION",
            Some(r),
            "recursive call chain: CSA depth grows without bound".to_string(),
        );
        f.note = Some("every activation spills one 16-word frame; the free list is finite".into());
        findings.push(f);
    }
    if let Bound::Finite(d) = program_csa {
        if d > u64::from(csa_budget) {
            let mut f = Finding::new(
                Severity::Error,
                "CSA-OVERFLOW",
                entry_root,
                format!("worst-case CSA depth {d} exceeds the {csa_budget}-frame free list"),
            );
            f.note =
                Some("a deep enough call chain faults with `free CSA list exhausted`".to_string());
            findings.push(f);
        }
    }
    findings.sort_by(|x, y| x.sort_key().cmp(&y.sort_key()));

    WcetReport {
        image: image.to_string(),
        block_cost: az.block_cost.clone(),
        loops,
        funcs,
        program_wcet,
        program_csa,
        csa_budget,
        entry_overhead: model.entry_overhead(),
        max_block_cost,
        findings,
    }
}

/// Renders the report (fixed layout, byte-identical across runs and
/// worker counts — golden-testable).
#[must_use]
pub fn render_report(r: &WcetReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "static worst-case report for `{}`:", r.image);
    let _ = writeln!(out, "  program WCET : {} cycles", r.program_wcet);
    let _ = writeln!(
        out,
        "  CSA depth    : {} frames (budget {})",
        r.program_csa, r.csa_budget
    );
    let _ = writeln!(out, "  functions:");
    for f in &r.funcs {
        let label = f.label.as_deref().unwrap_or("-");
        let _ = writeln!(
            out,
            "    {:#010x} {:<12} blocks={:<4} csa={:<20} wcet={}",
            f.entry,
            label,
            f.blocks,
            f.csa_frames.to_string(),
            f.wcet
        );
    }
    let _ = writeln!(out, "  loops:");
    if r.loops.is_empty() {
        let _ = writeln!(out, "    (none)");
    }
    for l in &r.loops {
        let trip = match l.trip {
            TripBound::Exact(n) => n.to_string(),
            TripBound::Unbounded(reason) => format!("unbounded({reason})"),
        };
        let _ = writeln!(
            out,
            "    header={:#010x} depth={} blocks={:<4} trip={}",
            l.header,
            l.depth,
            l.blocks.len(),
            trip
        );
    }
    for f in &r.findings {
        let _ = writeln!(out, "  finding: [{}] {}", f.code, f.message);
    }
    out
}

/// One measured-exceeds-static violation found by [`check_profile`].
#[derive(Debug, Clone)]
pub struct Violation {
    /// What was violated: `block`, `end-to-end` or `csa-depth`.
    pub what: &'static str,
    /// Block start address (0 for whole-program checks).
    pub addr: u32,
    /// Measured value (cycles or frames).
    pub measured: u64,
    /// The static bound it exceeded.
    pub bound: u64,
}

/// Outcome of checking one measured profile against the static bounds.
#[derive(Debug, Clone, Default)]
pub struct ProfileCheck {
    /// Profiled blocks that were checked against a bound.
    pub checked_blocks: usize,
    /// Profiled blocks skipped (self-modified generation, `wait` inside,
    /// or bytes the static CFG never decoded).
    pub skipped_blocks: usize,
    /// Everything measured above its bound (empty = sound run).
    pub violations: Vec<Violation>,
}

impl ProfileCheck {
    /// `true` when nothing exceeded a static bound.
    #[must_use]
    pub fn sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Samples the write-generation stamp of every code region the static
/// CFG decoded from, as the bus reports it *right now*. Call this after
/// the image is loaded but before the run: [`check_profile`] then
/// recognizes measured blocks carrying exactly these stamps as
/// image-resident code (any later store into a region bumps its
/// generation, so modified code can never masquerade as static).
#[must_use]
pub fn code_stamps<B: CoreBus>(cfg: &Cfg, bus: &B) -> BTreeMap<u32, u64> {
    let mut out = BTreeMap::new();
    for &start in cfg.blocks.keys() {
        if let Some((region, generation)) = bus.code_region(Addr(start)) {
            out.insert(region, generation);
        }
    }
    out
}

/// Verifies a measured block profile against the static bounds: no
/// profiled block may cost more than its instruction count at the worst
/// static per-instruction rate plus per-entry overhead, the whole run
/// must fit the program WCET (when finite), and the measured CSA peak
/// must not exceed the static depth (when finite).
///
/// `stamps` is the load-time region-generation snapshot from
/// [`code_stamps`]; profiled blocks whose stamp differs executed bytes
/// the static image no longer describes (self-modified or runtime-written
/// code) and are skipped, never checked against a stale bound.
///
/// The tiers carve their own blocks (capped at
/// [`audo_tricore::pipeline::MAX_BLOCK_LEN`], split on runtime events),
/// so measured block boundaries need not match static ones; the check
/// therefore prices a measured block at `instructions × max instruction
/// cost over its address span`. `irqs_accepted` loosens each per-block
/// bound by one entry overhead per accepted interrupt (an interrupt
/// discards in-flight work whose wait cycles were already charged).
#[must_use]
#[allow(clippy::too_many_arguments)] // reason: each input is one independent measured signal
pub fn check_profile(
    cfg: &Cfg,
    model: &CostModel,
    report: &WcetReport,
    profile: &BlockProfile,
    stamps: &BTreeMap<u32, u64>,
    total_cycles: u64,
    irqs_accepted: u64,
    csa_peak: u32,
) -> ProfileCheck {
    // Statically decoded instruction sites, by address.
    let mut sites: BTreeMap<u32, (&Instr, u8)> = BTreeMap::new();
    for block in cfg.blocks.values() {
        for s in &block.instrs {
            sites.insert(s.addr, (&s.instr, s.len));
        }
    }

    let mut out = ProfileCheck::default();
    for (key, counts) in &profile.blocks {
        // Self-modified code executes under a bumped generation; the
        // static image no longer describes those bytes.
        if stamps.get(&key.region) != Some(&key.generation) || counts.span == 0 {
            out.skipped_blocks += 1;
            continue;
        }
        let start = key.addr();
        let end = start.wrapping_add(counts.span);
        let mut pc = start;
        let mut cmax: Option<u64> = None;
        while pc < end {
            let Some(&(instr, len)) = sites.get(&pc) else {
                // The static CFG never decoded these bytes (code behind
                // an unresolved indirect): nothing to check against.
                cmax = None;
                break;
            };
            if matches!(instr, Instr::Wait) {
                // Idle time is unbounded by construction.
                cmax = None;
                break;
            }
            let c = model.instr_cost(instr);
            cmax = Some(cmax.map_or(c, |m| m.max(c)));
            pc = pc.wrapping_add(u32::from(len));
        }
        let Some(cmax) = cmax else {
            out.skipped_blocks += 1;
            continue;
        };
        out.checked_blocks += 1;
        let bound = counts.instructions.saturating_mul(cmax).saturating_add(
            (counts.executions + 1 + irqs_accepted).saturating_mul(report.entry_overhead),
        );
        if counts.cycles() > bound {
            out.violations.push(Violation {
                what: "block",
                addr: start,
                measured: counts.cycles(),
                bound,
            });
        }
    }

    if let Bound::Finite(w) = report.program_wcet {
        let bound = w.saturating_add(report.entry_overhead);
        if total_cycles > bound {
            out.violations.push(Violation {
                what: "end-to-end",
                addr: 0,
                measured: total_cycles,
                bound,
            });
        }
    }
    if let Bound::Finite(d) = report.program_csa {
        if u64::from(csa_peak) > d {
            out.violations.push(Violation {
                what: "csa-depth",
                addr: 0,
                measured: u64::from(csa_peak),
                bound: d,
            });
        }
    }
    out
}

/// Renders a profile-check outcome (deterministic).
#[must_use]
pub fn render_check(image: &str, check: &ProfileCheck) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "wcet soundness check for `{image}`: {} block(s) checked, {} skipped: {}",
        check.checked_blocks,
        check.skipped_blocks,
        if check.sound() { "sound" } else { "VIOLATED" }
    );
    for v in &check.violations {
        let _ = writeln!(
            out,
            "  VIOLATION {:<10} at {:#010x}: measured {} > static bound {}",
            v.what, v.addr, v.measured, v.bound
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cfg, constprop};
    use audo_tricore::asm::assemble;
    use audo_tricore::pipeline::CoreConfig;

    fn report(src: &str) -> WcetReport {
        let image = assemble(src).expect("test source assembles");
        let g = cfg::recover(&image);
        let sol = constprop::solve(&g);
        let model = CostModel::new(CoreConfig::default(), soc_mem_costs(&SocConfig::tc1797()));
        analyze_wcet(&g, &sol, &model, 48, "test")
    }

    #[test]
    fn straight_line_program_has_finite_wcet() {
        let r = report(
            "
    .org 0x80000000
_start:
    movi d0, 1
    movi d1, 2
    add d2, d0, d1
    halt
",
        );
        let w = r.program_wcet.finite().expect("finite");
        assert!(w > 0);
        assert_eq!(r.program_csa, Bound::Finite(0));
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn loop_trip_scales_the_wcet() {
        let small = report(
            "
    .org 0x80000000
_start:
    li d2, 10
head:
    addi d2, d2, -1
    jnz d2, head
    halt
",
        );
        let large = report(
            "
    .org 0x80000000
_start:
    li d2, 1000
head:
    addi d2, d2, -1
    jnz d2, head
    halt
",
        );
        let ws = small.program_wcet.finite().expect("finite small");
        let wl = large.program_wcet.finite().expect("finite large");
        assert!(
            wl > ws * 50,
            "trip 1000 must dominate trip 10: {ws} vs {wl}"
        );
    }

    #[test]
    fn unbounded_loop_poisons_the_program_bound() {
        let r = report(
            "
    .org 0x80000000
main:
    nop
    j main
",
        );
        assert_eq!(r.program_wcet, Bound::Unbounded("no-counter"));
        assert!(
            r.findings.iter().any(|f| f.code == "WCET-UNBOUNDED"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn calls_price_the_callee_and_one_csa_frame() {
        let r = report(
            "
    .org 0x80000000
_start:
    call outer
    halt
outer:
    call inner
    ret
inner:
    movi d0, 7
    ret
",
        );
        assert_eq!(r.program_csa, Bound::Finite(2));
        let w = r.program_wcet.finite().expect("finite");
        let inner = r
            .funcs
            .iter()
            .filter(|f| f.label.is_none())
            .map(|f| f.wcet.finite().expect("finite callee"))
            .min()
            .expect("callee entries");
        assert!(w > inner, "caller includes callee: {w} vs {inner}");
    }

    #[test]
    fn recursion_is_flagged_with_stable_code() {
        let r = report(
            "
    .org 0x80000000
_start:
    call f
    halt
f:
    call f
    ret
",
        );
        assert_eq!(r.program_csa, Bound::Unbounded("recursion"));
        assert!(
            r.findings.iter().any(|f| f.code == "CSA-RECURSION"),
            "{:?}",
            r.findings
        );
        assert!(r.has_errors());
    }

    #[test]
    fn deep_call_chain_overflows_the_budget() {
        // 61 nested calls against a 48-frame budget.
        let mut src = String::from("\n    .org 0x80000000\n_start:\n    call f0\n    halt\n");
        for i in 0..60 {
            src.push_str(&format!("f{i}:\n    call f{}\n    ret\n", i + 1));
        }
        src.push_str("f60:\n    ret\n");
        let image = assemble(&src).expect("assembles");
        let g = cfg::recover(&image);
        let sol = constprop::solve(&g);
        let model = CostModel::new(CoreConfig::default(), soc_mem_costs(&SocConfig::tc1797()));
        let r = analyze_wcet(&g, &sol, &model, 48, "deep");
        assert_eq!(r.program_csa, Bound::Finite(61));
        assert!(
            r.findings.iter().any(|f| f.code == "CSA-OVERFLOW"),
            "{:?}",
            r.findings
        );
        assert!(r.has_errors());
    }

    #[test]
    fn interrupt_vectors_make_wcet_unbounded_but_csa_finite() {
        let r = report(
            "
    .org 0x80000000
_start:
    li d0, 0x80008000
    mtcr biv, d0
    halt
    .org 0x80008000 + 4*32
    addi d7, d7, 1
    rfe
",
        );
        assert_eq!(r.program_wcet, Bound::Unbounded("interrupt-driven"));
        // Main chain 0 frames + one nested activation of the vector.
        assert_eq!(r.program_csa, Bound::Finite(1));
    }

    #[test]
    fn undecodable_entry_claims_no_csa_depth() {
        // The entry root is pure data: the CFG decodes no block there, so
        // neither bound may claim anything — in particular the CSA depth
        // must not be a confident 0.
        let r = report(
            "
    .org 0x80000000
_start:
    .word 0xffffffff, 0xffffffff
",
        );
        assert_eq!(r.program_wcet, Bound::Unbounded("no-blocks"));
        assert_eq!(r.program_csa, Bound::Unbounded("no-blocks"));
    }

    #[test]
    fn report_renders_deterministically() {
        let src = "
    .org 0x80000000
_start:
    li d2, 8
head:
    addi d2, d2, -1
    jnz d2, head
    halt
";
        let a = render_report(&report(src));
        let b = render_report(&report(src));
        assert_eq!(a, b);
        assert!(a.contains("trip=8"), "{a}");
    }
}
