//! End-to-end analyzer checks: the real engine-control workload images
//! must analyze clean, purpose-built contract violations must be caught,
//! and the static rate bounds must agree with an actual measured run.

use audo_analyze::{analyze, predict, Analysis, MasterRanges};
use audo_platform::config::SocConfig;
use audo_platform::dma::DmaState;
use audo_platform::Soc;
use audo_workloads::engine::{engine_control, EngineParams};
use audo_workloads::Workload;

/// Installs `w` into a fresh SoC (so the DMA channels are programmed the
/// way the workload's setup hook really programs them), derives the
/// master access ranges, and analyzes the image.
fn analyze_workload(w: &Workload, cfg: &SocConfig) -> Analysis {
    let mut soc = Soc::new(cfg.clone());
    w.install(&mut soc).expect("workload installs");
    let pcp = w.pcp().map(|p| {
        let entries: Vec<u16> = p.channels.iter().map(|&(_, e)| e).collect();
        (p.words.clone(), p.base, entries)
    });
    let masters = match &pcp {
        Some((words, base, entries)) => MasterRanges::derive(
            &soc.fabric.dma,
            Some((words.as_slice(), *base, entries.as_slice())),
        ),
        None => MasterRanges::derive(&soc.fabric.dma, None),
    };
    analyze(&w.image, cfg, &masters, &w.name)
}

fn optimized_params() -> EngineParams {
    EngineParams {
        tables_in_dspr: true,
        can_on_pcp: true,
        isrs_in_pspr: true,
        ..EngineParams::default()
    }
}

#[test]
fn stock_engine_image_is_clean_and_fully_discovered() {
    let w = engine_control(&EngineParams::default());
    let a = analyze_workload(&w, &SocConfig::tc1797());
    assert_eq!(a.error_count(), 0, "{}", a.to_text());
    // Entry plus the five interrupt vectors, all found through the BIV
    // write at startup.
    assert_eq!(a.cfg.roots.len(), 6, "roots: {:?}", a.cfg.roots);
    assert!(
        a.cfg
            .roots
            .iter()
            .filter(|(_, n)| n.starts_with("vector_"))
            .count()
            == 5,
        "roots: {:?}",
        a.cfg.roots
    );
    // The ISRs read the ADC buffer the DMA engine writes: a real (and
    // intentional) multi-master overlap the analyzer must surface.
    assert!(
        a.findings.iter().any(|f| f.code == "hazard-dma"),
        "{}",
        a.to_text()
    );
    // The EEPROM-emulation store to data flash is informational.
    assert!(
        a.findings.iter().any(|f| f.code == "dflash-write"),
        "{}",
        a.to_text()
    );
    // The flash-resident background checksum dominates the static mix.
    assert!(
        a.prediction.flash_per_100 > 10.0,
        "flash_per_100 = {}",
        a.prediction.flash_per_100
    );
}

#[test]
fn optimized_engine_image_is_clean_and_resolves_pspr_handlers() {
    let w = engine_control(&optimized_params());
    let a = analyze_workload(&w, &SocConfig::tc1797());
    assert_eq!(a.error_count(), 0, "{}", a.to_text());
    // The PSPR handlers are reached through `la a15, h; ji a15`
    // indirection the constant propagator must resolve.
    assert!(
        a.cfg
            .blocks
            .keys()
            .any(|&b| (0xC000_0000..0xC001_0000).contains(&b)),
        "no PSPR block recovered"
    );
    assert!(
        a.cfg.unresolved_indirect.is_empty(),
        "{:?}",
        a.cfg.unresolved_indirect
    );
    // The PCP firmware publishes the CAN summary word the CPU reads.
    assert!(
        a.findings.iter().any(|f| f.code == "hazard-pcp"),
        "{}",
        a.to_text()
    );
}

#[test]
fn contract_violations_are_pinpointed() {
    // A flash write plus a CPU store into the range an enabled DMA
    // channel writes: exactly these two findings, nothing else.
    let src = "
    .org 0x80000000
_start:
    la a2, 0x80004000
    st.w d0, [a2]
    la a3, 0xd0000104
    st.w d1, [a3]
    halt
";
    let image = audo_tricore::asm::assemble(src).expect("assembles");
    let mut dma = DmaState::new();
    let c = &mut dma.ch[0];
    c.src = 0xF000_200C;
    c.dst = 0xD000_0100;
    c.count = 8;
    c.dst_inc = 4;
    c.enabled = true;
    let masters = MasterRanges::derive(&dma, None);
    let a = analyze(&image, &SocConfig::tc1797(), &masters, "crafted");
    let codes: Vec<&str> = a.findings.iter().map(|f| f.code).collect();
    assert_eq!(codes, vec!["flash-write", "hazard-dma"], "{}", a.to_text());
    assert_eq!(a.error_count(), 2);
}

#[test]
fn engine_report_is_byte_identical_across_runs() {
    let w = engine_control(&EngineParams::default());
    let a = analyze_workload(&w, &SocConfig::tc1797());
    let b = analyze_workload(&w, &SocConfig::tc1797());
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_text(), b.to_text());
}

/// Runs the stock workload for real on the cacheless tc1767 derivative,
/// samples the hardware counters into a metrics snapshot, and checks the
/// measurement against the static bounds: everything must land inside.
#[test]
fn measured_stock_run_passes_static_bounds() {
    let cfg = SocConfig::tc1767();
    let p = EngineParams {
        rpm: 12_000,
        target_teeth: 20,
        ..EngineParams::default()
    };
    let w = engine_control(&p);
    let a = analyze_workload(&w, &cfg);

    let mut soc = Soc::new(cfg);
    w.install(&mut soc).expect("workload installs");
    soc.run_to_halt(w.max_cycles).expect("engine run halts");
    let mut reg = audo_obs::Registry::new();
    soc.export_obs(&mut reg);
    let snapshot = audo_obs::metrics_text::render(&reg, "audo_");

    let parsed = predict::parse_snapshot(&snapshot).expect("registry snapshot has no duplicates");
    let rows = predict::check(&a.prediction, &parsed);
    assert!(
        rows.iter().all(predict::CheckRow::ok),
        "{}",
        predict::render_check(&w.name, &rows)
    );
    // And the check actually saw both measurements.
    assert!(
        rows.iter().all(|r| r.measured.is_some()),
        "snapshot incomplete"
    );
}

/// The scratchpad-resident calibration build has almost no static flash
/// data traffic, so its bounds must veto a profile measured from the
/// flash-heavy stock build — the divergence check the experiment recipe
/// relies on.
#[test]
fn dspr_bg_bounds_veto_a_flash_heavy_profile() {
    let w = engine_control(&EngineParams {
        tables_in_dspr: true,
        bg_in_dspr: true,
        ..EngineParams::default()
    });
    let a = analyze_workload(&w, &SocConfig::tc1767());
    assert_eq!(a.error_count(), 0, "{}", a.to_text());
    assert!(
        a.prediction.flash_per_100 < 5.0,
        "dspr-bg static flash rate should be small, got {}",
        a.prediction.flash_per_100
    );

    // Stock-build-shaped measurement: ~24.6 flash accesses / 100 instrs.
    let stock_profile = "
audo_soc_tricore_instructions_retired 100000
audo_soc_flash_buffer_hits 20000
audo_soc_flash_buffer_misses 4600
audo_soc_tricore_ipc 0.71
";
    let parsed = predict::parse_snapshot(stock_profile).expect("snapshot parses");
    let rows = predict::check(&a.prediction, &parsed);
    let flash = rows
        .iter()
        .find(|r| r.name == "flash_per_100_instrs")
        .expect("flash row");
    assert!(!flash.ok(), "{}", predict::render_check(&w.name, &rows));
}
