//! Calibration microbenchmarks: small programs with known behaviour used to
//! validate the measurement chain and to stress single subsystems.

use audo_platform::Soc;

use crate::Workload;

fn plain(name: &str, description: &str, source: &str, max_cycles: u64) -> Workload {
    let setup: Box<dyn Fn(&mut Soc) + Send + Sync> = Box::new(|_| {});
    Workload::from_source(name, description, source, max_cycles, setup, None)
        .expect("microbenchmark must assemble")
}

/// Tight multiply-accumulate loop: exercises the loop buffer and dual
/// issue; expected steady-state IPC ≈ 2.
#[must_use]
pub fn mac_kernel(iterations: u32) -> Workload {
    let src = format!(
        "
        .org 0x80000000
    _start:
        movi d0, 0
        movi d4, 0
        movi d1, 3
        movi d2, 5
        li d3, {iterations}
        mov.a a3, d3
        la a4, 0xD0000000
    head:
        mac d0, d1, d2          ; IP pipe
        lea a4, a4, 1           ; LS pipe (co-issues)
        mac d4, d1, d2          ; IP pipe, next cycle
        loop a3, head           ; loop pipe (free once primed)
        halt
    "
    );
    plain(
        "mac_kernel",
        "tight MAC loop (loop-buffer / dual-issue exerciser)",
        &src,
        u64::from(iterations) * 12 + 100_000,
    )
}

/// Streaming copy from SRAM to the DSPR: exercises the crossbar and the
/// store path.
#[must_use]
pub fn stream_copy(words: u32) -> Workload {
    let src = format!(
        "
        .org 0x80000000
    _start:
        la a2, 0x90000000
        la a3, 0xD0001000
        li d1, {words}
    head:
        ld.w d2, [a2+]4
        st.w d2, [a3+]4
        addi d1, d1, -1
        jnz d1, head
        halt
    "
    );
    plain(
        "stream_copy",
        "SRAM to DSPR streaming copy (crossbar / store-path exerciser)",
        &src,
        u64::from(words) * 20 + 100_000,
    )
}

/// Pointer chase over `nodes` chain nodes, one per flash line, optionally
/// through the uncached segment: worst case for the flash read buffers.
///
/// # Panics
///
/// Panics if `nodes` is zero.
#[must_use]
pub fn table_chase(nodes: u32, hops: u32, uncached: bool) -> Workload {
    assert!(nodes > 0);
    let alias = if uncached { 0x2000_0000u32 } else { 0 };
    let mut src = format!(
        "
        .org 0x80000000
    _start:
        la a2, node0 + {alias:#x}
        li d1, {hops}
    head:
        ld.a a2, [a2]
        addi d1, d1, -1
        jnz d1, head
        halt
        .align 64
    "
    );
    for i in 0..nodes {
        let next = (i + 1) % nodes;
        src.push_str(&format!(
            "node{i}: .word node{next} + {alias:#x}\n    .space 60\n"
        ));
    }
    plain(
        "table_chase",
        "dependent pointer chase across flash lines (read-buffer worst case)",
        &src,
        u64::from(hops) * 40 + 200_000,
    )
}

/// Call/return storm: `iterations` calls through a `depth`-deep call chain,
/// exercising the context-save architecture's memory traffic.
///
/// # Panics
///
/// Panics if `depth` is zero or greater than 16.
#[must_use]
pub fn call_storm(depth: u32, iterations: u32) -> Workload {
    assert!((1..=16).contains(&depth), "CSA list supports depth 1..=16");
    let mut src = format!(
        "
        .org 0x80000000
    _start:
        li d1, {iterations}
    head:
        call f0
        addi d1, d1, -1
        jnz d1, head
        halt
    "
    );
    for i in 0..depth {
        if i + 1 < depth {
            src.push_str(&format!("f{i}:\n    call f{}\n    ret\n", i + 1));
        } else {
            src.push_str(&format!("f{i}:\n    addi d2, d2, 1\n    ret\n"));
        }
    }
    plain(
        "call_storm",
        "deep call/return chains (CSA spill/refill exerciser)",
        &src,
        u64::from(iterations) * u64::from(depth) * 40 + 200_000,
    )
}

/// Long straight-line integer code from flash: exercises I-cache,
/// sequential prefetch and fetch bandwidth.
#[must_use]
pub fn flash_streamer(blocks: u32, passes: u32) -> Workload {
    let mut src = format!(
        "
        .org 0x80000000
    _start:
        li d7, {passes}
    again:
    "
    );
    for i in 0..blocks {
        // 8 independent ALU ops per block, 32-bit encodings.
        let r = 1 + (i % 6);
        src.push_str(&format!(
            "    add d{r}, d{r}, d0
    xor d0, d0, d{r}
    addi d{r}, d{r}, 3
    sub d0, d0, d{r}
    or d{r}, d{r}, d0
    addi d0, d0, 1
    and d{r}, d{r}, d0
    addi d0, d0, -1
",
            r = r
        ));
    }
    src.push_str(
        "    addi d7, d7, -1
    jz d7, done
    j again                    ; 24-bit range (the block body is large)
done:
    halt
",
    );
    plain(
        "flash_streamer",
        "long straight-line flash-resident code (fetch/prefetch exerciser)",
        &src,
        u64::from(blocks) * u64::from(passes) * 40 + 500_000,
    )
}

/// Divide-heavy kernel: serializes the integer pipe.
#[must_use]
pub fn div_kernel(iterations: u32) -> Workload {
    let src = format!(
        "
        .org 0x80000000
    _start:
        li d0, 1000000
        movi d1, 7
        li d2, {iterations}
    head:
        div d3, d0, d1
        rem d4, d0, d1
        add d0, d3, d4
        addi d2, d2, -1
        jnz d2, head
        halt
    "
    );
    plain(
        "div_kernel",
        "divide-bound kernel (integer-pipe serialization)",
        &src,
        u64::from(iterations) * 40 + 100_000,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use audo_platform::config::SocConfig;

    fn cycles_of(w: &Workload) -> u64 {
        let mut soc = Soc::new(SocConfig::default());
        w.install(&mut soc).unwrap();
        soc.run_to_halt(w.max_cycles).expect("halts")
    }

    #[test]
    fn mac_kernel_sustains_high_ipc() {
        let w = mac_kernel(2000);
        let mut soc = Soc::new(SocConfig::default());
        w.install(&mut soc).unwrap();
        let cycles = soc.run_to_halt(w.max_cycles).unwrap();
        let ipc = soc.tricore.retired_total() as f64 / cycles as f64;
        assert!(
            ipc > 1.5,
            "loop buffer + dual issue should sustain ~2 IPC, got {ipc:.2}"
        );
    }

    #[test]
    fn uncached_chase_is_much_slower_than_cached() {
        let cached = cycles_of(&table_chase(8, 500, false));
        let uncached = cycles_of(&table_chase(8, 500, true));
        assert!(
            uncached as f64 > cached as f64 * 1.5,
            "uncached {uncached} vs cached {cached}"
        );
    }

    #[test]
    fn call_storm_touches_the_csa() {
        let w = call_storm(8, 50);
        let mut soc = Soc::new(SocConfig::default());
        w.install(&mut soc).unwrap();
        soc.run_to_halt(w.max_cycles).unwrap();
        assert_eq!(
            soc.tricore.arch().d[2],
            50,
            "innermost function ran once per iteration"
        );
    }

    #[test]
    fn div_kernel_is_execute_bound() {
        let fast = cycles_of(&mac_kernel(1000));
        let slow = cycles_of(&div_kernel(1000));
        assert!(slow > fast, "divides must dominate ({slow} vs {fast})");
    }

    #[test]
    fn flash_streamer_runs() {
        let c = cycles_of(&flash_streamer(40, 5));
        assert!(c > 1000);
    }
}

/// A seeded random ALU/memory instruction mix: `len` instructions over
/// registers `d0..d6` with loads/stores confined to a DSPR window, repeated
/// `passes` times. Useful for architecture sweeps that must not overfit to
/// a hand-written kernel.
///
/// The same `(seed, len, passes)` always produces the same program (the
/// generator uses a seeded [`rand::rngs::StdRng`]).
#[must_use]
pub fn random_mix(seed: u64, len: u32, passes: u32) -> Workload {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut body = String::new();
    for _ in 0..len {
        // d7 is the pass counter; the mix uses d0..d6.
        let a = rng.random_range(0..7u8);
        let b = rng.random_range(0..7u8);
        let c = rng.random_range(0..7u8);
        let line = match rng.random_range(0..12u8) {
            0 => format!("add d{a}, d{b}, d{c}"),
            1 => format!("sub d{a}, d{b}, d{c}"),
            2 => format!("xor d{a}, d{b}, d{c}"),
            3 => format!("mul d{a}, d{b}, d{c}"),
            4 => format!("min d{a}, d{b}, d{c}"),
            5 => format!("sh d{a}, d{b}, d{c}"),
            6 => format!("addi d{a}, d{b}, {}", rng.random_range(-2048i32..2048)),
            7 => format!("shi d{a}, d{b}, {}", rng.random_range(-31i32..32)),
            8 => format!("sel d{a}, d{b}, d{c}"),
            9 => format!("clz d{a}, d{b}"),
            10 => format!("ld.w d{a}, [a2+{}]", rng.random_range(0..64u32) * 4),
            _ => format!("st.w d{a}, [a2+{}]", rng.random_range(0..64u32) * 4),
        };
        body.push_str("    ");
        body.push_str(&line);
        body.push('\n');
    }
    let src = format!(
        "
        .org 0x80000000
    _start:
        la a2, 0xD0000400
        li d7, {passes}
    again:
{body}    addi d7, d7, -1
        jz d7, done
        j again
    done:
        halt
    "
    );
    plain(
        "random_mix",
        "seeded random ALU/memory mix (sweep workload, anti-overfitting)",
        &src,
        u64::from(len) * u64::from(passes) * 30 + 500_000,
    )
}

#[cfg(test)]
mod random_mix_tests {
    use super::*;
    use audo_platform::config::SocConfig;

    #[test]
    fn random_mix_is_deterministic_per_seed() {
        let a = random_mix(42, 200, 3);
        let b = random_mix(42, 200, 3);
        assert_eq!(a.image.sections()[0].bytes, b.image.sections()[0].bytes);
        let c = random_mix(43, 200, 3);
        assert_ne!(a.image.sections()[0].bytes, c.image.sections()[0].bytes);
    }

    #[test]
    fn random_mix_runs_to_completion() {
        for seed in [1u64, 2, 3] {
            let w = random_mix(seed, 300, 2);
            let mut soc = Soc::new(SocConfig::default());
            w.install(&mut soc).unwrap();
            let cycles = soc.run_to_halt(w.max_cycles).expect("halts");
            assert!(cycles > 500);
        }
    }
}

/// Straight-line flash code interleaved with uncached flash-data reads:
/// both PMU ports stay busy simultaneously, making the code/data port
/// arbitration policy (§4) actually measurable.
#[must_use]
pub fn flash_duel(blocks: u32, passes: u32) -> Workload {
    let mut src = format!(
        "
        .equ UNCACHED, 0x20000000
        .org 0x80000000
    _start:
        la a2, dtab + UNCACHED
        li d7, {passes}
    again:
    "
    );
    for i in 0..blocks {
        let r = 1 + (i % 5);
        // Each block: ALU work (code port) + an uncached data read whose
        // line differs per block (data port).
        src.push_str(&format!(
            "    add d{r}, d{r}, d0
    xor d0, d0, d{r}
    ld.w d6, [a2+{off}]
    add d0, d0, d6
    addi d{r}, d{r}, 1
    sub d0, d0, d{r}
",
            r = r,
            off = (i % 32) * 64,
        ));
    }
    src.push_str(
        "    addi d7, d7, -1
    jz d7, done
    j again
done:
    halt
    .align 64
dtab:
",
    );
    for i in 0..32 {
        src.push_str(&format!("    .word {}\n    .space 60\n", i + 1));
    }
    plain(
        "flash_duel",
        "simultaneous flash code + uncached flash data traffic (port-arbitration exerciser)",
        &src,
        u64::from(blocks) * u64::from(passes) * 60 + 500_000,
    )
}

#[cfg(test)]
mod flash_duel_tests {
    use super::*;
    use audo_platform::config::{PortArbitration, SocConfig};

    #[test]
    fn arbitration_policy_changes_flash_duel_timing() {
        let w = flash_duel(64, 20);
        let run = |arb: PortArbitration| {
            let mut cfg = SocConfig::default();
            cfg.flash.arbitration = arb;
            let mut soc = Soc::new(cfg);
            soc.set_observation(false);
            w.install(&mut soc).unwrap();
            soc.run_to_halt(w.max_cycles).unwrap()
        };
        let code_first = run(PortArbitration::CodeFirst);
        let data_first = run(PortArbitration::DataFirst);
        let round_robin = run(PortArbitration::RoundRobin);
        // The policies must be distinguishable on this workload (direction
        // depends on the mix; the sweep's job is to measure it).
        assert!(
            code_first != data_first || code_first != round_robin,
            "policies indistinguishable: {code_first} / {data_first} / {round_robin}"
        );
    }
}
