//! Synthetic automotive workloads for the simulated AUDO-class SoC.
//!
//! The paper's §4 explains why the microcontroller vendor cannot profile
//! "the" customer application: every customer partitions hardware and
//! software differently, and the software of *future* cars does not exist
//! yet. What the methodology must handle is the *structure* of such
//! applications: crank-synchronous interrupt processing, periodic OS tasks,
//! flash-resident lookup tables, ADC chains fed by DMA, CAN traffic,
//! EEPROM emulation, and a background task soaking up the rest. The
//! [`engine`] workload reproduces exactly that structure, parameterised
//! (engine speed, table placement, CAN handling on CPU vs PCP) so sweeps
//! and partitioning studies have knobs to turn; [`variants`] adds a
//! transmission-flavoured and a chassis-flavoured mix, and [`micro`]
//! provides calibration microbenchmarks with known behaviour.

pub mod engine;
pub mod micro;
pub mod variants;

use audo_common::SimError;
use audo_ed::EmulationDevice;
use audo_platform::Soc;
use audo_tricore::asm::assemble;
use audo_tricore::Image;

/// A PCP channel program plus its channel bindings.
#[derive(Debug, Clone)]
pub struct PcpProgram {
    /// CMEM word offset to load at.
    pub base: u16,
    /// Encoded instruction words.
    pub words: Vec<u32>,
    /// `(channel, entry word)` bindings to enable.
    pub channels: Vec<(u8, u16)>,
}

/// A ready-to-run workload: image, peripheral setup, optional PCP firmware.
pub struct Workload {
    /// Short identifier.
    pub name: String,
    /// One-line description.
    pub description: String,
    /// The assembled TriCore program.
    pub image: Image,
    /// Suggested cycle budget (the workload halts well before this).
    pub max_cycles: u64,
    /// Peripheral/interrupt-router configuration applied after load.
    setup: Box<dyn Fn(&mut Soc) + Send + Sync>,
    /// Optional PCP firmware.
    pcp: Option<PcpProgram>,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("max_cycles", &self.max_cycles)
            .field("image_bytes", &self.image.size())
            .field("has_pcp", &self.pcp.is_some())
            .finish()
    }
}

impl Workload {
    /// Builds a workload from its parts.
    ///
    /// # Errors
    ///
    /// Fails if the generated assembly does not assemble (a workload
    /// generator bug).
    pub fn from_source(
        name: impl Into<String>,
        description: impl Into<String>,
        source: &str,
        max_cycles: u64,
        setup: Box<dyn Fn(&mut Soc) + Send + Sync>,
        pcp: Option<PcpProgram>,
    ) -> Result<Workload, SimError> {
        Ok(Workload {
            name: name.into(),
            description: description.into(),
            image: assemble(source)?,
            max_cycles,
            setup,
            pcp,
        })
    }

    /// Loads the image, applies the peripheral setup and installs any PCP
    /// firmware on a SoC.
    ///
    /// # Errors
    ///
    /// Fails if the image does not fit the SoC's memories.
    pub fn install(&self, soc: &mut Soc) -> Result<(), SimError> {
        soc.load_image(&self.image)?;
        (self.setup)(soc);
        if let Some(pcp) = &self.pcp {
            soc.pcp.load_program(pcp.base, &pcp.words);
            for &(ch, entry) in &pcp.channels {
                soc.pcp.setup_channel(ch, entry);
            }
        }
        Ok(())
    }

    /// Installs onto an Emulation Device.
    ///
    /// # Errors
    ///
    /// See [`Workload::install`].
    pub fn install_ed(&self, ed: &mut EmulationDevice) -> Result<(), SimError> {
        self.install(&mut ed.soc)
    }

    /// The PCP firmware, if the workload carries one (read-only view for
    /// static analysis).
    #[must_use]
    pub fn pcp(&self) -> Option<&PcpProgram> {
        self.pcp.as_ref()
    }
}

/// The stock application-class workloads, in a stable order: the engine
/// workload at default parameters plus the transmission and chassis
/// variants. This is the set the CI analyzer step lints; keep the order
/// fixed so golden findings stay byte-stable.
#[must_use]
pub fn stock_workloads() -> Vec<Workload> {
    vec![
        engine::engine_control(&engine::EngineParams::default()),
        variants::transmission_control(10),
        variants::chassis_monitor(40, 2_000),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use audo_platform::config::SocConfig;

    #[test]
    fn workload_installs_and_runs() {
        let w = micro::mac_kernel(100);
        let mut soc = Soc::new(SocConfig::default());
        w.install(&mut soc).unwrap();
        let cycles = soc.run_to_halt(w.max_cycles).unwrap();
        assert!(cycles > 100);
    }

    #[test]
    fn debug_impl_is_informative() {
        let w = micro::mac_kernel(10);
        let s = format!("{w:?}");
        assert!(s.contains("mac_kernel"));
    }
}
