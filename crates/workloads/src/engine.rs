//! The engine-control workload: a parameterised synthetic ECU application
//! with the canonical powertrain structure.
//!
//! * crank-synchronous injection/ignition ISR (highest priority) doing 2-D
//!   map lookups with load scaling,
//! * a 1 ms PID task and a 10 ms diagnostics task on the system timer,
//! * an ADC scan chain drained by DMA into a DSPR buffer, with a
//!   buffer-complete ISR computing averages,
//! * CAN message handling either on the CPU (interrupt per message) or
//!   offloaded to the PCP (CPU notified every 8th message) — the HW/SW
//!   partitioning knob of experiment E8,
//! * EEPROM-emulation writes to the data flash every 64th tooth,
//! * a background checksum task soaking up remaining CPU time,
//! * lookup tables either flash-resident or copied to the data scratchpad
//!   at startup — the software-mapping optimization of §5.
//!
//! The program halts after a configurable number of crank teeth, so replay
//! runs (architecture sweeps) have a well-defined, software-compatible end.
//!
//! Register convention: ISRs use only upper-context registers
//! (`D8..D14`, `A12..A15`), which the CSA spill/refill saves and restores —
//! meaning handlers must publish results through memory (the `STATE` block),
//! never through registers.

use audo_common::Cycle;
use audo_pcp::isa::{PReg, PcpInstr, ProgramBuilder};
use audo_platform::irq::{srn, Service, SrnConfig};
use audo_platform::Soc;

use crate::{PcpProgram, Workload};

/// Knobs of the engine workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineParams {
    /// Engine speed (RPM).
    pub rpm: u32,
    /// Crank teeth per revolution.
    pub teeth: u32,
    /// Halt after this many teeth.
    pub target_teeth: u32,
    /// Halt only after this many background-task passes too, so the run is
    /// compute-bound and architecture changes show up in the cycle count.
    pub target_bg_passes: u32,
    /// ADC conversion period (cycles).
    pub adc_period: u32,
    /// Mean CAN message period (cycles).
    pub can_period: u32,
    /// Copy the lookup tables to the DSPR at startup.
    pub tables_in_dspr: bool,
    /// Handle CAN on the PCP instead of the CPU.
    pub can_on_pcp: bool,
    /// Place the interrupt handlers in the program scratchpad (PSPR)
    /// instead of flash: single-cycle fetches, no flash port contention
    /// with the background task.
    pub isrs_in_pspr: bool,
    /// Background task checksums the DSPR table copy instead of 8 KiB of
    /// flash: a scratchpad-resident calibration build with almost no
    /// steady-state flash data traffic. Requires `tables_in_dspr`.
    pub bg_in_dspr: bool,
}

impl Default for EngineParams {
    fn default() -> EngineParams {
        EngineParams {
            rpm: 3000,
            teeth: 60,
            target_teeth: 30,
            target_bg_passes: 40,
            adc_period: 2_000,
            can_period: 15_000,
            tables_in_dspr: false,
            can_on_pcp: false,
            isrs_in_pspr: false,
            bg_in_dspr: false,
        }
    }
}

/// Well-known data addresses of the engine workload (used by calibration
/// and data-trace experiments).
pub mod layout {
    /// Per-application state block in the DSPR.
    pub const STATE: u32 = 0xD000_0200;
    /// ADC sample buffer (8 words, DMA destination).
    pub const ADC_BUF: u32 = 0xD000_0100;
    /// Injection log ring in system SRAM.
    pub const INJ_LOG: u32 = 0x9000_0000;
    /// PCP → CPU CAN summary word in SRAM.
    pub const CAN_SUMMARY: u32 = 0x9000_0100;
    /// DSPR copy of the tables (when `tables_in_dspr`).
    pub const DSPR_TABLES: u32 = 0xD000_0400;
    /// Interrupt vector table base.
    pub const BIV: u32 = 0x8000_8000;
    /// State offsets.
    pub mod state {
        /// Crank teeth seen.
        pub const TOOTH_COUNT: u32 = 0;
        /// Last computed injection quantity.
        pub const INJ_OUT: u32 = 4;
        /// Last ignition angle.
        pub const IGN_OUT: u32 = 8;
        /// PID integrator.
        pub const PID_INTEG: u32 = 12;
        /// PID output.
        pub const PID_OUT: u32 = 16;
        /// CAN accumulator.
        pub const CAN_ACCUM: u32 = 20;
        /// CAN messages handled.
        pub const CAN_COUNT: u32 = 24;
        /// 10 ms task activations.
        pub const DIAG_COUNT: u32 = 28;
        /// ADC buffer average.
        pub const ADC_AVG: u32 = 32;
        /// Background checksum.
        pub const BG_CHECKSUM: u32 = 36;
        /// Diagnostics table checksum.
        pub const DIAG_SUM: u32 = 40;
        /// Background-task passes completed.
        pub const BG_PASSES: u32 = 44;
        /// Injection-map row smoothing output.
        pub const SMOOTH_OUT: u32 = 48;
        /// Injection-map column smoothing output.
        pub const COL_OUT: u32 = 52;
    }
}

fn table_words() -> (Vec<u32>, Vec<u32>) {
    // 16×16 injection map and 16-entry ignition map with a smooth,
    // deterministic shape (ramps with a ridge, like a torque map).
    let inj: Vec<u32> = (0..256u32)
        .map(|i| {
            let (r, c) = (i / 16, i % 16);
            1000 + r * 37 + c * 11 + ((r * c) % 7) * 3
        })
        .collect();
    let ign: Vec<u32> = (0..16u32).map(|i| 100 + i * 5).collect();
    (inj, ign)
}

/// Generates the workload's assembly source (exposed for inspection and
/// for the documentation examples).
#[must_use]
pub fn generate_source(p: &EngineParams) -> String {
    use layout::state;
    let (inj, ign) = table_words();
    let inj_words = inj
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let ign_words = ign
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let (inj_base, ign_base) = if p.tables_in_dspr {
        (layout::DSPR_TABLES, layout::DSPR_TABLES + 1024)
    } else {
        // Resolved to the flash labels below.
        (0, 0)
    };
    let inj_const = if p.tables_in_dspr {
        format!("{inj_base:#x}")
    } else {
        "inj_map".to_string()
    };
    let ign_const = if p.tables_in_dspr {
        format!("{ign_base:#x}")
    } else {
        "ign_map".to_string()
    };
    let table_copy = if p.tables_in_dspr {
        format!(
            "
    ; copy tables (256+16 words) into the data scratchpad
    la a2, inj_map
    la a3, {:#x}
    li d1, 272
copy_tables:
    ld.w d2, [a2+]4
    st.w d2, [a3+]4
    addi d1, d1, -1
    jnz d1, copy_tables
",
            layout::DSPR_TABLES
        )
    } else {
        String::new()
    };
    let can_isr = if p.can_on_pcp {
        format!(
            "
isr_can:                       ; PCP summary notification (every 8th msg)
    la a12, {can_summary:#x}
    ld.w d9, [a12]
    la a13, {state:#x}
    st.w d9, [a13+{can_accum}]
    ld.w d12, [a13+{can_count}]
    addi d12, d12, 8
    st.w d12, [a13+{can_count}]
    rfe
",
            can_summary = layout::CAN_SUMMARY,
            state = layout::STATE,
            can_accum = state::CAN_ACCUM,
            can_count = state::CAN_COUNT,
        )
    } else {
        format!(
            "
isr_can:                       ; one interrupt per received message
    la a12, 0xF0003000
    ld.w d9, [a12+0x0C]        ; message id
    ld.w d10, [a12+0x10]       ; data word 0
    la a13, {state:#x}
    ld.w d11, [a13+{can_accum}]
    xor d11, d11, d10
    add d11, d11, d9
    st.w d11, [a13+{can_accum}]
    ld.w d12, [a13+{can_count}]
    addi d12, d12, 1
    st.w d12, [a13+{can_count}]
    rfe
",
            state = layout::STATE,
            can_accum = state::CAN_ACCUM,
            can_count = state::CAN_COUNT,
        )
    };

    // ISR placement: flash (right after the vectors) or the PSPR. The
    // PSPR is outside the 24-bit branch range from the vectors, so its
    // vectors go indirect (A15 is upper-context: already saved at entry).
    let handler_org = if p.isrs_in_pspr {
        "0xC0000000".to_string()
    } else {
        format!("{:#x} + 0x400", layout::BIV)
    };
    let vector = |h: &str| {
        if p.isrs_in_pspr {
            format!("    la a15, {h}\n    ji a15")
        } else {
            format!("    j {h}")
        }
    };
    let bg_head = if p.bg_in_dspr {
        format!(
            "    ; background task: checksum the DSPR table copy (272 words) —
    ; scratchpad-resident, so the steady state has no flash data traffic
    la a2, {:#x}
    movi d1, 0
    li d2, 272
",
            layout::DSPR_TABLES
        )
    } else {
        "    ; background task: checksum 2048 words (8 KiB) of flash-resident
    ; code+tables — a working set beyond the 4 KiB D-cache, so cached
    ; table lines are evicted between crank interrupts
    la a2, 0x80000000
    movi d1, 0
    li d2, 2048
"
        .to_string()
    };
    format!(
        "
; ---- synthetic engine-control ECU application (generated) ----
    .equ STATE, {state:#x}
    .equ ADC_BUF, {adc_buf:#x}
    .org 0x80000000
_start:
    li d0, {biv:#x}
    mtcr biv, d0
{table_copy}
    enable
main_loop:
{bg_head}bg_loop:
    ld.w d3, [a2+]4
    xor d1, d1, d3
    addi d2, d2, -1
    jnz d2, bg_loop
    la a3, STATE
    st.w d1, [a3+{bg_checksum}]
    ld.w d6, [a3+{bg_passes}]
    addi d6, d6, 1
    st.w d6, [a3+{bg_passes}]
    li d5, {target_bg}
    jlt d6, d5, main_loop
    ld.w d4, [a3+{tooth_count}]
    li d5, {target}
    jlt d4, d5, main_loop
    halt

; ---- interrupt vectors (BIV + 32*priority) ----
    .org {biv:#x} + 4*32
{v_dma}
    .org {biv:#x} + 5*32
{v_10ms}
    .org {biv:#x} + 6*32
{v_1ms}
    .org {biv:#x} + 8*32
{v_can}
    .org {biv:#x} + 10*32
{v_crank}

; ---- handlers ----
    .org {handler_org}
isr_crank:                     ; injection + ignition per tooth
    la a12, STATE
    ld.w d8, [a12+{tooth_count}]
    addi d8, d8, 1
    st.w d8, [a12+{tooth_count}]
    la a13, ADC_BUF
    ld.w d9, [a13+0]           ; load signal (ch 0)
    ld.w d10, [a13+4]          ; speed signal (ch 1)
    shi d11, d9, -8            ; 12-bit sample -> 0..15 index
    andi d11, d11, 15
    shi d12, d10, -8
    andi d12, d12, 15
    shi d13, d11, 4            ; idx = (load*16 + speed) * 4
    add d13, d13, d12
    shi d13, d13, 2
    li d14, {inj_const}
    add d14, d14, d13
    mov.a a14, d14
    ld.w d13, [a14]            ; injection map value
    mul d13, d13, d9           ; scale by load
    shi d13, d13, -12
    st.w d13, [a12+{inj_out}]
    andi d14, d8, 63           ; log ring slot
    shi d14, d14, 2
    li d11, {inj_log:#x}
    add d11, d11, d14
    mov.a a15, d11
    st.w d13, [a15]            ; log to SRAM
    shi d11, d12, 2            ; ignition: 1-D map by speed index
    li d14, {ign_const}
    add d14, d14, d11
    mov.a a14, d14
    ld.w d11, [a14]
    st.w d11, [a12+{ign_out}]
    ; row smoothing: accumulate the 16-entry map row (sequential lines)
    ld.w d9, [a13+0]
    shi d9, d9, -8
    andi d9, d9, 15
    shi d9, d9, 6              ; row byte offset = load_idx * 16 * 4
    li d10, {inj_const}
    add d10, d10, d9
    mov.a a14, d10
    movi d11, 0
    movi d12, 16
smooth_row:
    ld.w d13, [a14+]4
    add d11, d11, d13
    addi d12, d12, -1
    jnz d12, smooth_row
    shi d11, d11, -4
    st.w d11, [a12+{smooth_out}]
    ; column smoothing: stride 64 bytes -> touches 16 distinct lines
    ld.w d10, [a13+4]
    shi d10, d10, -8
    andi d10, d10, 15
    shi d10, d10, 2            ; column byte offset = speed_idx * 4
    li d13, {inj_const}
    add d13, d13, d10
    mov.a a14, d13
    movi d11, 0
    movi d12, 16
smooth_col:
    ld.w d13, [a14+]64
    add d11, d11, d13
    addi d12, d12, -1
    jnz d12, smooth_col
    shi d11, d11, -4
    st.w d11, [a12+{col_out}]
    andi d9, d8, 63            ; EEPROM emulation every 64th tooth
    jnz d9, crank_done
    li d10, 0x8F000000
    mov.a a15, d10
    st.w d8, [a15]
crank_done:
    rfe

isr_1ms:                       ; PID speed controller
    la a12, STATE
    la a13, ADC_BUF
    ld.w d8, [a13+8]           ; setpoint (ch 2)
    ld.w d9, [a13+12]          ; actual (ch 3)
    sub d10, d8, d9
    ld.w d11, [a12+{pid_integ}]
    add d11, d11, d10
    st.w d11, [a12+{pid_integ}]
    li d12, 25
    mul d12, d12, d10
    shi d13, d11, -4
    add d12, d12, d13
    st.w d12, [a12+{pid_out}]
    rfe

isr_10ms:                      ; diagnostics: table checksum
    la a12, STATE
    ld.w d8, [a12+{diag_count}]
    addi d8, d8, 1
    st.w d8, [a12+{diag_count}]
    la a13, ign_map
    movi d10, 0
    movi d11, 16
diag_loop:
    ld.w d12, [a13+]4
    add d10, d10, d12
    addi d11, d11, -1
    jnz d11, diag_loop
    st.w d10, [a12+{diag_sum}]
    rfe
{can_isr}
isr_dma_done:                  ; ADC buffer complete: average 8 samples
    la a12, ADC_BUF
    movi d8, 0
    movi d9, 8
avg_loop:
    ld.w d10, [a12+]4
    add d8, d8, d10
    addi d9, d9, -1
    jnz d9, avg_loop
    shi d8, d8, -3
    la a13, STATE
    st.w d8, [a13+{adc_avg}]
    rfe

; ---- calibration tables (flash-resident originals) ----
    .align 32
inj_map:
    .word {inj_words}
ign_map:
    .word {ign_words}
",
        state = layout::STATE,
        adc_buf = layout::ADC_BUF,
        biv = layout::BIV,
        inj_log = layout::INJ_LOG,
        target = p.target_teeth,
        target_bg = p.target_bg_passes,
        smooth_out = state::SMOOTH_OUT,
        col_out = state::COL_OUT,
        handler_org = handler_org,
        bg_head = bg_head,
        v_dma = vector("isr_dma_done"),
        v_10ms = vector("isr_10ms"),
        v_1ms = vector("isr_1ms"),
        v_can = vector("isr_can"),
        v_crank = vector("isr_crank"),
        bg_passes = state::BG_PASSES,
        tooth_count = state::TOOTH_COUNT,
        inj_out = state::INJ_OUT,
        ign_out = state::IGN_OUT,
        pid_integ = state::PID_INTEG,
        pid_out = state::PID_OUT,
        diag_count = state::DIAG_COUNT,
        adc_avg = state::ADC_AVG,
        bg_checksum = state::BG_CHECKSUM,
        diag_sum = state::DIAG_SUM,
    )
}

fn pcp_can_firmware() -> PcpProgram {
    let mut b = ProgramBuilder::new();
    let done = b.forward_label();
    // r1 = CAN base.
    b.push(PcpInstr::Ldi {
        r1: PReg(1),
        imm: 0x3000,
    });
    b.push(PcpInstr::Ldih {
        r1: PReg(1),
        imm: 0xF000,
    });
    b.push(PcpInstr::Ld {
        r1: PReg(0),
        r2: PReg(1),
        off: 0x0C,
    }); // id
    b.push(PcpInstr::Ld {
        r1: PReg(2),
        r2: PReg(1),
        off: 0x10,
    }); // data0
    b.push(PcpInstr::Ldp {
        r1: PReg(3),
        idx: 0,
    }); // accum
    b.push(PcpInstr::Xor {
        r1: PReg(3),
        r2: PReg(2),
    });
    b.push(PcpInstr::Add {
        r1: PReg(3),
        r2: PReg(0),
    });
    b.push(PcpInstr::Stp {
        r1: PReg(3),
        idx: 0,
    });
    b.push(PcpInstr::Ldp {
        r1: PReg(4),
        idx: 1,
    }); // count
    b.push(PcpInstr::Addi {
        r1: PReg(4),
        imm: 1,
    });
    b.push(PcpInstr::Stp {
        r1: PReg(4),
        idx: 1,
    });
    // Every 8th message: publish the summary to SRAM and notify the CPU.
    b.push(PcpInstr::Ldi {
        r1: PReg(5),
        imm: 0,
    });
    b.push(PcpInstr::Or {
        r1: PReg(5),
        r2: PReg(4),
    });
    b.push(PcpInstr::Ldi {
        r1: PReg(6),
        imm: 7,
    });
    b.push(PcpInstr::And {
        r1: PReg(5),
        r2: PReg(6),
    });
    b.jnz(PReg(5), done);
    b.push(PcpInstr::Ldi {
        r1: PReg(7),
        imm: (crate::engine::layout::CAN_SUMMARY & 0xFFFF) as u16,
    });
    b.push(PcpInstr::Ldih {
        r1: PReg(7),
        imm: (crate::engine::layout::CAN_SUMMARY >> 16) as u16,
    });
    b.push(PcpInstr::St {
        r1: PReg(3),
        r2: PReg(7),
        off: 0,
    });
    b.push(PcpInstr::Srq { srn: srn::SOFT0 });
    b.bind(done);
    b.push(PcpInstr::Exit);
    PcpProgram {
        base: 0,
        words: b.finish(0),
        channels: vec![(1, 0)],
    }
}

/// Builds the engine-control workload.
///
/// # Panics
///
/// Panics if the generated source fails to assemble (a generator bug, not
/// a user error), or if `bg_in_dspr` is requested without
/// `tables_in_dspr` (there would be no DSPR copy to checksum).
#[must_use]
pub fn engine_control(p: &EngineParams) -> Workload {
    assert!(
        !p.bg_in_dspr || p.tables_in_dspr,
        "bg_in_dspr requires tables_in_dspr"
    );
    let source = generate_source(p);
    let params = p.clone();
    let setup = Box::new(move |soc: &mut Soc| {
        let now = Cycle::ZERO;
        let cpu_hz = soc.fabric.cfg.cpu_clock.0;
        let f = &mut soc.fabric;
        // Crank wheel.
        f.crank.mmio_write(0x04, params.rpm, now);
        f.crank.mmio_write(0x08, params.teeth, now);
        f.crank.mmio_write(0x00, 1, now);
        // System timer: 1 ms and 10 ms tasks.
        let ms = (cpu_hz / 1000) as u32;
        f.stm.cmp = [ms, ms * 10];
        f.stm.reload = [ms, ms * 10];
        f.stm.irq_enable = [true, true];
        // ADC: 4-channel continuous scan.
        f.adc.mmio_write(0x04, params.adc_period, now);
        f.adc.mmio_write(0x08, 4, now);
        f.adc.mmio_write(0x00, 1, now);
        // CAN receiver.
        f.can.mmio_write(0x04, params.can_period, now);
        f.can.mmio_write(0x08, params.can_period / 8, now);
        f.can.mmio_write(0x00, 1, now);
        // Service request routing.
        let cpu = |prio: u8| SrnConfig {
            prio,
            enabled: true,
            service: Service::Cpu,
        };
        f.irq.configure(srn::CRANK, cpu(10));
        f.irq.configure(srn::STM0, cpu(6));
        f.irq.configure(srn::STM1, cpu(5));
        f.irq.configure(srn::DMA_DONE0, cpu(4));
        if params.can_on_pcp {
            f.irq.configure(
                srn::CAN,
                SrnConfig {
                    prio: 1,
                    enabled: true,
                    service: Service::Pcp { channel: 1 },
                },
            );
            f.irq.configure(srn::SOFT0, cpu(8));
        } else {
            f.irq.configure(srn::CAN, cpu(8));
        }
        f.irq.configure(
            srn::ADC,
            SrnConfig {
                prio: 1,
                enabled: true,
                service: Service::Dma { channel: 0 },
            },
        );
        // DMA channel 0: ADC result register -> ADC_BUF, 8 words, circular.
        f.dma
            .mmio_write(0x00, audo_platform::config::ADC_BASE.0 + 0x0C);
        f.dma.mmio_write(0x04, layout::ADC_BUF);
        f.dma.mmio_write(0x08, 8);
        f.dma.mmio_write(0x10, 0); // fixed source
        f.dma.mmio_write(0x14, 4); // incrementing destination
        f.dma
            .mmio_write(0x0C, 1 | 2 | (u32::from(srn::DMA_DONE0) + 1) << 8);
    });
    let pcp = params_pcp(p);
    let tooth_period = cpu_hz_tooth_period(p);
    // Generous: background passes (~15k cycles each, worst case) plus the
    // crank-tooth bound, doubled.
    let max_cycles = u64::from(p.target_teeth + 2) * tooth_period * 2
        + u64::from(p.target_bg_passes) * 40_000
        + 1_000_000;
    Workload::from_source(
        format!(
            "engine[{}rpm{}{}{}{}]",
            p.rpm,
            if p.tables_in_dspr { ",dspr-tables" } else { "" },
            if p.can_on_pcp { ",pcp-can" } else { "" },
            if p.isrs_in_pspr { ",pspr-isrs" } else { "" },
            if p.bg_in_dspr { ",dspr-bg" } else { "" },
        ),
        "synthetic engine-control ECU: crank ISR, 1/10ms tasks, ADC-DMA, CAN, EEPROM emulation",
        &source,
        max_cycles,
        setup,
        pcp,
    )
    .expect("engine workload must assemble")
}

fn params_pcp(p: &EngineParams) -> Option<PcpProgram> {
    p.can_on_pcp.then(pcp_can_firmware)
}

fn cpu_hz_tooth_period(p: &EngineParams) -> u64 {
    // Matches the default SocConfig clock; replays at other clocks only
    // shorten the run, never truncate it (max_cycles is generous).
    let cpu_hz = 150_000_000u64;
    (cpu_hz * 60 / (u64::from(p.rpm.max(1)) * u64::from(p.teeth.max(1)))).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use audo_platform::config::SocConfig;

    fn run(p: &EngineParams) -> Soc {
        let w = engine_control(p);
        let mut soc = Soc::new(SocConfig::default());
        w.install(&mut soc).unwrap();
        soc.run_to_halt(w.max_cycles).expect("engine run halts");
        soc
    }

    fn state_word(soc: &mut Soc, off: u32) -> u32 {
        soc.fabric
            .peek(audo_common::Addr(layout::STATE + off), 4)
            .unwrap()
    }

    #[test]
    fn engine_runs_all_tasks() {
        let p = EngineParams {
            rpm: 6000,
            target_teeth: 25,
            ..EngineParams::default()
        };
        let mut soc = run(&p);
        assert!(state_word(&mut soc, layout::state::TOOTH_COUNT) >= 25);
        assert!(
            state_word(&mut soc, layout::state::BG_PASSES)
                >= EngineParams::default().target_bg_passes
        );
        assert!(
            state_word(&mut soc, layout::state::INJ_OUT) > 0,
            "injection computed"
        );
        assert!(
            state_word(&mut soc, layout::state::IGN_OUT) >= 100,
            "ignition computed"
        );
        assert!(
            state_word(&mut soc, layout::state::ADC_AVG) > 0,
            "DMA chain delivered samples"
        );
        assert!(
            state_word(&mut soc, layout::state::CAN_COUNT) > 0,
            "CAN messages handled"
        );
        // 25 teeth at 6000 rpm/60 teeth = 25k cycles/tooth -> ~625k cycles
        // -> the 1 ms task (150k cycles) fired a few times.
        let pid_out = state_word(&mut soc, layout::state::PID_OUT);
        assert!(pid_out != 0, "PID task ran");
    }

    #[test]
    fn dspr_tables_variant_is_faster() {
        let base = EngineParams {
            rpm: 12_000,
            target_teeth: 20,
            ..EngineParams::default()
        };
        let dspr = EngineParams {
            tables_in_dspr: true,
            ..base.clone()
        };
        let wf = engine_control(&base);
        let wd = engine_control(&dspr);
        let mut s1 = Soc::new(SocConfig::default());
        wf.install(&mut s1).unwrap();
        let mut s2 = Soc::new(SocConfig::default());
        wd.install(&mut s2).unwrap();
        let t1 = s1.run_to_halt(wf.max_cycles).unwrap();
        let t2 = s2.run_to_halt(wd.max_cycles).unwrap();
        // The compute-bound run finishes sooner when the crank ISR's table
        // lookups hit the scratchpad instead of (evicted) flash lines.
        assert!(t2 < t1, "DSPR tables must be faster ({t2} vs {t1})");
    }

    #[test]
    fn pcp_variant_offloads_can_handling() {
        let base = EngineParams {
            rpm: 6000,
            target_teeth: 20,
            can_period: 3_000, // heavy CAN load
            ..EngineParams::default()
        };
        let pcp_p = EngineParams {
            can_on_pcp: true,
            ..base.clone()
        };
        let wc = engine_control(&base);
        let wp = engine_control(&pcp_p);
        let mut sc = Soc::new(SocConfig::default());
        wc.install(&mut sc).unwrap();
        sc.run_to_halt(wc.max_cycles).unwrap();
        let mut sp = Soc::new(SocConfig::default());
        wp.install(&mut sp).unwrap();
        sp.run_to_halt(wp.max_cycles).unwrap();
        let cc = sc
            .fabric
            .peek(audo_common::Addr(layout::STATE + 24), 4)
            .unwrap();
        let cp = sp
            .fabric
            .peek(audo_common::Addr(layout::STATE + 24), 4)
            .unwrap();
        assert!(
            cc > 0 && cp > 0,
            "both variants see CAN traffic ({cc}, {cp})"
        );
        assert!(sp.pcp.retired_total() > 0, "PCP executed firmware");
    }

    #[test]
    fn generated_source_is_stable() {
        let p = EngineParams::default();
        assert_eq!(generate_source(&p), generate_source(&p));
        assert!(generate_source(&p).contains("isr_crank"));
    }

    #[test]
    fn dspr_bg_variant_sweeps_the_table_copy() {
        let p = EngineParams {
            rpm: 12_000,
            target_teeth: 20,
            tables_in_dspr: true,
            bg_in_dspr: true,
            ..EngineParams::default()
        };
        assert!(generate_source(&p).contains("li d2, 272"));
        let mut soc = run(&p);
        assert!(state_word(&mut soc, layout::state::BG_CHECKSUM) != 0);
        assert!(state_word(&mut soc, layout::state::BG_PASSES) >= p.target_bg_passes);
    }

    #[test]
    #[should_panic(expected = "bg_in_dspr requires tables_in_dspr")]
    fn dspr_bg_without_dspr_tables_is_rejected() {
        let _ = engine_control(&EngineParams {
            bg_in_dspr: true,
            ..EngineParams::default()
        });
    }
}

#[cfg(test)]
mod pspr_tests {
    use super::*;
    use audo_platform::config::SocConfig;

    #[test]
    fn pspr_isrs_are_functionally_identical_and_faster() {
        let base = EngineParams {
            rpm: 12_000,
            target_teeth: 20,
            ..EngineParams::default()
        };
        let pspr = EngineParams {
            isrs_in_pspr: true,
            ..base.clone()
        };
        let run = |p: &EngineParams| {
            let w = engine_control(p);
            let mut soc = Soc::new(SocConfig::default());
            w.install(&mut soc).unwrap();
            let cycles = soc.run_to_halt(w.max_cycles).unwrap();
            let inj = soc
                .fabric
                .peek(audo_common::Addr(layout::STATE + layout::state::INJ_OUT), 4)
                .unwrap();
            (cycles, inj)
        };
        let (t_flash, inj_flash) = run(&base);
        let (t_pspr, inj_pspr) = run(&pspr);
        // The computed quantities sample a real-time waveform at the ISR's
        // (placement-dependent) latency, so exact equality is not expected;
        // both must be live and plausible.
        assert!(inj_flash > 0 && inj_pspr > 0);
        assert!(
            t_pspr < t_flash,
            "PSPR-resident ISRs must be faster ({t_pspr} vs {t_flash})"
        );
    }
}
