//! Application variants beyond engine control: the "same microcontroller,
//! completely different purposes" point of the paper's introduction.

use audo_common::Cycle;
use audo_platform::irq::{srn, Service, SrnConfig};
use audo_platform::Soc;

use crate::Workload;

/// Transmission-control flavour: shift-point decisions with divide-heavy
/// ratio math and a 2-D shift map, timer-driven rather than
/// crank-synchronous.
#[must_use]
pub fn transmission_control(shift_events: u32) -> Workload {
    let map: Vec<String> = (0..64u32)
        .map(|i| (800 + (i % 8) * 100 + (i / 8) * 50).to_string())
        .collect();
    let src = format!(
        "
        .equ STATE, 0xD0000300
        .org 0x80000000
    _start:
        li d0, 0x80008000
        mtcr biv, d0
        enable
    main_loop:
        la a2, 0x90000200      ; moving average over the shift log
        movi d1, 0
        movi d2, 16
    avg:
        ld.w d3, [a2+]4
        add d1, d1, d3
        addi d2, d2, -1
        jnz d2, avg
        shi d1, d1, -4
        la a3, STATE
        st.w d1, [a3+8]
        ld.w d4, [a3+0]
        li d5, {shift_events}
        jlt d4, d5, main_loop
        halt

        .org 0x80008000 + 6*32
        j isr_tick

        .org 0x80008000 + 0x400
    isr_tick:                   ; per-tick shift decision
        la a12, STATE
        ld.w d8, [a12+0]
        addi d8, d8, 1
        st.w d8, [a12+0]
        la a13, 0xD0000100      ; ADC buffer (speed, load)
        ld.w d9, [a13+0]
        ld.w d10, [a13+4]
        addi d10, d10, 1        ; avoid /0
        div d11, d9, d10        ; ratio = speed/load  (8-cycle divide)
        andi d11, d11, 7
        shi d12, d9, -9
        andi d12, d12, 7
        shi d13, d11, 3         ; idx = (ratio*8 + gear)*4
        add d13, d13, d12
        shi d13, d13, 2
        li d14, shift_map
        add d14, d14, d13
        mov.a a14, d14
        ld.w d13, [a14]
        st.w d13, [a12+4]       ; shift point
        andi d14, d8, 15        ; log ring
        shi d14, d14, 2
        li d11, 0x90000200
        add d11, d11, d14
        mov.a a15, d11
        st.w d13, [a15]
        rfe

        .align 32
    shift_map:
        .word {map}
    ",
        shift_events = shift_events,
        map = map.join(", "),
    );
    let setup: Box<dyn Fn(&mut Soc) + Send + Sync> = Box::new(|soc: &mut Soc| {
        let now = Cycle::ZERO;
        let f = &mut soc.fabric;
        // Tick every 20k cycles.
        f.stm.cmp[0] = 20_000;
        f.stm.reload[0] = 20_000;
        f.stm.irq_enable[0] = true;
        f.adc.mmio_write(0x04, 3_000, now);
        f.adc.mmio_write(0x08, 2, now);
        f.adc.mmio_write(0x00, 1, now);
        f.irq.configure(
            srn::STM0,
            SrnConfig {
                prio: 6,
                enabled: true,
                service: Service::Cpu,
            },
        );
        f.irq.configure(
            srn::ADC,
            SrnConfig {
                prio: 1,
                enabled: true,
                service: Service::Dma { channel: 0 },
            },
        );
        f.dma
            .mmio_write(0x00, audo_platform::config::ADC_BASE.0 + 0x0C);
        f.dma.mmio_write(0x04, 0xD000_0100);
        f.dma.mmio_write(0x08, 8);
        f.dma.mmio_write(0x10, 0);
        f.dma.mmio_write(0x14, 4);
        f.dma.mmio_write(0x0C, 3); // enabled, circular, no done SRN
    });
    Workload::from_source(
        "transmission",
        "transmission control: timer-driven shift decisions, divide-heavy ratio math",
        &src,
        u64::from(shift_events) * 25_000 + 500_000,
        setup,
        None,
    )
    .expect("transmission workload must assemble")
}

/// Chassis/airbag flavour: very high interrupt rate with tiny handlers —
/// context-save overhead dominates.
#[must_use]
pub fn chassis_monitor(events: u32, sensor_period: u32) -> Workload {
    let src = format!(
        "
        .equ STATE, 0xD0000380
        .org 0x80000000
    _start:
        li d0, 0x80008000
        mtcr biv, d0
        enable
    main_loop:
        la a3, STATE
        ld.w d4, [a3+0]
        li d5, {events}
        jlt d4, d5, main_loop
        halt

        .org 0x80008000 + 9*32
        j isr_sensor

        .org 0x80008000 + 0x400
    isr_sensor:                 ; threshold check, almost no work
        la a12, STATE
        ld.w d8, [a12+0]
        addi d8, d8, 1
        st.w d8, [a12+0]
        la a13, 0xD0000100
        ld.w d9, [a13+0]
        li d10, 3000
        jlt d9, d10, sensor_ok
        ld.w d11, [a12+4]
        addi d11, d11, 1
        st.w d11, [a12+4]       ; threshold crossing count
    sensor_ok:
        rfe
    ",
        events = events,
    );
    let period = sensor_period;
    let setup: Box<dyn Fn(&mut Soc) + Send + Sync> = Box::new(move |soc: &mut Soc| {
        let now = Cycle::ZERO;
        let f = &mut soc.fabric;
        f.stm.cmp[1] = period;
        f.stm.reload[1] = period;
        f.stm.irq_enable[1] = true;
        f.adc.mmio_write(0x04, period / 2, now);
        f.adc.mmio_write(0x08, 1, now);
        f.adc.mmio_write(0x00, 1, now);
        f.irq.configure(
            srn::STM1,
            SrnConfig {
                prio: 9,
                enabled: true,
                service: Service::Cpu,
            },
        );
        f.irq.configure(
            srn::ADC,
            SrnConfig {
                prio: 1,
                enabled: true,
                service: Service::Dma { channel: 0 },
            },
        );
        f.dma
            .mmio_write(0x00, audo_platform::config::ADC_BASE.0 + 0x0C);
        f.dma.mmio_write(0x04, 0xD000_0100);
        f.dma.mmio_write(0x08, 4);
        f.dma.mmio_write(0x10, 0);
        f.dma.mmio_write(0x14, 4);
        f.dma.mmio_write(0x0C, 3);
    });
    Workload::from_source(
        "chassis",
        "chassis monitor: very high interrupt rate, tiny handlers (context-save bound)",
        &src,
        u64::from(events) * u64::from(sensor_period) * 2 + 500_000,
        setup,
        None,
    )
    .expect("chassis workload must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;
    use audo_platform::config::SocConfig;

    #[test]
    fn transmission_computes_shift_points() {
        let w = transmission_control(10);
        let mut soc = Soc::new(SocConfig::default());
        w.install(&mut soc).unwrap();
        soc.run_to_halt(w.max_cycles).unwrap();
        let ticks = soc.fabric.peek(audo_common::Addr(0xD000_0300), 4).unwrap();
        assert_eq!(ticks, 10);
        let shift = soc.fabric.peek(audo_common::Addr(0xD000_0304), 4).unwrap();
        assert!(shift >= 800, "shift point from the map: {shift}");
    }

    #[test]
    fn chassis_counts_sensor_events() {
        let w = chassis_monitor(40, 2_000);
        let mut soc = Soc::new(SocConfig::default());
        w.install(&mut soc).unwrap();
        soc.run_to_halt(w.max_cycles).unwrap();
        let n = soc.fabric.peek(audo_common::Addr(0xD000_0380), 4).unwrap();
        assert_eq!(n, 40);
    }
}
