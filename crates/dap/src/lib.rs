//! Model of the DAP/JTAG tool link: the bandwidth-limited path between the
//! Emulation Device and the host tool.
//!
//! DAP is Infineon's two-pin debug interface; the paper stresses twice that
//! "the bandwidth of the tool interface does not scale with the CPU
//! frequency" — which is why computing rates *on chip* and shipping one
//! small message (instead of sampling two long counters from outside) is
//! the sustainable approach. This crate models exactly that budget:
//!
//! * [`DapLink`] accrues payload bytes per CPU cycle from the DAP clock,
//!   pin count and protocol efficiency, independent of the CPU clock,
//! * register polling (the "external sampling" alternative) has a fixed
//!   per-access packet cost and a round-trip latency,
//! * the MLI monitor path ([`MliMonitor`]) models the *intrusive*
//!   alternative of §3 where a monitor routine running on the TriCore
//!   services the tool — stealing CPU cycles from the application,
//! * [`frame`] defines the byte-level wire format (sync, kind, sequence
//!   number, varint length, CRC-16) every tool transaction travels in,
//! * [`session`] is the host-side [`session::DapSession`] state machine:
//!   timeouts, bounded retry with deterministic backoff, idempotent trace
//!   drain, and the [`session::HostTool`] arbitration between trace
//!   readout and calibration writes,
//! * [`faults`] injects deterministic, seeded link faults (drops, bit
//!   flips, truncations, duplicates) so all of the above is testable
//!   against the transport loss that dominates real trace capture.

pub mod faults;
pub mod frame;
pub mod session;

pub use faults::{FaultConfig, FaultStats, FaultyLink};
pub use frame::{crc16, Frame, FrameError, FrameKind, MAX_PAYLOAD};
pub use session::{
    ArbitrationPolicy, DapEndpoint, DapSession, DapSessionStats, HostTool, SessionConfig,
    TraceChunk, TxError,
};

use audo_common::{Cycle, Freq};

/// Tool-link configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DapConfig {
    /// DAP interface clock (fixed by cable/tool, *not* by the SoC).
    pub dap_clock: Freq,
    /// Data pins usable for payload (DAP: 1 data + 1 clock; wide JTAG
    /// variants can use more).
    pub data_pins: u8,
    /// Fraction of raw bits that are payload (framing/CRC overhead).
    pub efficiency: f64,
    /// The target CPU clock, to convert budgets into CPU cycles.
    pub cpu_clock: Freq,
    /// Payload bytes exchanged per single register read (address packet,
    /// data packet, turnaround).
    pub reg_read_cost: u32,
    /// Payload bytes per single register write.
    pub reg_write_cost: u32,
}

impl Default for DapConfig {
    /// DAP at 100 MHz, one data pin, 80 % efficiency, against a 150 MHz CPU.
    fn default() -> DapConfig {
        DapConfig {
            dap_clock: Freq::mhz(100),
            data_pins: 1,
            efficiency: 0.8,
            cpu_clock: Freq::mhz(150),
            reg_read_cost: 10,
            reg_write_cost: 10,
        }
    }
}

impl DapConfig {
    /// Payload bytes per second the link can carry.
    #[must_use]
    pub fn bytes_per_second(&self) -> f64 {
        self.dap_clock.0 as f64 * f64::from(self.data_pins) * self.efficiency / 8.0
    }

    /// Payload bytes per *CPU* cycle (the number that does not improve when
    /// the CPU gets faster).
    #[must_use]
    pub fn bytes_per_cpu_cycle(&self) -> f64 {
        self.bytes_per_second() / self.cpu_clock.0 as f64
    }

    /// Maximum register polls per second ("external sampling" mode). Each
    /// poll reads `regs` registers.
    #[must_use]
    pub fn polls_per_second(&self, regs: u32) -> f64 {
        self.bytes_per_second() / f64::from(self.reg_read_cost * regs)
    }
}

/// A running DAP link: tracks the accumulated byte budget as simulated time
/// advances.
///
/// # Examples
///
/// ```
/// use audo_dap::{DapConfig, DapLink};
///
/// let mut link = DapLink::new(DapConfig::default());
/// link.advance_cycles(150); // 1 µs of CPU time at 150 MHz
/// // 100 Mbit/s × 0.8 / 8 = 10 MB/s → 10 bytes per µs.
/// assert_eq!(link.available(), 10);
/// assert_eq!(link.take(4), 4);
/// assert_eq!(link.available(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct DapLink {
    cfg: DapConfig,
    /// Budget already consumed, in millibytes. The *accrued* budget is
    /// computed from the total elapsed cycles in one shot
    /// (`total_millibytes`), so fractional bytes carry across
    /// `advance_cycles` calls regardless of call granularity — a long run
    /// of 1-cycle advances accrues exactly what one big advance would.
    consumed_millibytes: u64,
    transferred: u64,
    now: Cycle,
}

impl DapLink {
    /// Creates an idle link at cycle 0.
    #[must_use]
    pub fn new(cfg: DapConfig) -> DapLink {
        DapLink {
            cfg,
            consumed_millibytes: 0,
            transferred: 0,
            now: Cycle::ZERO,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &DapConfig {
        &self.cfg
    }

    /// Advances simulated time by `cycles` CPU cycles, accruing budget.
    pub fn advance_cycles(&mut self, cycles: u64) {
        self.now += cycles;
    }

    /// Millibytes accrued over the link's whole lifetime. One f64 rounding
    /// per query (not per `advance_cycles` call), so there is no cumulative
    /// truncation loss; f64 stays exact far beyond any simulated run
    /// (~2^53 millibyte-cycles).
    fn total_millibytes(&self) -> u64 {
        // reason: product is non-negative and stays far below 2^53, so the
        // f64 round-trip is exact; the casts cannot truncate or lose sign.
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        {
            (self.cfg.bytes_per_cpu_cycle() * 1000.0 * self.now.0 as f64) as u64
        }
    }

    /// Whole payload bytes currently available.
    #[must_use]
    pub fn available(&self) -> usize {
        ((self
            .total_millibytes()
            .saturating_sub(self.consumed_millibytes))
            / 1000) as usize
    }

    /// Consumes up to `want` bytes of budget; returns what was granted.
    pub fn take(&mut self, want: usize) -> usize {
        let got = want.min(self.available());
        self.consumed_millibytes += got as u64 * 1000;
        self.transferred += got as u64;
        got
    }

    /// Spends the cost of one register read; returns `false` (and spends
    /// nothing) if the budget is insufficient.
    pub fn take_register_read(&mut self) -> bool {
        let cost = self.cfg.reg_read_cost as usize;
        if self.available() >= cost {
            self.take(cost);
            true
        } else {
            false
        }
    }

    /// Spends the cost of one register write; returns `false` if the budget
    /// is insufficient.
    pub fn take_register_write(&mut self) -> bool {
        let cost = self.cfg.reg_write_cost as usize;
        if self.available() >= cost {
            self.take(cost);
            true
        } else {
            false
        }
    }

    /// Total payload bytes moved over the link's lifetime.
    #[must_use]
    pub fn transferred(&self) -> u64 {
        self.transferred
    }

    /// Current link time (CPU cycles).
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }
}

/// The intrusive MLI/monitor access path of §3: "a tool can communicate
/// over a user interface like CAN or FlexRay with a monitor routine,
/// running on TriCore, which then accesses the EEC".
///
/// Instead of a dedicated link budget, every transferred chunk costs *CPU
/// cycles* on the target — the defining drawback the non-intrusive ED/DAP
/// path avoids.
#[derive(Debug, Clone)]
pub struct MliMonitor {
    /// CPU cycles the monitor routine burns per transferred byte.
    pub cycles_per_byte: u64,
    /// CPU cycles of fixed overhead per monitor invocation.
    pub cycles_per_invocation: u64,
}

impl Default for MliMonitor {
    fn default() -> MliMonitor {
        MliMonitor {
            cycles_per_byte: 20,
            cycles_per_invocation: 400,
        }
    }
}

impl MliMonitor {
    /// CPU cycles stolen from the application to move `bytes` bytes in one
    /// monitor invocation.
    #[must_use]
    pub fn intrusion_cycles(&self, bytes: u64) -> u64 {
        self.cycles_per_invocation + self.cycles_per_byte * bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_is_independent_of_cpu_clock() {
        let slow = DapConfig {
            cpu_clock: Freq::mhz(80),
            ..DapConfig::default()
        };
        let fast = DapConfig {
            cpu_clock: Freq::mhz(300),
            ..DapConfig::default()
        };
        assert_eq!(slow.bytes_per_second(), fast.bytes_per_second());
        // ...but per-CPU-cycle budget shrinks as the CPU speeds up.
        assert!(slow.bytes_per_cpu_cycle() > fast.bytes_per_cpu_cycle());
    }

    #[test]
    fn budget_accrues_and_caps_consumption() {
        let mut link = DapLink::new(DapConfig::default());
        assert_eq!(link.available(), 0);
        assert_eq!(link.take(100), 0);
        link.advance_cycles(1500); // 10 µs -> 100 bytes
        assert_eq!(link.available(), 100);
        assert_eq!(link.take(60), 60);
        assert_eq!(link.take(60), 40, "only the remainder");
        assert_eq!(link.transferred(), 100);
    }

    #[test]
    fn fractional_budget_accumulates_without_loss() {
        let mut link = DapLink::new(DapConfig::default());
        // 1 cycle at a time: 0.0666 B/cycle must still add up.
        for _ in 0..1500 {
            link.advance_cycles(1);
        }
        let got = link.available();
        assert!((95..=100).contains(&got), "~100 bytes expected, got {got}");
    }

    #[test]
    fn per_cycle_accrual_equals_bulk_accrual() {
        // Regression for the fractional-byte carry bug: truncating the
        // accrued budget once per advance_cycles call lost up to a
        // millibyte per call. A million 1-cycle advances must accrue
        // exactly what one 1M-cycle advance does.
        let mut fine = DapLink::new(DapConfig::default());
        for _ in 0..1_000_000u64 {
            fine.advance_cycles(1);
        }
        let mut bulk = DapLink::new(DapConfig::default());
        bulk.advance_cycles(1_000_000);
        assert_eq!(fine.available(), bulk.available());
        // 1M cycles at 1/15 B/cycle = 66 666 whole bytes.
        assert_eq!(bulk.available(), 66_666);
    }

    #[test]
    fn accrual_is_interleaving_invariant_around_takes() {
        let mut a = DapLink::new(DapConfig::default());
        let mut b = DapLink::new(DapConfig::default());
        for _ in 0..10_000u64 {
            a.advance_cycles(1);
            a.take(1);
        }
        b.advance_cycles(10_000);
        let granted = a.transferred();
        b.take(granted as usize);
        assert_eq!(a.available(), b.available());
    }

    #[test]
    fn register_polling_costs_budget() {
        let mut link = DapLink::new(DapConfig::default());
        link.advance_cycles(1500); // 100 bytes
        let mut polls = 0;
        while link.take_register_read() {
            polls += 1;
        }
        assert_eq!(polls, 10, "10 bytes per read");
        assert!(!link.take_register_write(), "budget exhausted");
    }

    #[test]
    fn poll_rate_formula() {
        let cfg = DapConfig::default();
        // 10 MB/s / (10 B * 2 regs) = 500k polls/s.
        assert_eq!(cfg.polls_per_second(2), 500_000.0);
    }

    #[test]
    fn mli_monitor_is_intrusive() {
        let m = MliMonitor::default();
        assert_eq!(m.intrusion_cycles(0), 400);
        assert_eq!(m.intrusion_cycles(100), 400 + 2000);
    }
}
