//! Byte-level frame codec for the host ↔ Cerberus tool link.
//!
//! Everything the host exchanges with the Emulation Device — register
//! accesses, EMEM block reads (trace drain), calibration overlay writes —
//! travels as *frames* over the narrow DAP pins. A frame is:
//!
//! ```text
//! +------+------+------+--------------+---------------+-----------+
//! | SYNC | KIND | SEQ  | LEN (varint) | payload …     | CRC16 LE  |
//! | 0xA5 | 1 B  | 1 B  | 1..2 B       | LEN bytes     | 2 B       |
//! +------+------+------+--------------+---------------+-----------+
//! ```
//!
//! The CRC-16/CCITT-FALSE covers KIND, SEQ, the LEN varint and the payload
//! (everything except SYNC and the CRC itself), so any single corrupted
//! byte inside the frame is detected: corruption in the covered region
//! fails the checksum directly; corruption of the LEN varint shifts where
//! the decoder looks for the CRC, which then mismatches the recomputed
//! value. The codec never panics on malformed input — a real tool must
//! survive line noise — and length is capped at [`MAX_PAYLOAD`] so a
//! corrupt LEN cannot cause unbounded allocation.

use audo_common::varint;

/// Start-of-frame marker.
pub const SYNC: u8 = 0xA5;

/// Maximum payload bytes per frame: one EMEM calibration overlay page
/// (8 KiB), the largest unit the tool moves in one transaction.
pub const MAX_PAYLOAD: usize = 8192;

/// Frame kinds: commands (host → device) and responses (device → host).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Read one 32-bit register/memory word. Payload: `addr: u32 LE`.
    RegRead = 0x01,
    /// Write one 32-bit word. Payload: `addr: u32 LE, value: u32 LE`.
    RegWrite = 0x02,
    /// Read a memory/EMEM block. Payload: `addr: u32 LE, len: u16 LE`.
    BlockRead = 0x03,
    /// Write a memory/EMEM block (overlay page). Payload: `addr: u32 LE,
    /// data …`.
    BlockWrite = 0x04,
    /// Drain trace bytes with cumulative acknowledge. Payload:
    /// `ack: varint u64, max: u16 LE`.
    TraceRead = 0x05,
    /// Positive acknowledge (writes). Empty payload.
    Ack = 0x81,
    /// Data response. Payload depends on the command answered.
    Data = 0x82,
    /// The device understood the frame but refused the operation
    /// (unmapped address, malformed payload).
    Nak = 0x83,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            0x01 => FrameKind::RegRead,
            0x02 => FrameKind::RegWrite,
            0x03 => FrameKind::BlockRead,
            0x04 => FrameKind::BlockWrite,
            0x05 => FrameKind::TraceRead,
            0x81 => FrameKind::Ack,
            0x82 => FrameKind::Data,
            0x83 => FrameKind::Nak,
            _ => return None,
        })
    }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer does not start with [`SYNC`].
    NoSync,
    /// The buffer ends before the frame is complete.
    Truncated,
    /// The KIND byte encodes no known frame kind.
    BadKind(u8),
    /// The LEN field exceeds [`MAX_PAYLOAD`].
    Oversize(u64),
    /// The checksum over KIND/SEQ/LEN/payload does not match.
    BadCrc {
        /// CRC recomputed by the receiver.
        expected: u16,
        /// CRC carried by the frame.
        found: u16,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::NoSync => f.write_str("missing frame sync byte"),
            FrameError::Truncated => f.write_str("truncated frame"),
            FrameError::BadKind(b) => write!(f, "unknown frame kind {b:#04x}"),
            FrameError::Oversize(len) => write!(f, "frame length {len} exceeds {MAX_PAYLOAD}"),
            FrameError::BadCrc { expected, found } => {
                write!(
                    f,
                    "frame CRC mismatch: expected {expected:#06x}, found {found:#06x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) — the classic serial-link
/// checksum; detects all single-byte (burst ≤ 8 bit) corruptions.
#[must_use]
pub fn crc16(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in bytes {
        crc ^= u16::from(b) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// One tool-link frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame asks for / answers with.
    pub kind: FrameKind,
    /// Wrapping sequence number: responses echo the command's sequence so
    /// the host can match (and discard stale/duplicated) responses.
    pub seq: u8,
    /// Command- or response-specific payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`MAX_PAYLOAD`] — an internal protocol
    /// bug, not a link condition.
    #[must_use]
    pub fn new(kind: FrameKind, seq: u8, payload: Vec<u8>) -> Frame {
        assert!(payload.len() <= MAX_PAYLOAD, "frame payload too large");
        Frame { kind, seq, payload }
    }

    /// Total bytes a frame with `payload_len` payload occupies on the wire.
    #[must_use]
    pub fn wire_len(payload_len: usize) -> usize {
        // SYNC + KIND + SEQ + LEN varint + payload + CRC16.
        3 + varint::len_u64(payload_len as u64) + payload_len + 2
    }

    /// Serializes the frame.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Frame::wire_len(self.payload.len()));
        out.push(SYNC);
        out.push(self.kind as u8);
        out.push(self.seq);
        varint::write_u64(&mut out, self.payload.len() as u64);
        out.extend_from_slice(&self.payload);
        let crc = crc16(&out[1..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes one frame from the front of `buf`; returns the frame and the
    /// bytes consumed. Never panics on arbitrary input.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] describing the first defect found.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
        if buf.first() != Some(&SYNC) {
            return Err(FrameError::NoSync);
        }
        if buf.len() < 4 {
            return Err(FrameError::Truncated);
        }
        let kind_byte = buf[1];
        let seq = buf[2];
        let (len, len_bytes) = varint::read_u64(&buf[3..]).map_err(|_| FrameError::Truncated)?;
        if len > MAX_PAYLOAD as u64 {
            return Err(FrameError::Oversize(len));
        }
        let len = len as usize;
        let payload_start = 3 + len_bytes;
        let crc_start = payload_start + len;
        if buf.len() < crc_start + 2 {
            return Err(FrameError::Truncated);
        }
        let found = u16::from_le_bytes([buf[crc_start], buf[crc_start + 1]]);
        let expected = crc16(&buf[1..crc_start]);
        if found != expected {
            return Err(FrameError::BadCrc { expected, found });
        }
        // Kind is CRC-protected, so check it only after the checksum: a
        // corrupt kind byte is a corrupt frame, not a protocol violation.
        let kind = FrameKind::from_u8(kind_byte).ok_or(FrameError::BadKind(kind_byte))?;
        Ok((
            Frame {
                kind,
                seq,
                payload: buf[payload_start..crc_start].to_vec(),
            },
            crc_start + 2,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_basic() {
        for kind in [
            FrameKind::RegRead,
            FrameKind::RegWrite,
            FrameKind::BlockRead,
            FrameKind::BlockWrite,
            FrameKind::TraceRead,
            FrameKind::Ack,
            FrameKind::Data,
            FrameKind::Nak,
        ] {
            let f = Frame::new(kind, 42, vec![1, 2, 3]);
            let raw = f.encode();
            assert_eq!(raw.len(), Frame::wire_len(3));
            let (g, used) = Frame::decode(&raw).unwrap();
            assert_eq!(g, f);
            assert_eq!(used, raw.len());
        }
    }

    #[test]
    fn empty_and_max_payloads_roundtrip() {
        for len in [0usize, 1, 127, 128, MAX_PAYLOAD] {
            let f = Frame::new(FrameKind::Data, 7, vec![0xAB; len]);
            let raw = f.encode();
            let (g, used) = Frame::decode(&raw).unwrap();
            assert_eq!(g, f);
            assert_eq!(used, raw.len());
        }
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        let raw = Frame::new(FrameKind::BlockWrite, 9, (0..=255).collect()).encode();
        for cut in 0..raw.len() {
            assert!(Frame::decode(&raw[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn oversize_length_is_rejected_without_allocation() {
        // Hand-craft a frame claiming a huge payload.
        let mut raw = vec![SYNC, FrameKind::Data as u8, 0];
        audo_common::varint::write_u64(&mut raw, u64::MAX);
        raw.extend_from_slice(&[0, 0]);
        assert!(matches!(Frame::decode(&raw), Err(FrameError::Oversize(_))));
    }

    #[test]
    fn crc_vector_is_stable() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1 — the standard check
        // value; pins the polynomial/init so both ends stay compatible.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Round-trip identity for arbitrary payloads up to the EMEM block
        /// size (satellite: codec property tests).
        fn roundtrip_arbitrary_payloads(
            payload in proptest::collection::vec(any::<u8>(), 0..MAX_PAYLOAD + 1),
            seq in 0u64..256,
            kind_sel in 0u64..8,
        ) {
            let kinds = [
                FrameKind::RegRead, FrameKind::RegWrite, FrameKind::BlockRead,
                FrameKind::BlockWrite, FrameKind::TraceRead, FrameKind::Ack,
                FrameKind::Data, FrameKind::Nak,
            ];
            let f = Frame::new(kinds[kind_sel as usize], seq as u8, payload);
            let raw = f.encode();
            let (g, used) = Frame::decode(&raw).expect("own encoding decodes");
            prop_assert_eq!(used, raw.len());
            prop_assert_eq!(g, f);
        }

        /// Corrupting exactly one byte never panics the decoder and never
        /// produces a *different* frame that passes the CRC ("wrong but
        /// valid"). Decoding may fail — that is the link-robustness
        /// contract: corrupt in, error out.
        fn single_byte_corruption_never_yields_a_wrong_frame(
            payload in proptest::collection::vec(any::<u8>(), 0..512),
            seq in 0u64..256,
            pos_sel in any::<u64>(),
            xor_sel in 1u64..256,
        ) {
            let f = Frame::new(FrameKind::Data, seq as u8, payload);
            let mut raw = f.encode();
            let pos = (pos_sel % raw.len() as u64) as usize;
            raw[pos] ^= xor_sel as u8; // guaranteed to actually change the byte
            match Frame::decode(&raw) {
                Err(_) => {} // detected — good
                Ok((g, _)) => prop_assert_eq!(g, f, "corruption at byte {} slipped through", pos),
            }
        }

        /// Garbage input never panics.
        fn arbitrary_bytes_never_panic(
            junk in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let _ = Frame::decode(&junk);
        }
    }
}
