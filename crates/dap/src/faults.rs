//! Deterministic link-fault injection for the tool path.
//!
//! The embedded-profiling literature is blunt about it: transport loss is
//! the dominant practical failure mode of trace-based profiling. A session
//! layer that has only ever seen a perfect link is untested where it
//! matters, so [`FaultyLink`] wraps frame delivery with seeded,
//! reproducible corruption: bit flips, whole-frame drops, truncations and
//! duplicate deliveries, each at a configurable rate. The generator is a
//! xorshift64* built on the vendored `rand` traits — no wall clock, no OS
//! entropy; the same seed always injects the same faults, which is what
//! makes the differential fault-matrix tests in
//! `tests/dap_session_faults.rs` possible.

use rand::{RngCore, SeedableRng};

/// A xorshift64* generator: tiny, fast, and plenty for fault scheduling.
#[derive(Debug, Clone)]
pub struct Xorshift64Star {
    state: u64,
}

impl SeedableRng for Xorshift64Star {
    fn seed_from_u64(seed: u64) -> Xorshift64Star {
        Xorshift64Star {
            // xorshift must not start at 0; fold the seed through SplitMix's
            // increment so every u64 seed (including 0) is usable.
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }
}

impl RngCore for Xorshift64Star {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Per-mechanism fault rates, all probabilities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability a delivered frame copy is silently dropped.
    pub drop: f64,
    /// Probability a frame is delivered twice (stutter on the line).
    pub duplicate: f64,
    /// Probability a frame is cut short at a random byte.
    pub truncate: f64,
    /// Per-byte probability of a (non-identity) bit-flip corruption.
    pub byte_corrupt: f64,
    /// Seed of the deterministic fault schedule.
    pub seed: u64,
}

impl FaultConfig {
    /// A perfect link: nothing is ever injected.
    #[must_use]
    pub fn lossless() -> FaultConfig {
        FaultConfig {
            drop: 0.0,
            duplicate: 0.0,
            truncate: 0.0,
            byte_corrupt: 0.0,
            seed: 0,
        }
    }

    /// All four mechanisms at the same `rate` — the knob behind
    /// `experiments --dap-fault-rate`.
    #[must_use]
    pub fn uniform(rate: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            drop: rate,
            duplicate: rate,
            truncate: rate,
            byte_corrupt: rate,
            seed,
        }
    }

    /// A permanently dead link: every frame is dropped (used to verify the
    /// session's bounded-retry termination).
    #[must_use]
    pub fn dead(seed: u64) -> FaultConfig {
        FaultConfig {
            drop: 1.0,
            ..FaultConfig::lossless()
        }
        .with_seed(seed)
    }

    fn with_seed(mut self, seed: u64) -> FaultConfig {
        self.seed = seed;
        self
    }

    /// `true` when no fault can ever fire (lets callers skip the injector).
    #[must_use]
    pub fn is_lossless(&self) -> bool {
        self.drop <= 0.0
            && self.duplicate <= 0.0
            && self.truncate <= 0.0
            && self.byte_corrupt <= 0.0
    }
}

/// Counters of what the injector actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frame copies dropped outright.
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames cut short.
    pub truncated: u64,
    /// Individual bytes corrupted.
    pub bytes_corrupted: u64,
}

/// A frame-delivery wrapper that injects deterministic faults.
#[derive(Debug, Clone)]
pub struct FaultyLink {
    cfg: FaultConfig,
    rng: Xorshift64Star,
    stats: FaultStats,
}

impl FaultyLink {
    /// Creates an injector with the given fault schedule.
    #[must_use]
    pub fn new(cfg: FaultConfig) -> FaultyLink {
        FaultyLink {
            rng: Xorshift64Star::seed_from_u64(cfg.seed),
            cfg,
            stats: FaultStats::default(),
        }
    }

    /// The configured rates.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// What has been injected so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // Compare against a threshold in 2^-53 resolution; exact for the
        // rates the test matrix uses (0, 1e-3, 1e-2).
        ((self.rng.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// Passes one transmitted frame through the fault model; returns the
    /// copies that actually arrive (0 = dropped, 2 = duplicated), each
    /// possibly truncated and/or byte-corrupted.
    pub fn deliver(&mut self, frame: &[u8]) -> Vec<Vec<u8>> {
        if self.cfg.is_lossless() {
            return vec![frame.to_vec()];
        }
        let copies = if self.chance(self.cfg.duplicate) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        let mut out = Vec::with_capacity(copies);
        for _ in 0..copies {
            if self.chance(self.cfg.drop) {
                self.stats.dropped += 1;
                continue;
            }
            let mut copy = frame.to_vec();
            if !copy.is_empty() && self.chance(self.cfg.truncate) {
                let keep = (self.rng.next_u64() % copy.len() as u64) as usize;
                copy.truncate(keep);
                self.stats.truncated += 1;
            }
            for b in &mut copy {
                if self.chance(self.cfg.byte_corrupt) {
                    // xor with a non-zero mask: the byte *actually* changes.
                    *b ^= (self.rng.next_u64() % 255 + 1) as u8;
                    self.stats.bytes_corrupted += 1;
                }
            }
            out.push(copy);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_link_is_transparent() {
        let mut link = FaultyLink::new(FaultConfig::lossless());
        let frame = vec![1u8, 2, 3, 4];
        for _ in 0..100 {
            assert_eq!(link.deliver(&frame), vec![frame.clone()]);
        }
        assert_eq!(link.stats(), FaultStats::default());
    }

    #[test]
    fn dead_link_drops_everything() {
        let mut link = FaultyLink::new(FaultConfig::dead(1));
        for _ in 0..50 {
            assert!(link.deliver(&[9u8; 16]).is_empty());
        }
        assert_eq!(link.stats().dropped, 50);
    }

    #[test]
    fn same_seed_injects_identical_faults() {
        let frame = vec![0u8; 64];
        let run = |seed: u64| {
            let mut link = FaultyLink::new(FaultConfig::uniform(0.05, seed));
            (0..200).map(|_| link.deliver(&frame)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds must diverge");
    }

    #[test]
    fn corruption_changes_bytes_and_is_counted() {
        let mut link = FaultyLink::new(FaultConfig {
            byte_corrupt: 1.0,
            ..FaultConfig::lossless()
        });
        let frame = vec![0xAAu8; 32];
        let got = link.deliver(&frame);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].len(), 32);
        assert!(got[0].iter().all(|&b| b != 0xAA), "every byte must differ");
        assert_eq!(link.stats().bytes_corrupted, 32);
    }

    #[test]
    fn observed_drop_rate_tracks_configured_rate() {
        let mut link = FaultyLink::new(
            FaultConfig {
                drop: 0.25,
                ..FaultConfig::lossless()
            }
            .with_seed(3),
        );
        let n = 20_000;
        let mut dropped = 0;
        for _ in 0..n {
            if link.deliver(&[0u8; 8]).is_empty() {
                dropped += 1;
            }
        }
        let rate = f64::from(dropped) / f64::from(n);
        assert!((0.23..0.27).contains(&rate), "observed {rate}");
    }
}
