//! The host-tool DAP session layer: framed transactions over the budgeted
//! link, with timeouts, bounded retry, deterministic backoff and graceful
//! degradation.
//!
//! The paper's constraint — "the bandwidth of the tool interface does not
//! scale with the CPU frequency" — makes the DAP/Cerberus path the choke
//! point of the whole methodology, and a real tool has to survive that
//! path being *imperfect*: corrupted frames, dropped responses, contention
//! between trace readout and calibration writes. This module supplies:
//!
//! * [`DapEndpoint`] — the device side of the protocol (implemented by
//!   `audo_ed::EmulationDevice`),
//! * [`serve_frame`] — device-side frame service: decode, execute, respond
//!   (garbage in → silence out, the host's timeout handles the rest),
//! * [`DapSession`] — the host side: per-transaction timeout, bounded
//!   retry with deterministic exponential backoff (cycle-based, no wall
//!   clock), idempotent cumulative-ack trace drain, and a
//!   [`DapSessionStats`] report instead of panics,
//! * [`HostTool`] — arbitration between concurrent trace drain and
//!   calibration overlay writes contending for one link budget.
//!
//! Trace drain uses a go-back-N (window 1) scheme: every `TraceRead`
//! command carries the cumulative byte offset the host has safely
//! received. The device keeps bytes in flight until they are acknowledged,
//! so a corrupted or dropped response is simply re-requested — the drained
//! stream is byte-identical to a lossless drain, or (after retry
//! exhaustion) an exact *prefix* of it with the truncation reported in the
//! stats. It is never silently wrong.

use std::collections::VecDeque;

use audo_common::{varint, SimError};

use crate::faults::{FaultConfig, FaultyLink};
use crate::frame::{Frame, FrameKind, MAX_PAYLOAD};
use crate::{DapConfig, DapLink};

/// One chunk of trace stream handed out by the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceChunk {
    /// Absolute stream offset of `bytes[0]` (cumulative since reset).
    pub base: u64,
    /// The chunk payload.
    pub bytes: Vec<u8>,
    /// Bytes still buffered on the device *after* this chunk.
    pub remaining: u64,
    /// Bytes the device itself lost to EMEM overflow (ring overwrite /
    /// linear drop) — loss the session layer cannot recover.
    pub device_lost: u64,
}

/// The device side of the tool protocol: what Cerberus exposes to frames
/// arriving over the DAP pins.
pub trait DapEndpoint {
    /// Reads one 32-bit word.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses (the host sees a NAK).
    fn reg_read(&mut self, addr: u32) -> Result<u32, SimError>;

    /// Writes one 32-bit word.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    fn reg_write(&mut self, addr: u32, value: u32) -> Result<(), SimError>;

    /// Reads a block of target memory / EMEM.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    fn block_read(&mut self, addr: u32, len: usize) -> Result<Vec<u8>, SimError>;

    /// Writes a block (calibration overlay page writes go through here).
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    fn block_write(&mut self, addr: u32, bytes: &[u8]) -> Result<(), SimError>;

    /// Trace drain with cumulative acknowledge: discards everything before
    /// `ack`, then returns up to `max` bytes starting at `ack`. Must be
    /// idempotent — the same `ack` yields the same bytes until a higher
    /// `ack` arrives (retries and duplicated commands depend on it).
    ///
    /// # Errors
    ///
    /// Propagates device-internal EMEM faults.
    fn trace_read(&mut self, ack: u64, max: usize) -> Result<TraceChunk, SimError>;
}

/// Serves one received frame on the device side: decode, execute against
/// `ep`, encode the response. Undecodable frames (line noise) yield `None`
/// — a real device cannot answer a frame it cannot parse, and the host's
/// timeout covers the silence. Semantically invalid but well-formed frames
/// yield a NAK.
pub fn serve_frame(ep: &mut dyn DapEndpoint, raw: &[u8]) -> Option<Vec<u8>> {
    let Ok((frame, _)) = Frame::decode(raw) else {
        return None;
    };
    let nak = |seq: u8| Some(Frame::new(FrameKind::Nak, seq, Vec::new()).encode());
    let p = &frame.payload;
    match frame.kind {
        FrameKind::RegRead => {
            let [a0, a1, a2, a3] = *p.as_slice() else {
                return nak(frame.seq);
            };
            match ep.reg_read(u32::from_le_bytes([a0, a1, a2, a3])) {
                Ok(v) => {
                    Some(Frame::new(FrameKind::Data, frame.seq, v.to_le_bytes().to_vec()).encode())
                }
                Err(_) => nak(frame.seq),
            }
        }
        FrameKind::RegWrite => {
            let [a0, a1, a2, a3, v0, v1, v2, v3] = *p.as_slice() else {
                return nak(frame.seq);
            };
            let addr = u32::from_le_bytes([a0, a1, a2, a3]);
            let value = u32::from_le_bytes([v0, v1, v2, v3]);
            match ep.reg_write(addr, value) {
                Ok(()) => Some(Frame::new(FrameKind::Ack, frame.seq, Vec::new()).encode()),
                Err(_) => nak(frame.seq),
            }
        }
        FrameKind::BlockRead => {
            let [a0, a1, a2, a3, l0, l1] = *p.as_slice() else {
                return nak(frame.seq);
            };
            let addr = u32::from_le_bytes([a0, a1, a2, a3]);
            let len = usize::from(u16::from_le_bytes([l0, l1]));
            if len > MAX_PAYLOAD {
                return nak(frame.seq);
            }
            match ep.block_read(addr, len) {
                Ok(bytes) => Some(Frame::new(FrameKind::Data, frame.seq, bytes).encode()),
                Err(_) => nak(frame.seq),
            }
        }
        FrameKind::BlockWrite => {
            if p.len() < 4 {
                return nak(frame.seq);
            }
            let addr = u32::from_le_bytes([p[0], p[1], p[2], p[3]]);
            match ep.block_write(addr, &p[4..]) {
                Ok(()) => Some(Frame::new(FrameKind::Ack, frame.seq, Vec::new()).encode()),
                Err(_) => nak(frame.seq),
            }
        }
        FrameKind::TraceRead => {
            let Ok((ack, used)) = varint::read_u64(p) else {
                return nak(frame.seq);
            };
            if p.len() != used + 2 {
                return nak(frame.seq);
            }
            let max = usize::from(u16::from_le_bytes([p[used], p[used + 1]]));
            match ep.trace_read(ack, max) {
                Ok(chunk) => {
                    let mut payload = Vec::with_capacity(chunk.bytes.len() + 16);
                    varint::write_u64(&mut payload, chunk.base);
                    varint::write_u64(&mut payload, chunk.remaining);
                    varint::write_u64(&mut payload, chunk.device_lost);
                    payload.extend_from_slice(&chunk.bytes);
                    Some(Frame::new(FrameKind::Data, frame.seq, payload).encode())
                }
                Err(_) => nak(frame.seq),
            }
        }
        // Response kinds arriving as commands are protocol violations
        // (e.g. a reflected duplicate); the device stays silent.
        FrameKind::Ack | FrameKind::Data | FrameKind::Nak => None,
    }
}

/// Session tuning knobs. All times are CPU cycles — the session is as
/// deterministic as the rest of the simulation; no wall clock anywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionConfig {
    /// Cycles to wait for a response after the command left the wire.
    pub timeout_cycles: u64,
    /// Total attempts per transaction (first try + retries).
    pub max_attempts: u32,
    /// Backoff before retry `k` is `backoff_base_cycles << (k - 1)` …
    pub backoff_base_cycles: u64,
    /// … capped here (deterministic truncated exponential backoff).
    pub backoff_cap_cycles: u64,
    /// Device processing latency per exchange.
    pub turnaround_cycles: u64,
    /// Trace bytes requested per `TraceRead` transaction. Smaller chunks
    /// survive noisy links better (fewer bytes at risk per frame), larger
    /// chunks amortize the header overhead.
    pub trace_chunk: usize,
    /// Bytes per `BlockWrite` chunk (overlay pages are split into these).
    pub write_chunk: usize,
    /// Cycles to hold off polling an empty trace buffer again.
    pub empty_poll_backoff_cycles: u64,
    /// [`DapSession::drain_all`] only declares the stream truncated after
    /// this many *consecutive* failed drain transactions. The
    /// cumulative-ack protocol makes every failed `TraceRead` harmlessly
    /// resumable, so persistence costs nothing in correctness — only in
    /// the bounded extra cycles spent before giving up on a dead link.
    pub max_consecutive_failures: u32,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            timeout_cycles: 1024,
            max_attempts: 6,
            backoff_base_cycles: 64,
            backoff_cap_cycles: 1024,
            turnaround_cycles: 8,
            trace_chunk: 64,
            write_chunk: 256,
            empty_poll_backoff_cycles: 512,
            max_consecutive_failures: 4,
        }
    }
}

/// Why a transaction failed (after all retries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// No valid response within the timeout, `attempts` times in a row.
    Timeout {
        /// How many attempts were made before giving up.
        attempts: u32,
    },
    /// The device answered with a NAK (semantic refusal — retrying cannot
    /// help).
    Rejected,
    /// A CRC-valid response did not match the protocol state (wrong stream
    /// offset); the session aborts rather than risk silently wrong data.
    Desync,
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::Timeout { attempts } => {
                write!(f, "transaction timed out after {attempts} attempts")
            }
            TxError::Rejected => f.write_str("device rejected the transaction (NAK)"),
            TxError::Desync => f.write_str("response desynchronized from protocol state"),
        }
    }
}

impl std::error::Error for TxError {}

/// Everything the session observed — the graceful-degradation report: a
/// damaged link shows up here, not as a panic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DapSessionStats {
    /// Transactions completed successfully.
    pub transactions: u64,
    /// Retransmissions (attempts beyond the first).
    pub retries: u64,
    /// Response timeouts observed.
    pub timeouts: u64,
    /// Frames received with a broken CRC / framing.
    pub crc_errors: u64,
    /// CRC-valid responses discarded for a wrong sequence number or kind.
    pub mismatches: u64,
    /// NAK responses.
    pub naks: u64,
    /// Transactions abandoned after retry exhaustion.
    pub failed: u64,
    /// Command frames put on the wire (including retries).
    pub frames_sent: u64,
    /// Response frames that arrived (including corrupt ones).
    pub frames_received: u64,
    /// Total payload bytes the link carried (both directions).
    pub bytes_on_wire: u64,
    /// Trace bytes drained and acknowledged.
    pub trace_bytes_drained: u64,
    /// Trace bytes known to exist but not recovered before give-up.
    pub trace_bytes_unrecovered: u64,
    /// Trace bytes the *device* lost to EMEM overflow (pre-link loss).
    pub trace_bytes_device_lost: u64,
    /// The drained stream is incomplete (prefix of the true stream).
    pub trace_truncated: bool,
    /// Calibration/overlay bytes written.
    pub overlay_bytes_written: u64,
    /// Arbitration grants to trace drain.
    pub drain_grants: u64,
    /// Arbitration grants to calibration writes.
    pub overlay_grants: u64,
    /// Link cycles spent in retry backoff waits.
    pub backoff_cycles: u64,
    /// Go-back-N rewinds: failed drain transactions that forced a later
    /// re-request from the same acknowledged offset.
    pub rewinds: u64,
}

impl DapSessionStats {
    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} transactions, {} retries, {} timeouts, {} CRC errors, {} failed; \
             trace {} B drained{}, overlay {} B written",
            self.transactions,
            self.retries,
            self.timeouts,
            self.crc_errors,
            self.failed,
            self.trace_bytes_drained,
            if self.trace_truncated {
                format!(
                    " (TRUNCATED, ≥{} B unrecovered)",
                    self.trace_bytes_unrecovered
                )
            } else {
                String::new()
            },
            self.overlay_bytes_written,
        )
    }

    /// Samples these session counters into an observability registry under
    /// the `dap.` prefix. Values are absolute snapshots.
    pub fn export_obs(&self, reg: &mut audo_obs::Registry) {
        reg.sample("dap.transactions", self.transactions);
        reg.sample("dap.retries", self.retries);
        reg.sample("dap.timeouts", self.timeouts);
        reg.sample("dap.crc_errors", self.crc_errors);
        reg.sample("dap.mismatches", self.mismatches);
        reg.sample("dap.naks", self.naks);
        reg.sample("dap.failed", self.failed);
        reg.sample("dap.frames_sent", self.frames_sent);
        reg.sample("dap.frames_received", self.frames_received);
        reg.sample("dap.bytes_on_wire", self.bytes_on_wire);
        reg.sample("dap.trace_bytes_drained", self.trace_bytes_drained);
        reg.sample("dap.trace_bytes_unrecovered", self.trace_bytes_unrecovered);
        reg.sample("dap.trace_bytes_device_lost", self.trace_bytes_device_lost);
        reg.sample("dap.trace_truncated", u64::from(self.trace_truncated));
        reg.sample("dap.overlay_bytes_written", self.overlay_bytes_written);
        reg.sample("dap.drain_grants", self.drain_grants);
        reg.sample("dap.overlay_grants", self.overlay_grants);
        reg.sample("dap.backoff_cycles", self.backoff_cycles);
        reg.sample("dap.rewinds", self.rewinds);
    }
}

/// The host-side DAP session: issues framed transactions over the budgeted
/// [`DapLink`], retries through a [`FaultyLink`], and keeps score.
#[derive(Debug, Clone)]
pub struct DapSession {
    link: DapLink,
    faults: FaultyLink,
    cfg: SessionConfig,
    seq: u8,
    trace_acked: u64,
    stats: DapSessionStats,
    attempt_starts: Vec<u64>,
    latency: audo_obs::Histogram,
}

impl DapSession {
    /// Creates a session over a fresh link.
    #[must_use]
    pub fn new(dap: DapConfig, cfg: SessionConfig, faults: FaultConfig) -> DapSession {
        DapSession {
            link: DapLink::new(dap),
            faults: FaultyLink::new(faults),
            cfg,
            seq: 0,
            trace_acked: 0,
            stats: DapSessionStats::default(),
            attempt_starts: Vec::new(),
            latency: audo_obs::Histogram::default(),
        }
    }

    /// The underlying budgeted link.
    #[must_use]
    pub fn link(&self) -> &DapLink {
        &self.link
    }

    /// Mutable link access (the session driver advances time through here).
    pub fn link_mut(&mut self) -> &mut DapLink {
        &mut self.link
    }

    /// Session configuration.
    #[must_use]
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// The fault injector's own counters.
    #[must_use]
    pub fn fault_stats(&self) -> crate::faults::FaultStats {
        self.faults.stats()
    }

    /// The session report.
    #[must_use]
    pub fn stats(&self) -> &DapSessionStats {
        &self.stats
    }

    /// Cumulative trace stream offset acknowledged so far.
    #[must_use]
    pub fn trace_acked(&self) -> u64 {
        self.trace_acked
    }

    /// Link-cycle latency distribution of completed transactions, measured
    /// from the first attempt's start (so retries and backoff count).
    #[must_use]
    pub fn latency_histogram(&self) -> &audo_obs::Histogram {
        &self.latency
    }

    /// Samples the session counters and the transaction-latency histogram
    /// into an observability registry under the `dap.` prefix.
    pub fn export_obs(&self, reg: &mut audo_obs::Registry) {
        self.stats.export_obs(reg);
        reg.observe_histogram("dap.transaction_cycles", &self.latency);
    }

    /// Link-cycle timestamps at which the most recent transaction started
    /// each attempt (pinned by the retry-schedule regression test).
    #[must_use]
    pub fn last_attempt_starts(&self) -> &[u64] {
        &self.attempt_starts
    }

    /// Upper bound, in cycles, on one transaction with `cmd`/`resp` wire
    /// lengths under permanent link failure — the "configured budget" the
    /// bounded-retry guarantee is stated against.
    #[must_use]
    pub fn transaction_cycle_bound(&self, cmd_len: usize, resp_len: usize) -> u64 {
        let bpc = self.link.config().bytes_per_cpu_cycle();
        // reason: frame lengths are bounded by MAX_PAYLOAD and bpc > 0, so
        // ceil() yields a small non-negative integer the casts keep exact.
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let ser = |len: usize| (len as f64 / bpc).ceil() as u64 + 1;
        let per_attempt =
            ser(cmd_len) + 2 * ser(resp_len) + self.cfg.turnaround_cycles + self.cfg.timeout_cycles;
        let backoff: u64 = (1..self.cfg.max_attempts).map(|k| self.backoff(k)).sum();
        u64::from(self.cfg.max_attempts) * per_attempt + backoff
    }

    fn backoff(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1);
        if shift >= 32 {
            return self.cfg.backoff_cap_cycles;
        }
        self.cfg
            .backoff_base_cycles
            .saturating_mul(1u64 << shift)
            .min(self.cfg.backoff_cap_cycles)
    }

    fn next_seq(&mut self) -> u8 {
        self.seq = self.seq.wrapping_add(1);
        self.seq
    }

    /// Puts `len` payload bytes on the wire: advances link time until the
    /// byte budget covers them (pre-accrued budget makes this instant —
    /// that is the same credit model the raw drain policy uses).
    fn transmit(&mut self, len: usize) {
        let mut sent = 0;
        loop {
            sent += self.link.take(len - sent);
            if sent == len {
                break;
            }
            self.link.advance_cycles(1);
        }
        self.stats.bytes_on_wire += len as u64;
    }

    /// One complete command/response exchange with timeout, bounded retry
    /// and deterministic backoff.
    fn transact(&mut self, ep: &mut dyn DapEndpoint, cmd: &Frame) -> Result<Frame, TxError> {
        let raw = cmd.encode();
        self.attempt_starts.clear();
        for attempt in 1..=self.cfg.max_attempts {
            self.attempt_starts.push(self.link.now().0);
            if attempt > 1 {
                self.stats.retries += 1;
            }
            self.transmit(raw.len());
            self.stats.frames_sent += 1;
            let copies = self.faults.deliver(&raw);
            self.link.advance_cycles(self.cfg.turnaround_cycles);
            let mut responses: Vec<Vec<u8>> = Vec::new();
            for copy in &copies {
                if let Some(resp) = serve_frame(ep, copy) {
                    responses.extend(self.faults.deliver(&resp));
                }
            }
            let deadline = self.link.now().0 + self.cfg.timeout_cycles;
            let mut outcome: Option<Result<Frame, TxError>> = None;
            for resp in &responses {
                self.transmit(resp.len());
                self.stats.frames_received += 1;
                match Frame::decode(resp) {
                    Ok((f, _)) if f.seq == cmd.seq && f.kind == FrameKind::Nak => {
                        outcome = Some(Err(TxError::Rejected));
                        break;
                    }
                    Ok((f, _)) if f.seq == cmd.seq => {
                        outcome = Some(Ok(f));
                        break;
                    }
                    Ok(_) => self.stats.mismatches += 1,
                    Err(_) => self.stats.crc_errors += 1,
                }
            }
            match outcome {
                Some(Ok(f)) => {
                    self.stats.transactions += 1;
                    self.latency
                        .record(self.link.now().0 - self.attempt_starts[0]);
                    return Ok(f);
                }
                Some(Err(e)) => {
                    self.stats.naks += 1;
                    self.stats.failed += 1;
                    return Err(e);
                }
                None => {
                    // Silence (or only garbage): wait out the response
                    // timeout, then back off before the next attempt.
                    let now = self.link.now().0;
                    if now < deadline {
                        self.link.advance_cycles(deadline - now);
                    }
                    self.stats.timeouts += 1;
                    if attempt < self.cfg.max_attempts {
                        let wait = self.backoff(attempt);
                        self.stats.backoff_cycles += wait;
                        self.link.advance_cycles(wait);
                    }
                }
            }
        }
        self.stats.failed += 1;
        Err(TxError::Timeout {
            attempts: self.cfg.max_attempts,
        })
    }

    /// Reads one 32-bit word.
    ///
    /// # Errors
    ///
    /// Fails with a [`TxError`] after retry exhaustion or a device NAK.
    pub fn reg_read(&mut self, ep: &mut dyn DapEndpoint, addr: u32) -> Result<u32, TxError> {
        let seq = self.next_seq();
        let cmd = Frame::new(FrameKind::RegRead, seq, addr.to_le_bytes().to_vec());
        let resp = self.transact(ep, &cmd)?;
        let [v0, v1, v2, v3] = *resp.payload.as_slice() else {
            return Err(TxError::Desync);
        };
        Ok(u32::from_le_bytes([v0, v1, v2, v3]))
    }

    /// Writes one 32-bit word.
    ///
    /// # Errors
    ///
    /// Fails with a [`TxError`] after retry exhaustion or a device NAK.
    pub fn reg_write(
        &mut self,
        ep: &mut dyn DapEndpoint,
        addr: u32,
        value: u32,
    ) -> Result<(), TxError> {
        let seq = self.next_seq();
        let mut payload = addr.to_le_bytes().to_vec();
        payload.extend_from_slice(&value.to_le_bytes());
        let cmd = Frame::new(FrameKind::RegWrite, seq, payload);
        self.transact(ep, &cmd).map(|_| ())
    }

    /// Reads `len` bytes (`len` ≤ [`MAX_PAYLOAD`]) of target memory.
    ///
    /// # Errors
    ///
    /// Fails with a [`TxError`]; [`TxError::Desync`] if the device returned
    /// the wrong number of bytes.
    pub fn block_read(
        &mut self,
        ep: &mut dyn DapEndpoint,
        addr: u32,
        len: usize,
    ) -> Result<Vec<u8>, TxError> {
        assert!(len <= MAX_PAYLOAD, "block read larger than a frame");
        let seq = self.next_seq();
        let mut payload = addr.to_le_bytes().to_vec();
        // reason: the assert above bounds len to MAX_PAYLOAD (< u16::MAX).
        #[allow(clippy::cast_possible_truncation)]
        payload.extend_from_slice(&(len as u16).to_le_bytes());
        let cmd = Frame::new(FrameKind::BlockRead, seq, payload);
        let resp = self.transact(ep, &cmd)?;
        if resp.payload.len() != len {
            return Err(TxError::Desync);
        }
        Ok(resp.payload)
    }

    /// Writes `bytes` to target memory, split into
    /// [`SessionConfig::write_chunk`]-sized transactions (calibration
    /// overlay updates use this).
    ///
    /// # Errors
    ///
    /// Fails with a [`TxError`]; bytes before the failing chunk have been
    /// written (each chunk write is idempotent, so partial retries are
    /// safe).
    pub fn block_write(
        &mut self,
        ep: &mut dyn DapEndpoint,
        addr: u32,
        bytes: &[u8],
    ) -> Result<(), TxError> {
        let chunk = self.cfg.write_chunk.clamp(1, MAX_PAYLOAD - 4);
        for (i, part) in bytes.chunks(chunk).enumerate() {
            self.write_chunk_tx(ep, addr + (i * chunk) as u32, part)?;
        }
        Ok(())
    }

    fn write_chunk_tx(
        &mut self,
        ep: &mut dyn DapEndpoint,
        addr: u32,
        part: &[u8],
    ) -> Result<(), TxError> {
        let seq = self.next_seq();
        let mut payload = addr.to_le_bytes().to_vec();
        payload.extend_from_slice(part);
        let cmd = Frame::new(FrameKind::BlockWrite, seq, payload);
        self.transact(ep, &cmd)?;
        self.stats.overlay_bytes_written += part.len() as u64;
        Ok(())
    }

    /// One `TraceRead` transaction: acknowledges everything drained so far
    /// and asks for the next chunk. Returns the newly received bytes, or
    /// `None` when the device reports the stream drained.
    ///
    /// # Errors
    ///
    /// Fails with a [`TxError`] after retry exhaustion; the protocol state
    /// (`trace_acked`) is untouched, so a later call resumes exactly where
    /// this one left off.
    pub fn drain_step(&mut self, ep: &mut dyn DapEndpoint) -> Result<Option<Vec<u8>>, TxError> {
        let result = self.drain_step_inner(ep);
        if result.is_err() {
            // Go-back-N: the ack offset stays put, so the next attempt
            // re-requests the same window.
            self.stats.rewinds += 1;
        }
        result
    }

    fn drain_step_inner(&mut self, ep: &mut dyn DapEndpoint) -> Result<Option<Vec<u8>>, TxError> {
        let seq = self.next_seq();
        let mut payload = Vec::with_capacity(12);
        varint::write_u64(&mut payload, self.trace_acked);
        // reason: min() caps the chunk at MAX_PAYLOAD - 32 (< u16::MAX).
        #[allow(clippy::cast_possible_truncation)]
        let chunk = self.cfg.trace_chunk.min(MAX_PAYLOAD - 32) as u16;
        payload.extend_from_slice(&chunk.to_le_bytes());
        let cmd = Frame::new(FrameKind::TraceRead, seq, payload);
        let resp = self.transact(ep, &cmd)?;
        let p = &resp.payload;
        let Ok((base, u1)) = varint::read_u64(p) else {
            return Err(TxError::Desync);
        };
        let Ok((remaining, u2)) = varint::read_u64(&p[u1..]) else {
            return Err(TxError::Desync);
        };
        let Ok((device_lost, u3)) = varint::read_u64(&p[u1 + u2..]) else {
            return Err(TxError::Desync);
        };
        if base != self.trace_acked {
            // A CRC-valid response for a different offset would silently
            // corrupt the stream — refuse it.
            return Err(TxError::Desync);
        }
        let data = &p[u1 + u2 + u3..];
        self.trace_acked += data.len() as u64;
        self.stats.trace_bytes_drained += data.len() as u64;
        self.stats.trace_bytes_device_lost = device_lost;
        if data.is_empty() && remaining == 0 {
            Ok(None)
        } else {
            Ok(Some(data.to_vec()))
        }
    }

    /// Drains the device's trace buffer to completion (or give-up),
    /// appending to `out`. A failed transaction leaves the cumulative ack
    /// untouched, so the drain simply retries from the same offset; only
    /// [`SessionConfig::max_consecutive_failures`] failed transactions in
    /// a row declare the link dead. Returns `true` when the stream was
    /// fully recovered; on `false` the stats flag the truncation and `out`
    /// holds an exact prefix of the true stream.
    pub fn drain_all(&mut self, ep: &mut dyn DapEndpoint, out: &mut Vec<u8>) -> bool {
        let mut consecutive_failures = 0u32;
        loop {
            match self.drain_step(ep) {
                Ok(Some(bytes)) => {
                    consecutive_failures = 0;
                    out.extend_from_slice(&bytes);
                }
                Ok(None) => return true,
                Err(_) => {
                    consecutive_failures += 1;
                    if consecutive_failures < self.cfg.max_consecutive_failures {
                        continue;
                    }
                    self.stats.trace_truncated = true;
                    // The unrecovered tail is whatever the device still
                    // holds; probe it out-of-band for the report (a best
                    // effort — the link just proved itself unreliable).
                    if let Ok(chunk) = ep.trace_read(self.trace_acked, 0) {
                        self.stats.trace_bytes_unrecovered = chunk.remaining;
                    }
                    return false;
                }
            }
        }
    }

    /// Worst-case wire bytes of one trace-drain exchange (command plus
    /// response), used by the arbitration layer to gate issue on budget.
    #[must_use]
    pub fn trace_exchange_cost(&self) -> usize {
        let cmd = Frame::wire_len(12);
        let resp = Frame::wire_len(self.cfg.trace_chunk + 32);
        cmd + resp
    }
}

/// Who gets the link when both trace drain and calibration writes want it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArbitrationPolicy {
    /// Calibration overlay writes preempt trace drain: a tuning engineer's
    /// parameter change must land *now*; trace catches up afterwards.
    #[default]
    CalibrationFirst,
    /// Trace drain preempts writes (loss-averse capture sessions).
    TraceFirst,
    /// Strict alternation whenever both classes are pending.
    Alternate,
}

/// The pumped host tool: owns a [`DapSession`], a queue of pending
/// calibration writes, and a continuous trace-drain goal; [`HostTool::pump`]
/// is called once per simulated CPU cycle and issues at most one
/// transaction when the accrued link budget covers it — trace readout and
/// overlay calibration genuinely contend for the same bytes.
#[derive(Debug)]
pub struct HostTool {
    /// The underlying session (exposed for stats inspection).
    pub session: DapSession,
    policy: ArbitrationPolicy,
    pending_writes: VecDeque<(u32, Vec<u8>)>,
    drain_enabled: bool,
    collected: Vec<u8>,
    next_poll_at: u64,
    last_was_trace: bool,
}

impl HostTool {
    /// Creates a host tool over `session` with the given arbitration.
    #[must_use]
    pub fn new(session: DapSession, policy: ArbitrationPolicy) -> HostTool {
        HostTool {
            session,
            policy,
            pending_writes: VecDeque::new(),
            drain_enabled: true,
            collected: Vec::new(),
            next_poll_at: 0,
            last_was_trace: false,
        }
    }

    /// Enables/disables continuous trace drain.
    pub fn set_drain(&mut self, on: bool) {
        self.drain_enabled = on;
    }

    /// Queues a calibration write; it is split into
    /// [`SessionConfig::write_chunk`] transactions and issued as the
    /// arbitration policy and link budget allow.
    pub fn queue_overlay_write(&mut self, addr: u32, bytes: &[u8]) {
        let chunk = self.session.cfg.write_chunk.clamp(1, MAX_PAYLOAD - 4);
        for (i, part) in bytes.chunks(chunk).enumerate() {
            self.pending_writes
                .push_back((addr + (i * chunk) as u32, part.to_vec()));
        }
    }

    /// Calibration writes not yet on the wire.
    #[must_use]
    pub fn pending_write_chunks(&self) -> usize {
        self.pending_writes.len()
    }

    /// Trace bytes drained so far.
    #[must_use]
    pub fn collected(&self) -> &[u8] {
        &self.collected
    }

    /// Takes ownership of the drained trace bytes.
    pub fn take_collected(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.collected)
    }

    /// Advances one CPU cycle and issues at most one transaction if the
    /// budget covers a full exchange. Transaction failures degrade
    /// gracefully: they are counted in the stats and retried on later
    /// pumps (the cumulative-ack drain makes that loss-free).
    pub fn pump(&mut self, ep: &mut dyn DapEndpoint) {
        self.session.link_mut().advance_cycles(1);
        let now = self.session.link().now().0;
        let budget = self.session.link().available();
        let write_pending = !self.pending_writes.is_empty();
        let trace_pending = self.drain_enabled && now >= self.next_poll_at;
        // Strict priority *reserves* budget: while the preferred class is
        // pending, the other class does not get to snatch accrued bytes
        // even if its (cheaper) exchange is already affordable.
        let (want_write, want_trace) = match self.policy {
            ArbitrationPolicy::CalibrationFirst => (write_pending, trace_pending && !write_pending),
            ArbitrationPolicy::TraceFirst => (write_pending && !trace_pending, trace_pending),
            ArbitrationPolicy::Alternate => match (write_pending, trace_pending) {
                (true, true) if self.last_was_trace => (true, false),
                (true, true) => (false, true),
                other => other,
            },
        };
        let write_cost = self
            .pending_writes
            .front()
            .map(|(_, part)| Frame::wire_len(4 + part.len()) + Frame::wire_len(0));
        let pick_write = want_write && write_cost.is_some_and(|c| budget >= c);
        let pick_trace = want_trace && budget >= self.session.trace_exchange_cost();
        if pick_write {
            self.session.stats.overlay_grants += 1;
            self.last_was_trace = false;
            let (addr, part) = self.pending_writes.pop_front().expect("front checked");
            if self.session.write_chunk_tx(ep, addr, &part).is_err() {
                // Put it back: the write stays pending, later pumps retry.
                self.pending_writes.push_front((addr, part));
            }
        } else if pick_trace {
            self.session.stats.drain_grants += 1;
            self.last_was_trace = true;
            match self.session.drain_step(ep) {
                Ok(Some(bytes)) => self.collected.extend_from_slice(&bytes),
                Ok(None) => {
                    // Buffer empty: hold off polling for a while.
                    self.next_poll_at = now + self.session.cfg.empty_poll_backoff_cycles;
                }
                Err(_) => {
                    // Ack state unchanged; the next pump resumes exactly
                    // here. Back off like an empty poll.
                    self.next_poll_at = now + self.session.cfg.empty_poll_backoff_cycles;
                }
            }
        }
    }

    /// Post-run completion: drains the remaining trace within
    /// `cycle_budget` link cycles. Returns `true` when fully recovered;
    /// otherwise the truncation is flagged in the session stats and the
    /// collected bytes are an exact prefix of the true stream.
    pub fn finish_drain(&mut self, ep: &mut dyn DapEndpoint, cycle_budget: u64) -> bool {
        let start = self.session.link().now().0;
        loop {
            if self.session.link().now().0.saturating_sub(start) > cycle_budget {
                self.session.stats.trace_truncated = true;
                if let Ok(chunk) = ep.trace_read(self.session.trace_acked, 0) {
                    self.session.stats.trace_bytes_unrecovered = chunk.remaining;
                }
                return false;
            }
            match self.session.drain_step(ep) {
                Ok(Some(bytes)) => self.collected.extend_from_slice(&bytes),
                Ok(None) => return true,
                Err(_) => {
                    self.session.stats.trace_truncated = true;
                    if let Ok(chunk) = ep.trace_read(self.session.trace_acked, 0) {
                        self.session.stats.trace_bytes_unrecovered = chunk.remaining;
                    }
                    return false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory endpoint: a flat register file, a byte memory, and a
    /// scripted trace stream with faithful ack/replay semantics.
    struct MockEndpoint {
        mem: std::collections::BTreeMap<u32, u8>,
        trace: Vec<u8>,
        trace_base: u64,
        lost: u64,
    }

    impl MockEndpoint {
        fn new(trace: Vec<u8>) -> MockEndpoint {
            MockEndpoint {
                mem: std::collections::BTreeMap::new(),
                trace,
                trace_base: 0,
                lost: 0,
            }
        }
    }

    impl DapEndpoint for MockEndpoint {
        fn reg_read(&mut self, addr: u32) -> Result<u32, SimError> {
            if addr == 0xDEAD_0000 {
                return Err(SimError::UnmappedAddress {
                    addr: audo_common::Addr(addr),
                });
            }
            let b = |o: u32| u32::from(*self.mem.get(&(addr + o)).unwrap_or(&0));
            Ok(b(0) | b(1) << 8 | b(2) << 16 | b(3) << 24)
        }
        fn reg_write(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
            for (i, byte) in value.to_le_bytes().iter().enumerate() {
                self.mem.insert(addr + i as u32, *byte);
            }
            Ok(())
        }
        fn block_read(&mut self, addr: u32, len: usize) -> Result<Vec<u8>, SimError> {
            Ok((0..len)
                .map(|i| *self.mem.get(&(addr + i as u32)).unwrap_or(&0))
                .collect())
        }
        fn block_write(&mut self, addr: u32, bytes: &[u8]) -> Result<(), SimError> {
            for (i, b) in bytes.iter().enumerate() {
                self.mem.insert(addr + i as u32, *b);
            }
            Ok(())
        }
        fn trace_read(&mut self, ack: u64, max: usize) -> Result<TraceChunk, SimError> {
            let drop = usize::try_from(ack.saturating_sub(self.trace_base))
                .unwrap()
                .min(self.trace.len());
            self.trace.drain(..drop);
            self.trace_base += drop as u64;
            let give = max.min(self.trace.len());
            Ok(TraceChunk {
                base: self.trace_base,
                bytes: self.trace[..give].to_vec(),
                remaining: (self.trace.len() - give) as u64,
                device_lost: self.lost,
            })
        }
    }

    fn session(faults: FaultConfig) -> DapSession {
        DapSession::new(DapConfig::default(), SessionConfig::default(), faults)
    }

    #[test]
    fn lossless_register_roundtrip() {
        let mut ep = MockEndpoint::new(Vec::new());
        let mut s = session(FaultConfig::lossless());
        s.reg_write(&mut ep, 0x100, 0xCAFE_BABE).unwrap();
        assert_eq!(s.reg_read(&mut ep, 0x100).unwrap(), 0xCAFE_BABE);
        assert_eq!(s.stats().transactions, 2);
        assert_eq!(s.stats().retries, 0);
        assert_eq!(s.stats().timeouts, 0);
    }

    #[test]
    fn latency_histogram_counts_completed_transactions() {
        let mut ep = MockEndpoint::new(Vec::new());
        let mut s = session(FaultConfig::lossless());
        s.reg_write(&mut ep, 0x100, 1).unwrap();
        assert_eq!(s.reg_read(&mut ep, 0x100).unwrap(), 1);
        let h = s.latency_histogram();
        assert_eq!(h.count(), s.stats().transactions);
        assert!(h.sum() > 0, "wire + turnaround cycles must be nonzero");
        let mut reg = audo_obs::Registry::new();
        s.export_obs(&mut reg);
        let exported = reg
            .histograms()
            .find(|(name, _)| *name == "dap.transaction_cycles")
            .map(|(_, h)| h.count());
        assert_eq!(exported, Some(2));
    }

    #[test]
    fn nak_is_not_retried() {
        let mut ep = MockEndpoint::new(Vec::new());
        let mut s = session(FaultConfig::lossless());
        assert_eq!(s.reg_read(&mut ep, 0xDEAD_0000), Err(TxError::Rejected));
        assert_eq!(s.stats().naks, 1);
        assert_eq!(s.stats().retries, 0);
    }

    #[test]
    fn lossless_drain_recovers_stream_exactly() {
        let stream: Vec<u8> = (0..1000u32).map(|i| (i * 7) as u8).collect();
        let mut ep = MockEndpoint::new(stream.clone());
        let mut s = session(FaultConfig::lossless());
        let mut out = Vec::new();
        assert!(s.drain_all(&mut ep, &mut out));
        assert_eq!(out, stream);
        assert_eq!(s.stats().trace_bytes_drained, 1000);
        assert!(!s.stats().trace_truncated);
    }

    #[test]
    fn noisy_drain_is_exact_or_reported_truncated() {
        let stream: Vec<u8> = (0..2000u32).map(|i| (i ^ (i >> 3)) as u8).collect();
        for seed in [1u64, 2, 3, 4, 5] {
            let mut ep = MockEndpoint::new(stream.clone());
            let mut s = session(FaultConfig::uniform(5e-3, seed));
            let mut out = Vec::new();
            let complete = s.drain_all(&mut ep, &mut out);
            if complete {
                assert_eq!(out, stream, "seed {seed}");
                assert!(!s.stats().trace_truncated);
            } else {
                assert!(s.stats().trace_truncated, "seed {seed}");
                assert!(stream.starts_with(&out), "seed {seed}: prefix property");
            }
        }
    }

    #[test]
    fn duplicate_heavy_link_never_duplicates_trace_bytes() {
        let stream: Vec<u8> = (0..1500u32).map(|i| (i * 31) as u8).collect();
        let mut ep = MockEndpoint::new(stream.clone());
        let mut s = session(FaultConfig {
            duplicate: 0.5,
            ..FaultConfig::lossless()
        });
        let mut out = Vec::new();
        assert!(s.drain_all(&mut ep, &mut out));
        assert_eq!(out, stream, "duplicated frames must be deduplicated");
    }

    #[test]
    fn arbitration_calibration_first_prefers_writes() {
        let stream: Vec<u8> = vec![0x5A; 4096];
        let mut ep = MockEndpoint::new(stream);
        let s = session(FaultConfig::lossless());
        let mut tool = HostTool::new(s, ArbitrationPolicy::CalibrationFirst);
        tool.queue_overlay_write(0x2000, &[7u8; 1024]);
        let mut first_write_grant = None;
        let mut first_drain_grant = None;
        for cycle in 0..200_000u64 {
            tool.pump(&mut ep);
            if first_write_grant.is_none() && tool.session.stats().overlay_grants > 0 {
                first_write_grant = Some(cycle);
            }
            if first_drain_grant.is_none() && tool.session.stats().drain_grants > 0 {
                first_drain_grant = Some(cycle);
            }
            if tool.pending_write_chunks() == 0 && tool.session.stats().trace_bytes_drained >= 4096
            {
                break;
            }
        }
        assert_eq!(tool.pending_write_chunks(), 0, "all writes landed");
        assert_eq!(ep.block_read(0x2000, 1024).unwrap(), vec![7u8; 1024]);
        assert_eq!(tool.session.stats().trace_bytes_drained, 4096);
        assert!(
            first_write_grant.unwrap() < first_drain_grant.unwrap(),
            "calibration writes go first under CalibrationFirst"
        );
    }

    #[test]
    fn arbitration_policies_share_one_budget() {
        // With both work classes active, the total wire bytes must exceed
        // what either class alone costs — they really share the link.
        let mut ep = MockEndpoint::new(vec![1u8; 2048]);
        let s = session(FaultConfig::lossless());
        let mut tool = HostTool::new(s, ArbitrationPolicy::Alternate);
        tool.queue_overlay_write(0x8000, &[3u8; 2048]);
        for _ in 0..400_000u64 {
            tool.pump(&mut ep);
            if tool.pending_write_chunks() == 0 && tool.session.stats().trace_bytes_drained >= 2048
            {
                break;
            }
        }
        let st = tool.session.stats();
        assert_eq!(st.trace_bytes_drained, 2048);
        assert_eq!(st.overlay_bytes_written, 2048);
        assert!(st.drain_grants > 0 && st.overlay_grants > 0);
        assert!(
            st.bytes_on_wire as usize > 2048 + 2048,
            "framing overhead is paid"
        );
    }

    /// Satellite: the exact retry/backoff schedule, pinned. Attempt start
    /// cycles with the default `DapConfig`/`SessionConfig` against a dead
    /// link must not drift — tool-visible latency is part of the contract.
    #[test]
    fn retry_schedule_is_pinned() {
        let mut ep = MockEndpoint::new(Vec::new());
        let mut s = session(FaultConfig::dead(1));
        let err = s.reg_read(&mut ep, 0x40).unwrap_err();
        assert_eq!(err, TxError::Timeout { attempts: 6 });
        // RegRead command: 10 wire bytes (3 header + 1 varint LEN + 4
        // payload + 2 CRC) at 1/15 B/cycle -> 150 cycles to serialize the
        // first attempt; +8 turnaround, +1024 timeout, then backoff
        // 64 << (k-1) capped at 1024 before each retry. Retransmits are
        // instant: the byte budget keeps accruing during the timeout wait.
        //   gaps: 150+8+1024+64, then 8+1024+{128,256,512,1024}.
        assert_eq!(
            s.last_attempt_starts(),
            &[0, 1246, 2406, 3694, 5238, 7294],
            "attempts 1..=6 start cycles changed — tool-visible latency drift"
        );
        let bound = s.transaction_cycle_bound(10, 10);
        assert!(
            s.link().now().0 <= bound,
            "terminates within the configured budget: {} > {bound}",
            s.link().now().0
        );
        assert_eq!(s.stats().timeouts, 6);
        assert_eq!(s.stats().retries, 5);
        assert_eq!(s.stats().failed, 1);
    }

    /// Satellite: permanent link failure terminates — no infinite retry.
    #[test]
    fn permanent_failure_terminates_within_budget() {
        let mut ep = MockEndpoint::new(vec![0u8; 512]);
        let mut s = session(FaultConfig::dead(99));
        let mut out = Vec::new();
        let complete = s.drain_all(&mut ep, &mut out);
        assert!(!complete);
        assert!(out.is_empty());
        assert!(s.stats().trace_truncated);
        assert_eq!(s.stats().trace_bytes_unrecovered, 512);
        let cfg = SessionConfig::default();
        let bound = u64::from(cfg.max_consecutive_failures)
            * s.transaction_cycle_bound(16, Frame::wire_len(cfg.trace_chunk + 32));
        assert!(s.link().now().0 <= bound);
    }

    #[test]
    fn backoff_schedule_is_truncated_exponential() {
        let s = session(FaultConfig::lossless());
        assert_eq!(s.backoff(1), 64);
        assert_eq!(s.backoff(2), 128);
        assert_eq!(s.backoff(3), 256);
        assert_eq!(s.backoff(4), 512);
        assert_eq!(s.backoff(5), 1024);
        assert_eq!(s.backoff(6), 1024, "capped");
        assert_eq!(s.backoff(80), 1024, "shift overflow saturates, then caps");
    }
}
