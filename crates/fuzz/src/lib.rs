//! # audo-fuzz — coverage-guided differential fuzzing across tiers
//!
//! The repo simulates the same guest program at three fidelities
//! (functional ISS, ISS fast path, cycle-level pipeline with and
//! without the predecode cache), which makes it its own oracle: any
//! architectural disagreement between tiers is a bug in one of them.
//! This crate industrialises that observation:
//!
//! | module | role |
//! |--------|------|
//! | [`rng`] | splitmix64 streams; all entropy derives from `(seed, case index)` |
//! | [`gen`] | random-but-valid TC-R program generation and corpus mutation |
//! | [`tiers`] | run one program through every tier and diff the observables |
//! | [`shrink`] | delta-debug a diverging program to a minimal reproducer |
//! | [`run`] | session driver: rounds, coverage feedback, shrink-and-pin |
//!
//! Sessions are deterministic: the report for `--seed S --iterations N`
//! is byte-identical at any `--jobs` (see [`run`] for the contract).
//! Coverage feedback uses the decoder-table opcode slots from
//! [`audo_tricore::opcodes`] — uncovered slots whose sample instruction
//! is safe to splice get injected into generated program bodies.

#![warn(missing_docs)]

pub mod gen;
pub mod rng;
pub mod run;
pub mod shrink;
pub mod tiers;

pub use run::{
    run_fuzz, serial_schedule, CaseKind, CaseResult, Divergence, FuzzOptions, FuzzReport,
};
pub use shrink::shrink_source;
pub use tiers::{check_image, check_source, coverage_summary, CheckOptions, TierReport};
