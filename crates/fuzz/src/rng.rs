//! Deterministic pseudo-random stream for program generation.
//!
//! The fuzzer's reproducibility contract is that every case is a pure
//! function of `(session seed, case index)`, so this module is the
//! *only* entropy source in the crate: a splitmix64 generator (the same
//! mix the fleet calibration service uses for per-unit seed
//! derivation), with small sampling helpers on top. No OS randomness,
//! no time, no hash-map iteration order.

/// The splitmix64 output mix (Steele, Lea & Flood).
#[must_use]
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the per-case seed from the session seed and the case index.
///
/// Mixing the index through splitmix64 first keeps neighbouring cases
/// statistically unrelated, so `--seed S --iterations N` explores the
/// same programs regardless of how cases are sharded across jobs.
#[must_use]
pub fn case_seed(session_seed: u64, index: u64) -> u64 {
    splitmix64(session_seed ^ splitmix64(index))
}

/// A splitmix64-stepped pseudo-random stream.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a stream seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Picks one element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_and_pick_stay_in_bounds() {
        let mut r = Rng::new(42);
        for _ in 0..1000 {
            let v = r.range(-7, 5);
            assert!((-7..=5).contains(&v));
            let p = *r.pick(&[1, 2, 3]);
            assert!((1..=3).contains(&p));
        }
    }

    #[test]
    fn case_seeds_differ_per_index() {
        let s: Vec<u64> = (0..100).map(|i| case_seed(0xF00D, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }
}
