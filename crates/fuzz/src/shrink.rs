//! Divergence shrinking: delta-debug a program down to a minimal
//! reproducer.
//!
//! A classic ddmin loop over source *lines*, specialised for assembly:
//! a candidate (the program with a chunk of lines deleted) is only
//! interesting if it still assembles **and** still diverges. Removing a
//! line that defines a still-referenced label simply fails to assemble
//! and is skipped, so no label bookkeeping is needed. The `.org`
//! directive line is never removed.
//!
//! The loop is bounded by an evaluation budget: each candidate costs a
//! full multi-tier execution, so the shrinker prefers a good-enough
//! minimum over a perfect one.

/// Shrinks `src` while `diverges` holds.
///
/// `diverges` must return `true` for `src` itself (the caller found the
/// divergence) and for any candidate that still reproduces it; it is
/// also responsible for rejecting candidates that no longer assemble.
/// At most `max_evals` candidate evaluations are spent.
#[must_use]
pub fn shrink_source<F>(src: &str, diverges: F, max_evals: usize) -> String
where
    F: Fn(&str) -> bool,
{
    let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
    let mut evals = 0usize;
    let removable = |line: &str| !line.trim_start().starts_with(".org");

    let mut chunk = (lines.len() / 2).max(1);
    while chunk >= 1 && evals < max_evals {
        let mut removed_any = false;
        let mut start = 0;
        while start < lines.len() && evals < max_evals {
            let end = (start + chunk).min(lines.len());
            if !lines[start..end].iter().all(|l| removable(l)) {
                start += chunk;
                continue;
            }
            let candidate: Vec<String> = lines[..start]
                .iter()
                .chain(&lines[end..])
                .cloned()
                .collect();
            if candidate.is_empty() {
                start += chunk;
                continue;
            }
            let text = format!("{}\n", candidate.join("\n"));
            evals += 1;
            if diverges(&text) {
                lines = candidate;
                removed_any = true;
                // Re-scan from the same offset: the window now holds
                // fresh lines.
            } else {
                start += chunk;
            }
        }
        if !removed_any {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }
    format!("{}\n", lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// "Divergence" = the text still contains the needle and assembles
    /// in a toy sense (every line nonempty).
    #[test]
    fn shrinks_to_the_needle() {
        let src = ".org 0x1000\nfiller1\nfiller2\nneedle\nfiller3\nfiller4\nfiller5\n";
        let out = shrink_source(src, |s| s.contains("needle"), 1_000);
        assert_eq!(out, ".org 0x1000\nneedle\n");
    }

    #[test]
    fn respects_the_eval_budget() {
        let src = (0..100).map(|i| format!("l{i}\n")).collect::<String>();
        let calls = std::cell::Cell::new(0usize);
        let out = shrink_source(
            &src,
            |s| {
                calls.set(calls.get() + 1);
                s.contains("l99")
            },
            10,
        );
        assert!(calls.get() <= 10);
        assert!(out.contains("l99"));
    }

    #[test]
    fn keeps_org_lines() {
        let src = ".org 0x1000\nneedle\n";
        let out = shrink_source(src, |s| s.contains("needle"), 100);
        assert!(out.starts_with(".org"));
    }
}
