//! Differential execution of one program across the execution tiers.
//!
//! A program is run through up to four configurations — functional ISS
//! with per-step refetch, ISS basic-block fast path, cycle-level
//! pipeline uncached, and pipeline with the predecoded fast path — and
//! every architectural observable that the tiers contractually share is
//! diffed:
//!
//! * ISS slow vs. fast: complete [`ArchState`], event stream, debug
//!   markers, retired count, and the MCDS-encoded trace bytes of the
//!   event stream (which must also decode back losslessly).
//! * pipeline uncached vs. cached: register files, retired count and
//!   event stream.
//! * across tiers: register files and retired count. (Event *timing*
//!   differs by design — the pipeline emits stall and flow events the
//!   functional model has no notion of.)
//! * statically: every decodable instruction in the image must
//!   round-trip `disassemble → assemble → decode` to the same
//!   instruction (the encoder/disassembler differential).
//! * optionally ([`CheckOptions::check_wcet`]): the static WCET/CSA
//!   bounds from `audo-analyze` against a profiled pipeline run — a
//!   measured count above a static bound is a timing-model bug, handled
//!   exactly like any other divergence.
//!
//! A program on which the golden model itself faults (unmapped store,
//! retire-budget blowout, CSA exhaustion...) is not a divergence as
//! long as both ISS configurations fault with the *same* error; the
//! pipeline is skipped for such programs, mirroring how the repo treats
//! guest faults elsewhere.

use audo_common::events::StallReason;
use audo_common::{Addr, Cycle, EventRecord, EventSink, SimError, SourceId};
use audo_mcds::select::{EventClass, EventSelector};
use audo_mcds::{decode_stream, Basis, Mcds, RateProbe};
use audo_tricore::arch::init_csa_list;
use audo_tricore::asm::assemble;
use audo_tricore::bus::TestBus;
use audo_tricore::disasm::disassemble_range;
use audo_tricore::encode::decode;
use audo_tricore::iss::Iss;
use audo_tricore::opcodes::{opcode_name, OPCODE_SPACE};
use audo_tricore::{ArchState, Core, CoreConfig, Image};

use audo_asm::Tiers;

/// Memory map every tier runs under: flash, SRAM, DSPR and PSPR, with
/// the CSA pool carved out of the upper DSPR half.
pub const REGIONS: &[(u32, u32)] = &[
    (0x8000_0000, 0x4_0000),
    (0x9000_0000, 0x2_0000),
    (0xD000_0000, 0x2_0000),
    (0xC000_0000, 0x1_0000),
];

/// Base of the context-save-area pool.
pub const CSA_BASE: u32 = 0xD000_8000;
/// Number of CSA frames in the pool.
pub const CSA_FRAMES: u32 = 64;

/// Knobs for one differential check.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Retired-instruction budget per ISS run. The pipeline's cycle cap
    /// is derived from this (×40, plus slack), so a tier that hangs is
    /// reported as a divergence instead of wedging the fuzzer.
    pub max_instrs: u64,
    /// Test-only fault hook: when the program retires at least one
    /// instruction in this opcode slot, the fast-path ISS result is
    /// deliberately corrupted before comparison. This exists so the
    /// shrink/pin loop can be exercised end to end without waiting for
    /// a real tier bug.
    pub fault: Option<u8>,
    /// Additionally check the static WCET/CSA bounds against a profiled
    /// pipeline run of the program: any measured per-block cycle count,
    /// end-to-end cycle count or CSA peak above its static bound is a
    /// timing-model bug, reported (and shrunk) like a tier divergence.
    pub check_wcet: bool,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            max_instrs: 200_000,
            fault: None,
            check_wcet: false,
        }
    }
}

/// Outcome of one differential check.
#[derive(Debug, Clone)]
pub struct TierReport {
    /// First divergence found, if any (deterministic: checks run in a
    /// fixed order).
    pub divergence: Option<String>,
    /// The tiers agreed that the program faults (same [`SimError`] from
    /// both ISS configurations). Not a divergence.
    pub errored: bool,
    /// Instructions the golden model retired.
    pub retired: u64,
    /// Per-opcode-slot retire counts from the golden model.
    pub coverage: Box<[u64; OPCODE_SPACE]>,
    /// Per-cause stall cycles the uncached pipeline run observed (all
    /// zero for ISS-only programs), indexed by [`StallReason::index`] —
    /// how well the fuzz corpus exercises the stall machinery.
    pub stall_coverage: [u64; StallReason::COUNT],
}

struct IssOut {
    err: Option<SimError>,
    state: ArchState,
    instr_count: u64,
    debug_markers: Vec<u8>,
    events: Vec<EventRecord>,
    coverage: Box<[u64; OPCODE_SPACE]>,
}

fn iss_exec(image: &Image, fast: bool, max_instrs: u64) -> IssOut {
    let mut iss = Iss::new();
    for &(base, len) in REGIONS {
        iss.map_region(Addr(base), len);
    }
    iss.init_csa(Addr(CSA_BASE), CSA_FRAMES)
        .expect("CSA window is mapped");
    let err = match iss.load(image) {
        Ok(()) => {
            iss.set_fast_path(fast);
            iss.set_observation(true);
            iss.set_opcode_observation(true);
            iss.run_resumable(max_instrs).err()
        }
        Err(e) => Some(e),
    };
    IssOut {
        err,
        state: iss.state().clone(),
        instr_count: iss.instr_count(),
        debug_markers: iss.debug_markers().to_vec(),
        events: iss.events().to_vec(),
        coverage: iss
            .opcode_counts()
            .map_or_else(|| Box::new([0u64; OPCODE_SPACE]), |c| Box::new(*c)),
    }
}

struct PipeOut {
    err: Option<SimError>,
    halted: bool,
    retired: u64,
    d: [u32; 16],
    a: [u32; 16],
    events: Vec<EventRecord>,
    stall_cycles: [u64; StallReason::COUNT],
}

fn pipe_exec(image: &Image, fast: bool, max_cycles: u64) -> PipeOut {
    let mut bus = TestBus::new();
    for &(base, len) in REGIONS {
        bus.mem.add_region(Addr(base), len);
    }
    let mut out = PipeOut {
        err: None,
        halted: false,
        retired: 0,
        d: [0; 16],
        a: [0; 16],
        events: Vec::new(),
        stall_cycles: [0; StallReason::COUNT],
    };
    if let Err(e) = image.load_into(&mut bus.mem) {
        out.err = Some(e);
        return out;
    }
    let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
    core.set_fast_path(fast);
    match init_csa_list(&mut bus.mem, Addr(CSA_BASE), CSA_FRAMES) {
        Ok(fcx) => core.arch_mut().fcx = fcx,
        Err(e) => {
            out.err = Some(e);
            return out;
        }
    }
    let mut sink = EventSink::new();
    let mut cyc = 0u64;
    while !core.is_halted() && cyc < max_cycles {
        if let Err(e) = core.step(Cycle(cyc), &mut bus, None, &mut sink) {
            out.err = Some(e);
            break;
        }
        out.events.append(&mut sink.drain());
        cyc += 1;
    }
    out.halted = core.is_halted();
    out.retired = core.retired_total();
    out.d = core.arch().d;
    out.a = core.arch().a;
    out.stall_cycles = core.stats().stall_cycles;
    out
}

/// Static-WCET soundness differential: recovers the CFG, bounds every
/// block with the pipeline's exported cost model, reruns the predecoded
/// pipeline under the block profiler, and reports the first measured
/// value that exceeds its static bound.
///
/// Returns `None` for programs the check cannot speak about: the run
/// faults or fails to halt (already a divergence or an agreed fault in
/// the main differential), or the profiler is unavailable. Self-modified
/// and runtime-written code is excluded inside
/// [`audo_analyze::wcet::check_profile`] via region write-generation
/// stamps, so only image-resident blocks are held to the static bounds.
fn wcet_divergence(image: &Image, max_cycles: u64) -> Option<String> {
    use audo_analyze::{cfg, constprop, wcet};
    use audo_tricore::pipeline::{CostModel, MemCosts};

    let g = cfg::recover(image);
    let sol = constprop::solve(&g);

    let mut bus = TestBus::new();
    for &(base, len) in REGIONS {
        bus.mem.add_region(Addr(base), len);
    }
    if image.load_into(&mut bus.mem).is_err() {
        return None;
    }
    let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
    core.set_fast_path(true);
    core.set_profile_observation(true);
    match init_csa_list(&mut bus.mem, Addr(CSA_BASE), CSA_FRAMES) {
        Ok(fcx) => core.arch_mut().fcx = fcx,
        Err(_) => return None,
    }
    // Stamps after every load-time store, before the first guest cycle.
    let stamps = wcet::code_stamps(&g, &bus);

    let model = CostModel::new(CoreConfig::default(), MemCosts::of_test_bus(&bus));
    let report = wcet::analyze_wcet(&g, &sol, &model, CSA_FRAMES, "fuzz");

    let mut sink = EventSink::new();
    sink.set_enabled(false);
    let mut cyc = 0u64;
    while !core.is_halted() && cyc < max_cycles {
        if core.step(Cycle(cyc), &mut bus, None, &mut sink).is_err() {
            return None;
        }
        cyc += 1;
    }
    if !core.is_halted() {
        return None;
    }

    let profile = core.block_profile().cloned()?;
    let stats = core.stats();
    let total_cycles = stats.retire_cycles + stats.stall_total();
    let check = wcet::check_profile(
        &g,
        &model,
        &report,
        &profile,
        &stamps,
        total_cycles,
        0,
        core.arch().csa_depth_peak,
    );
    check.violations.first().map(|v| {
        format!(
            "wcet: measured {} {} at {:#010x} exceeds the static bound {} \
             (program WCET {}, CSA depth {})",
            v.what, v.measured, v.addr, v.bound, report.program_wcet, report.program_csa
        )
    })
}

/// Encodes an event stream through a fully armed MCDS (program trace
/// plus an instruction-rate probe) and returns the raw trace bytes.
fn mcds_trace_bytes(events: &[EventRecord]) -> Vec<u8> {
    let mut mcds = Mcds::builder()
        .program_trace()
        .probe(RateProbe {
            event: EventSelector::of(EventClass::InstrRetired).from(SourceId::TRICORE),
            basis: Basis::Cycles(4),
            group: None,
        })
        .build()
        .expect("static MCDS config is valid");
    let mut out = Vec::new();
    let last = events.last().map_or(0, |e| e.cycle.0);
    let mut i = 0;
    for cy in 0..=last {
        let start = i;
        while i < events.len() && events[i].cycle.0 == cy {
            i += 1;
        }
        mcds.observe(Cycle(cy), &events[start..i], &[], &mut out);
    }
    out
}

fn diff_streams(tag: &str, a: &[EventRecord], b: &[EventRecord]) -> Option<String> {
    if a == b {
        return None;
    }
    let at = a
        .iter()
        .zip(b.iter())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()));
    Some(format!(
        "{tag}: event streams differ at record {at} ({} vs {} records)",
        a.len(),
        b.len()
    ))
}

/// Static encoder/disassembler differential: every decodable
/// instruction must survive `disassemble → assemble → decode`
/// *semantically* (the re-encoding may legally pick a narrower form, so
/// bytes are not compared).
fn roundtrip_divergence(image: &Image) -> Option<String> {
    let mut lines = Vec::new();
    let mut src = String::new();
    for s in image.sections() {
        for line in disassemble_range(image, s.base, s.bytes.len() as u32) {
            if let Some(instr) = line.instr {
                src.push_str(&format!(".org {:#x}\n{}\n", line.addr.0, line.text));
                lines.push((line.addr, line.text, instr));
            }
        }
    }
    if lines.is_empty() {
        return None;
    }
    let re = match assemble(&src) {
        Ok(i) => i,
        Err(e) => return Some(format!("round-trip: disassembly does not reassemble: {e}")),
    };
    for (addr, text, orig) in lines {
        let Some(bytes) = re.bytes_at(addr, 4).or_else(|| re.bytes_at(addr, 2)) else {
            return Some(format!("round-trip: no bytes at {addr} for `{text}`"));
        };
        match decode(&bytes, addr) {
            Ok((back, _)) if back == orig => {}
            Ok((back, _)) => {
                return Some(format!(
                    "round-trip: `{text}` at {addr} re-decodes as {back:?}, was {orig:?}"
                ))
            }
            Err(e) => return Some(format!("round-trip: `{text}` at {addr}: {e}")),
        }
    }
    None
}

/// Runs one assembled image through every tier it is eligible for and
/// diffs the results.
#[must_use]
#[allow(clippy::too_many_lines)] // reason: a linear checklist of tier comparisons, one per observable
pub fn check_image(image: &Image, tiers: Tiers, opts: &CheckOptions) -> TierReport {
    let slow = iss_exec(image, false, opts.max_instrs);
    let mut fast = iss_exec(image, true, opts.max_instrs);
    let mut report = TierReport {
        divergence: None,
        errored: false,
        retired: slow.instr_count,
        coverage: slow.coverage,
        stall_coverage: [0; StallReason::COUNT],
    };

    // Static differential first: it is independent of execution.
    if let Some(msg) = roundtrip_divergence(image) {
        report.divergence = Some(msg);
        return report;
    }

    // Test-only fault hook: corrupt the fast-path result when the
    // targeted opcode slot was exercised.
    if let Some(k) = opts.fault {
        if report.coverage[usize::from(k)] > 0 {
            fast.state.d[3] ^= 1;
        }
    }

    match (&slow.err, &fast.err) {
        (Some(a), Some(b)) if a == b => {
            report.errored = true;
            return report;
        }
        (Some(a), Some(b)) => {
            report.divergence = Some(format!("ISS error mismatch: slow `{a}` vs fast `{b}`"));
            return report;
        }
        (Some(a), None) => {
            report.divergence = Some(format!(
                "slow ISS faulted (`{a}`) but the fast path completed"
            ));
            return report;
        }
        (None, Some(b)) => {
            report.divergence = Some(format!(
                "fast-path ISS faulted (`{b}`) but the slow path completed"
            ));
            return report;
        }
        (None, None) => {}
    }

    if slow.state != fast.state {
        let field = if slow.state.d != fast.state.d {
            "d registers"
        } else if slow.state.a != fast.state.a {
            "a registers"
        } else {
            "control state"
        };
        report.divergence = Some(format!("ISS slow vs fast: {field} differ"));
        return report;
    }
    if slow.instr_count != fast.instr_count {
        report.divergence = Some(format!(
            "ISS slow vs fast: retired {} vs {}",
            slow.instr_count, fast.instr_count
        ));
        return report;
    }
    if slow.debug_markers != fast.debug_markers {
        report.divergence = Some("ISS slow vs fast: debug markers differ".to_string());
        return report;
    }
    if let Some(msg) = diff_streams("ISS slow vs fast", &slow.events, &fast.events) {
        report.divergence = Some(msg);
        return report;
    }

    // MCDS differential: identical event streams must encode to
    // identical trace bytes, and those bytes must decode losslessly.
    let trace_slow = mcds_trace_bytes(&slow.events);
    let trace_fast = mcds_trace_bytes(&fast.events);
    if trace_slow != trace_fast {
        report.divergence = Some(format!(
            "MCDS trace bytes differ: {} vs {} bytes",
            trace_slow.len(),
            trace_fast.len()
        ));
        return report;
    }
    if let Err(e) = decode_stream(&trace_slow) {
        report.divergence = Some(format!("MCDS trace bytes do not decode: {e}"));
        return report;
    }

    if tiers == Tiers::IssOnly {
        return report;
    }

    let max_cycles = opts.max_instrs.saturating_mul(40).saturating_add(10_000);
    let pslow = pipe_exec(image, false, max_cycles);
    let pfast = pipe_exec(image, true, max_cycles);
    report.stall_coverage = pslow.stall_cycles;
    for (tag, p) in [("pipeline uncached", &pslow), ("pipeline cached", &pfast)] {
        if let Some(e) = &p.err {
            report.divergence = Some(format!("{tag} faulted (`{e}`) but the ISS completed"));
            return report;
        }
        if !p.halted {
            report.divergence = Some(format!(
                "{tag} did not halt within {max_cycles} cycles (ISS retired {})",
                slow.instr_count
            ));
            return report;
        }
    }
    if pslow.d != pfast.d || pslow.a != pfast.a {
        report.divergence = Some("pipeline uncached vs cached: register files differ".to_string());
        return report;
    }
    if pslow.retired != pfast.retired {
        report.divergence = Some(format!(
            "pipeline uncached vs cached: retired {} vs {}",
            pslow.retired, pfast.retired
        ));
        return report;
    }
    if let Some(msg) = diff_streams("pipeline uncached vs cached", &pslow.events, &pfast.events) {
        report.divergence = Some(msg);
        return report;
    }

    if slow.state.d != pslow.d {
        let at = (0..16)
            .find(|&i| slow.state.d[i] != pslow.d[i])
            .unwrap_or(0);
        report.divergence = Some(format!(
            "ISS vs pipeline: d{at} is {:#x} vs {:#x}",
            slow.state.d[at], pslow.d[at]
        ));
        return report;
    }
    if slow.state.a != pslow.a {
        let at = (0..16)
            .find(|&i| slow.state.a[i] != pslow.a[i])
            .unwrap_or(0);
        report.divergence = Some(format!(
            "ISS vs pipeline: a{at} is {:#x} vs {:#x}",
            slow.state.a[at], pslow.a[at]
        ));
        return report;
    }
    if slow.instr_count != pslow.retired {
        report.divergence = Some(format!(
            "ISS vs pipeline: retired {} vs {}",
            slow.instr_count, pslow.retired
        ));
        return report;
    }

    // All tiers agree; optionally hold the run to the static bounds.
    if opts.check_wcet {
        if let Some(msg) = wcet_divergence(image, max_cycles) {
            report.divergence = Some(msg);
        }
    }
    report
}

/// Assembles `src` and runs [`check_image`].
///
/// # Errors
///
/// Returns the assembly error if `src` does not assemble; execution
/// divergences are reported through the [`TierReport`], not as errors.
pub fn check_source(src: &str, tiers: Tiers, opts: &CheckOptions) -> Result<TierReport, SimError> {
    let image = assemble(src)?;
    Ok(check_image(&image, tiers, opts))
}

/// Renders the covered/uncovered opcode summary of a coverage array:
/// `(covered, sampleable, uncovered names)`.
#[must_use]
pub fn coverage_summary(coverage: &[u64; OPCODE_SPACE]) -> (usize, usize, Vec<&'static str>) {
    let mut covered = 0;
    let mut sampleable = 0;
    let mut uncovered = Vec::new();
    for (idx, &count) in coverage.iter().enumerate() {
        #[allow(clippy::cast_possible_truncation)] // reason: OPCODE_SPACE is 128
        let Some(name) = opcode_name(idx as u8) else {
            continue;
        };
        sampleable += 1;
        if count > 0 {
            covered += 1;
        } else {
            uncovered.push(name);
        }
    }
    (covered, sampleable, uncovered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_trivial_program_agrees_on_all_tiers() {
        let src = ".org 0x80000000\n_start:\n movi d0, 7\n add d1, d0, d0\n debug 1\n halt\n";
        let r = check_source(src, Tiers::All, &CheckOptions::default()).unwrap();
        assert_eq!(r.divergence, None);
        assert!(!r.errored);
        assert_eq!(r.retired, 4);
        let movi = audo_tricore::opcodes::opcode_by_name("movi").unwrap();
        assert_eq!(r.coverage[usize::from(movi)], 1);
    }

    #[test]
    fn agreed_program_faults_are_not_divergences() {
        // Store to an unmapped address: both ISS paths fault identically.
        let src = ".org 0x80000000\n_start:\n la a2, 0x40000000\n st.w d0, [a2]\n halt\n";
        let r = check_source(src, Tiers::All, &CheckOptions::default()).unwrap();
        assert_eq!(r.divergence, None);
        assert!(r.errored);
    }

    #[test]
    fn the_fault_hook_produces_a_divergence() {
        let src = ".org 0x80000000\n_start:\n movi d0, 3\n mul d1, d0, d0\n halt\n";
        let mul = audo_tricore::opcodes::opcode_by_name("mul").unwrap();
        let opts = CheckOptions {
            fault: Some(mul),
            ..CheckOptions::default()
        };
        let r = check_source(src, Tiers::All, &opts).unwrap();
        assert!(
            r.divergence
                .as_deref()
                .is_some_and(|m| m.contains("slow vs fast")),
            "{:?}",
            r.divergence
        );
        // Programs that never retire the slot are unaffected.
        let clean = ".org 0x80000000\n_start:\n movi d0, 3\n halt\n";
        let r = check_source(clean, Tiers::All, &opts).unwrap();
        assert_eq!(r.divergence, None);
    }

    #[test]
    fn the_wcet_check_passes_on_bounded_programs() {
        // A counted loop plus a call: finite WCET and CSA depth, so the
        // profiled run must land inside both bounds.
        let src = "
    .org 0x80000000
_start:
    li d2, 12
loop:
    call work
    addi d2, d2, -1
    jnz d2, loop
    halt
work:
    addi d5, d5, 3
    ret
";
        let opts = CheckOptions {
            check_wcet: true,
            ..CheckOptions::default()
        };
        let r = check_source(src, Tiers::All, &opts).unwrap();
        assert_eq!(r.divergence, None);
        assert!(!r.errored);
    }

    #[test]
    fn retire_budget_blowouts_are_agreed_faults() {
        let src = ".org 0x80000000\n_start:\nspin:\n j spin\n";
        let opts = CheckOptions {
            max_instrs: 1_000,
            ..CheckOptions::default()
        };
        let r = check_source(src, Tiers::All, &opts).unwrap();
        assert_eq!(r.divergence, None);
        assert!(r.errored);
    }
}
