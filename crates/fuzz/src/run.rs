//! The fuzz session driver: rounds of generated/mutated cases, a
//! coverage-guided feedback loop, and the shrink-and-pin path for
//! divergences.
//!
//! # Determinism contract
//!
//! A session is a pure function of `(--seed, --iterations)`: the
//! rendered report is byte-identical no matter how many jobs execute
//! the cases. Three rules make that hold:
//!
//! * every case derives all entropy from [`case_seed`]`(seed, index)`;
//! * coverage feedback only crosses case boundaries at **round
//!   barriers** — within a round every case sees the coverage union of
//!   completed rounds only, so scheduling order inside a round cannot
//!   leak into generation;
//! * results are folded in case-index order after each round.
//!
//! The scheduler itself is injected (see [`run_fuzz`]'s `schedule`
//! parameter) so the CLI can shard rounds over the bench scheduler
//! without this crate depending on it.

use std::path::PathBuf;

use audo_common::events::StallReason;
use audo_common::SimError;
use audo_tricore::opcodes::{opcode_name, sample_instr, OPCODE_SPACE};

use audo_asm::{load_corpus, CorpusEntry, Tiers};

use crate::gen::{generate, injectable, mutate};
use crate::rng::{case_seed, Rng};
use crate::shrink::shrink_source;
use crate::tiers::{check_source, coverage_summary, CheckOptions};

/// Session configuration.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Session seed; with `iterations` it fully determines the session.
    pub seed: u64,
    /// Number of fuzz cases (excluding the corpus baseline).
    pub iterations: u64,
    /// Retired-instruction budget per generated program.
    pub max_instrs: u64,
    /// Cases per round (the coverage-feedback barrier interval).
    pub round: u64,
    /// Corpus directory for the baseline sweep and mutation seeds;
    /// `None` runs a generation-only session.
    pub corpus_dir: Option<PathBuf>,
    /// Where to write pinned reproducers; `None` disables pinning.
    pub pin_dir: Option<PathBuf>,
    /// Test-only fault hook, forwarded to the tier checker.
    pub fault: Option<u8>,
    /// Hold every agreeing run to the static WCET/CSA bounds, forwarded
    /// to the tier checker (see [`CheckOptions::check_wcet`]).
    pub check_wcet: bool,
    /// Evaluation budget for shrinking one divergence.
    pub shrink_evals: usize,
    /// At most this many divergences are shrunk and pinned (the rest
    /// are still reported).
    pub max_pinned: usize,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            seed: 0,
            iterations: 100,
            max_instrs: 200_000,
            round: 128,
            corpus_dir: None,
            pin_dir: None,
            fault: None,
            check_wcet: false,
            shrink_evals: 300,
            max_pinned: 3,
        }
    }
}

/// How a case's program came to be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseKind {
    /// Freshly generated from the case seed.
    Generated,
    /// A corpus program with one mutated line.
    Mutated(String),
}

impl std::fmt::Display for CaseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaseKind::Generated => write!(f, "generated"),
            CaseKind::Mutated(file) => write!(f, "mutated from {file}"),
        }
    }
}

/// Result of one fuzz case (program construction + tier check).
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Global case index.
    pub index: u64,
    /// Provenance of the program.
    pub kind: CaseKind,
    /// The program source the case ran.
    pub source: String,
    /// Tier set the program ran under.
    pub tiers: Tiers,
    /// Retire budget the case ran under.
    pub max_instrs: u64,
    /// Divergence message, if the tiers disagreed.
    pub divergence: Option<String>,
    /// The tiers agreed the program faults.
    pub errored: bool,
    /// Instructions the golden model retired.
    pub retired: u64,
    /// Golden-model opcode coverage of this case.
    pub coverage: Box<[u64; OPCODE_SPACE]>,
    /// Per-cause stall cycles the case's uncached pipeline run observed.
    pub stall_coverage: [u64; StallReason::COUNT],
}

/// One reported divergence.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Global case index (`None` for corpus-baseline divergences).
    pub index: Option<u64>,
    /// Provenance (`generated`, `mutated from ...`, or the corpus file).
    pub kind: String,
    /// The tier checker's message.
    pub message: String,
    /// Minimized reproducer source (empty if not shrunk).
    pub minimized: String,
    /// File name of the pinned reproducer, if one was written.
    pub pinned: Option<String>,
}

/// Everything a fuzz session produced.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Session seed.
    pub seed: u64,
    /// Fuzz cases run (excluding the corpus baseline).
    pub iterations: u64,
    /// Corpus programs swept in the baseline phase.
    pub corpus_programs: usize,
    /// All divergences, corpus baseline first, then by case index.
    pub divergences: Vec<Divergence>,
    /// Programs on which the tiers agreed on a fault.
    pub errored: u64,
    /// Total instructions the golden model retired.
    pub retired_total: u64,
    /// Opcode-slot coverage union across the whole session.
    pub coverage: Box<[u64; OPCODE_SPACE]>,
    /// Per-cause stall-cycle coverage summed over every uncached
    /// pipeline run of the session — which stall causes the corpus and
    /// the generated programs actually exercise.
    pub stall_coverage: [u64; StallReason::COUNT],
}

impl FuzzReport {
    /// Covered/sampleable slot counts plus uncovered slot names.
    #[must_use]
    pub fn coverage_counts(&self) -> (usize, usize, Vec<&'static str>) {
        coverage_summary(&self.coverage)
    }

    /// Exports the session's coverage counters into a registry under
    /// `fuzz.coverage.*`: per-slot retire counts (covered slots only),
    /// the covered/sampleable totals, and per-cause stall-cycle
    /// coverage. A pure function of the report, so the export inherits
    /// the session's byte-identical determinism.
    pub fn export_obs(&self, reg: &mut audo_obs::Registry) {
        let (covered, sampleable, _) = self.coverage_counts();
        reg.add("fuzz.coverage.opcodes_covered", covered as u64);
        reg.add("fuzz.coverage.opcodes_sampleable", sampleable as u64);
        for (idx, &count) in self.coverage.iter().enumerate() {
            if count == 0 {
                continue;
            }
            // reason: OPCODE_SPACE is 128.
            #[allow(clippy::cast_possible_truncation)]
            let Some(name) = opcode_name(idx as u8) else {
                continue;
            };
            reg.add(&format!("fuzz.coverage.opcode.{name}"), count);
        }
        for reason in StallReason::ALL {
            reg.add(
                &format!("fuzz.coverage.stall.{}", reason.key()),
                self.stall_coverage[reason.index()],
            );
        }
    }

    /// Deterministic text rendering: byte-identical for a given
    /// `(seed, iterations)` at any job count.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fuzz session: seed {:#x}, {} iterations, corpus {} programs\n",
            self.seed, self.iterations, self.corpus_programs
        ));
        out.push_str(&format!(
            "programs with agreed guest faults: {}\n",
            self.errored
        ));
        out.push_str(&format!(
            "golden-model instructions retired: {}\n",
            self.retired_total
        ));
        let (covered, sampleable, uncovered) = self.coverage_counts();
        out.push_str(&format!("opcode coverage: {covered}/{sampleable} slots\n"));
        if uncovered.is_empty() {
            out.push_str("uncovered: none\n");
        } else {
            out.push_str(&format!("uncovered: {}\n", uncovered.join(" ")));
        }
        out.push_str(&format!("divergences: {}\n", self.divergences.len()));
        for d in &self.divergences {
            match d.index {
                Some(i) => out.push_str(&format!("  case {i} ({}): {}\n", d.kind, d.message)),
                None => out.push_str(&format!("  corpus {}: {}\n", d.kind, d.message)),
            }
            if let Some(p) = &d.pinned {
                out.push_str(&format!(
                    "    pinned: {p} ({} lines)\n",
                    d.minimized.lines().count()
                ));
            }
        }
        out.push_str(if self.divergences.is_empty() {
            "result: CLEAN\n"
        } else {
            "result: DIVERGED\n"
        });
        out
    }
}

/// Builds and checks one case. Pure in `(options, index, hints)`.
fn run_case(opts: &FuzzOptions, corpus: &[CorpusEntry], hints: &[u8], index: u64) -> CaseResult {
    let cseed = case_seed(opts.seed, index);
    let (kind, source, tiers, max_instrs) = if !corpus.is_empty() && index % 4 == 3 {
        let mut r = Rng::new(cseed);
        let entry = &corpus[r.below(corpus.len() as u64) as usize];
        let base = &entry.program.source;
        let mut chosen = base.clone();
        for attempt in 0..8u64 {
            if let Some(m) = mutate(base, cseed.wrapping_add(attempt)) {
                if audo_tricore::asm::assemble(&m).is_ok() {
                    chosen = m;
                    break;
                }
            }
        }
        (
            CaseKind::Mutated(entry.file_name.clone()),
            chosen,
            entry.program.tiers,
            entry.program.max_instrs.min(opts.max_instrs),
        )
    } else {
        (
            CaseKind::Generated,
            generate(cseed, hints),
            Tiers::All,
            opts.max_instrs,
        )
    };
    let check = CheckOptions {
        max_instrs,
        fault: opts.fault,
        check_wcet: opts.check_wcet,
    };
    let (divergence, errored, retired, coverage, stall_coverage) =
        match check_source(&source, tiers, &check) {
            Ok(rep) => (
                rep.divergence,
                rep.errored,
                rep.retired,
                rep.coverage,
                rep.stall_coverage,
            ),
            // The generator/mutator guarantees assemblability, so a parse
            // failure here is itself a finding.
            Err(e) => (
                Some(format!("case program does not assemble: {e}")),
                false,
                0,
                Box::new([0u64; OPCODE_SPACE]),
                [0; StallReason::COUNT],
            ),
        };
    CaseResult {
        index,
        kind,
        source,
        tiers,
        max_instrs,
        divergence,
        errored,
        retired,
        coverage,
        stall_coverage,
    }
}

/// Opcode slots that are still uncovered *and* can be chased by the
/// generator (their sample is safe to splice into a program body).
fn injection_hints(union: &[u64; OPCODE_SPACE]) -> Vec<u8> {
    (0..OPCODE_SPACE)
        .filter_map(|idx| {
            #[allow(clippy::cast_possible_truncation)] // reason: OPCODE_SPACE is 128
            let idx = idx as u8;
            if union[usize::from(idx)] > 0 {
                return None;
            }
            let sample = sample_instr(idx)?;
            injectable(&sample).then_some(idx)
        })
        .collect()
}

fn pin_repro(
    opts: &FuzzOptions,
    d: &Divergence,
    tiers: Tiers,
    max_instrs: u64,
) -> Result<Option<String>, SimError> {
    let Some(dir) = &opts.pin_dir else {
        return Ok(None);
    };
    let index = d
        .index
        .map_or_else(|| "corpus".to_string(), |i| i.to_string());
    let file = format!("repro_seed0x{:X}_case{index}.md", opts.seed);
    let tiers_str = match tiers {
        Tiers::All => "all",
        Tiers::IssOnly => "iss",
    };
    let body = format!(
        "# Fuzz reproducer: case {index}\n\n\
         Pinned by the differential fuzzer. Session seed {:#x}, case {index},\n\
         kind: {}.\n\n\
         Divergence:\n\n\
         > {}\n\n\
         <!-- audo-asm: name = repro-case-{index} -->\n\
         <!-- audo-asm: tiers = {tiers_str} -->\n\
         <!-- audo-asm: max-instrs = {max_instrs} -->\n\n\
         ```asm\n{}```\n",
        opts.seed, d.kind, d.message, d.minimized
    );
    std::fs::create_dir_all(dir).map_err(|e| SimError::InvalidConfig {
        message: format!("fuzz: cannot create pin dir {}: {e}", dir.display()),
    })?;
    let path = dir.join(&file);
    std::fs::write(&path, body).map_err(|e| SimError::InvalidConfig {
        message: format!("fuzz: cannot write {}: {e}", path.display()),
    })?;
    Ok(Some(file))
}

/// Runs a fuzz session.
///
/// `schedule` maps `(case_count, case_fn)` to the vector of results
/// *in case order*; pass [`serial_schedule`] for a single-threaded run
/// or wrap a job scheduler for sharded rounds. `case_fn` is `Sync` and
/// index-pure, so any sharding is sound.
///
/// # Errors
///
/// Fails if the corpus cannot be loaded or a pinned reproducer cannot
/// be written; divergences are *reported*, not errors.
pub fn run_fuzz<S>(opts: &FuzzOptions, schedule: S) -> Result<FuzzReport, SimError>
where
    S: Fn(usize, &(dyn Fn(usize) -> CaseResult + Sync)) -> Vec<CaseResult>,
{
    let corpus = match &opts.corpus_dir {
        Some(dir) => load_corpus(dir)?,
        None => Vec::new(),
    };
    let mut report = FuzzReport {
        seed: opts.seed,
        iterations: opts.iterations,
        corpus_programs: corpus.len(),
        divergences: Vec::new(),
        errored: 0,
        retired_total: 0,
        coverage: Box::new([0u64; OPCODE_SPACE]),
        stall_coverage: [0; StallReason::COUNT],
    };

    // Corpus baseline: every pinned program must already agree.
    for e in &corpus {
        let check = CheckOptions {
            max_instrs: e.program.max_instrs.min(opts.max_instrs),
            fault: opts.fault,
            check_wcet: opts.check_wcet,
        };
        let rep = crate::tiers::check_image(&e.image, e.program.tiers, &check);
        for i in 0..OPCODE_SPACE {
            report.coverage[i] += rep.coverage[i];
        }
        for i in 0..StallReason::COUNT {
            report.stall_coverage[i] += rep.stall_coverage[i];
        }
        report.retired_total += rep.retired;
        if rep.errored {
            report.errored += 1;
        }
        if let Some(message) = rep.divergence {
            // No pin file for corpus divergences: the checked-in corpus
            // program is already the reproducer.
            report.divergences.push(Divergence {
                index: None,
                kind: e.file_name.clone(),
                message,
                minimized: String::new(),
                pinned: None,
            });
        }
    }

    let mut done = 0u64;
    let mut pinned = 0usize;
    while done < opts.iterations {
        let n = opts.round.min(opts.iterations - done);
        let hints = injection_hints(&report.coverage);
        let base = done;
        #[allow(clippy::cast_possible_truncation)] // reason: round size is small
        let results = schedule(n as usize, &|i: usize| {
            run_case(opts, &corpus, &hints, base + i as u64)
        });
        assert_eq!(results.len(), n as usize, "scheduler dropped cases");
        for r in results {
            for i in 0..OPCODE_SPACE {
                report.coverage[i] += r.coverage[i];
            }
            for i in 0..StallReason::COUNT {
                report.stall_coverage[i] += r.stall_coverage[i];
            }
            report.retired_total += r.retired;
            if r.errored {
                report.errored += 1;
            }
            let Some(message) = r.divergence else {
                continue;
            };
            let mut d = Divergence {
                index: Some(r.index),
                kind: r.kind.to_string(),
                message,
                minimized: String::new(),
                pinned: None,
            };
            if pinned < opts.max_pinned {
                let check = CheckOptions {
                    max_instrs: r.max_instrs,
                    fault: opts.fault,
                    check_wcet: opts.check_wcet,
                };
                d.minimized = shrink_source(
                    &r.source,
                    |s| {
                        check_source(s, r.tiers, &check)
                            .map(|rep| rep.divergence.is_some())
                            .unwrap_or(false)
                    },
                    opts.shrink_evals,
                );
                d.pinned = pin_repro(opts, &d, r.tiers, r.max_instrs)?;
                pinned += 1;
            }
            report.divergences.push(d);
        }
        done += n;
    }
    Ok(report)
}

/// The trivial scheduler: runs cases one after another on the calling
/// thread.
#[must_use]
pub fn serial_schedule(
    count: usize,
    case: &(dyn Fn(usize) -> CaseResult + Sync),
) -> Vec<CaseResult> {
    (0..count).map(case).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> FuzzOptions {
        FuzzOptions {
            seed: 0xF00D,
            iterations: 6,
            max_instrs: 50_000,
            round: 4,
            ..FuzzOptions::default()
        }
    }

    #[test]
    fn a_small_clean_session_renders_deterministically() {
        let a = run_fuzz(&quick_opts(), serial_schedule).unwrap();
        let b = run_fuzz(&quick_opts(), serial_schedule).unwrap();
        assert_eq!(a.render(), b.render());
        assert!(a.divergences.is_empty(), "{}", a.render());
        assert!(a.render().contains("result: CLEAN"));
    }

    #[test]
    fn the_fault_hook_yields_shrunk_divergences() {
        let dir = std::env::temp_dir().join("audo_fuzz_pin_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mul = audo_tricore::opcodes::opcode_by_name("mul").unwrap();
        let opts = FuzzOptions {
            fault: Some(mul),
            iterations: 8,
            pin_dir: Some(dir.clone()),
            shrink_evals: 200,
            max_pinned: 1,
            ..quick_opts()
        };
        let rep = run_fuzz(&opts, serial_schedule).unwrap();
        assert!(
            !rep.divergences.is_empty(),
            "8 generated programs should hit a mul\n{}",
            rep.render()
        );
        let d = &rep.divergences[0];
        assert!(!d.minimized.is_empty());
        assert!(
            d.minimized.lines().count() < 15,
            "shrink left {} lines:\n{}",
            d.minimized.lines().count(),
            d.minimized
        );
        let pinned = d.pinned.as_ref().expect("pinned file");
        let text = std::fs::read_to_string(dir.join(pinned)).unwrap();
        let program = audo_asm::parse_literate(&text).expect("repro is literate");
        program.assemble().expect("repro assembles");
    }
}
