//! Seeded TC-R program generation and mutation.
//!
//! Generated programs are *random but valid by construction*: every
//! emitted line assembles, every memory access stays inside the mapped
//! data windows, every branch target exists, and control flow always
//! reaches `halt` (or retires enough instructions to trip the
//! per-program budget, which the tier checker treats as an agreed-upon
//! outcome, not a divergence).
//!
//! Register conventions keep the random soup well-formed:
//!
//! | register | role |
//! |----------|------|
//! | `d0..d6`, `d8..d14` | ALU targets/operands (free soup) |
//! | `d7` | outer pass counter — never touched by the soup |
//! | `a2`, `a3` | data-window bases, re-anchored at every pass head |
//! | `a4` | `ld.a`/`st.a`/`lea` operand — never used as a base |
//! | `a5` | hardware-loop counter |
//! | `a6`, `a7` | indirect branch/call targets, loaded with `la` |
//! | `sp`, `ra` | reserved for the runtime |

use audo_common::Addr;
use audo_tricore::disasm::format_instr;
use audo_tricore::opcodes::sample_instr;
use audo_tricore::Instr;

use crate::rng::Rng;

/// D-registers the generator may freely read and write.
const DSOUP: &[&str] = &[
    "d0", "d1", "d2", "d3", "d4", "d5", "d6", "d8", "d9", "d10", "d11", "d12", "d13", "d14",
];

/// Flash base every generated program is linked at.
pub const CODE_BASE: u32 = 0x8000_0000;
/// Read/write data window reached through `a2`.
pub const DATA_A2: u32 = 0xD000_0400;
/// Read/write data window reached through `a3`.
pub const DATA_A3: u32 = 0xD000_0600;
/// Largest byte offset the generator uses off a window base.
const MAX_OFF: i64 = 500;

fn d(r: &mut Rng) -> &'static str {
    DSOUP[r.below(DSOUP.len() as u64) as usize]
}

/// One random register-only ALU instruction (always assembles, touches
/// only the d-register soup).
fn alu_line(r: &mut Rng) -> String {
    match r.below(14) {
        0 => {
            let op = *r.pick(&[
                "add", "sub", "and", "or", "xor", "min", "max", "mul", "mac", "div", "rem", "sh",
                "sha", "lt", "ltu", "eq", "ne", "sel",
            ]);
            format!("    {op} {}, {}, {}", d(r), d(r), d(r))
        }
        1 => {
            let op = *r.pick(&["mov", "clz", "sext.b", "sext.h", "zext.b", "zext.h"]);
            format!("    {op} {}, {}", d(r), d(r))
        }
        2 => format!("    shi {}, {}, {}", d(r), d(r), r.range(-31, 31)),
        3 => format!("    addi {}, {}, {}", d(r), d(r), r.range(-2048, 2047)),
        4 => {
            let op = *r.pick(&["andi", "ori", "xori"]);
            format!("    {op} {}, {}, {:#x}", d(r), d(r), r.below(0x1000))
        }
        5 => format!("    movi {}, {}", d(r), r.range(-32768, 32767)),
        6 => format!("    movu {}, {:#x}", d(r), r.below(0x1_0000)),
        7 => format!("    movh {}, {:#x}", d(r), r.below(0x1_0000)),
        8 => format!("    oril {}, {:#x}", d(r), r.below(0x1_0000)),
        9 => {
            let op = *r.pick(&["extr", "insert"]);
            format!(
                "    {op} {}, {}, {}, {}",
                d(r),
                d(r),
                r.below(32),
                1 + r.below(32)
            )
        }
        10 => format!("    mov.d {}, {}", d(r), r.pick(&["a2", "a3", "a4"])),
        11 => format!("    debug {}", r.below(100)),
        12 => "    nop".to_string(),
        _ => format!("    addi {}, {}, {}", d(r), d(r), r.range(-8, 8)),
    }
}

/// One random load/store against the anchored data windows. Offsets
/// respect the access width's alignment so no candidate ever faults.
fn mem_line(r: &mut Rng) -> String {
    let base = *r.pick(&["a2", "a3"]);
    match r.below(8) {
        0 => {
            let off = r.below(MAX_OFF as u64 / 4) * 4;
            let op = *r.pick(&["ld.w", "st.w"]);
            format!("    {op} {}, [{base}+{off}]", d(r))
        }
        1 => {
            let off = r.below(MAX_OFF as u64 / 2) * 2;
            let op = *r.pick(&["ld.h", "ld.hu", "st.h"]);
            format!("    {op} {}, [{base}+{off}]", d(r))
        }
        2 => {
            let off = r.below(MAX_OFF as u64);
            let op = *r.pick(&["ld.b", "ld.bu", "st.b"]);
            format!("    {op} {}, [{base}+{off}]", d(r))
        }
        3 => format!("    ld.w {}, [{base}]", d(r)),
        4 => format!("    st.w {}, [{base}]", d(r)),
        5 => {
            let off = r.below(MAX_OFF as u64 / 4) * 4;
            let op = *r.pick(&["ld.a", "st.a"]);
            format!("    {op} a4, [{base}+{off}]")
        }
        6 => format!("    lea a4, {base}, {}", r.range(0, MAX_OFF)),
        _ => {
            let off = r.below(MAX_OFF as u64 / 4) * 4;
            format!("    st.w {}, [a3+{off}]", d(r))
        }
    }
}

fn csfr_line(r: &mut Rng) -> String {
    let csfr = *r.pick(&["core_id", "syscon", "fcx", "psw"]);
    format!("    mfcr {}, {csfr}", d(r))
}

/// True if `instr` is safe to splice anywhere into the body at top
/// level: it only touches the d-register soup (no memory, no control
/// flow, no a-register or CSFR writes).
#[must_use]
pub fn injectable(instr: &Instr) -> bool {
    use Instr::{
        Add, AddI, And, AndI, Clz, Debug, Div, EqR, Extr, Insert, Lt, LtU, Mac, Max, Min, MovAtoD,
        MovD, MovH, MovI, MovU, Mul, NeR, Nop, Or, OrI, OrIL, Rem, Sel, SextB, SextH, Sh, ShI, Sha,
        Sub, Xor, XorI, ZextB, ZextH,
    };
    matches!(
        instr,
        Add { .. }
            | Sub { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | Min { .. }
            | Max { .. }
            | Mul { .. }
            | Mac { .. }
            | Div { .. }
            | Rem { .. }
            | Sh { .. }
            | Sha { .. }
            | ShI { .. }
            | AddI { .. }
            | AndI { .. }
            | OrI { .. }
            | XorI { .. }
            | MovI { .. }
            | MovU { .. }
            | MovH { .. }
            | OrIL { .. }
            | Clz { .. }
            | SextB { .. }
            | SextH { .. }
            | ZextB { .. }
            | ZextH { .. }
            | Extr { .. }
            | Insert { .. }
            | Lt { .. }
            | LtU { .. }
            | EqR { .. }
            | NeR { .. }
            | Sel { .. }
            | MovD { .. }
            | MovAtoD { .. }
            | Nop
            | Debug { .. }
    )
}

/// Generates one random-but-valid program.
///
/// `hints` are opcode-slot indices the session has not covered yet;
/// slots with an [`injectable`] sample get spliced into the body so
/// coverage chases the uncovered tail instead of re-rolling the same
/// hot instructions.
#[must_use]
pub fn generate(seed: u64, hints: &[u8]) -> String {
    let mut r = Rng::new(seed);
    let mut label = 0u32;
    let hint_lines: Vec<String> = hints
        .iter()
        .filter_map(|&idx| sample_instr(idx))
        .filter(injectable)
        .map(|i| format!("    {}", format_instr(&i, Addr(CODE_BASE))))
        .collect();

    let leaves = r.below(3);
    let passes = r.range(2, 4);
    let body_len = r.range(20, 60);

    let mut body: Vec<String> = Vec::new();
    let mut hint_at = 0usize;
    for _ in 0..body_len {
        match r.below(16) {
            0..=6 => body.push(alu_line(&mut r)),
            7..=9 => body.push(mem_line(&mut r)),
            10 => {
                // Forward conditional skip over a tiny block.
                label += 1;
                let cond = *r.pick(&["jeq", "jne", "jlt", "jge", "jltu", "jgeu"]);
                if r.chance(1, 3) {
                    let jz = *r.pick(&["jz", "jnz"]);
                    body.push(format!("    {jz} {}, skip_{label}", d(&mut r)));
                } else {
                    body.push(format!(
                        "    {cond} {}, {}, skip_{label}",
                        d(&mut r),
                        d(&mut r)
                    ));
                }
                for _ in 0..r.range(1, 3) {
                    body.push(alu_line(&mut r));
                }
                body.push(format!("skip_{label}:"));
            }
            11 => {
                // Counted hardware loop on a5.
                label += 1;
                body.push(format!("    movi d6, {}", r.range(2, 5)));
                body.push("    mov.a a5, d6".to_string());
                body.push(format!("hwl_{label}:"));
                for _ in 0..r.range(1, 2) {
                    body.push(alu_line(&mut r));
                }
                body.push(format!("    loop a5, hwl_{label}"));
            }
            12 if leaves > 0 => {
                let leaf = r.below(leaves);
                if r.chance(1, 2) {
                    body.push(format!("    call leaf_{leaf}"));
                } else {
                    body.push(format!("    la a6, leaf_{leaf}"));
                    body.push("    calli a6".to_string());
                }
            }
            13 => {
                // Indirect jump to the very next line.
                label += 1;
                body.push(format!("    la a6, join_{label}"));
                body.push("    ji a6".to_string());
                body.push(format!("join_{label}:"));
            }
            14 => body.push(csfr_line(&mut r)),
            _ => {
                if hint_at < hint_lines.len() {
                    body.push(hint_lines[hint_at].clone());
                    hint_at += 1;
                } else {
                    body.push(alu_line(&mut r));
                }
            }
        }
    }
    // Whatever the weighted draw left out, splice in the remaining
    // uncovered-slot samples so a hint is never silently dropped.
    for line in &hint_lines[hint_at..] {
        body.push(line.clone());
    }

    let mut out = String::new();
    out.push_str(&format!(".org {CODE_BASE:#x}\n"));
    out.push_str("_start:\n");
    out.push_str("    la sp, 0xD0004000\n");
    out.push_str(&format!("    movi d7, {passes}\n"));
    out.push_str("pass_head:\n");
    out.push_str(&format!("    la a2, {DATA_A2:#x}\n"));
    out.push_str(&format!("    la a3, {DATA_A3:#x}\n"));
    for line in &body {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("    addi d7, d7, -1\n");
    out.push_str("    jnz d7, pass_head\n");
    out.push_str("    debug 1\n");
    out.push_str("    halt\n");
    for leaf in 0..leaves {
        out.push_str(&format!("leaf_{leaf}:\n"));
        for _ in 0..r.range(2, 5) {
            let line = alu_line(&mut r);
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str("    ret\n");
    }
    out
}

/// Mnemonics a mutation may replace: pure d-register ALU lines whose
/// removal or replacement can never unmap an address or orphan a label.
const MUTABLE: &[&str] = &[
    "add", "sub", "and", "or", "xor", "min", "max", "mul", "mac", "div", "rem", "sh", "sha", "shi",
    "addi", "andi", "ori", "xori", "movi", "movu", "movh", "oril", "clz", "sext.b", "sext.h",
    "zext.b", "zext.h", "extr", "insert", "lt", "ltu", "eq", "ne", "sel", "mov", "debug", "nop",
];

fn is_mutable_line(line: &str) -> bool {
    let t = line.trim();
    if t.is_empty() || t.starts_with(';') || t.starts_with('.') || t.contains(':') {
        return false;
    }
    let mnemonic = t.split_whitespace().next().unwrap_or("");
    MUTABLE.contains(&mnemonic)
}

/// Replaces one mutable line of `src` with a fresh random ALU
/// instruction. Returns `None` when the source has no mutable line.
///
/// The replacement is always a pure register instruction, so a mutated
/// program keeps the original's memory and control-flow shape — the
/// interesting search happens in the dataflow soup, not by breaking
/// the scaffold.
#[must_use]
pub fn mutate(src: &str, seed: u64) -> Option<String> {
    let mut r = Rng::new(seed);
    let lines: Vec<&str> = src.lines().collect();
    let candidates: Vec<usize> = (0..lines.len())
        .filter(|&i| is_mutable_line(lines[i]))
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let at = candidates[r.below(candidates.len() as u64) as usize];
    let mut out: Vec<String> = lines.iter().map(|l| (*l).to_string()).collect();
    out[at] = alu_line(&mut r);
    Some(format!("{}\n", out.join("\n")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use audo_tricore::asm::assemble;

    #[test]
    fn generated_programs_always_assemble() {
        for seed in 0..200 {
            let src = generate(seed, &[]);
            assemble(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(1234, &[5, 30]), generate(1234, &[5, 30]));
        assert_ne!(generate(1234, &[]), generate(1235, &[]));
    }

    #[test]
    fn hints_are_spliced_into_the_body() {
        // Slot 30 is `div`; its sample must appear when hinted.
        let src = generate(99, &[30]);
        assert!(src.contains("div "), "{src}");
    }

    #[test]
    fn mutation_preserves_assemblability_often_enough() {
        let src = generate(7, &[]);
        let mut ok = 0;
        for seed in 0..32 {
            if let Some(m) = mutate(&src, seed) {
                assert_ne!(m, src);
                if assemble(&m).is_ok() {
                    ok += 1;
                }
            }
        }
        assert!(ok >= 24, "only {ok}/32 mutants assembled");
    }
}
