//! LEB128-style variable-length integer codec used by the trace message
//! protocol.
//!
//! Trace bandwidth is the scarce resource of the whole methodology (the
//! paper's §5 closes on exactly this point), so every message field that can
//! be small usually *is* small: instruction counts between flow changes,
//! cycle deltas between messages, address deltas. Encoding them as varints
//! is what gives the trace protocol its compression.
//!
//! # Examples
//!
//! ```
//! use audo_common::varint;
//!
//! let mut buf = Vec::new();
//! varint::write_u64(&mut buf, 300);
//! let (value, used) = varint::read_u64(&buf).expect("valid varint");
//! assert_eq!(value, 300);
//! assert_eq!(used, 2);
//! ```

/// Error returned when decoding a malformed or truncated varint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeVarintError;

impl std::fmt::Display for DecodeVarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("truncated or overlong varint")
    }
}

impl std::error::Error for DecodeVarintError {}

/// Appends `value` to `buf` as an unsigned LEB128 varint.
pub fn write_u64(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends `value` to `buf` as a zigzag-encoded signed varint.
pub fn write_i64(buf: &mut Vec<u8>, value: i64) {
    write_u64(buf, zigzag(value));
}

/// Decodes an unsigned varint from the front of `buf`.
///
/// Returns the decoded value and the number of bytes consumed.
///
/// # Errors
///
/// Returns [`DecodeVarintError`] if `buf` is empty, ends mid-varint, or the
/// varint is longer than 10 bytes (would overflow `u64`).
pub fn read_u64(buf: &[u8]) -> Result<(u64, usize), DecodeVarintError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= 10 {
            return Err(DecodeVarintError);
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(DecodeVarintError)
}

/// Decodes a zigzag-encoded signed varint from the front of `buf`.
///
/// # Errors
///
/// Same conditions as [`read_u64`].
pub fn read_i64(buf: &[u8]) -> Result<(i64, usize), DecodeVarintError> {
    let (raw, used) = read_u64(buf)?;
    Ok((unzigzag(raw), used))
}

/// Returns the encoded length of `value` in bytes without encoding it.
#[must_use]
pub fn len_u64(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_values() {
        for v in 0..300u64 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let (out, used) = read_u64(&buf).unwrap();
            assert_eq!(out, v);
            assert_eq!(used, buf.len());
            assert_eq!(len_u64(v), buf.len());
        }
    }

    #[test]
    fn roundtrip_boundaries() {
        for v in [0u64, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(read_u64(&buf).unwrap(), (v, buf.len()));
        }
    }

    #[test]
    fn roundtrip_signed() {
        for v in [
            -1i64,
            0,
            1,
            -64,
            63,
            -65,
            64,
            i64::MIN,
            i64::MAX,
            -1_000_000,
        ] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            assert_eq!(read_i64(&buf).unwrap(), (v, buf.len()));
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert_eq!(read_u64(&buf[..cut]), Err(DecodeVarintError));
        }
    }

    #[test]
    fn overlong_input_is_an_error() {
        let buf = [0x80u8; 11];
        assert_eq!(read_u64(&buf), Err(DecodeVarintError));
    }

    #[test]
    fn small_negative_deltas_stay_short() {
        // Address deltas are usually tiny; zigzag keeps -1 at one byte.
        let mut buf = Vec::new();
        write_i64(&mut buf, -1);
        assert_eq!(buf.len(), 1);
    }
}
