//! Strongly typed scalar quantities used across the simulation stack.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, counted in CPU clock cycles since reset.
///
/// All components of the simulated SoC are stepped at CPU clock granularity;
/// slower clock domains (system bus, peripheral bus, flash, the DAP tool
/// link) are derived via divider ratios.
///
/// # Examples
///
/// ```
/// use audo_common::Cycle;
/// let t = Cycle(100) + 25;
/// assert_eq!(t, Cycle(125));
/// assert_eq!(t.saturating_sub(Cycle(200)), 0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero cycle (reset time).
    pub const ZERO: Cycle = Cycle(0);

    /// Returns `self - other` clamped at zero, as a raw cycle count.
    #[must_use]
    pub fn saturating_sub(self, other: Cycle) -> u64 {
        self.0.saturating_sub(other.0)
    }

    /// Returns the later of two time points.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// A 32-bit byte address in the simulated SoC's flat physical address space.
///
/// The memory map follows the AUDO convention of segment-based aliasing:
/// segment `0x8` is the cached view of program flash and segment `0xA` the
/// uncached alias of the same bytes (see `audo-platform`).
///
/// # Examples
///
/// ```
/// use audo_common::Addr;
/// let a = Addr(0x8000_1234);
/// assert_eq!(a.segment(), 0x8);
/// assert_eq!(a.align_down(32).0, 0x8000_1220);
/// assert!(a.is_aligned(4) == false || a.0 % 4 == 0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u32);

impl Addr {
    /// Returns the top address nibble (the AUDO "segment").
    #[must_use]
    pub fn segment(self) -> u8 {
        (self.0 >> 28) as u8
    }

    /// Returns this address with the segment nibble replaced.
    #[must_use]
    pub fn with_segment(self, seg: u8) -> Addr {
        Addr((self.0 & 0x0FFF_FFFF) | (u32::from(seg) << 28))
    }

    /// Returns the address advanced by `bytes`, wrapping on overflow.
    #[must_use]
    pub fn offset(self, bytes: u32) -> Addr {
        Addr(self.0.wrapping_add(bytes))
    }

    /// Rounds down to a multiple of `align` (which must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `align` is not a power of two.
    #[must_use]
    pub fn align_down(self, align: u32) -> Addr {
        debug_assert!(align.is_power_of_two());
        Addr(self.0 & !(align - 1))
    }

    /// Returns `true` if the address is a multiple of `align`.
    #[must_use]
    pub fn is_aligned(self, align: u32) -> bool {
        self.0.is_multiple_of(align)
    }

    /// Returns `true` if the address lies in `[base, base + len)`.
    #[must_use]
    pub fn in_range(self, base: Addr, len: u32) -> bool {
        self.0 >= base.0 && (self.0 - base.0) < len
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u32> for Addr {
    fn from(v: u32) -> Addr {
        Addr(v)
    }
}

/// A clock frequency in hertz.
///
/// # Examples
///
/// ```
/// use audo_common::Freq;
/// let f = Freq::mhz(180);
/// assert_eq!(f.as_mhz(), 180.0);
/// // 1 µs at 180 MHz is 180 cycles.
/// assert_eq!(f.cycles_per_micro(), 180.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Freq(pub u64);

impl Freq {
    /// Constructs a frequency from megahertz.
    #[must_use]
    pub fn mhz(mhz: u64) -> Freq {
        Freq(mhz * 1_000_000)
    }

    /// Returns the frequency in megahertz.
    #[must_use]
    pub fn as_mhz(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns how many cycles of this clock elapse per microsecond.
    #[must_use]
    pub fn cycles_per_micro(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Converts a duration in cycles of this clock to seconds.
    #[must_use]
    pub fn cycles_to_secs(self, cycles: u64) -> f64 {
        cycles as f64 / self.0 as f64
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000_000) {
            write!(f, "{}MHz", self.0 / 1_000_000)
        } else {
            write!(f, "{}Hz", self.0)
        }
    }
}

/// A memory capacity in bytes.
///
/// # Examples
///
/// ```
/// use audo_common::ByteSize;
/// assert_eq!(ByteSize::kib(256).bytes(), 262_144);
/// assert_eq!(ByteSize::kib(4).to_string(), "4KiB");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Constructs a size from kibibytes.
    #[must_use]
    pub fn kib(k: u64) -> ByteSize {
        ByteSize(k * 1024)
    }

    /// Constructs a size from mebibytes.
    #[must_use]
    pub fn mib(m: u64) -> ByteSize {
        ByteSize(m * 1024 * 1024)
    }

    /// Returns the raw byte count.
    #[must_use]
    pub fn bytes(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 && self.0.is_multiple_of(1024 * 1024) {
            write!(f, "{}MiB", self.0 / (1024 * 1024))
        } else if self.0 >= 1024 && self.0.is_multiple_of(1024) {
            write!(f, "{}KiB", self.0 / 1024)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let t = Cycle(5) + 10;
        assert_eq!(t, Cycle(15));
        assert_eq!(t - Cycle(5), 10);
        assert_eq!(Cycle(3).saturating_sub(Cycle(10)), 0);
        assert_eq!(Cycle(3).max(Cycle(10)), Cycle(10));
        let mut u = Cycle(1);
        u += 4;
        assert_eq!(u, Cycle(5));
    }

    #[test]
    fn addr_segment_and_alignment() {
        let a = Addr(0x8012_3456);
        assert_eq!(a.segment(), 0x8);
        assert_eq!(a.with_segment(0xA), Addr(0xA012_3456));
        assert_eq!(a.align_down(16), Addr(0x8012_3450));
        assert!(Addr(0x100).is_aligned(4));
        assert!(!Addr(0x102).is_aligned(4));
    }

    #[test]
    fn addr_range_checks() {
        let base = Addr(0x9000_0000);
        assert!(Addr(0x9000_0000).in_range(base, 16));
        assert!(Addr(0x9000_000F).in_range(base, 16));
        assert!(!Addr(0x9000_0010).in_range(base, 16));
        assert!(!Addr(0x8FFF_FFFF).in_range(base, 16));
    }

    #[test]
    fn addr_offset_wraps() {
        assert_eq!(Addr(0xFFFF_FFFF).offset(1), Addr(0));
    }

    #[test]
    fn freq_conversions() {
        let f = Freq::mhz(150);
        assert_eq!(f.as_mhz(), 150.0);
        assert_eq!(f.cycles_to_secs(150_000_000), 1.0);
        assert_eq!(f.to_string(), "150MHz");
    }

    #[test]
    fn byte_size_display() {
        assert_eq!(ByteSize::mib(4).to_string(), "4MiB");
        assert_eq!(ByteSize::kib(512).to_string(), "512KiB");
        assert_eq!(ByteSize(100).to_string(), "100B");
        assert_eq!(ByteSize::kib(1).bytes(), 1024);
    }

    #[test]
    fn addr_formats_as_hex() {
        assert_eq!(Addr(0xDEAD).to_string(), "0x0000dead");
        assert_eq!(format!("{:x}", Addr(0xBEEF)), "beef");
        assert_eq!(format!("{:X}", Addr(0xBEEF)), "BEEF");
    }
}
