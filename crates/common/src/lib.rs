//! Shared foundation types for the `audo` simulation stack.
//!
//! This crate defines the vocabulary every other crate in the workspace
//! speaks:
//!
//! * [`Cycle`], [`Addr`], [`Freq`] and [`ByteSize`] — strongly typed scalars
//!   so that cycle counts, byte addresses and clock frequencies cannot be
//!   mixed up silently.
//! * [`PerfEvent`] — the taxonomy of performance-relevant hardware events
//!   that the simulated SoC emits and that the MCDS (Multi-Core Debug
//!   Solution) observes. This mirrors the event sources listed in Mayer &
//!   Hellwig (DATE 2008), §5: cache hits/misses, flash buffer hits, bus
//!   contention, executed instructions, interrupt activity, and so on.
//! * [`EventSink`] / [`EventRecord`] — the per-cycle event transport between
//!   the product-chip components and the observation hardware.
//! * [`varint`] — the variable-length integer codec used by the trace
//!   message protocol.
//!
//! # Examples
//!
//! ```
//! use audo_common::{Addr, Cycle, EventSink, PerfEvent, SourceId};
//!
//! let mut sink = EventSink::new();
//! sink.emit(Cycle(10), SourceId::TRICORE, PerfEvent::InstrRetired { count: 3 });
//! assert_eq!(sink.records().len(), 1);
//! assert_eq!(Addr(0x8000_0000).offset(4), Addr(0x8000_0004));
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod events;
pub mod types;
pub mod varint;

pub use error::SimError;
pub use events::{AccessKind, BusTransaction, EventRecord, EventSink, PerfEvent, SourceId};
pub use types::{Addr, ByteSize, Cycle, Freq};
