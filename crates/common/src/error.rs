//! The workspace-wide simulation error type.

use std::fmt;

use crate::types::Addr;

/// Errors surfaced by the simulation stack.
///
/// Each crate converts its domain-specific failures into this type at its
/// public boundary, so downstream code deals with a single error enum.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A memory access targeted an unmapped address.
    UnmappedAddress {
        /// The offending byte address.
        addr: Addr,
    },
    /// A memory access was misaligned for its width.
    MisalignedAccess {
        /// The offending byte address.
        addr: Addr,
        /// Access width in bytes (2 or 4).
        size: u8,
    },
    /// An instruction word could not be decoded.
    DecodeInstr {
        /// Address of the undecodable instruction.
        addr: Addr,
        /// The raw fetch word (16-bit encodings in the low half).
        word: u32,
    },
    /// Program assembly failed.
    Assemble {
        /// 1-based source line of the failing statement.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A configuration value is invalid.
    InvalidConfig {
        /// Human-readable description of the problem.
        message: String,
    },
    /// MCDS resource allocation failed (not enough counters/comparators).
    ResourceExhausted {
        /// Which resource class ran out (e.g. `"counters"`).
        resource: &'static str,
        /// How many units the configuration asked for.
        requested: usize,
        /// How many units the modeled hardware provides.
        available: usize,
    },
    /// The trace stream could not be decoded.
    DecodeTrace {
        /// Byte offset into the trace stream where decoding failed.
        offset: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A simulation limit was exceeded (runaway program guard).
    LimitExceeded {
        /// Which limit tripped (e.g. `"instructions"`, `"cycles"`).
        what: &'static str,
        /// The configured limit value.
        limit: u64,
    },
    /// The target program signalled failure (e.g. failed self-check).
    ProgramFault {
        /// Human-readable description of the fault.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnmappedAddress { addr } => {
                write!(f, "access to unmapped address {addr}")
            }
            SimError::MisalignedAccess { addr, size } => {
                write!(f, "misaligned {size}-byte access at {addr}")
            }
            SimError::DecodeInstr { addr, word } => {
                write!(f, "cannot decode instruction word {word:#010x} at {addr}")
            }
            SimError::Assemble { line, message } => {
                write!(f, "assembly error at line {line}: {message}")
            }
            SimError::InvalidConfig { message } => {
                write!(f, "invalid configuration: {message}")
            }
            SimError::ResourceExhausted {
                resource,
                requested,
                available,
            } => {
                write!(
                    f,
                    "not enough MCDS {resource}: requested {requested}, available {available}"
                )
            }
            SimError::DecodeTrace { offset, message } => {
                write!(f, "trace decode error at byte {offset}: {message}")
            }
            SimError::LimitExceeded { what, limit } => {
                write!(f, "simulation limit exceeded: {what} > {limit}")
            }
            SimError::ProgramFault { message } => {
                write!(f, "target program fault: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SimError::UnmappedAddress { addr: Addr(0x1234) };
        assert!(e.to_string().contains("0x00001234"));
        let e = SimError::ResourceExhausted {
            resource: "counters",
            requested: 9,
            available: 8,
        };
        let s = e.to_string();
        assert!(s.contains("counters") && s.contains('9') && s.contains('8'));
        let e = SimError::Assemble {
            line: 3,
            message: "unknown mnemonic".into(),
        };
        assert!(e.to_string().starts_with("assembly error at line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
