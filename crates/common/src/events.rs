//! The performance-event taxonomy and the event transport between the
//! product-chip components and the observation hardware (MCDS).
//!
//! Mayer & Hellwig (DATE 2008, §3/§5) list the event sources the AUDO FUTURE
//! MCDS can tap directly: cache hits/misses, bus contentions, flash
//! read/pre-fetch buffer hits, CPU access rates to flash/SRAM/scratchpads,
//! executed instructions (for IPC), interrupt activity. [`PerfEvent`] is the
//! simulation-side equivalent: every component of the simulated SoC emits
//! these events into an [`EventSink`] as it executes, *without changing its
//! own behaviour* — the measurement is non-intrusive by construction, just
//! as on the real Emulation Device.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::types::{Addr, Cycle};

/// Identifies which hardware block emitted an event.
///
/// # Examples
///
/// ```
/// use audo_common::SourceId;
/// assert_eq!(SourceId::TRICORE.to_string(), "TriCore");
/// assert_ne!(SourceId::TRICORE, SourceId::PCP);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceId(pub u8);

impl SourceId {
    /// The TriCore main CPU.
    pub const TRICORE: SourceId = SourceId(0);
    /// The Peripheral Control Processor.
    pub const PCP: SourceId = SourceId(1);
    /// The DMA controller.
    pub const DMA: SourceId = SourceId(2);
    /// The system crossbar (LMB-class bus).
    pub const BUS: SourceId = SourceId(3);
    /// The program memory unit (embedded flash and its buffers).
    pub const PMU: SourceId = SourceId(4);
    /// The interrupt router.
    pub const IRQ: SourceId = SourceId(5);
    /// Peripherals (timers, ADC, CAN).
    pub const PERIPH: SourceId = SourceId(6);
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SourceId::TRICORE => f.write_str("TriCore"),
            SourceId::PCP => f.write_str("PCP"),
            SourceId::DMA => f.write_str("DMA"),
            SourceId::BUS => f.write_str("Bus"),
            SourceId::PMU => f.write_str("PMU"),
            SourceId::IRQ => f.write_str("IRQ"),
            SourceId::PERIPH => f.write_str("Periph"),
            SourceId(n) => write!(f, "Source{n}"),
        }
    }
}

/// Read/write/fetch discriminator for memory transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Instruction fetch.
    Fetch,
    /// Data read.
    Read,
    /// Data write.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Fetch => f.write_str("fetch"),
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// Which cache an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheId {
    /// The TriCore instruction cache.
    Instruction,
    /// The TriCore data cache.
    Data,
}

impl fmt::Display for CacheId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheId::Instruction => f.write_str("I-cache"),
            CacheId::Data => f.write_str("D-cache"),
        }
    }
}

/// Why a CPU pipeline produced no retirement in a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StallReason {
    /// Waiting on instruction fetch (I-cache miss, flash wait states).
    Fetch,
    /// Waiting on a data access (D-cache miss, bus, peripheral latency).
    Data,
    /// Waiting on a busy execution unit (multiply/divide in flight).
    Execute,
    /// Pipeline refill after a taken branch or mispredict.
    Branch,
    /// Context save/restore traffic (CALL/RET/interrupt entry).
    Context,
    /// Store buffer full.
    StoreBuffer,
    /// Core is in the idle/wait-for-interrupt state.
    Idle,
}

impl StallReason {
    /// Number of distinct stall causes.
    pub const COUNT: usize = 7;

    /// All stall causes in a fixed, export-stable order.
    pub const ALL: [StallReason; StallReason::COUNT] = [
        StallReason::Fetch,
        StallReason::Data,
        StallReason::Execute,
        StallReason::Branch,
        StallReason::Context,
        StallReason::StoreBuffer,
        StallReason::Idle,
    ];

    /// Dense index of this cause within [`StallReason::ALL`] (for
    /// per-cause counter arrays).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            StallReason::Fetch => 0,
            StallReason::Data => 1,
            StallReason::Execute => 2,
            StallReason::Branch => 3,
            StallReason::Context => 4,
            StallReason::StoreBuffer => 5,
            StallReason::Idle => 6,
        }
    }

    /// Metric-name-safe key (underscores instead of hyphens, so the name
    /// survives Prometheus-style exposition unchanged).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            StallReason::Fetch => "fetch",
            StallReason::Data => "data",
            StallReason::Execute => "execute",
            StallReason::Branch => "branch",
            StallReason::Context => "context",
            StallReason::StoreBuffer => "store_buffer",
            StallReason::Idle => "idle",
        }
    }
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StallReason::Fetch => "fetch",
            StallReason::Data => "data",
            StallReason::Execute => "execute",
            StallReason::Branch => "branch",
            StallReason::Context => "context",
            StallReason::StoreBuffer => "store-buffer",
            StallReason::Idle => "idle",
        };
        f.write_str(s)
    }
}

/// Memory regions distinguished by the access-rate statistics of §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemRegion {
    /// Program flash (through the PMU).
    PFlash,
    /// Data flash (EEPROM emulation).
    DFlash,
    /// System SRAM (LMU-class).
    Sram,
    /// Program scratchpad RAM.
    Pspr,
    /// Data scratchpad RAM.
    Dspr,
    /// Emulation memory overlay (calibration).
    Emem,
    /// Peripheral register space.
    Periph,
}

impl fmt::Display for MemRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemRegion::PFlash => "PFlash",
            MemRegion::DFlash => "DFlash",
            MemRegion::Sram => "SRAM",
            MemRegion::Pspr => "PSPR",
            MemRegion::Dspr => "DSPR",
            MemRegion::Emem => "EMEM",
            MemRegion::Periph => "Periph",
        };
        f.write_str(s)
    }
}

/// The kind of control-flow discontinuity, as seen by the program-trace unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowKind {
    /// A taken direct branch (target statically known).
    BranchTaken,
    /// An indirect branch or call (target only known dynamically).
    Indirect,
    /// A call (direct).
    Call,
    /// A return.
    Return,
    /// Interrupt or trap entry.
    Exception,
    /// Return from exception.
    ExceptionReturn,
}

/// A performance-relevant hardware event.
///
/// Components emit these into an [`EventSink`] every cycle as a side effect
/// of simulation; the MCDS observation blocks (crate `audo-mcds`) consume
/// them. The taxonomy deliberately matches the measurable quantities in the
/// paper: anything the Enhanced System Profiling methodology can turn into a
/// *rate* is an event here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PerfEvent {
    /// `count` instructions retired this cycle (0..=3 on the TriCore-class
    /// core; the tri-issue pipeline can retire up to three).
    InstrRetired {
        /// Number of instructions retired this cycle.
        count: u8,
    },
    /// A control-flow discontinuity retired: execution continued at `to`.
    FlowChange {
        /// What class of discontinuity (branch, call, return, …).
        kind: FlowKind,
        /// Address of the control-flow instruction itself.
        from: Addr,
        /// Address execution continued at.
        to: Addr,
    },
    /// A conditional branch retired untaken (needed for trace reconstruction).
    BranchNotTaken {
        /// Address of the untaken branch instruction.
        at: Addr,
    },
    /// Cache lookup hit.
    CacheHit {
        /// Which cache was looked up.
        cache: CacheId,
    },
    /// Cache lookup miss (a line fill follows).
    CacheMiss {
        /// Which cache was looked up.
        cache: CacheId,
    },
    /// A CPU data-side access classified by target memory region.
    DataAccess {
        /// Memory region the access targeted.
        region: MemRegion,
        /// Whether the access was a read or a write.
        kind: AccessKind,
    },
    /// A code fetch reached the flash (missed all caches/buffers in front).
    FlashCodeFetch,
    /// A flash access was served from a read/pre-fetch buffer.
    FlashBufferHit {
        /// The flash request port the access arrived on.
        port: FlashPort,
    },
    /// A flash access missed the read buffers and paid wait states.
    FlashBufferMiss {
        /// The flash request port the access arrived on.
        port: FlashPort,
    },
    /// The flash prefetcher initiated a speculative line read.
    FlashPrefetch,
    /// Arbitration conflict between flash code and data ports; the loser
    /// waited `waited` cycles.
    FlashPortConflict {
        /// The port that lost arbitration.
        loser: FlashPort,
        /// Extra cycles the loser waited.
        waited: u8,
    },
    /// A bus master had to wait `waited` cycles for a busy slave.
    BusContention {
        /// The stalled bus master.
        master: SourceId,
        /// Cycles spent waiting for the grant.
        waited: u8,
    },
    /// A bus transaction was granted.
    BusGrant {
        /// The bus master that received the grant.
        master: SourceId,
    },
    /// A service request was raised by a peripheral (`srn` index).
    IrqRaised {
        /// Service-request-node index.
        srn: u8,
        /// Priority programmed into the node.
        prio: u8,
    },
    /// The CPU accepted an interrupt of priority `prio`.
    IrqTaken {
        /// Priority of the accepted interrupt.
        prio: u8,
    },
    /// The DMA controller moved one beat of data.
    DmaBeat {
        /// DMA channel index.
        channel: u8,
    },
    /// A DMA transaction (descriptor) completed.
    DmaDone {
        /// DMA channel index.
        channel: u8,
    },
    /// The PCP switched execution to channel `channel`.
    PcpChannelStart {
        /// PCP channel index.
        channel: u8,
    },
    /// The PCP finished the program of channel `channel`.
    PcpChannelExit {
        /// PCP channel index.
        channel: u8,
    },
    /// A pipeline produced no retirement this cycle for the given reason.
    Stall {
        /// Why no instruction retired.
        reason: StallReason,
    },
    /// A data value was written to memory (for qualified data trace).
    DataValue {
        /// Byte address of the access.
        addr: Addr,
        /// The value transferred (zero-extended to 32 bits).
        value: u32,
        /// Whether the access was a read or a write.
        kind: AccessKind,
        /// Access width in bytes.
        size: u8,
    },
    /// The core executed a DEBUG instruction (software trigger).
    DebugMarker {
        /// Immediate operand of the DEBUG instruction.
        code: u8,
    },
}

/// Which of the two flash request ports an event refers to.
///
/// The paper singles out "arbitration between the code and data ports of the
/// flash" as part of the complex CPU→flash path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlashPort {
    /// Instruction-fetch port.
    Code,
    /// Data port.
    Data,
}

impl fmt::Display for FlashPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashPort::Code => f.write_str("code"),
            FlashPort::Data => f.write_str("data"),
        }
    }
}

/// A timestamped, attributed event record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// When the event occurred.
    pub cycle: Cycle,
    /// Which block emitted it.
    pub source: SourceId,
    /// The event itself.
    pub event: PerfEvent,
}

/// A bus transaction as observed by the MCDS bus observation block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusTransaction {
    /// When the transaction was granted.
    pub cycle: Cycle,
    /// The requesting master.
    pub master: SourceId,
    /// Target address.
    pub addr: Addr,
    /// Read/write/fetch.
    pub kind: AccessKind,
    /// Transfer width in bytes.
    pub size: u8,
}

/// Collects [`EventRecord`]s emitted by SoC components during one or more
/// cycles.
///
/// The sink is drained once per cycle by the platform and handed to the
/// observation hardware. A disabled sink drops events with near-zero cost,
/// which models a production SoC without the Emulation Extension Chip.
///
/// # Examples
///
/// ```
/// use audo_common::{Cycle, EventSink, PerfEvent, SourceId};
///
/// let mut sink = EventSink::new();
/// sink.emit(Cycle(1), SourceId::TRICORE, PerfEvent::FlashCodeFetch);
/// let drained = sink.drain();
/// assert_eq!(drained.len(), 1);
/// assert!(sink.records().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventSink {
    records: Vec<EventRecord>,
    enabled: bool,
}

impl EventSink {
    /// Creates an enabled sink.
    #[must_use]
    pub fn new() -> EventSink {
        EventSink {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a sink that drops all events (production SoC, no EEC).
    #[must_use]
    pub fn disabled() -> EventSink {
        EventSink {
            records: Vec::new(),
            enabled: false,
        }
    }

    /// Returns whether the sink currently stores events.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables event collection.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Records an event, if enabled.
    #[inline]
    pub fn emit(&mut self, cycle: Cycle, source: SourceId, event: PerfEvent) {
        if self.enabled {
            self.records.push(EventRecord {
                cycle,
                source,
                event,
            });
        }
    }

    /// Returns the events collected since the last drain.
    #[must_use]
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// Removes and returns all collected events.
    pub fn drain(&mut self) -> Vec<EventRecord> {
        std::mem::take(&mut self.records)
    }

    /// Clears collected events without returning them.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_collects_when_enabled() {
        let mut sink = EventSink::new();
        sink.emit(
            Cycle(1),
            SourceId::TRICORE,
            PerfEvent::InstrRetired { count: 2 },
        );
        sink.emit(
            Cycle(1),
            SourceId::BUS,
            PerfEvent::BusGrant {
                master: SourceId::DMA,
            },
        );
        assert_eq!(sink.records().len(), 2);
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].event, PerfEvent::InstrRetired { count: 2 });
        assert!(sink.records().is_empty());
    }

    #[test]
    fn disabled_sink_drops_events() {
        let mut sink = EventSink::disabled();
        assert!(!sink.is_enabled());
        sink.emit(
            Cycle(1),
            SourceId::PCP,
            PerfEvent::PcpChannelStart { channel: 3 },
        );
        assert!(sink.records().is_empty());
        sink.set_enabled(true);
        sink.emit(
            Cycle(2),
            SourceId::PCP,
            PerfEvent::PcpChannelExit { channel: 3 },
        );
        assert_eq!(sink.records().len(), 1);
    }

    #[test]
    fn source_id_display_names() {
        assert_eq!(SourceId::PMU.to_string(), "PMU");
        assert_eq!(SourceId(42).to_string(), "Source42");
    }

    #[test]
    fn event_equality_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(PerfEvent::CacheHit {
            cache: CacheId::Instruction,
        });
        set.insert(PerfEvent::CacheHit {
            cache: CacheId::Instruction,
        });
        set.insert(PerfEvent::CacheHit {
            cache: CacheId::Data,
        });
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn stall_reason_index_matches_all_order() {
        for (i, r) in StallReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i, "{r}");
            assert!(!r.key().contains('-'), "metric key must be hyphen-free");
        }
    }

    #[test]
    fn display_impls_nonempty() {
        assert_eq!(CacheId::Instruction.to_string(), "I-cache");
        assert_eq!(StallReason::StoreBuffer.to_string(), "store-buffer");
        assert_eq!(MemRegion::Dspr.to_string(), "DSPR");
        assert_eq!(FlashPort::Data.to_string(), "data");
        assert_eq!(AccessKind::Fetch.to_string(), "fetch");
    }
}
