//! Chrome trace-event JSON exporter.
//!
//! Produces the [Trace Event Format] consumed by Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`: spans become `"X"`
//! (complete) events, counters and gauges become `"C"` (counter) events
//! sampled at the registry's latest stamped cycle. The `ts`/`dur` fields
//! are **simulated cycles** (the format nominally wants microseconds —
//! interpret one display-microsecond as one cycle; `otherData.clock`
//! records this). Output is deterministic: spans in recording order,
//! counters in name order, no wall-clock anywhere.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write as _;

use crate::Registry;

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `reg` as a Chrome trace-event JSON object.
///
/// `process_name` labels the single exported process (`pid` 1) in the
/// Perfetto UI. Track names given via `track_names` become thread-name
/// metadata records (`(tid, name)` pairs, emitted in the given order).
#[must_use]
pub fn trace_json(reg: &Registry, process_name: &str, track_names: &[(u32, String)]) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        json_escape(process_name)
    ));
    for (tid, name) in track_names {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }
    for s in reg.spans() {
        let mut args = String::new();
        for (i, (k, v)) in s.args.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            let _ = write!(args, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{{args}}}}}",
            json_escape(&s.name),
            s.start,
            s.end - s.start,
            s.track,
        ));
    }
    let ts = reg.stamped();
    for (name, value) in reg.counters() {
        events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\"tid\":0,\
             \"args\":{{\"value\":{value}}}}}",
            json_escape(name),
        ));
    }
    for (name, value) in reg.gauges() {
        events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\"tid\":0,\
             \"args\":{{\"value\":{value}}}}}",
            json_escape(name),
        ));
    }
    let mut out = String::from("{\n\"displayTimeUnit\": \"ns\",\n");
    out.push_str("\"otherData\": {\"clock\": \"simulated-cycles\"},\n");
    out.push_str("\"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let mut reg = Registry::new();
        reg.set_track(2);
        reg.begin_span("session", 0);
        reg.span("target.run", 0, 900);
        reg.end_span(1000);
        reg.add("icache.hits", 42);
        reg.gauge("emem.fill_ratio", 0.5);
        reg
    }

    #[test]
    fn export_contains_required_keys_and_events() {
        let json = trace_json(&sample_registry(), "audo", &[(2, "session".into())]);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ts\":0"));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"dur\":1000"));
        assert!(json.contains("thread_name"));
        assert!(json.contains("icache.hits"));
    }

    #[test]
    fn export_is_deterministic() {
        let a = trace_json(&sample_registry(), "audo", &[]);
        let b = trace_json(&sample_registry(), "audo", &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn counter_samples_use_latest_stamp() {
        let mut reg = Registry::new();
        reg.span("s", 0, 777);
        reg.add("c", 1);
        let json = trace_json(&reg, "p", &[]);
        assert!(json.contains("\"ph\":\"C\",\"ts\":777"));
    }

    #[test]
    fn names_are_json_escaped() {
        let mut reg = Registry::new();
        reg.add("weird\"name\\", 1);
        let json = trace_json(&reg, "p\"q", &[]);
        assert!(json.contains("weird\\\"name\\\\"));
        assert!(json.contains("p\\\"q"));
    }

    #[test]
    fn disabled_registry_exports_metadata_only() {
        let json = trace_json(&Registry::disabled(), "audo", &[]);
        assert!(json.contains("process_name"));
        assert!(!json.contains("\"ph\":\"X\""));
    }
}
