//! Folded-stack flamegraph lines.
//!
//! The classic `flamegraph.pl` / inferno / speedscope input format: one
//! line per unique call stack, frames joined by `;`, followed by a space
//! and the sample count:
//!
//! ```text
//! _start;head;work 150
//! _start;head 53
//! ```
//!
//! In this workspace the "samples" are **retired instructions** attributed
//! to the call stack reconstructed from the MCDS program-flow trace (see
//! `audo_profiler::reconstruct`), so the flamegraph is exact, not
//! statistical — and byte-identical across identical runs (stacks are kept
//! in a sorted map).

use std::collections::BTreeMap;

/// An accumulating set of folded call stacks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FoldedStacks {
    counts: BTreeMap<String, u64>,
}

impl FoldedStacks {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> FoldedStacks {
        FoldedStacks::default()
    }

    /// Adds `n` samples to the stack given as a frame slice
    /// (outermost first).
    pub fn add(&mut self, frames: &[String], n: u64) {
        if frames.is_empty() || n == 0 {
            return;
        }
        *self.counts.entry(frames.join(";")).or_insert(0) += n;
    }

    /// Adds `n` samples to an already-folded `a;b;c` line.
    pub fn add_folded(&mut self, folded: &str, n: u64) {
        if folded.is_empty() || n == 0 {
            return;
        }
        *self.counts.entry(folded.to_string()).or_insert(0) += n;
    }

    /// Merges another set into this one, optionally nesting every stack
    /// under `root` (useful to separate experiments in one flamegraph).
    pub fn merge(&mut self, other: &FoldedStacks, root: Option<&str>) {
        for (stack, n) in &other.counts {
            match root {
                Some(r) => self.add_folded(&format!("{r};{stack}"), *n),
                None => self.add_folded(stack, *n),
            }
        }
    }

    /// Number of distinct stacks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` when no stack was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total samples across all stacks.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Samples attributed to one exact folded stack.
    #[must_use]
    pub fn count(&self, folded: &str) -> u64 {
        self.counts.get(folded).copied().unwrap_or(0)
    }

    /// Iterates `(folded stack, count)` in canonical (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Renders the canonical folded-stack text (sorted, one per line).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (stack, n) in &self.counts {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&n.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacks_fold_and_accumulate() {
        let mut f = FoldedStacks::new();
        f.add(&["main".into(), "work".into()], 3);
        f.add(&["main".into(), "work".into()], 2);
        f.add(&["main".into()], 1);
        assert_eq!(f.count("main;work"), 5);
        assert_eq!(f.count("main"), 1);
        assert_eq!(f.total(), 6);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn render_is_sorted_and_deterministic() {
        let mut f = FoldedStacks::new();
        f.add_folded("z;tail", 1);
        f.add_folded("a;head", 2);
        assert_eq!(f.render(), "a;head 2\nz;tail 1\n");
        let g = f.clone();
        assert_eq!(f.render(), g.render());
    }

    #[test]
    fn merge_nests_under_root() {
        let mut a = FoldedStacks::new();
        a.add_folded("main", 1);
        let mut b = FoldedStacks::new();
        b.add_folded("main;isr", 4);
        a.merge(&b, Some("E9"));
        assert_eq!(a.count("E9;main;isr"), 4);
        a.merge(&b, None);
        assert_eq!(a.count("main;isr"), 4);
    }

    #[test]
    fn empty_and_zero_adds_are_ignored() {
        let mut f = FoldedStacks::new();
        f.add(&[], 5);
        f.add(&["x".into()], 0);
        f.add_folded("", 3);
        assert!(f.is_empty());
        assert_eq!(f.render(), "");
    }
}
